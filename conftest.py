"""Repository-level pytest configuration.

Adds the ``--bench-smoke`` flag that tightens the perf thresholds of the
tier-1 benchmark smoke test (``tests/test_bench_smoke.py``).  Without the
flag the smoke test still runs — correctness, flop-count identity, and a
lenient speedup floor — so a regression of the batched kernel path fails
loudly in every tier-1 run; with the flag it asserts the full measured
speedups of ``benchmarks/bench_batched_kernels.py``'s smoke shape.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--bench-smoke",
        action="store_true",
        default=False,
        help="assert strict (measured) speedup thresholds in the benchmark smoke test",
    )
