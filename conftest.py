"""Repository-level pytest configuration.

Adds the ``--bench-smoke`` flag that tightens the perf thresholds of the
tier-1 benchmark smoke test (``tests/test_bench_smoke.py``).  Without the
flag the smoke test still runs — correctness, flop-count identity, and a
lenient speedup floor — so a regression of the batched kernel path fails
loudly in every tier-1 run; with the flag it asserts the full measured
speedups of ``benchmarks/bench_batched_kernels.py``'s smoke shape.

Also adds ``--comm`` selecting the SPMD backend (threads vs real worker
processes) for the measured distributed-solver legs of the figure
benchmarks and ``benchmarks/bench_comm_backends.py``.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--bench-smoke",
        action="store_true",
        default=False,
        help="assert strict (measured) speedup thresholds in the benchmark smoke test",
    )
    parser.addoption(
        "--comm",
        choices=("threads", "proc"),
        default="threads",
        help=(
            "SPMD backend for the measured distributed-solver benchmark legs: "
            "'threads' (in-process ThreadComm ranks) or 'proc' (forked worker "
            "processes over the ShmComm shared-memory segment)"
        ),
    )
