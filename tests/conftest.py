"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.meshes.mesh2d import rectangle_mesh
from repro.meshes.temporal import TemporalMesh
from repro.structured.bta import BTAMatrix, BTAShape


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_bta(rng):
    """A small random SPD BTA matrix (n=6, b=4, a=3) and its dense form."""
    shape = BTAShape(n=6, b=4, a=3)
    A = BTAMatrix.random_spd(shape, rng)
    return A, A.to_dense()


@pytest.fixture
def small_bt(rng):
    """A small random SPD BT matrix (no arrowhead)."""
    shape = BTAShape(n=6, b=4, a=0)
    A = BTAMatrix.random_spd(shape, rng)
    return A, A.to_dense()


@pytest.fixture
def unit_mesh():
    return rectangle_mesh(7, 6)


@pytest.fixture
def tmesh():
    return TemporalMesh(nt=5)


@pytest.fixture
def tiny_model():
    """A small trivariate model with simulated observations (cached)."""
    from repro.model.datasets import make_dataset

    model, gt, latent = make_dataset(nv=3, ns=16, nt=4, nr=2, obs_per_step=20, seed=11)
    return model, gt, latent


@pytest.fixture
def tiny_uni_model():
    """A small univariate model with simulated observations."""
    from repro.model.datasets import make_dataset

    model, gt, latent = make_dataset(nv=1, ns=20, nt=5, nr=2, obs_per_step=25, seed=5)
    return model, gt, latent
