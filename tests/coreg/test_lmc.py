"""Linear model of coregionalization: Eq. 5/6/11 consistency."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.coreg.lmc import (
    CoregionalizationModel,
    lambda_matrix,
    mixing_inverse,
    n_couplings,
)
from repro.coreg.permute import CoregionalPermutation


def _rand_spd_sparse(rng, n):
    M = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.3)
    M = 0.5 * (M + M.T) + n * np.eye(n)
    return sp.csr_matrix(M)


class TestLambdaMatrix:
    def test_paper_eq5_structure(self):
        """Lambda must reproduce the paper's trivariate mixing matrix."""
        s = np.array([1.5, 2.0, 0.7])
        l1, l2, l3 = 0.4, -0.3, 0.9
        Lam = lambda_matrix(3, s, np.array([l1, l2, l3]))
        expected = np.array(
            [
                [s[0], 0.0, 0.0],
                [l1 * s[0], s[1], 0.0],
                [(l3 + l1 * l2) * s[0], l2 * s[1], s[2]],
            ]
        )
        assert np.allclose(Lam, expected)

    def test_mixing_inverse_is_inverse(self):
        s = np.ones(3)
        lam = np.array([0.5, -0.2, 0.8])
        M = mixing_inverse(3, lam)
        Lam = lambda_matrix(3, s, lam)
        assert np.allclose(M @ Lam, np.eye(3))

    def test_nv1_trivial(self):
        assert np.allclose(lambda_matrix(1, np.array([2.0]), np.zeros(0)), [[2.0]])

    def test_n_couplings(self):
        assert [n_couplings(v) for v in (1, 2, 3, 4)] == [0, 1, 3, 6]

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            lambda_matrix(2, np.array([1.0, -1.0]), np.array([0.3]))


class TestJointPrecision:
    @settings(max_examples=15, deadline=None)
    @given(
        nv=st.integers(1, 3),
        m=st.integers(2, 4),
        seed=st.integers(0, 10**6),
    )
    def test_eq11_equals_covariance_identity(self, nv, m, seed):
        """Q_nv must equal the inverse of Lambda blkdiag(Sigma) Lambda^T (Eq. 6)."""
        rng = np.random.default_rng(seed)
        coreg = CoregionalizationModel(nv)
        Qs = [_rand_spd_sparse(rng, m) for _ in range(nv)]
        sigmas = rng.uniform(0.5, 2.0, nv)
        lambdas = rng.uniform(-0.8, 0.8, coreg.n_lambda)
        Q = coreg.joint_precision(Qs, sigmas, lambdas).toarray()
        Sig = coreg.joint_covariance_dense(
            [np.linalg.inv(q.toarray()) for q in Qs], sigmas, lambdas
        )
        assert np.allclose(Q @ Sig, np.eye(nv * m), atol=1e-8)

    def test_zero_couplings_block_diagonal(self, rng):
        coreg = CoregionalizationModel(2)
        Qs = [_rand_spd_sparse(rng, 3) for _ in range(2)]
        Q = coreg.joint_precision(Qs, np.array([1.0, 2.0]), np.zeros(1)).toarray()
        assert np.allclose(Q[:3, 3:], 0.0)
        assert np.allclose(Q[:3, :3], Qs[0].toarray())
        assert np.allclose(Q[3:, 3:], Qs[1].toarray() / 4.0)

    def test_spd_preserved(self, rng):
        coreg = CoregionalizationModel(3)
        Qs = [_rand_spd_sparse(rng, 4) for _ in range(3)]
        Q = coreg.joint_precision(Qs, np.ones(3), np.array([0.9, -0.5, 0.3]))
        assert np.linalg.eigvalsh(Q.toarray()).min() > 0

    def test_mismatched_dims_rejected(self, rng):
        coreg = CoregionalizationModel(2)
        with pytest.raises(ValueError):
            coreg.joint_precision(
                [_rand_spd_sparse(rng, 3), _rand_spd_sparse(rng, 4)], np.ones(2), np.zeros(1)
            )


class TestResponseCorrelations:
    def test_positive_coupling_positive_correlation(self):
        coreg = CoregionalizationModel(2)
        corr = coreg.response_correlations(np.ones(2), np.array([0.9]))
        assert corr[0, 1] > 0.6

    def test_diagonal_is_one(self):
        coreg = CoregionalizationModel(3)
        corr = coreg.response_correlations(np.array([1.0, 2.0, 0.5]), np.array([0.4, -0.3, 0.2]))
        assert np.allclose(np.diag(corr), 1.0)

    def test_paper_like_pattern(self):
        """Couplings can reproduce Sec. VI's (+0.97, -0.61, -0.63) pattern."""
        coreg = CoregionalizationModel(3)
        lam = np.array([3.9, -0.17, -0.75])
        corr = coreg.response_correlations(np.array([1.0, 1.0, 1.0]), lam)
        assert corr[0, 1] > 0.9
        assert corr[0, 2] < -0.3
        assert corr[1, 2] < -0.3


class TestCoregionalPermutation:
    def test_recovers_bta_pattern(self, rng):
        """The paper's Fig. 2b -> 2c claim: permuted Q_nv is BTA."""
        from repro.meshes.mesh2d import rectangle_mesh
        from repro.meshes.temporal import TemporalMesh
        from repro.spde.spatiotemporal import SpatioTemporalSPDE
        from repro.spde.params import SpatioTemporalParams

        mesh = rectangle_mesh(4, 3)
        spde = SpatioTemporalSPDE(mesh, TemporalMesh(nt=4))
        nv, nr = 3, 2
        coreg = CoregionalizationModel(nv)
        eye_r = sp.identity(nr, format="csr") * 1e-3
        Qs = [
            sp.block_diag(
                [spde.precision(SpatioTemporalParams(0.4, 2.0, 1.0)), eye_r], format="csr"
            )
            for _ in range(nv)
        ]
        Q = coreg.joint_precision(Qs, np.ones(nv), np.array([0.5, -0.3, 0.2]))
        perm = CoregionalPermutation(nv, mesh.n_nodes, 4, nr)
        Qp = perm.apply(Q)
        assert perm.is_bta(Qp)

        # Without the permutation the matrix is NOT block-tridiagonal in
        # enlarged blocks (Fig. 2b): time-block distance can exceed 1.
        assert not perm.is_bta(Q)

    def test_permutation_is_similarity_transform(self, rng):
        perm = CoregionalPermutation(2, 3, 2, 1)
        n = perm.N
        M = rng.standard_normal((n, n))
        M = sp.csr_matrix(M + M.T)
        out = perm.apply(M).toarray()
        p = perm.perm.perm
        assert np.allclose(out, M.toarray()[np.ix_(p, p)])

    def test_vector_roundtrip(self, rng):
        perm = CoregionalPermutation(3, 4, 3, 2)
        x = rng.standard_normal(perm.N)
        assert np.allclose(perm.unpermute_vector(perm.permute_vector(x)), x)

    def test_planned_path_matches_generic(self, rng):
        perm = CoregionalPermutation(2, 2, 3, 1)
        n = perm.N
        M = rng.standard_normal((n, n))
        M = sp.csr_matrix(np.abs(M + M.T) > 1.0) * 1.0
        M = sp.csr_matrix(M + sp.identity(n))
        ref = perm.apply(M).toarray()
        perm.plan_for(M)
        M2 = M.copy()
        M2.data = rng.standard_normal(M2.nnz)
        assert np.allclose(
            perm.apply(M2).toarray(), M2.toarray()[np.ix_(perm.perm.perm, perm.perm.perm)]
        )

    def test_bta_shape_metadata(self):
        perm = CoregionalPermutation(3, 5, 4, 2)
        assert perm.bta_shape.n == 4
        assert perm.bta_shape.b == 15
        assert perm.bta_shape.a == 6
        assert perm.N == perm.bta_shape.N
