"""The deterministic fault-injection harness itself.

Everything the chaos suites lean on is pinned here: schedules are pure
functions of (seed, point, hit index), the env grammar round-trips, and
explicit-index scheduling is stable across simulated process restarts.
"""

import pytest

from repro.errors import InjectedFaultError, is_transient
from repro.faults import (
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_point,
    injected,
    install,
    should_fire,
    uninstall,
)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("p", rate=1.5)
        with pytest.raises(ValueError, match="times"):
            FaultSpec("p", times=0)
        with pytest.raises(ValueError, match="after"):
            FaultSpec("p", after=-1)

    def test_parse_grammar(self):
        plan = FaultPlan.parse("7:comm.shm.*:0.25:inf:3, 0:serving.refit:1.0")
        assert plan.specs[0] == FaultSpec("comm.shm.*", 0.25, None, 3, 7)
        assert plan.specs[1] == FaultSpec("serving.refit", 1.0, 1, 0, 0)

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="REPRO_FAULTS"):
            FaultPlan.parse("serving.refit")


class TestDeterminism:
    def test_schedule_is_a_pure_function_of_seed_point_index(self):
        """Two identically-configured plans fire on exactly the same hits."""
        plan_a = FaultPlan.at("x", rate=0.3, times=None, seed=5)
        plan_b = FaultPlan.at("x", rate=0.3, times=None, seed=5)
        fires_a = [plan_a.check("x") for _ in range(200)]
        fires_b = [plan_b.check("x") for _ in range(200)]
        assert fires_a == fires_b
        assert 20 < sum(fires_b) < 120  # rate ~0.3 actually thins the schedule

    def test_different_seeds_differ(self):
        plan_a = FaultPlan.at("x", rate=0.5, times=None, seed=1)
        plan_b = FaultPlan.at("x", rate=0.5, times=None, seed=2)
        a = [plan_a.check("x") for _ in range(64)]
        b = [plan_b.check("x") for _ in range(64)]
        assert a != b

    def test_times_caps_total_fires(self):
        plan = FaultPlan.at("p", times=2)
        fired = [plan.check("p") for _ in range(10)]
        assert fired == [True, True] + [False] * 8
        assert plan.fired("p") == 2 and plan.hits("p") == 10

    def test_after_skips_early_hits(self):
        plan = FaultPlan.at("p", after=3)
        assert [plan.check("p") for _ in range(6)] == [False] * 3 + [True, False, False]

    def test_fnmatch_patterns(self):
        plan = FaultPlan.at("spmd.worker.kill.*", times=None)
        assert plan.check("spmd.worker.kill.r0")
        assert plan.check("spmd.worker.kill.r7")
        assert not plan.check("spmd.worker.bootstrap.r0")


class TestExplicitIndex:
    def test_window_is_stable_across_counter_resets(self):
        """A respawned worker restarts its own hit counter; explicit
        indices keep the schedule anchored to the parent-side epoch, so a
        kill-once fault does not re-fire forever and defeat recovery."""
        plan = FaultPlan.at("kill", times=1, after=2)
        # epoch indices 0..5, as three successive process incarnations
        # would each observe them: only epoch 2 is in the firing window.
        assert [plan.check("kill", index=k) for k in (0, 1, 2)] == [False, False, True]
        assert [plan.check("kill", index=k) for k in (2, 3)] == [True, False]  # replayed epoch
        assert plan.check("kill", index=2)  # any incarnation agrees on epoch 2


class TestActivation:
    def test_injected_scopes_install(self):
        assert active_plan() is None
        with injected(FaultPlan.at("p")) as plan:
            assert active_plan() is plan
            assert should_fire("p") and not should_fire("p")
        assert active_plan() is None

    def test_install_uninstall(self):
        plan = install(FaultPlan.at("p"))
        try:
            assert active_plan() is plan
        finally:
            uninstall()
        assert active_plan() is None

    def test_env_plan_parsed_lazily(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "3:q:1.0")
        plan = active_plan()
        assert plan is not None and plan.specs == [FaultSpec("q", 1.0, 1, 0, 3)]
        assert active_plan() is plan  # cached per raw value
        monkeypatch.delenv("REPRO_FAULTS")
        assert active_plan() is None

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "0:env-point:1.0")
        with injected(FaultPlan.at("other")) as plan:
            assert active_plan() is plan


class TestFaultPoint:
    def test_default_exception_is_transient(self):
        with injected(FaultPlan.at("p")):
            with pytest.raises(InjectedFaultError, match="'p'") as info:
                fault_point("p")
        assert is_transient(info.value)

    def test_custom_exception_factory(self):
        with injected(FaultPlan.at("p")):
            with pytest.raises(KeyError):
                fault_point("p", lambda: KeyError("boom"))

    def test_no_plan_is_a_no_op(self):
        fault_point("never-fires")  # must not raise
