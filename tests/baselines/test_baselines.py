"""Baseline engines must agree with DALIA numerically (they differ only
in *how* they compute, not in *what*)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import INLADistEngine, RINLAEngine, SparseCholesky
from repro.baselines.rinla import evaluate_fobj_sparse
from repro.baselines.sparse_solver import sparse_selected_inverse_diagonal
from repro.inla import DALIA, evaluate_fobj
from repro.inla.bfgs import BFGSOptions
from repro.structured.kernels import NotPositiveDefiniteError


def _spd_sparse(rng, n):
    M = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.2)
    M = 0.5 * (M + M.T) + n * np.eye(n)
    return sp.csr_matrix(M)


class TestSparseCholesky:
    def test_logdet(self, rng):
        A = _spd_sparse(rng, 30)
        ref = np.linalg.slogdet(A.toarray())[1]
        assert np.isclose(SparseCholesky(A).logdet(), ref)

    def test_solve(self, rng):
        A = _spd_sparse(rng, 25)
        rhs = rng.standard_normal(25)
        x = SparseCholesky(A).solve(rhs)
        assert np.allclose(A @ x, rhs)

    def test_indefinite_raises(self):
        A = sp.csr_matrix(-np.eye(4))
        with pytest.raises(NotPositiveDefiniteError):
            SparseCholesky(A)

    def test_selected_inverse_diag_dense_path(self, rng):
        A = _spd_sparse(rng, 20)
        d = sparse_selected_inverse_diagonal(A)
        assert np.allclose(d, np.diag(np.linalg.inv(A.toarray())))

    def test_selected_inverse_diag_solve_path(self, rng):
        A = _spd_sparse(rng, 20)
        d = sparse_selected_inverse_diagonal(A, dense_limit=5)
        assert np.allclose(d, np.diag(np.linalg.inv(A.toarray())))

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            SparseCholesky(sp.csr_matrix(np.ones((2, 3))))


class TestRINLAAgreement:
    def test_fobj_matches_dalia(self, tiny_model):
        model, gt, _ = tiny_model
        for shift in (0.0, 0.25, -0.4):
            f_dalia = evaluate_fobj(model, gt.theta + shift).value
            f_rinla = evaluate_fobj_sparse(model, gt.theta + shift).value
            assert np.isclose(f_dalia, f_rinla, atol=1e-7)

    def test_full_fit_agrees(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        opts = BFGSOptions(max_iter=40)
        res_d = DALIA(model, s1_workers=4).fit(options=opts)
        res_r = RINLAEngine(model, s1_workers=4).fit(options=opts)
        assert np.allclose(res_d.theta_mode, res_r.theta_mode, atol=1e-4)
        assert np.isclose(res_d.fobj_mode, res_r.fobj_mode, atol=1e-6)
        assert np.allclose(res_d.latent.mean, res_r.latent.mean, atol=1e-6)
        assert np.allclose(res_d.latent.sd, res_r.latent.sd, rtol=1e-5)


class TestINLADist:
    def test_rejects_multivariate(self, tiny_model):
        model, _, _ = tiny_model
        with pytest.raises(ValueError, match="univariate"):
            INLADistEngine(model)

    def test_univariate_fit_matches_dalia(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        opts = BFGSOptions(max_iter=40)
        res_d = DALIA(model, s1_workers=2).fit(options=opts)
        res_i = INLADistEngine(model, s1_workers=2).fit(options=opts)
        assert np.allclose(res_d.theta_mode, res_i.theta_mode, atol=1e-6)
