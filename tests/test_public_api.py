"""The curated top-level surface: ``import repro`` is enough.

Guards the api-redesign contract: every name in ``repro.__all__``
resolves, the serving tier is reachable without deep module paths, and
``__all__`` is the single source of truth (no missing or stale entries).
"""

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_all_is_sorted_into_documented_groups(self):
        """Spot-check the load-bearing names users reach for first."""
        for name in (
            "DALIA",
            "make_dataset",
            "LatentPosterior",
            "factorize",
            "BTAFactor",
            "select_solver",
            "Server",
            "ModelRegistry",
            "PredictRequest",
            "SampleRequest",
            "ExceedanceRequest",
        ):
            assert name in repro.__all__, name

    def test_serving_module_exported(self):
        assert repro.serving.Server is repro.Server
        assert repro.serving.ModelRegistry is repro.ModelRegistry

    def test_identity_with_deep_paths(self):
        """Top-level names are the same objects as their home modules' —
        no wrapper indirection that could drift."""
        from repro.inla.dalia import DALIA
        from repro.inla.sampling import LatentPosterior
        from repro.serving.server import Server
        from repro.structured.factor import factorize

        assert repro.DALIA is DALIA
        assert repro.LatentPosterior is LatentPosterior
        assert repro.Server is Server
        assert repro.factorize is factorize

    def test_star_import_is_curated(self):
        ns: dict = {}
        exec("from repro import *", ns)
        exported = {k for k in ns if not k.startswith("__")}
        assert exported == set(repro.__all__) - {"__version__"}

    def test_version(self):
        assert isinstance(repro.__version__, str) and repro.__version__
