"""Diagnostics helpers."""

import time

from repro.diagnostics import Timer, TimingRecords, format_table


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0


class TestTimingRecords:
    def test_accumulates(self):
        r = TimingRecords()
        r.add("x", 2.0)
        r.add("x", 1.0)
        assert r.best("x") == 1.0
        assert r.mean("x") == 1.5

    def test_time_helper_returns_result(self):
        r = TimingRecords()
        out = r.time("f", lambda a: a + 1, 41, repeats=3)
        assert out == 42
        assert len(r.records["f"]) == 3


class TestFormatTable:
    def test_alignment_and_title(self):
        txt = format_table(["a", "bb"], [(1, 2.5), (10, 0.25)], title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        txt = format_table(["v"], [(0.123456,)])
        assert "0.1235" in txt
