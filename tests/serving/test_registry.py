"""Model registry: LRU residency under a byte budget, counters, refits."""

import threading

import numpy as np
import pytest

from repro.backend.memory import posterior_memory_bytes
from repro.model.datasets import make_dataset
from repro.serving.registry import ModelKey, ModelRegistry, model_bytes


@pytest.fixture(scope="module")
def model_theta():
    model, gt, _ = make_dataset(nv=1, ns=16, nt=4, nr=1, obs_per_step=12, seed=3)
    return model, gt.theta


def _thetas(theta, k):
    """k distinct nearby hyperparameter points (distinct registry keys)."""
    return [np.asarray(theta, float) + 0.01 * i for i in range(k)]


class TestModelBytes:
    def test_matches_memory_helper(self, model_theta):
        model, _ = model_theta
        n, b = model.nt, model.nv * model.ns
        a = model.N - n * b
        assert model_bytes(model) == posterior_memory_bytes(n, b, a)
        assert model_bytes(model) > 0

    def test_posterior_memory_bytes_validates(self):
        with pytest.raises(ValueError, match="vectors"):
            posterior_memory_bytes(4, 3, 1, vectors=-1)


class TestLookup:
    def test_hit_miss_counters(self, model_theta):
        model, theta = model_theta
        reg = ModelRegistry()
        p1 = reg.posterior(model, theta)
        p2 = reg.posterior(model, theta)
        assert p1 is p2
        assert reg.stats.snapshot() == {"hits": 1, "misses": 1, "evictions": 0}

    def test_distinct_thetas_are_distinct_entries(self, model_theta):
        model, theta = model_theta
        reg = ModelRegistry()
        t0, t1 = _thetas(theta, 2)
        assert reg.posterior(model, t0) is not reg.posterior(model, t1)
        assert len(reg) == 2 and reg.stats.misses == 2

    def test_key_is_value_based_on_theta(self, model_theta):
        model, theta = model_theta
        assert ModelKey.of(model, theta) == ModelKey.of(model, np.array(theta))

    def test_concurrent_cold_lookups_fit_once(self, model_theta):
        model, theta = model_theta
        reg = ModelRegistry()
        out = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            out.append(reg.posterior(model, theta))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.stats.misses == 1 and reg.stats.hits == 3
        assert all(p is out[0] for p in out)


class TestLRUEviction:
    def test_budget_bounds_residency(self, model_theta):
        model, theta = model_theta
        per = model_bytes(model)
        reg = ModelRegistry(budget_bytes=2 * per)
        for t in _thetas(theta, 4):
            reg.posterior(model, t)
        assert len(reg) == 2
        assert reg.live_bytes <= reg.budget_bytes
        assert reg.stats.evictions == 2

    def test_evicts_least_recently_used(self, model_theta):
        model, theta = model_theta
        per = model_bytes(model)
        t0, t1, t2 = _thetas(theta, 3)
        reg = ModelRegistry(budget_bytes=2 * per)
        reg.posterior(model, t0)
        reg.posterior(model, t1)
        reg.posterior(model, t0)  # refresh t0: t1 becomes LRU
        reg.posterior(model, t2)  # evicts t1
        assert ModelKey.of(model, t0) in reg
        assert ModelKey.of(model, t1) not in reg
        assert ModelKey.of(model, t2) in reg

    def test_evicted_model_refits_transparently(self, model_theta):
        model, theta = model_theta
        per = model_bytes(model)
        t0, t1 = _thetas(theta, 2)
        reg = ModelRegistry(budget_bytes=per)
        m0 = reg.posterior(model, t0).marginals()
        reg.posterior(model, t1)  # evicts t0
        assert ModelKey.of(model, t0) not in reg
        refit = reg.posterior(model, t0).marginals()
        # The fit is deterministic in (model, theta): the refit handle
        # answers bit-identically to the evicted one.
        assert np.array_equal(refit.mean, m0.mean)
        assert np.array_equal(refit.sd, m0.sd)
        assert reg.stats.misses == 3

    def test_single_entry_exceeding_budget_still_served(self, model_theta):
        model, theta = model_theta
        reg = ModelRegistry(budget_bytes=1)
        assert reg.posterior(model, theta) is not None
        assert len(reg) == 1  # never evicts down to zero

    def test_unbounded_registry_never_evicts(self, model_theta):
        model, theta = model_theta
        reg = ModelRegistry()
        for t in _thetas(theta, 4):
            reg.posterior(model, t)
        assert len(reg) == 4 and reg.stats.evictions == 0

    def test_clear(self, model_theta):
        model, theta = model_theta
        reg = ModelRegistry()
        reg.posterior(model, theta)
        reg.clear()
        assert len(reg) == 0 and reg.live_bytes == 0
        assert reg.stats.evictions == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_bytes"):
            ModelRegistry(budget_bytes=-1)
