"""Registry failure semantics: a failed fit is an event, not a corruption.

Satellite 3 of ISSUE 10.  The invariants: a fit that raises leaves no
half-inserted entry, never evicts a resident handle, and releases the
lock so the next caller (or a concurrent one) proceeds normally; and an
eviction racing a refit keeps the registry internally consistent.
"""

import threading

import numpy as np
import pytest

from repro.errors import InjectedFaultError
from repro.faults import FaultPlan, injected
from repro.serving.registry import ModelKey, ModelRegistry, model_bytes


@pytest.fixture(scope="module")
def model_theta():
    from repro.model.datasets import make_dataset

    model, gt, _ = make_dataset(nv=1, ns=16, nt=4, nr=1, obs_per_step=12, seed=3)
    return model, gt.theta


def _thetas(theta, k):
    return [np.asarray(theta, float) + 0.01 * i for i in range(k)]


class TestFailedFit:
    def test_no_half_inserted_entry_and_lock_released(self, model_theta):
        model, theta = model_theta
        reg = ModelRegistry()
        with injected(FaultPlan.at("serving.refit", times=1)):
            with pytest.raises(InjectedFaultError):
                reg.posterior(model, theta)
            assert len(reg) == 0
            assert ModelKey.of(model, theta) not in reg
            assert reg.stats.snapshot() == {"hits": 0, "misses": 1, "evictions": 0}
            # The lock is free again (RLock: a leak would show as an owned
            # lock on the failed caller's thread — re-entrant, so probe
            # from another thread).
            grabbed = []

            def probe():
                if reg._lock.acquire(timeout=1):
                    reg._lock.release()
                    grabbed.append(True)

            t = threading.Thread(target=probe)
            t.start()
            t.join()
            assert grabbed == [True]
            # The fault schedule is exhausted: the retried fit succeeds.
            assert reg.posterior(model, theta) is not None
            assert len(reg) == 1

    def test_failed_fit_never_evicts_resident_handles(self, model_theta):
        """A budget at one handle plus a failing second fit: the failure
        must not push out the resident entry (eviction happens only on a
        successful admission)."""
        model, theta = model_theta
        t0, t1 = _thetas(theta, 2)
        reg = ModelRegistry(budget_bytes=model_bytes(model))
        p0 = reg.posterior(model, t0)
        with injected(FaultPlan.at("serving.refit", times=1)):
            with pytest.raises(InjectedFaultError):
                reg.posterior(model, t1)
        assert reg.keys() == [ModelKey.of(model, t0)]
        assert reg.stats.evictions == 0
        assert reg.posterior(model, t0) is p0  # still warm, still a hit

    def test_concurrent_cold_callers_exactly_one_fails(self, model_theta):
        """Two racers on one cold key under a fire-once fault: whoever
        reaches the fit first eats the injected failure and releases the
        lock; the other refits and serves.  Neither hangs."""
        model, theta = model_theta
        reg = ModelRegistry()
        outcomes = []

        def caller():
            try:
                outcomes.append(reg.posterior(model, theta))
            except InjectedFaultError as exc:
                outcomes.append(exc)

        with injected(FaultPlan.at("serving.refit", times=1)):
            threads = [threading.Thread(target=caller) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sum(isinstance(o, InjectedFaultError) for o in outcomes) == 1
        served = [o for o in outcomes if not isinstance(o, InjectedFaultError)]
        assert len(served) == 1 and len(reg) == 1


class TestEvictionRefitRace:
    def test_eviction_racing_faulted_refits_stays_consistent(self, model_theta):
        """One thread hammers theta-0 (keeping it hot, refitting it when
        evicted) while another cycles theta-1/theta-2 through a one-handle
        budget under a 30%-rate refit fault schedule.  Every failure must
        be the injected one, and the registry must end internally
        consistent: resident set within budget, all counters coherent."""
        model, theta = model_theta
        t0, t1, t2 = _thetas(theta, 3)
        reg = ModelRegistry(budget_bytes=model_bytes(model))
        errors = []

        def hot_loop():
            for _ in range(8):
                try:
                    assert reg.posterior(model, t0) is not None
                except InjectedFaultError:
                    pass
                except BaseException as exc:  # noqa: BLE001 - test harness
                    errors.append(exc)

        def churn_loop():
            for i in range(8):
                try:
                    assert reg.posterior(model, (t1, t2)[i % 2]) is not None
                except InjectedFaultError:
                    pass
                except BaseException as exc:  # noqa: BLE001 - test harness
                    errors.append(exc)

        with injected(FaultPlan.at("serving.refit", rate=0.3, times=None, seed=42)):
            threads = [threading.Thread(target=f) for f in (hot_loop, churn_loop)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []
        # Budget holds one handle; the protected-admission rule allows a
        # transient second entry only during admission, never at rest.
        assert len(reg) == 1
        assert reg.live_bytes <= model_bytes(model)
        snap = reg.stats.snapshot()
        assert snap["misses"] >= snap["evictions"] >= 1
        # And the registry still serves (no poisoned state after the storm).
        assert reg.posterior(model, t0) is not None
