"""Typed query API: validation, bit-identity, lane quantization."""

import numpy as np
import pytest

from repro.serving.api import (
    ExceedanceRequest,
    PredictRequest,
    SampleRequest,
    execute_batch,
    sweep_lanes,
)


class TestValidation:
    def test_sample_rejects_nonpositive(self, served_model):
        model, _ = served_model
        with pytest.raises(ValueError, match="n_samples must be >= 1"):
            SampleRequest(n_samples=0, seed=1).validate(model)

    def test_sample_requires_noise_source(self, served_model):
        model, _ = served_model
        with pytest.raises(ValueError, match="pass rng when requesting samples"):
            SampleRequest(n_samples=2).validate(model)

    def test_sample_rejects_rng_and_seed(self, served_model):
        model, _ = served_model
        with pytest.raises(ValueError, match="not both"):
            SampleRequest(n_samples=2, rng=np.random.default_rng(0), seed=1).validate(model)

    def test_predict_shape_checks(self, served_model):
        model, _ = served_model
        good = np.array([[7.5, 44.8]])
        with pytest.raises(ValueError, match="coords must be"):
            PredictRequest(coords=np.zeros(3), time_idx=np.array([0])).validate(model)
        with pytest.raises(ValueError, match="time_idx must be"):
            PredictRequest(coords=good, time_idx=np.array([0, 1])).validate(model)
        with pytest.raises(ValueError, match="time_idx must be integer"):
            PredictRequest(coords=good, time_idx=np.array([0.5])).validate(model)
        with pytest.raises(ValueError, match="out of range"):
            PredictRequest(coords=good, time_idx=np.array([model.nt])).validate(model)
        with pytest.raises(ValueError, match="response index"):
            PredictRequest(coords=good, time_idx=np.array([0]), v=model.nv).validate(model)
        with pytest.raises(ValueError, match="pass rng when requesting samples"):
            PredictRequest(coords=good, time_idx=np.array([0]), n_samples=2).validate(model)

    def test_exceedance_checks(self, served_model):
        model, _ = served_model
        with pytest.raises(ValueError, match="finite"):
            ExceedanceRequest(threshold=np.nan).validate(model)
        with pytest.raises(ValueError, match="sd must have shape"):
            ExceedanceRequest(threshold=0.5, sd=np.ones(3)).validate(model)

    def test_execute_batch_rejects_foreign_objects(self, posterior):
        with pytest.raises(TypeError, match="not a serving request"):
            execute_batch(posterior, ["predict please"])

    def test_invalid_request_fails_whole_validation_before_work(self, posterior):
        with pytest.raises(ValueError):
            execute_batch(posterior, [SampleRequest(n_samples=-1, seed=0)])


class TestBitIdentity:
    """A request's response must not depend on what else shares the batch
    — the invariant that lets direct calls and the micro-batcher share
    one execution core."""

    def test_mixed_batch_matches_solo(self, posterior, pred_points):
        coords, tidx = pred_points
        reqs = [
            SampleRequest(n_samples=2, seed=42),
            PredictRequest(coords=coords, time_idx=tidx, v=0),
            ExceedanceRequest(threshold=0.5),
            SampleRequest(n_samples=5, seed=9),
            PredictRequest(coords=coords[:1], time_idx=tidx[:1], v=0, n_samples=3, seed=4),
        ]
        batch = execute_batch(posterior, reqs)
        for req, got in zip(reqs, batch):
            (solo,) = execute_batch(posterior, [req])
            for f in ("samples", "mean", "sd", "probability"):
                a, b = getattr(got, f, None), getattr(solo, f, None)
                assert (a is None) == (b is None)
                if a is not None:
                    assert np.array_equal(a, b), f

    def test_batch_composition_invariance(self, posterior):
        """Same request, two different batch compositions: same bits."""
        probe = SampleRequest(n_samples=3, seed=77)
        in_small = execute_batch(posterior, [probe, SampleRequest(n_samples=1, seed=1)])
        in_large = execute_batch(
            posterior,
            [SampleRequest(n_samples=7, seed=2), probe, ExceedanceRequest(threshold=0.1)],
        )
        assert np.array_equal(in_small[0].samples, in_large[1].samples)

    def test_wide_request_runs_solo_exact_width(self, posterior):
        """A request at least one lane wide must keep today's exact
        single-sweep bits even when batched with others."""
        wide = SampleRequest(n_samples=sweep_lanes() + 1, seed=5)
        (solo,) = execute_batch(posterior, [wide])
        mixed = execute_batch(posterior, [SampleRequest(n_samples=2, seed=6), wide])
        assert np.array_equal(solo.samples, mixed[1].samples)

    def test_direct_adapter_calls_match_batch(self, posterior, pred_points):
        coords, tidx = pred_points
        out = execute_batch(
            posterior,
            [
                SampleRequest(n_samples=4, rng=np.random.default_rng(3)),
                PredictRequest(coords=coords, time_idx=tidx, v=0),
                ExceedanceRequest(threshold=0.5),
            ],
        )
        assert np.array_equal(
            out[0].samples, posterior.sample(4, np.random.default_rng(3))
        )
        direct = posterior.predict(coords, tidx, 0)
        assert np.array_equal(out[1].mean, direct["mean"])
        assert np.array_equal(out[1].sd, direct["sd"])
        assert np.array_equal(out[2].probability, posterior.exceedance_probability(0.5))

    def test_seed_is_deterministic(self, posterior):
        a = execute_batch(posterior, [SampleRequest(n_samples=3, seed=11)])[0]
        b = execute_batch(posterior, [SampleRequest(n_samples=3, seed=11)])[0]
        assert np.array_equal(a.samples, b.samples)

    def test_lane_width_env_override(self, posterior, monkeypatch):
        """Bit-identity holds at any configured lane width (the width
        changes which bits come out, not the composition invariance)."""
        monkeypatch.setenv("REPRO_SERVING_LANES", "4")
        assert sweep_lanes() == 4
        probe = SampleRequest(n_samples=2, seed=21)
        (solo,) = execute_batch(posterior, [probe])
        mixed = execute_batch(posterior, [probe, SampleRequest(n_samples=3, seed=22)])
        assert np.array_equal(solo.samples, mixed[0].samples)


class TestCorrectness:
    def test_predict_with_samples_shapes(self, posterior, pred_points):
        coords, tidx = pred_points
        (res,) = execute_batch(
            posterior,
            [PredictRequest(coords=coords, time_idx=tidx, v=0, n_samples=6, seed=8)],
        )
        m = coords.shape[0]
        assert res.mean.shape == (m,) and res.sd.shape == (m,)
        assert res.samples.shape == (6, m)
        assert res.as_dict()["samples"] is res.samples

    def test_exceedance_probabilities_in_unit_interval(self, posterior):
        (res,) = execute_batch(posterior, [ExceedanceRequest(threshold=0.0)])
        assert res.probability.shape == (posterior.model.N,)
        assert np.all((res.probability >= 0) & (res.probability <= 1))

    def test_exceedance_monotone_in_threshold(self, posterior):
        lo, hi = execute_batch(
            posterior,
            [ExceedanceRequest(threshold=-1.0), ExceedanceRequest(threshold=1.0)],
        )
        assert np.all(lo.probability >= hi.probability)

    def test_exceedance_custom_sd(self, posterior):
        sd = np.full(posterior.model.N, 1e-12)
        (res,) = execute_batch(posterior, [ExceedanceRequest(threshold=0.0, sd=sd)])
        # With (near-)zero sd the probability collapses to an indicator
        # of mean > threshold.
        assert set(np.unique(res.probability)) <= {0.0, 1.0}
