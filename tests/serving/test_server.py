"""Micro-batcher: coalescing, concurrency bit-identity, drain semantics."""

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    ExceedanceRequest,
    ModelRegistry,
    SampleRequest,
    Server,
    ServerClosedError,
)
from repro.serving.api import execute_batch


class _SlowFirstFit(ModelRegistry):
    """Registry whose first (cold) lookup stalls — deterministically
    forces submissions to pile up behind tick 1 so tick 2 coalesces."""

    def __init__(self, delay: float = 0.25, **kwargs):
        super().__init__(**kwargs)
        self._delay = delay
        self._stalled = False

    def posterior(self, model, theta):
        if not self._stalled:
            self._stalled = True
            time.sleep(self._delay)
        return super().posterior(model, theta)


class TestBatching:
    def test_concurrent_responses_bit_identical_to_direct(self, posterior, served_model):
        """The acceptance invariant: responses assembled from coalesced
        sweeps match sequential direct LatentPosterior calls bit-for-bit,
        regardless of how requests landed in ticks."""
        model, theta = served_model
        reg = ModelRegistry()
        reg.posterior(model, theta)  # pre-fit: every tick hits the cache
        n_clients, per_client = 8, 6
        results: dict[int, list] = {}

        with Server(reg) as server:
            def client(w: int) -> None:
                futs = [
                    server.submit(model, theta, SampleRequest(n_samples=2, seed=w * 100 + i))
                    for i in range(per_client)
                ]
                results[w] = [f.result() for f in futs]

            threads = [threading.Thread(target=client, args=(w,)) for w in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        for w in range(n_clients):
            for i, res in enumerate(results[w]):
                direct = posterior.sample(2, np.random.default_rng(w * 100 + i))
                assert np.array_equal(res.samples, direct), (w, i)

    def test_queued_requests_coalesce_into_one_tick(self, served_model):
        model, theta = served_model
        reg = _SlowFirstFit()
        with Server(reg) as server:
            first = server.submit(model, theta, ExceedanceRequest(threshold=0.5))
            burst = [
                server.submit(model, theta, SampleRequest(n_samples=1, seed=i))
                for i in range(6)
            ]
            first.result()
            for f in burst:
                f.result()
            stats = server.stats.snapshot()
        # Tick 1 carried only the first request (the queue held nothing
        # else when it was drained); the burst queued behind the stalled
        # fit and came out coalesced.
        assert stats["max_batch"] >= 2
        assert stats["ticks"] < 1 + len(burst)

    def test_max_batch_one_serves_per_request(self, served_model):
        model, theta = served_model
        reg = _SlowFirstFit()
        with Server(reg, max_batch=1) as server:
            futs = [
                server.submit(model, theta, SampleRequest(n_samples=1, seed=i))
                for i in range(5)
            ]
            for f in futs:
                f.result()
            stats = server.stats.snapshot()
        assert stats["max_batch"] == 1 and stats["ticks"] == 5

    def test_two_thetas_grouped_separately(self, served_model):
        model, theta = served_model
        theta2 = np.asarray(theta, float) + 0.01
        reg = _SlowFirstFit()
        with Server(reg) as server:
            f1 = server.submit(model, theta, ExceedanceRequest(threshold=0.5))
            f2 = server.submit(model, theta2, ExceedanceRequest(threshold=0.5))
            p1, p2 = f1.result().probability, f2.result().probability
        assert reg.stats.misses == 2
        assert not np.array_equal(p1, p2)  # different posteriors answered

    def test_query_convenience(self, served_model):
        model, theta = served_model
        with Server() as server:
            res = server.query(model, theta, SampleRequest(n_samples=2, seed=0))
        assert res.samples.shape[0] == 2


class TestLifecycle:
    def test_close_drains_without_dropping(self, served_model):
        """Every request admitted before close() resolves — the batcher
        finishes the queue instead of abandoning it."""
        model, theta = served_model
        reg = _SlowFirstFit()
        server = Server(reg)
        futs = [
            server.submit(model, theta, SampleRequest(n_samples=1, seed=i))
            for i in range(10)
        ]
        server.close()
        assert all(f.done() for f in futs)
        assert all(f.result().samples.shape == (1, model.N) for f in futs)
        assert server.stats.snapshot()["completed"] == 10

    def test_submit_after_close_raises(self, served_model):
        model, theta = served_model
        server = Server()
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(model, theta, ExceedanceRequest(threshold=0.5))

    def test_close_idempotent(self):
        server = Server()
        server.close()
        server.close()
        assert server.closed

    def test_invalid_request_raises_at_submit(self, served_model):
        model, theta = served_model
        with Server() as server:
            with pytest.raises(ValueError, match="n_samples must be >= 1"):
                server.submit(model, theta, SampleRequest(n_samples=0, seed=1))
            assert server.stats.snapshot()["submitted"] == 0

    def test_invalid_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            Server(max_batch=0)


class TestErrorPropagation:
    def test_group_failure_reaches_futures(self, served_model):
        model, theta = served_model

        class ExplodingRegistry(ModelRegistry):
            def posterior(self, model, theta):
                raise RuntimeError("factorization blew up")

        server = Server(ExplodingRegistry())
        fut = server.submit(model, theta, ExceedanceRequest(threshold=0.5))
        with pytest.raises(RuntimeError, match="factorization blew up"):
            fut.result(timeout=10)
        assert server.stats.snapshot()["failed"] == 1
        server.close()

    def test_failure_isolated_to_its_group(self, posterior, served_model):
        """A failing model group must not poison other groups in the
        same tick."""
        model, theta = served_model
        bad_theta = np.asarray(theta, float) + 0.5

        class PartiallyExploding(_SlowFirstFit):
            def posterior(self, model, th):
                if np.allclose(th, bad_theta):
                    raise RuntimeError("bad model")
                return super().posterior(model, th)

        with Server(PartiallyExploding()) as server:
            good = server.submit(model, theta, SampleRequest(n_samples=2, seed=1))
            bad = server.submit(model, bad_theta, ExceedanceRequest(threshold=0.5))
            assert np.array_equal(
                good.result(timeout=10).samples,
                execute_batch(posterior, [SampleRequest(n_samples=2, seed=1)])[0].samples,
            )
            with pytest.raises(RuntimeError, match="bad model"):
                bad.result(timeout=10)
