"""Shared fixtures for the serving-tier tests.

One small fitted model per module: every serving test queries the same
posterior, so the fit cost is paid once.
"""

import numpy as np
import pytest

from repro.inla.sampling import LatentPosterior
from repro.model.datasets import make_dataset


@pytest.fixture(scope="module")
def served_model():
    model, gt, _ = make_dataset(nv=1, ns=18, nt=5, nr=1, obs_per_step=20, seed=13)
    return model, gt.theta


@pytest.fixture(scope="module")
def posterior(served_model):
    model, theta = served_model
    return LatentPosterior.at(model, theta)


@pytest.fixture(scope="module")
def pred_points():
    """Coordinates inside the synthetic mesh extent + valid time steps."""
    coords = np.array([[7.5, 44.8], [9.1, 45.3], [11.0, 46.0]])
    tidx = np.array([0, 2, 4])
    return coords, tidx
