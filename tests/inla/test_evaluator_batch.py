"""Theta-batched stencil sweeps + the theta-keyed LRU on FobjEvaluator.

The batch path must reproduce the per-point stencil values exactly (it
runs the same per-slab kernels through ``factorize_batch``), collapse the
stencil's ``2 (2 d + 1)`` factorization sweeps into 2, fall back to the
per-point path for infeasible batches, and never bypass subclassed
engines.  The LRU must serve revisited thetas with zero assemblies and
zero sweeps — the BFGS line-search / gradient-center pattern.

These tests run under both ``REPRO_BATCHED`` settings in CI (the batch
path is forced explicitly, the per-point reference follows the
environment), which is the dual-path contract of the ISSUE.
"""

import numpy as np
import pytest

from repro.inla.evaluator import FobjEvaluator
from repro.inla.smart_gradient import SmartGradient
from repro.inla.solvers import DistributedSolver, SequentialSolver
from repro.structured.pobtaf import FACTORIZATIONS


@pytest.fixture(scope="module")
def uni_model():
    from repro.model.datasets import make_dataset

    model, gt, _ = make_dataset(nv=1, ns=20, nt=5, nr=2, obs_per_step=25, seed=5)
    return model, gt


def _evaluators(model, **kwargs):
    batch = FobjEvaluator(model, batch_stencils=True, cache_size=0, **kwargs)
    point = FobjEvaluator(model, batch_stencils=False, cache_size=0, **kwargs)
    return batch, point


class TestBatchedStencilValues:
    def test_gradient_stencil_identical(self, uni_model):
        """Batched vs per-theta stencil values (the 1e-10 / bit-identity
        acceptance gate; exact on the default path since both run the
        same kernels per slab).  The *gradient* tolerance is the value
        agreement amplified by the central difference's 1/(2h): under
        REPRO_BATCHED=0 the per-point reference runs the per-block
        kernels, so values differ at ~1e-13 and gradients at ~1e-13/2h."""
        h = 1e-4
        model, gt = uni_model
        ev_b, ev_p = _evaluators(model)
        f_b, g_b, _ = ev_b.value_and_gradient(gt.theta, h=h)
        f_p, g_p, _ = ev_p.value_and_gradient(gt.theta, h=h)
        assert abs(f_b - f_p) < 1e-10 * max(1.0, abs(f_p))
        assert np.max(np.abs(g_b - g_p)) < 1e-10 / (2 * h) * max(1.0, np.max(np.abs(g_p)))

    def test_result_decomposition_identical(self, uni_model):
        """Every Eq. 8 term of every stencil point matches, not just the sum."""
        model, gt = uni_model
        ev_b, ev_p = _evaluators(model)
        pts = ev_b.gradient_stencil(gt.theta, 1e-4)
        for rb, rp in zip(ev_b.eval_batch(pts), ev_p.eval_batch(pts)):
            for attr in ("value", "log_likelihood", "logdet_qp", "logdet_qc", "quad_qp"):
                vb, vp = getattr(rb, attr), getattr(rp, attr)
                assert abs(vb - vp) <= 1e-10 * max(1.0, abs(vp)), attr

    def test_smart_gradient_rides_batch_path(self, uni_model):
        model, gt = uni_model
        ev_b, ev_p = _evaluators(model)
        g_b = SmartGradient(ev_b).value_and_gradient(gt.theta)[1]
        g_p = SmartGradient(ev_p).value_and_gradient(gt.theta)[1]
        assert np.allclose(g_b, g_p, atol=1e-10)

    def test_infeasible_point_falls_back(self, uni_model):
        """A stencil containing an infeasible theta resolves per point:
        that point goes -inf, the others keep their batch-path values."""
        model, gt = uni_model
        ev_b, ev_p = _evaluators(model)
        bad = gt.theta.copy()
        bad[0] = 200.0  # exp overflow in assembly or NPD in factorization
        pts = [gt.theta, bad, gt.theta + 0.1]
        res_b = ev_b.eval_batch(pts)
        res_p = ev_p.eval_batch(pts)
        for rb, rp in zip(res_b, res_p):
            if np.isfinite(rp.value):
                assert abs(rb.value - rp.value) < 1e-10 * max(1.0, abs(rp.value))
            else:
                assert rb.value == -np.inf

    def test_npd_batch_falls_back_to_per_point(self, uni_model, monkeypatch):
        """A non-positive-definite stack cannot name the failing theta;
        the evaluator must resolve the batch on the per-point path."""
        import repro.inla.evaluator as ev_mod
        from repro.structured.kernels import NotPositiveDefiniteError

        model, gt = uni_model

        def poisoned(mats, **kwargs):
            raise NotPositiveDefiniteError("forced")

        monkeypatch.setattr(ev_mod, "factorize_batch", poisoned)
        ev_b = FobjEvaluator(model, batch_stencils=True, cache_size=0)
        ev_p = FobjEvaluator(model, batch_stencils=False, cache_size=0)
        f_b, g_b, _ = ev_b.value_and_gradient(gt.theta)
        f_p, g_p, _ = ev_p.value_and_gradient(gt.theta)
        assert f_b == f_p  # both resolved per-point: bit-identical
        assert np.array_equal(g_b, g_p)
        assert ev_b.n_batch_sweeps == 0


class TestSweepAccounting:
    def test_chunked_sweep_matches_and_counts(self, uni_model, monkeypatch):
        """Hessian-sized batches sweep in chunks (bounded theta-stack
        memory): values unchanged, two sweeps per chunk."""
        import repro.inla.evaluator as ev_mod

        monkeypatch.setattr(ev_mod, "_BATCH_SWEEP_CHUNK", 3)
        model, gt = uni_model
        ev_b, ev_p = _evaluators(model)
        pts = ev_b.gradient_stencil(gt.theta, 1e-4)  # 9 points -> 3 chunks
        res_b = ev_b.eval_batch(list(pts))
        res_p = ev_p.eval_batch(list(pts))
        for rb, rp in zip(res_b, res_p):
            assert abs(rb.value - rp.value) < 1e-10 * max(1.0, abs(rp.value))
        assert ev_b.n_batch_sweeps == 6

    def test_two_sweeps_per_stencil(self, uni_model):
        model, gt = uni_model
        ev, _ = _evaluators(model)
        c0 = FACTORIZATIONS.count
        ev.value_and_gradient(gt.theta)
        assert FACTORIZATIONS.count == c0 + 2  # one batched sweep per matrix
        assert ev.n_batch_sweeps == 2

    def test_distributed_solver_keeps_per_point_path(self, uni_model):
        model, gt = uni_model
        ev = FobjEvaluator(model, solver=DistributedSolver(2))
        assert not ev._batch_capable()

    def test_subclass_engines_keep_their_objective(self, uni_model):
        """An overridden _eval_one (baseline engines) disables batching —
        the sweep would silently bypass the subclass's objective."""
        model, _ = uni_model

        class Custom(FobjEvaluator):
            def _eval_one(self, theta):  # pragma: no cover - definition only
                raise AssertionError

        assert not Custom(model)._batch_capable()

    def test_pinned_per_block_solver_keeps_per_point_path(self, uni_model):
        model, _ = uni_model
        ev = FobjEvaluator(model, solver=SequentialSolver(batched=False))
        assert not ev._batch_capable()


class TestThetaKeyedLRU:
    def test_revisit_skips_pobtaf_entirely(self, uni_model):
        model, gt = uni_model
        ev = FobjEvaluator(model)
        r1 = ev(gt.theta)
        c0 = FACTORIZATIONS.count
        r2 = ev(gt.theta)
        assert r2 is r1
        assert FACTORIZATIONS.count == c0  # zero sweeps on the hit
        assert ev.n_cache_hits == 1

    def test_line_search_then_gradient_center_cached(self, uni_model):
        """The BFGS pattern: the accepted line-search point becomes the
        stencil center — only the 2d displaced points are swept."""
        model, gt = uni_model
        ev = FobjEvaluator(model, batch_stencils=True)
        center = ev(gt.theta)  # the line-search evaluation
        c0 = FACTORIZATIONS.count
        f0, _, res = ev.value_and_gradient(gt.theta)
        assert FACTORIZATIONS.count == c0 + 2  # the 2d points, two sweeps
        assert res is center
        assert f0 == center.value

    def test_recent_entries_retain_qc_factor(self, uni_model):
        model, gt = uni_model
        ev = FobjEvaluator(model, cached_factors=2)
        thetas = [gt.theta, gt.theta + 0.05, gt.theta + 0.1]
        for t in thetas:
            ev(t)
        # only the newest `cached_factors` entries keep their handle
        assert ev.cached_factor(thetas[0]) is None
        f1, f2 = ev.cached_factor(thetas[1]), ev.cached_factor(thetas[2])
        assert f1 is not None and f2 is not None
        # the retained handle is the Qc factorization at that theta
        assert f2.logdet() == ev(thetas[2]).logdet_qc

    def test_lru_eviction_bound(self, uni_model):
        model, gt = uni_model
        ev = FobjEvaluator(model, cache_size=2)
        for k in range(4):
            ev(gt.theta + 0.01 * k)
        assert len(ev._cache) == 2
        c0 = FACTORIZATIONS.count
        ev(gt.theta + 0.03)  # still cached (most recent)
        assert FACTORIZATIONS.count == c0
        ev(gt.theta)  # evicted -> re-evaluates
        assert FACTORIZATIONS.count == c0 + 2

    def test_cache_disabled(self, uni_model):
        model, gt = uni_model
        ev = FobjEvaluator(model, cache_size=0)
        ev(gt.theta)
        c0 = FACTORIZATIONS.count
        ev(gt.theta)
        assert FACTORIZATIONS.count == c0 + 2
        assert ev.n_cache_hits == 0

    def test_clear_cache(self, uni_model):
        model, gt = uni_model
        ev = FobjEvaluator(model)
        ev(gt.theta)
        ev.clear_cache()
        c0 = FACTORIZATIONS.count
        ev(gt.theta)
        assert FACTORIZATIONS.count == c0 + 2


class TestModeFactorReuse:
    def test_latent_posterior_from_cached_factor(self, uni_model):
        """A retained line-search handle builds the mode posterior with
        zero further factorization sweeps, and identical results."""
        from repro.inla.sampling import LatentPosterior

        model, gt = uni_model
        ev = FobjEvaluator(model)
        ev(gt.theta)  # line-search style single evaluation retains Qc
        f = ev.cached_factor(gt.theta)
        assert f is not None
        c0 = FACTORIZATIONS.count
        post = LatentPosterior.at(model, gt.theta, factor=f)
        assert FACTORIZATIONS.count == c0  # zero sweeps
        assert post.factor is f
        post_fresh = LatentPosterior.at(model, gt.theta)
        assert np.array_equal(post.mean(), post_fresh.mean())
        assert np.array_equal(post.marginals().sd, post_fresh.marginals().sd)

    def test_fit_passes_cached_mode_factor(self, uni_model, monkeypatch):
        """The real DALIA flow: the final accepted line-search handle is
        captured before the Hessian batch floods the LRU and reaches the
        mode posterior."""
        from repro.inla.bfgs import BFGSOptions
        from repro.inla.dalia import DALIA
        from repro.inla.sampling import LatentPosterior

        captured = {}
        orig = LatentPosterior.at.__func__

        def spy(cls, model, theta, **kwargs):
            captured["factor"] = kwargs.get("factor")
            return orig(cls, model, theta, **kwargs)

        monkeypatch.setattr(LatentPosterior, "at", classmethod(spy))
        model, gt = uni_model
        engine = DALIA(model)
        res = engine.fit(theta0=gt.theta + 0.3, options=BFGSOptions(max_iter=3))
        assert captured["factor"] is not None
        # The retained handle is Qc(theta_mode): same assembly, same
        # factorization -> bit-identical logdet.
        from repro.inla.objective import evaluate_fobj

        assert captured["factor"].logdet() == evaluate_fobj(model, res.theta_mode).logdet_qc

    def test_stencil_batches_do_not_retain_factors(self, uni_model):
        """Only single-point evaluations retain handles — a pooled or
        batched stencil never holds per-point factorizations alive."""
        model, gt = uni_model
        for batch in (True, False):
            ev = FobjEvaluator(model, batch_stencils=batch)
            pts = ev.gradient_stencil(gt.theta, 1e-4)
            ev.eval_batch(list(pts))
            with ev._cache_lock:
                assert all(r.qc_factor is None for r in ev._cache.values())


class TestEndToEnd:
    def test_fit_identical_across_paths(self, uni_model):
        """Three BFGS iterations on the batch path land exactly where the
        per-point path lands (same values -> same optimizer trajectory)."""
        from repro.inla.bfgs import BFGSOptions, bfgs_minimize

        model, gt = uni_model
        opts = BFGSOptions(max_iter=3)
        ev_b = FobjEvaluator(model, batch_stencils=True)
        ev_p = FobjEvaluator(model, batch_stencils=False, cache_size=0)
        res_b = bfgs_minimize(ev_b, gt.theta + 0.3, opts)
        res_p = bfgs_minimize(ev_p, gt.theta + 0.3, opts)
        assert np.allclose(res_b.theta, res_p.theta, atol=1e-9)
        assert np.isclose(res_b.fobj, res_p.fobj, atol=1e-9)
