"""The batched non-Gaussian engine: lockstep Newton, warm starts, hot loop.

Acceptance coverage for the theta-lockstep inner loops
(:func:`repro.inla.nongaussian.evaluate_fobj_nongaussian_batch`), run
across the ``REPRO_BATCHED`` x ``REPRO_BACKEND`` grid:

- the batch path at ``t = 1`` is BIT-IDENTICAL to the serial path, and
  1e-10-close over a full ``2d + 1`` gradient stencil;
- the Gaussian special case still reproduces the closed-form
  :func:`repro.inla.objective.evaluate_fobj`;
- a warm gradient stencil performs ZERO scipy-sparse arithmetic
  (the symbolic curvature plan owns the ``A^T D A`` update);
- Binomial likelihood derivatives check out by finite differences, and
  invalid (negative) curvature is rejected, not silently factorized.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.inla import evaluate_fobj
from repro.inla.evaluator import NonGaussianFobjEvaluator
from repro.inla.nongaussian import (
    BinomialLikelihood,
    GaussianObs,
    PoissonLikelihood,
    evaluate_fobj_nongaussian,
    evaluate_fobj_nongaussian_batch,
    gaussian_approximation,
    gaussian_approximation_batch,
)
from repro.structured.kernels import NotPositiveDefiniteError

DECOMP = ("value", "log_prior_theta", "log_likelihood", "logdet_qp", "logdet_qc", "quad_qp")

#: (backend, batched) cells of the execution grid (satellite: run the
#: non-Gaussian suite under every combination).
GRID = [
    ("numpy", "1"),
    ("numpy", "0"),
    ("mock_device", "1"),
    ("mock_device", "0"),
]


@pytest.fixture(params=GRID, ids=lambda p: f"{p[0]}-batched{p[1]}")
def env_cell(request, monkeypatch):
    backend, batched = request.param
    monkeypatch.setenv("REPRO_BACKEND", backend)
    monkeypatch.setenv("REPRO_BATCHED", batched)
    return backend, batched


@pytest.fixture(scope="module")
def poisson_case():
    from repro.model.datasets import make_dataset

    model, gt, latent = make_dataset(nv=1, ns=16, nt=4, nr=1, obs_per_step=20, seed=17)
    rng = np.random.default_rng(7)
    eta_true = np.clip(np.asarray(model.A @ latent).ravel() * 0.3, -3.0, 3.0)
    y = rng.poisson(np.exp(eta_true)).astype(float)
    return model, gt, PoissonLikelihood(y)


def _stencil(theta, h=1e-4):
    pts = [theta]
    for i in range(theta.size):
        for s in (+h, -h):
            p = theta.copy()
            p[i] += s
            pts.append(p)
    return np.stack(pts)


class TestLockstepMatchesSerial:
    def test_t1_bit_identical(self, poisson_case, env_cell):
        """On the host backend the lockstep lane at t = 1 runs the very
        same kernels as the serial wrapper — bit-identity.  Under the
        mock device the batch path factorizes on-device while the serial
        path stays on host LAPACK; those round differently by design
        (see tests/structured/test_backend_matrix.py), so the contract
        there is 1e-10 agreement."""
        backend, _ = env_cell
        model, gt, lik = poisson_case
        (rb,) = evaluate_fobj_nongaussian_batch(model, gt.theta[None, :], lik)
        rs = evaluate_fobj_nongaussian(model, gt.theta, lik)
        if backend == "numpy":
            assert rb.value == rs.value
            assert np.array_equal(rb.mu_perm, rs.mu_perm)
            for attr in DECOMP:
                assert getattr(rb, attr) == getattr(rs, attr), attr
        else:
            for attr in DECOMP:
                vb, vs = getattr(rb, attr), getattr(rs, attr)
                assert abs(vb - vs) <= 1e-10 * max(1.0, abs(vs)), attr
            np.testing.assert_allclose(rb.mu_perm, rs.mu_perm, atol=1e-10)

    def test_stencil_close_to_serial(self, poisson_case, env_cell):
        model, gt, lik = poisson_case
        pts = _stencil(gt.theta)
        batch = evaluate_fobj_nongaussian_batch(model, pts, lik)
        for rb, th in zip(batch, pts):
            rs = evaluate_fobj_nongaussian(model, th, lik)
            for attr in DECOMP:
                vb, vs = getattr(rb, attr), getattr(rs, attr)
                assert abs(vb - vs) <= 1e-10 * max(1.0, abs(vs)), attr

    def test_approximation_batch_matches_serial(self, poisson_case, env_cell):
        model, gt, lik = poisson_case
        thetas = np.stack([gt.theta, gt.theta + 0.05])
        batch = gaussian_approximation_batch(model, thetas, lik)
        for ap, th in zip(batch, thetas):
            ref = gaussian_approximation(model, th, lik)
            assert ap.converged == ref.converged
            assert ap.n_newton == ref.n_newton
            np.testing.assert_allclose(ap.x_mode, ref.x_mode, atol=1e-10)
            assert abs(ap.logdet_qc - ref.logdet_qc) <= 1e-10 * abs(ref.logdet_qc)

    def test_infeasible_lane_reports_minus_inf(self, poisson_case):
        model, gt, lik = poisson_case
        bad = gt.theta.copy()
        bad[model.layout.range_slice(0)] = 1000.0  # out-of-range hyperparameters
        out = evaluate_fobj_nongaussian_batch(model, np.stack([gt.theta, bad]), lik)
        assert np.isfinite(out[0].value)
        assert out[1].value == -np.inf


class TestGaussianSpecialCase:
    def test_batch_reproduces_evaluate_fobj(self, poisson_case, env_cell):
        """With a Gaussian likelihood the lockstep loop is exact in one
        step; the stacked fobj must match the closed-form Gaussian path."""
        model, gt, _ = poisson_case
        tau = model.layout.taus(gt.theta)[0]
        lik = GaussianObs(model.likelihood.y, tau=tau)
        # Perturb only the process hyperparameters: GaussianObs freezes
        # tau, so the observation-precision component must stay at the
        # value the closed-form path derives it from.
        p1 = gt.theta.copy()
        p1[model.layout.range_slice(0)] += 0.02
        pts = np.stack([gt.theta, p1])
        batch = evaluate_fobj_nongaussian_batch(model, pts, lik)
        for rb, th in zip(batch, pts):
            exact = evaluate_fobj(model, th)
            assert np.isclose(rb.value, exact.value, atol=1e-6)


class TestWarmStarts:
    def test_warm_start_cuts_newton_iterations(self, poisson_case):
        model, gt, lik = poisson_case
        cold = gaussian_approximation(model, gt.theta, lik)
        x0 = model.permutation.permute_vector(cold.x_mode)
        warm = gaussian_approximation(model, gt.theta, lik, x0_perm=x0)
        assert warm.converged
        assert warm.n_newton < cold.n_newton

    def test_batch_updates_warm_start_mapping(self, poisson_case):
        model, gt, lik = poisson_case
        warm = {}
        evaluate_fobj_nongaussian_batch(model, gt.theta[None, :], lik, warm_starts=warm)
        assert len(warm) == 1
        (x0,) = warm.values()
        assert x0.shape == (model.N,) and np.isfinite(x0).all()


class TestNoSparseOpsInHotLoop:
    def test_newton_loops_run_no_kron_or_csr_add(self, poisson_case, monkeypatch):
        """After the curvature plan is built, serial and lockstep Newton
        loops must never touch scipy-sparse arithmetic — the symbolic
        ``A^T D A`` plan covers every per-iteration update."""
        model, gt, lik = poisson_case
        model.plan.curvature()  # warm the symbolic plan

        def boom(*a, **k):
            raise AssertionError("scipy sparse arithmetic in the Newton hot loop")

        monkeypatch.setattr(sp, "kron", boom)
        monkeypatch.setattr(sp, "diags", boom)
        monkeypatch.setattr(sp.csr_matrix, "__add__", boom)
        monkeypatch.setattr(sp.csr_matrix, "__sub__", boom)
        monkeypatch.setattr(sp.csr_matrix, "multiply", boom)
        ap = gaussian_approximation(model, gt.theta, lik)
        assert ap.converged
        out = evaluate_fobj_nongaussian_batch(model, _stencil(gt.theta), lik)
        assert all(np.isfinite(r.value) for r in out)


class TestBinomial:
    def test_logpdf_matches_scipy(self, rng):
        from scipy.stats import binom

        n = rng.integers(1, 20, size=15).astype(float)
        y = np.minimum(rng.poisson(3.0, size=15).astype(float), n)
        eta = rng.normal(0.0, 0.8, size=15)
        lik = BinomialLikelihood(y, trials=n)
        p = 1.0 / (1.0 + np.exp(-eta))
        ref = binom.logpmf(y, n, p).sum()
        assert np.isclose(lik.logpdf(eta), ref)

    def test_gradient_and_curvature_by_fd(self, rng):
        n = rng.integers(1, 12, size=10).astype(float)
        y = np.minimum(rng.poisson(2.0, size=10).astype(float), n)
        lik = BinomialLikelihood(y, trials=n)
        eta = rng.normal(0.0, 0.5, size=10)
        h, h2 = 1e-6, 1e-4
        for i in range(4):
            e = np.zeros(10)
            e[i] = h
            num = (lik.logpdf(eta + e) - lik.logpdf(eta - e)) / (2 * h)
            assert np.isclose(lik.gradient(eta)[i], num, atol=1e-4)
            e2 = np.zeros(10)
            e2[i] = h2
            num2 = (lik.logpdf(eta + e2) - 2 * lik.logpdf(eta) + lik.logpdf(eta - e2)) / h2**2
            assert np.isclose(-lik.neg_hessian_diag(eta)[i], num2, rtol=1e-3, atol=1e-3)

    def test_rejects_invalid_counts(self):
        with pytest.raises(ValueError):
            BinomialLikelihood(np.array([-1.0, 0.0]))
        with pytest.raises(ValueError):
            BinomialLikelihood(np.array([3.0, 1.0]), trials=np.array([2.0, 1.0]))

    def test_binomial_inference_runs(self, poisson_case):
        model, gt, _ = poisson_case
        rng = np.random.default_rng(3)
        m = model.likelihood.y.size
        lik = BinomialLikelihood(rng.integers(0, 2, size=m).astype(float))
        ap = gaussian_approximation(model, gt.theta, lik)
        assert ap.converged and np.isfinite(ap.logdet_qc)


class _NegativeCurvature:
    """A rigged likelihood whose curvature is invalid (negative)."""

    def __init__(self, m):
        self._m = m

    @property
    def m(self):
        return self._m

    def logpdf_stack(self, etas):
        return -0.5 * (etas**2).sum(axis=1)

    def gradient_stack(self, etas):
        return -etas

    def neg_hessian_diag_stack(self, etas):
        return np.full_like(etas, -1.0)


class TestCurvatureRejection:
    def test_npd_curvature_raises_in_newton(self, poisson_case):
        model, gt, _ = poisson_case
        lik = _NegativeCurvature(model.likelihood.y.size)
        with pytest.raises(NotPositiveDefiniteError):
            gaussian_approximation(model, gt.theta, lik)

    def test_npd_curvature_maps_to_minus_inf(self, poisson_case):
        model, gt, _ = poisson_case
        lik = _NegativeCurvature(model.likelihood.y.size)
        assert evaluate_fobj_nongaussian(model, gt.theta, lik).value == -np.inf
        (r,) = evaluate_fobj_nongaussian_batch(model, gt.theta[None, :], lik)
        assert r.value == -np.inf


class _RaisingLikelihood(_NegativeCurvature):
    def neg_hessian_diag_stack(self, etas):
        raise ValueError("bad likelihood internals")


class TestExceptionContract:
    def test_likelihood_value_error_propagates(self, poisson_case):
        """ValueError outside the theta -> coefficients phase is a
        programming error and must NOT be swallowed into -inf."""
        model, gt, _ = poisson_case
        lik = _RaisingLikelihood(model.likelihood.y.size)
        with pytest.raises(ValueError, match="bad likelihood internals"):
            evaluate_fobj_nongaussian(model, gt.theta, lik)

    def test_infeasible_theta_is_minus_inf(self, poisson_case):
        model, gt, lik = poisson_case
        bad = gt.theta.copy()
        bad[model.layout.range_slice(0)] = 1000.0
        assert evaluate_fobj_nongaussian(model, bad, lik).value == -np.inf


class TestNonGaussianEvaluator:
    def test_batch_matches_per_point(self, poisson_case):
        model, gt, lik = poisson_case
        ev_b = NonGaussianFobjEvaluator(model, lik, batch_stencils=True, cache_size=0)
        ev_p = NonGaussianFobjEvaluator(model, lik, batch_stencils=False, cache_size=0)
        pts = list(_stencil(gt.theta))
        res_b = ev_b.eval_batch(pts)
        res_p = ev_p.eval_batch(pts)
        assert ev_b.n_batch_sweeps >= 1 and ev_p.n_batch_sweeps == 0
        for rb, rp in zip(res_b, res_p):
            assert abs(rb.value - rp.value) <= 1e-9 * max(1.0, abs(rp.value))
            assert rb.qc_factor is None  # stencil batches never retain handles

    def test_value_and_gradient_finite(self, poisson_case):
        model, gt, lik = poisson_case
        ev = NonGaussianFobjEvaluator(model, lik, batch_stencils=True, cache_size=4)
        f0, grad, _ = ev.value_and_gradient(gt.theta)
        assert np.isfinite(f0) and np.all(np.isfinite(grad))
        assert ev.n_batch_sweeps >= 1

    def test_rejects_explicit_solver(self, poisson_case):
        from repro.inla.solvers import SequentialSolver

        model, _, lik = poisson_case
        with pytest.raises(ValueError):
            NonGaussianFobjEvaluator(model, lik, solver=SequentialSolver())
