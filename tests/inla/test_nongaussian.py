"""Non-Gaussian (Laplace inner loop) extension."""

import numpy as np
import pytest

from repro.inla import evaluate_fobj
from repro.inla.nongaussian import (
    GaussianObs,
    PoissonLikelihood,
    evaluate_fobj_nongaussian,
    gaussian_approximation,
)


@pytest.fixture(scope="module")
def uni():
    from repro.model.datasets import make_dataset

    model, gt, latent = make_dataset(nv=1, ns=16, nt=4, nr=1, obs_per_step=20, seed=17)
    return model, gt, latent


class TestLikelihoodInterfaces:
    def test_poisson_logpdf_matches_scipy(self, rng):
        from scipy.stats import poisson

        y = rng.poisson(3.0, size=20).astype(float)
        eta = rng.normal(1.0, 0.3, size=20)
        E = rng.uniform(0.5, 2.0, size=20)
        lik = PoissonLikelihood(y, exposure=E)
        ref = poisson.logpmf(y, E * np.exp(eta)).sum()
        assert np.isclose(lik.logpdf(eta), ref)

    def test_poisson_gradient_and_curvature(self, rng):
        y = rng.poisson(2.0, size=10).astype(float)
        lik = PoissonLikelihood(y)
        eta = rng.normal(0, 0.5, size=10)
        h = 1e-6
        for i in range(3):
            e = np.zeros(10)
            e[i] = h
            num = (lik.logpdf(eta + e) - lik.logpdf(eta - e)) / (2 * h)
            assert np.isclose(lik.gradient(eta)[i], num, atol=1e-4)
            h2 = 1e-4  # second differences need a larger step for roundoff
            e2 = np.zeros(10)
            e2[i] = h2
            num2 = (lik.logpdf(eta + e2) - 2 * lik.logpdf(eta) + lik.logpdf(eta - e2)) / h2**2
            assert np.isclose(-lik.neg_hessian_diag(eta)[i], num2, rtol=1e-3, atol=1e-3)

    def test_poisson_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            PoissonLikelihood(np.array([-1.0, 2.0]))

    def test_gaussian_obs_interface(self, rng):
        y = rng.normal(size=8)
        lik = GaussianObs(y, tau=4.0)
        eta = rng.normal(size=8)
        assert np.allclose(lik.gradient(eta), 4.0 * (y - eta))
        assert np.allclose(lik.neg_hessian_diag(eta), 4.0)


class TestGaussianSpecialCase:
    def test_newton_reproduces_gaussian_fobj(self, uni):
        """With a Gaussian likelihood the inner loop is exact in one step
        and fobj must equal the closed-form Gaussian path."""
        model, gt, _ = uni
        tau = model.layout.taus(gt.theta)[0]
        lik = GaussianObs(model.likelihood.y, tau=tau)
        r_newton = evaluate_fobj_nongaussian(model, gt.theta, lik)
        r_exact = evaluate_fobj(model, gt.theta)
        assert np.isclose(r_newton.value, r_exact.value, atol=1e-6)

    def test_mode_equals_conditional_mean(self, uni):
        model, gt, _ = uni
        tau = model.layout.taus(gt.theta)[0]
        lik = GaussianObs(model.likelihood.y, tau=tau)
        approx = gaussian_approximation(model, gt.theta, lik)
        assert approx.converged
        _, qc, rhs, _ = model.assemble_sparse(gt.theta)
        mu = np.linalg.solve(qc.toarray(), rhs)
        assert np.allclose(approx.x_mode, mu, atol=1e-7)


class TestPoissonInference:
    @pytest.fixture(scope="class")
    def poisson_problem(self):
        """Poisson counts driven by a latent ST field sampled from the prior."""
        from repro.model.datasets import make_dataset

        model, gt, latent = make_dataset(nv=1, ns=16, nt=4, nr=1, obs_per_step=30, seed=23)
        rng = np.random.default_rng(5)
        eta_true = np.asarray(model.A @ latent).ravel()
        eta_true = np.clip(eta_true * 0.3, -3, 3)  # keep counts reasonable
        y = rng.poisson(np.exp(eta_true)).astype(float)
        return model, gt, 0.3 * latent, PoissonLikelihood(y)

    def test_inner_loop_converges(self, poisson_problem):
        model, gt, _, lik = poisson_problem
        approx = gaussian_approximation(model, gt.theta, lik)
        assert approx.converged
        assert approx.n_newton < 40

    def test_mode_is_stationary(self, poisson_problem):
        """At the mode: Qp x = A^T grad loglik (first-order condition)."""
        model, gt, _, lik = poisson_problem
        approx = gaussian_approximation(model, gt.theta, lik)
        qp_var, _, _, _ = model.assemble_sparse(gt.theta)
        eta = np.asarray(model.A @ approx.x_mode).ravel()
        resid = qp_var @ approx.x_mode - np.asarray(model.A.T @ lik.gradient(eta)).ravel()
        assert np.abs(resid).max() < 1e-5 * (1 + np.abs(approx.x_mode).max())

    def test_mode_predicts_true_intensity(self, poisson_problem):
        """The fitted log-intensity at the observation points must track
        the generating one (counts are weakly informative, so compare at
        observed locations, not over the whole latent field)."""
        model, gt, latent_scaled, lik = poisson_problem
        approx = gaussian_approximation(model, gt.theta, lik)
        eta_fit = np.asarray(model.A @ approx.x_mode).ravel()
        eta_true = np.log(np.maximum(lik.y, 0.5))  # crude but monotone proxy
        c = np.corrcoef(eta_fit, eta_true)[0, 1]
        assert c > 0.5

    def test_fobj_finite_and_peaked(self, poisson_problem):
        model, gt, _, lik = poisson_problem
        f0 = evaluate_fobj_nongaussian(model, gt.theta, lik).value
        f_far = evaluate_fobj_nongaussian(model, gt.theta + 2.0, lik).value
        assert np.isfinite(f0)
        assert f0 > f_far or np.isfinite(f_far)
