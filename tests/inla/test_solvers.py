"""Solver dispatch layer (sequential vs distributed S3)."""

import numpy as np
import pytest

from repro.backend.device import Device, DeviceKind
from repro.backend.memory import MemoryBudgetError
from repro.inla.solvers import (
    DistributedSolver,
    OneShotDeprecationWarning,
    SequentialSolver,
    select_solver,
)
from repro.structured.bta import BTAMatrix, BTAShape


@pytest.fixture
def spd(rng):
    A = BTAMatrix.random_spd(BTAShape(n=10, b=3, a=2), rng)
    return A, A.to_dense()


class TestSequentialSolver:
    def test_logdet(self, spd):
        A, Ad = spd
        f = SequentialSolver().factorize(A.copy(), overwrite=True)
        assert np.isclose(f.logdet(), np.linalg.slogdet(Ad)[1])

    def test_logdet_and_solve(self, spd, rng):
        A, Ad = spd
        rhs = rng.standard_normal(A.N)
        f = SequentialSolver().factorize(A.copy(), overwrite=True)
        x = f.solve(rhs)
        assert np.allclose(Ad @ x, rhs)

    def test_selected_inverse_diagonal(self, spd):
        A, Ad = spd
        f = SequentialSolver().factorize(A.copy(), overwrite=True)
        d = f.selected_inverse_diagonal()
        assert np.allclose(d, np.diag(np.linalg.inv(Ad)))


class TestDistributedSolver:
    @pytest.mark.parametrize("P", [2, 3])
    def test_matches_sequential(self, spd, rng, P):
        A, Ad = spd
        rhs = rng.standard_normal(A.N)
        sv = DistributedSolver(P)
        assert np.isclose(
            sv.factorize(A.copy()).logdet(), np.linalg.slogdet(Ad)[1]
        )
        x = sv.factorize(A.copy()).solve(rhs)
        assert np.allclose(Ad @ x, rhs, atol=1e-8)
        d = sv.factorize(A.copy()).selected_inverse_diagonal()
        assert np.allclose(d, np.diag(np.linalg.inv(Ad)), atol=1e-8)

    def test_oversized_p_clamped(self, rng):
        A = BTAMatrix.random_spd(BTAShape(n=4, b=2, a=1), rng)
        Ad = A.to_dense()
        sv = DistributedSolver(16)  # more ranks than feasible partitions
        assert np.isclose(sv.factorize(A.copy()).logdet(), np.linalg.slogdet(Ad)[1])

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            DistributedSolver(0)


class TestOneShotDeprecation:
    """The legacy one-shot wrappers still answer (bit-identically) but
    each call must announce itself — tier-1 config escalates the warning
    to an error for every caller outside these wrapper-own tests."""

    @pytest.mark.filterwarnings("always::repro.inla.solvers.OneShotDeprecationWarning")
    def test_wrappers_warn_and_match_handle(self, spd, rng):
        A, Ad = spd
        rhs = rng.standard_normal(A.N)
        sv = SequentialSolver()
        with pytest.warns(OneShotDeprecationWarning, match="logdet is deprecated"):
            ld = sv.logdet(A.copy())
        assert ld == sv.factorize(A.copy(), overwrite=True).logdet()
        with pytest.warns(OneShotDeprecationWarning, match="logdet_and_solve"):
            ld2, x = sv.logdet_and_solve(A.copy(), rhs)
        f = sv.factorize(A.copy(), overwrite=True)
        assert ld2 == f.logdet() and np.array_equal(x, f.solve(rhs))
        with pytest.warns(OneShotDeprecationWarning, match="selected_inverse_diagonal"):
            d = sv.selected_inverse_diagonal(A.copy())
        assert np.array_equal(
            d, sv.factorize(A.copy(), overwrite=True).selected_inverse_diagonal()
        )

    @pytest.mark.filterwarnings("always::repro.inla.solvers.OneShotDeprecationWarning")
    def test_stack_wrappers_warn(self, spd, rng):
        A, _ = spd
        stack = rng.standard_normal((3, A.N))
        sv = SequentialSolver()
        with pytest.warns(OneShotDeprecationWarning, match="solve_stack"):
            sv.solve_stack(A.copy(), stack)
        with pytest.warns(OneShotDeprecationWarning, match="solve_lt_stack"):
            sv.solve_lt_stack(A.copy(), stack)
        with pytest.warns(
            OneShotDeprecationWarning, match="solve_and_selected_inverse_diagonal"
        ):
            sv.solve_and_selected_inverse_diagonal(A.copy(), stack[0])

    def test_escalated_to_error_under_tier1(self, spd):
        """The repo-wide filter turns the warning into an error: this is
        what guards repro-internal callers against regressing onto the
        one-shot surface."""
        A, _ = spd
        with pytest.raises(OneShotDeprecationWarning):
            SequentialSolver().logdet(A.copy())


class TestSelectSolver:
    def test_small_model_sequential(self):
        s = select_solver(BTAShape(n=10, b=4, a=2))
        assert isinstance(s, SequentialSolver)

    def test_large_model_distributed(self):
        tiny_device = Device(
            kind=DeviceKind.GPU, name="tiny", memory_bytes=10 * 2**20,
            gemm_tflops=1.0, bandwidth_gbs=100.0,
        )
        s = select_solver(BTAShape(n=64, b=200, a=4), device=tiny_device)
        assert isinstance(s, DistributedSolver)
        assert s.P > 1

    def test_infeasible_block_raises(self):
        nano = Device(
            kind=DeviceKind.GPU, name="nano", memory_bytes=1000,
            gemm_tflops=1.0, bandwidth_gbs=1.0,
        )
        with pytest.raises(MemoryBudgetError):
            select_solver(BTAShape(n=4, b=100, a=0), device=nano)


class TestSelectSolverFactors:
    def test_factors_flip_dispatch(self):
        """The same shape can stay sequential for a factorize-only workload
        (factors=1) yet require S3 partitioning for selected inversion
        (factors=2) — the workload argument must reach the byte formula."""
        shape = BTAShape(n=64, b=200, a=4)
        # Storage: doubles(n=64) = 64*(2*200^2 + 4*200) - 200^2 + 16 doubles.
        doubles = 64 * (2 * 200**2 + 4 * 200) - 200**2 + 16
        mem = int(1.5 * doubles * 8 / 0.85)  # fits once, not twice
        dev = Device(kind=DeviceKind.GPU, name="mid", memory_bytes=mem,
                     gemm_tflops=1.0, bandwidth_gbs=100.0)
        assert isinstance(select_solver(shape, device=dev, factors=1), SequentialSolver)
        s = select_solver(shape, device=dev, factors=2)
        assert isinstance(s, DistributedSolver)

    def test_batched_flag_threaded(self):
        s = select_solver(BTAShape(n=10, b=4, a=2), batched=False)
        assert isinstance(s, SequentialSolver)
        assert s.batched is False
