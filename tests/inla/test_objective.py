"""INLA objective: exactness for Gaussian likelihoods.

For a Gaussian likelihood the whole model is conjugate: ``fobj(theta)``
must equal the *exact* log marginal ``log p(theta) + log p(y | theta)``
(up to a theta-independent constant), and the conditional mean/variances
must match the exact Gaussian posterior.  These tests pin the entire
pipeline — SPDE assembly, LMC, permutation, BTA solvers — against dense
linear algebra.
"""

import numpy as np

from repro.inla import DistributedSolver, SequentialSolver, evaluate_fobj
from repro.inla.marginals import latent_marginals


def _exact_log_marginal(model, theta):
    """Dense reference: y ~ N(0, A Qp^{-1} A^T + D^{-1})."""
    qp, qc, rhs, taus = model.assemble_sparse(theta)
    A = model.A.toarray()
    Sig_prior = np.linalg.inv(qp.toarray())
    d = model.likelihood.noise_precisions(taus)
    cov_y = A @ Sig_prior @ A.T + np.diag(1.0 / d)
    y = model.likelihood.y
    sign, logdet = np.linalg.slogdet(cov_y)
    assert sign > 0
    m = y.size
    loglik_y = -0.5 * (m * np.log(2 * np.pi) + logdet + y @ np.linalg.solve(cov_y, y))
    return model.priors.logpdf(theta) + loglik_y


class TestObjectiveExactness:
    def test_fobj_equals_exact_marginal_up_to_constant(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        thetas = [gt.theta, gt.theta + 0.3, gt.theta - 0.2]
        diffs = []
        for th in thetas:
            f = evaluate_fobj(model, th).value
            ref = _exact_log_marginal(model, th)
            diffs.append(f - ref)
        # Same additive constant everywhere (here: the constant is 0 up to
        # the m/2 log 2 pi convention, which we keep in both sides).
        assert np.allclose(diffs, diffs[0], atol=1e-6)

    def test_fobj_constant_is_zero(self, tiny_uni_model):
        """With our conventions fobj IS the exact log joint marginal."""
        model, gt, _ = tiny_uni_model
        f = evaluate_fobj(model, gt.theta).value
        assert np.isclose(f, _exact_log_marginal(model, gt.theta), atol=1e-6)

    def test_trivariate_exactness(self, tiny_model):
        model, gt, _ = tiny_model
        f = evaluate_fobj(model, gt.theta).value
        assert np.isclose(f, _exact_log_marginal(model, gt.theta), atol=1e-6)

    def test_conditional_mean_exact(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        res = evaluate_fobj(model, gt.theta, keep_mu=True)
        qp, qc, rhs, taus = model.assemble_sparse(gt.theta)
        mu_ref = np.linalg.solve(qc.toarray(), rhs)
        mu = model.permutation.unpermute_vector(res.mu_perm)
        assert np.allclose(mu, mu_ref, atol=1e-8)

    def test_posterior_variances_exact(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        lm = latent_marginals(model, gt.theta, SequentialSolver())
        _, qc, _, _ = model.assemble_sparse(gt.theta)
        var_ref = np.diag(np.linalg.inv(qc.toarray()))
        assert np.allclose(lm.sd**2, var_ref, rtol=1e-8)

    def test_distributed_solver_identical(self, tiny_model):
        model, gt, _ = tiny_model
        f_seq = evaluate_fobj(model, gt.theta, solver=SequentialSolver()).value
        f_dist = evaluate_fobj(model, gt.theta, solver=DistributedSolver(2)).value
        assert np.isclose(f_seq, f_dist, atol=1e-9)

    def test_s2_parallel_identical(self, tiny_model):
        model, gt, _ = tiny_model
        f1 = evaluate_fobj(model, gt.theta, s2_parallel=False).value
        f2 = evaluate_fobj(model, gt.theta, s2_parallel=True).value
        assert np.isclose(f1, f2, atol=1e-12)

    def test_invalid_theta_gives_minus_inf(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        theta = gt.theta.copy()
        theta[1] = 50.0  # absurd spatial range -> numerically singular
        res = evaluate_fobj(model, theta)
        assert res.value == -np.inf or np.isfinite(res.value)

    def test_result_decomposition_sums(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        r = evaluate_fobj(model, gt.theta)
        total = (
            r.log_prior_theta
            + r.log_likelihood
            + 0.5 * r.logdet_qp
            - 0.5 * r.quad_qp
            - 0.5 * r.logdet_qc
        )
        assert np.isclose(total, r.value)

    def test_truth_beats_far_theta(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        f_truth = evaluate_fobj(model, gt.theta).value
        f_far = evaluate_fobj(model, gt.theta + 1.5).value
        assert f_truth > f_far


class TestFactorizationCount:
    """The handle rewiring's amortization contract, asserted exactly."""

    def test_one_pobtaf_per_matrix_per_theta(self, tiny_uni_model):
        """One objective evaluation = exactly 2 pobtafs (Qp and Qc):
        the Qc handle shares one factorization between logdet and the
        conditional-mean solve."""
        from repro.structured.pobtaf import FACTORIZATIONS

        model, gt, _ = tiny_uni_model
        c0 = FACTORIZATIONS.count
        evaluate_fobj(model, gt.theta, solver=SequentialSolver())
        assert FACTORIZATIONS.count == c0 + 2

    def test_evaluator_batch_count_per_point(self, tiny_uni_model):
        """On the per-point path a full gradient stencil (2d + 1 points)
        factorizes exactly 2 (2d + 1) times — one pobtaf per
        (theta, matrix) pair."""
        from repro.inla.evaluator import FobjEvaluator
        from repro.structured.pobtaf import FACTORIZATIONS

        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(
            model, solver=SequentialSolver(), batch_stencils=False, cache_size=0
        )
        d = gt.theta.size
        c0 = FACTORIZATIONS.count
        ev.value_and_gradient(gt.theta, h=1e-4)
        assert FACTORIZATIONS.count == c0 + 2 * (2 * d + 1)

    def test_evaluator_batch_count_theta_batched(self, tiny_uni_model):
        """The theta-batched sweep collapses the whole stencil into
        exactly 2 factorization sweeps (one per precision matrix)."""
        from repro.inla.evaluator import FobjEvaluator
        from repro.structured.pobtaf import FACTORIZATIONS

        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(
            model, solver=SequentialSolver(), batch_stencils=True, cache_size=0
        )
        c0 = FACTORIZATIONS.count
        ev.value_and_gradient(gt.theta, h=1e-4)
        assert FACTORIZATIONS.count == c0 + 2
        assert ev.n_batch_sweeps == 2

    def test_marginals_single_factorization(self, tiny_uni_model):
        """Means + variances at the mode: one pobtaf, not two."""
        from repro.structured.pobtaf import FACTORIZATIONS

        model, gt, _ = tiny_uni_model
        c0 = FACTORIZATIONS.count
        latent_marginals(model, gt.theta, SequentialSolver())
        assert FACTORIZATIONS.count == c0 + 1
