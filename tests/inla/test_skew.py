"""Skewness-corrected hyperparameter marginals."""

import numpy as np

from repro.inla import FobjEvaluator
from repro.inla.hessian import fd_hessian
from repro.inla.skew import _scale_from_drop, skew_corrected_marginals


class _QuadraticEvaluator:
    """Synthetic objective with known (a)symmetry for unit testing."""

    def __init__(self, fn):
        self.fn = fn
        self.n_evaluations = 0

    def eval_batch(self, thetas):
        from repro.inla.objective import FobjResult

        self.n_evaluations += len(thetas)
        return [FobjResult(theta=t, value=self.fn(t)) for t in thetas]


class TestScaleFromDrop:
    def test_exact_gaussian_drop(self):
        # drop = t^2 / (2 s^2) with s = 2, t = 3 -> drop = 1.125
        s = _scale_from_drop(0.0, -1.125, 3.0, fallback=1.0)
        assert np.isclose(s, 2.0)

    def test_fallback_on_infeasible(self):
        assert _scale_from_drop(0.0, -np.inf, 1.0, fallback=0.7) == 0.7
        assert _scale_from_drop(0.0, 0.0, 1.0, fallback=0.7) == 0.7


class TestSkewOnSyntheticObjectives:
    def test_symmetric_quadratic_recovers_gaussian_scales(self):
        H = -np.diag([4.0, 1.0])
        fn = lambda t: 0.5 * t @ H @ t  # noqa: E731
        ev = _QuadraticEvaluator(fn)
        sk = skew_corrected_marginals(ev, np.zeros(2), H, f_mode=0.0)
        scales = sorted([m.scale_left for m in sk.marginals])
        assert np.allclose(scales, [0.5, 1.0], rtol=1e-6)
        for m in sk.marginals:
            assert np.isclose(m.asymmetry, 1.0, rtol=1e-9)

    def test_skewed_objective_detected(self):
        # Steeper to the left than to the right along axis 0.
        def fn(t):
            x = t[0]
            return -0.5 * (4.0 * x**2 if x < 0 else x**2) - 0.5 * t[1] ** 2

        H = np.diag([-2.5, -1.0])  # some symmetric curvature estimate
        ev = _QuadraticEvaluator(fn)
        sk = skew_corrected_marginals(ev, np.zeros(2), H, f_mode=0.0)
        m0 = max(sk.marginals, key=lambda m: abs(m.direction[0]))
        assert m0.scale_right > m0.scale_left  # flatter to the right

    def test_interval_ordering_and_asymmetry(self):
        def fn(t):
            x = t[0]
            return -0.5 * (9.0 * x**2 if x < 0 else x**2) - 0.5 * t[1] ** 2

        H = np.diag([-3.0, -1.0])
        ev = _QuadraticEvaluator(fn)
        sk = skew_corrected_marginals(ev, np.zeros(2), H, f_mode=0.0)
        iv = sk.interval(0.95)
        assert np.all(iv[:, 0] < iv[:, 1])
        # Right tail of component 0 wider than left.
        assert (iv[0, 1] - 0.0) > (0.0 - iv[0, 0])


class TestSkewOnRealPosterior:
    def test_runs_on_fitted_model(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model, s1_workers=4)
        H = fd_hessian(ev, gt.theta, h=1e-3)
        sk = skew_corrected_marginals(ev, gt.theta, H)
        assert len(sk.marginals) == model.layout.dim
        iv = sk.interval(0.95)
        assert np.all(iv[:, 0] < gt.theta)
        assert np.all(iv[:, 1] > gt.theta - 10)  # sane magnitudes
        for m in sk.marginals:
            assert 0.05 < m.asymmetry < 20.0


class TestCLI:
    def test_datasets_command(self, capsys):
        from repro.cli import main

        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "MB1" in out and "AP1" in out

    def test_predict_command(self, capsys):
        from repro.cli import main

        assert main(["predict", "--gpus", "8", "--ns", "500", "--nt", "32"]) == 0
        assert "s/iteration" in capsys.readouterr().out

    def test_solver_command(self, capsys):
        from repro.cli import main

        assert main(["solver", "--n", "8", "--b", "8", "--a", "2", "--ranks", "2"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out and "distributed" in out

    def test_fit_command(self, capsys):
        from repro.cli import main

        assert main([
            "fit", "--ns", "16", "--nt", "4", "--nr", "1", "--obs", "12",
            "--s1", "2", "--max-iter", "10",
        ]) == 0
        assert "theta mode" in capsys.readouterr().out
