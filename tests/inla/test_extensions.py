"""Extension features: posterior sampling, predictive uncertainty,
exceedance probabilities, and the Smart Gradient technique."""

import numpy as np
import pytest

from repro.inla import FobjEvaluator
from repro.inla.sampling import LatentPosterior
from repro.inla.smart_gradient import SmartGradient, orthonormal_frame


@pytest.fixture(scope="module")
def posterior():
    from repro.model.datasets import make_dataset

    model, gt, latent = make_dataset(nv=1, ns=18, nt=5, nr=1, obs_per_step=20, seed=13)
    return model, gt, LatentPosterior.at(model, gt.theta)


class TestLatentPosterior:
    def test_holds_one_factor_for_everything(self, posterior, rng):
        """Sampling, predictive sd, and exceedance all reuse the one
        factorization handle built by LatentPosterior.at (zero further
        pobtaf calls)."""
        from repro.structured.pobtaf import FACTORIZATIONS

        model, gt, post = posterior
        c0 = FACTORIZATIONS.count
        post.sample(8, rng)
        post.predict(np.array([[8.0, 45.0]]), np.array([1]), v=0)
        post.exceedance_probability(0.5)
        assert FACTORIZATIONS.count == c0

    def test_legacy_chol_accessor(self, posterior):
        _, _, post = posterior
        assert post.chol is post.factor.chol

    def test_solver_backed_construction(self, posterior):
        """An explicit (distributed) solver backs the handle; the mean
        agrees with the default sequential construction."""
        from repro.inla.solvers import DistributedSolver

        model, gt, post = posterior
        post_d = LatentPosterior.at(model, gt.theta, solver=DistributedSolver(2))
        assert np.allclose(post_d.mean(), post.mean(), atol=1e-8)

    def test_mean_matches_dense_solve(self, posterior):
        model, gt, post = posterior
        qp, qc, rhs, _ = model.assemble_sparse(gt.theta)
        ref = np.linalg.solve(qc.toarray(), rhs)
        assert np.allclose(post.mean(), ref, atol=1e-8)

    def test_sample_moments(self, posterior, rng):
        model, gt, post = posterior
        draws = post.sample(6000, rng)
        _, qc, _, _ = model.assemble_sparse(gt.theta)
        cov = np.linalg.inv(qc.toarray())
        assert np.allclose(
            draws.mean(axis=0), post.mean(), atol=4 * np.sqrt(cov.max() / 6000) + 0.05
        )
        emp_var = draws.var(axis=0)
        assert np.allclose(emp_var, np.diag(cov), rtol=0.25)

    def test_sample_joint_covariance_entry(self, posterior, rng):
        model, gt, post = posterior
        draws = post.sample(8000, rng)
        _, qc, _, _ = model.assemble_sparse(gt.theta)
        cov = np.linalg.inv(qc.toarray())
        c = np.cov(draws[:, 0], draws[:, 1])[0, 1]
        assert np.isclose(c, cov[0, 1], atol=0.15 * np.sqrt(cov[0, 0] * cov[1, 1]) + 0.01)

    def test_predict_mean_and_sd_exact(self, posterior):
        model, gt, post = posterior
        coords = np.array([[7.5, 44.8], [9.1, 45.3], [11.0, 46.0]])
        tidx = np.array([0, 2, 4])
        out = post.predict(coords, tidx, v=0)
        A = post.predictive_design(coords, tidx, 0).toarray()
        _, qc, rhs, _ = model.assemble_sparse(gt.theta)
        cov = np.linalg.inv(qc.toarray())
        mu = np.linalg.solve(qc.toarray(), rhs)
        assert np.allclose(out["mean"], A @ mu, atol=1e-8)
        assert np.allclose(out["sd"], np.sqrt(np.diag(A @ cov @ A.T)), rtol=1e-6)

    def test_predict_with_samples(self, posterior, rng):
        _, _, post = posterior
        coords = np.array([[8.0, 45.0]])
        out = post.predict(coords, np.array([1]), v=0, n_samples=2000, rng=rng)
        assert out["samples"].shape == (2000, 1)
        assert np.isclose(out["samples"].std(), out["sd"][0], rtol=0.2)

    def test_exceedance_probabilities(self, posterior):
        model, gt, post = posterior
        p = post.exceedance_probability(0.0)
        assert p.shape == (model.N,)
        assert np.all((p >= 0) & (p <= 1))
        # Monotone in the threshold.
        p_hi = post.exceedance_probability(1.0)
        assert np.all(p_hi <= p + 1e-12)

    def test_invalid_sample_count(self, posterior, rng):
        _, _, post = posterior
        with pytest.raises(ValueError):
            post.sample(0, rng)


class TestSmartGradient:
    def test_frame_is_orthogonal(self, rng):
        dirs = [rng.standard_normal(5) for _ in range(2)]
        G = orthonormal_frame(dirs, 5)
        assert np.allclose(G.T @ G, np.eye(5), atol=1e-12)
        # Leading column aligned with the first direction.
        d0 = dirs[0] / np.linalg.norm(dirs[0])
        assert np.isclose(abs(G[:, 0] @ d0), 1.0)

    def test_degenerate_directions_skipped(self):
        G = orthonormal_frame([np.zeros(3), np.array([1.0, 0, 0])], 3)
        assert np.allclose(G.T @ G, np.eye(3), atol=1e-12)

    def test_matches_canonical_gradient_before_steps(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model, s1_workers=4)
        sg = SmartGradient(ev, h=1e-4)
        f1, g1, _ = sg.value_and_gradient(gt.theta)
        f2, g2, _ = ev.value_and_gradient(gt.theta, h=1e-4)
        assert np.isclose(f1, f2)
        assert np.allclose(g1, g2, atol=1e-8)

    def test_rotated_frame_gradient_consistent(self, tiny_uni_model):
        """After recording steps, the rotated-frame gradient must agree
        with the canonical one (both estimate the same smooth gradient)."""
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model, s1_workers=4)
        sg = SmartGradient(ev, h=1e-4)
        sg.record_step(np.array([0.3, -0.1, 0.2, 0.05]))
        sg.record_step(np.array([-0.05, 0.2, 0.1, 0.1]))
        _, g_smart, _ = sg.value_and_gradient(gt.theta)
        _, g_ref, _ = ev.value_and_gradient(gt.theta, h=1e-4)
        assert np.allclose(g_smart, g_ref, rtol=5e-2, atol=5e-2)

    def test_window_limits_history(self):
        model_ev = None  # evaluator unused for this bookkeeping check
        sg = SmartGradient.__new__(SmartGradient)
        sg.window = 2
        sg._history = []
        for k in range(5):
            SmartGradient.record_step(sg, np.ones(3) * (k + 1))
        assert len(sg._history) == 2
