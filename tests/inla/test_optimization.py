"""BFGS, gradients, Hessian, and the end-to-end DALIA engine."""

import numpy as np
import pytest

from repro.inla import DALIA, FobjEvaluator, bfgs_minimize
from repro.inla.bfgs import BFGSOptions
from repro.inla.hessian import fd_hessian, hyperparameter_precision


class TestEvaluator:
    def test_batch_matches_serial(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev1 = FobjEvaluator(model, s1_workers=1)
        ev4 = FobjEvaluator(model, s1_workers=4)
        pts = ev1.gradient_stencil(gt.theta, 1e-4)
        v1 = [r.value for r in ev1.eval_batch(pts)]
        v4 = [r.value for r in ev4.eval_batch(pts)]
        assert np.allclose(v1, v4, atol=0.0)  # bit-identical

    def test_stencil_width_matches_paper(self, tiny_model):
        model, gt, _ = tiny_model
        ev = FobjEvaluator(model)
        pts = ev.gradient_stencil(gt.theta, 1e-4)
        assert len(pts) == 2 * 15 + 1  # nfeval = 31 for the trivariate model

    def test_gradient_is_consistent_across_h(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model)
        _, g1, _ = ev.value_and_gradient(gt.theta, h=1e-4)
        _, g2, _ = ev.value_and_gradient(gt.theta, h=1e-3)
        assert np.allclose(g1, g2, rtol=2e-2, atol=2e-2)

    def test_counters(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model)
        ev.value_and_gradient(gt.theta)
        assert ev.n_evaluations == 9  # 2 * 4 + 1
        assert ev.n_batches == 1

    def test_invalid_workers(self, tiny_uni_model):
        model, _, _ = tiny_uni_model
        with pytest.raises(ValueError):
            FobjEvaluator(model, s1_workers=0)


class TestBFGS:
    def test_quadratic_convergence(self, tiny_uni_model):
        """On the actual posterior surface, BFGS must reach a stationary point."""
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model, s1_workers=4)
        res = bfgs_minimize(ev, gt.theta + 0.4, BFGSOptions(max_iter=60))
        assert res.converged, res.message
        # Gradient small at the reported mode.
        _, g, _ = ev.value_and_gradient(res.theta)
        assert np.abs(g).max() < 0.05

    def test_mode_near_truth(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model, s1_workers=4)
        res = bfgs_minimize(ev, model._reference_theta(), BFGSOptions(max_iter=60))
        # Data is simulated from gt.theta; the mode must land in a sane
        # neighborhood (priors + finite data allow ~1 unit of slack).
        assert np.abs(res.theta - gt.theta).max() < 1.0

    def test_trace_monotone(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model)
        res = bfgs_minimize(ev, gt.theta + 0.3, BFGSOptions(max_iter=20))
        values = [t[1] for t in res.trace]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))  # fobj increases

    def test_nonfinite_start_rejected(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model)
        with pytest.raises(ValueError):
            bfgs_minimize(ev, np.array([np.nan, 0.0, 0.0, 0.0]))

    def test_iteration_limit(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model)
        res = bfgs_minimize(ev, gt.theta + 0.5, BFGSOptions(max_iter=1, grad_tol=1e-12))
        assert res.n_iterations <= 1


class TestHessian:
    def test_hessian_negative_definite_at_mode(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model, s1_workers=4)
        res = bfgs_minimize(ev, gt.theta, BFGSOptions(max_iter=60))
        H = fd_hessian(ev, res.theta, h=1e-3)
        w = np.linalg.eigvalsh(0.5 * (H + H.T))
        assert w.max() < 1e-3  # fobj is a maximum => H negative (semi)definite

    def test_hessian_symmetric(self, tiny_uni_model):
        model, gt, _ = tiny_uni_model
        ev = FobjEvaluator(model)
        H = fd_hessian(ev, gt.theta, h=1e-3)
        assert np.allclose(H, H.T)

    def test_precision_regularization(self):
        H = np.diag([-4.0, -1e-15, 3.0])  # one flat, one wrong-sign direction
        P = hyperparameter_precision(H)
        assert np.linalg.eigvalsh(P).min() > 0


class TestDALIAEndToEnd:
    @pytest.fixture(scope="class")
    def fit_result(self):
        from repro.model.datasets import make_dataset

        model, gt, latent = make_dataset(nv=1, ns=20, nt=5, nr=2, obs_per_step=25, seed=5)
        engine = DALIA(model, s1_workers=4)
        return model, gt, latent, engine.fit(options=BFGSOptions(max_iter=60))

    def test_converged(self, fit_result):
        _, _, _, res = fit_result
        assert res.optimization.converged

    def test_hyper_sd_finite_positive(self, fit_result):
        _, _, _, res = fit_result
        assert np.all(res.hyper.sd > 0)
        assert np.all(res.hyper.sd < 10)

    def test_truth_within_three_sd(self, fit_result):
        _, gt, _, res = fit_result
        z = np.abs(res.theta_mode - gt.theta) / res.hyper.sd
        assert np.all(z < 4.0), z

    def test_latent_recovery(self, fit_result):
        _, _, latent, res = fit_result
        # Posterior mean must correlate strongly with the true latent field.
        c = np.corrcoef(res.latent.mean, latent)[0, 1]
        assert c > 0.9

    def test_latent_coverage(self, fit_result):
        _, _, latent, res = fit_result
        inside = np.abs(res.latent.mean - latent) < 3.0 * res.latent.sd
        assert inside.mean() > 0.8

    def test_quantile_order(self, fit_result):
        _, _, _, res = fit_result
        q = res.hyper.quantiles([0.025, 0.5, 0.975])
        assert np.all(q[:, 0] < q[:, 1])
        assert np.all(q[:, 1] < q[:, 2])

    def test_fixed_effect_summaries(self, fit_result):
        model, _, _, res = fit_result
        fes = res.latent.fixed_effects(0)
        assert len(fes) == model.nr
        for fe in fes:
            assert fe.q025 < fe.mean < fe.q975

    def test_predict_st(self, fit_result):
        model, _, _, res = fit_result
        engine = DALIA(model)
        coords = np.array([[7.0, 44.5], [8.0, 45.0]])
        pred = engine.predict_st(res, coords, np.array([0, 1]), v=0)
        assert pred.shape == (2,)
        assert np.all(np.isfinite(pred))


class TestModePosteriorReuse:
    def test_posterior_reuses_mode_factorization(self, tiny_uni_model):
        """fit() leaves one Qc(theta*) handle behind; posterior sampling,
        predictive sd and exceedance run off it with zero further
        pobtaf calls."""
        from repro.structured.pobtaf import FACTORIZATIONS

        model, gt, _ = tiny_uni_model
        engine = DALIA(model)
        res = engine.fit(theta0=gt.theta, options=BFGSOptions(max_iter=3))
        c0 = FACTORIZATIONS.count
        post = engine.posterior(res)
        assert post is engine.posterior(res)  # cached, not rebuilt
        draws = post.sample(4, np.random.default_rng(0))
        post.exceedance_probability(0.0)
        assert draws.shape == (4, model.N)
        assert FACTORIZATIONS.count == c0

    def test_posterior_without_fit_requires_result(self, tiny_uni_model):
        model, _, _ = tiny_uni_model
        engine = DALIA(model)
        with pytest.raises(ValueError):
            engine.posterior()


class TestTrivariateFit:
    def test_trivariate_converges_and_recovers_correlations(self):
        from repro.model.datasets import make_dataset
        from repro.coreg.lmc import CoregionalizationModel

        model, gt, _ = make_dataset(nv=3, ns=12, nt=4, nr=1, obs_per_step=40, seed=21)
        engine = DALIA(model, s1_workers=8)
        res = engine.fit(options=BFGSOptions(max_iter=80, grad_tol=2e-2))
        corr_true = CoregionalizationModel(3).response_correlations(
            model.layout.sigmas(gt.theta), model.layout.lambdas(gt.theta)
        )
        # Signs of the cross-response correlations must be recovered.
        est = res.response_correlations
        assert np.sign(est[0, 1]) == np.sign(corr_true[0, 1])
        assert abs(est[0, 1] - corr_true[0, 1]) < 0.45
