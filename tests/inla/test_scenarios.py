"""Scenario grids: heterogeneous model x likelihood cells, shared sweeps.

:func:`repro.inla.scenarios.evaluate_scenario_grid` groups cells by BTA
shape and runs every same-shape group through ONE lockstep Newton engine
— per-cell results must be bit-identical to running each cell through
the serial :func:`repro.inla.nongaussian.evaluate_fobj_nongaussian`
(same-backend lanes are row-independent).  Also covers the DALIA
front-end's ``likelihood=`` integration riding the same engine.
"""

import numpy as np
import pytest

from repro.inla.nongaussian import (
    BinomialLikelihood,
    PoissonLikelihood,
    evaluate_fobj_nongaussian,
)
from repro.inla.scenarios import Scenario, ScenarioResult, evaluate_scenario_grid

DECOMP = ("value", "log_prior_theta", "log_likelihood", "logdet_qp", "logdet_qc", "quad_qp")


def _poisson(model, latent, seed):
    rng = np.random.default_rng(seed)
    eta = np.clip(np.asarray(model.A @ latent).ravel() * 0.3, -3.0, 3.0)
    return PoissonLikelihood(rng.poisson(np.exp(eta)).astype(float))


def _binomial(model, seed):
    rng = np.random.default_rng(seed)
    return BinomialLikelihood(rng.integers(0, 2, size=model.likelihood.y.size).astype(float))


@pytest.fixture(scope="module")
def grid_cells():
    """Four cells: two models sharing one BTA shape (poisson + binomial
    likelihoods), plus a different-shape singleton."""
    from repro.model.datasets import make_dataset

    m1, g1, l1 = make_dataset(nv=1, ns=16, nt=4, nr=1, obs_per_step=20, seed=17)
    m2, g2, l2 = make_dataset(nv=1, ns=16, nt=4, nr=1, obs_per_step=20, seed=29)
    m3, g3, l3 = make_dataset(nv=1, ns=12, nt=3, nr=1, obs_per_step=15, seed=31)
    return [
        Scenario("a-poisson", m1, _poisson(m1, l1, 3), g1.theta),
        Scenario("b-binomial", m2, _binomial(m2, 4), g2.theta),
        Scenario("a-shifted", m1, _poisson(m1, l1, 3), g1.theta + 0.05),
        Scenario("c-small", m3, _poisson(m3, l3, 5), g3.theta),
    ]


def _assert_matches_serial(results, cells, *, exact=True):
    assert [r.name for r in results] == [sc.name for sc in cells]
    for r, sc in zip(results, cells):
        ref = evaluate_fobj_nongaussian(sc.model, sc.theta, sc.likelihood)
        assert r.ok and r.converged
        for attr in DECOMP:
            got, want = getattr(r.result, attr), getattr(ref, attr)
            if exact:
                assert got == want, attr
            else:
                assert abs(got - want) <= 1e-10 * max(1.0, abs(want)), attr
        np.testing.assert_allclose(r.x_mode, ref.mu_perm, atol=0 if exact else 1e-10)


class TestScenarioGrid:
    def test_grid_bit_identical_to_serial(self, grid_cells, monkeypatch):
        # Exactness is a same-backend contract: the serial reference
        # factorizes on host, so pin the grid to the host backend (an
        # ambient mock_device leg differs by design at the ulp level).
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        results = evaluate_scenario_grid(grid_cells)
        _assert_matches_serial(results, grid_cells, exact=True)

    def test_serial_env_path_matches(self, grid_cells, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        monkeypatch.setenv("REPRO_BATCHED", "0")
        results = evaluate_scenario_grid(grid_cells)
        _assert_matches_serial(results, grid_cells, exact=True)

    def test_mock_device_close(self, grid_cells, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "mock_device")
        results = evaluate_scenario_grid(grid_cells)
        _assert_matches_serial(results, grid_cells, exact=False)

    def test_single_cell_grid(self, grid_cells):
        results = evaluate_scenario_grid(grid_cells[:1])
        _assert_matches_serial(results, grid_cells[:1], exact=True)

    def test_infeasible_cell_flags_not_ok(self, grid_cells):
        sc = grid_cells[0]
        bad_theta = sc.theta.copy()
        bad_theta[sc.model.layout.range_slice(0)] = 1000.0
        bad = Scenario("bad", sc.model, sc.likelihood, bad_theta)
        results = evaluate_scenario_grid([bad, *grid_cells[:2]])
        assert not results[0].ok
        assert results[0].result.value == -np.inf
        assert results[1].ok and results[2].ok

    def test_result_shape(self, grid_cells):
        (r,) = evaluate_scenario_grid(grid_cells[:1])
        assert isinstance(r, ScenarioResult)
        assert r.x_mode.shape == (grid_cells[0].model.N,)
        assert r.n_newton >= 1


class TestDaliaIntegration:
    @pytest.fixture(scope="class")
    def fitted(self, grid_cells):
        from repro.inla.bfgs import BFGSOptions
        from repro.inla.dalia import DALIA

        sc = grid_cells[0]
        engine = DALIA(sc.model, likelihood=sc.likelihood)
        result = engine.fit(sc.theta, options=BFGSOptions(max_iter=3))
        return engine, result

    def test_fit_runs_on_batched_engine(self, fitted):
        from repro.backend.array_module import batched_enabled
        from repro.backend.protocol import get_backend

        engine, result = fitted
        assert np.isfinite(result.fobj_mode)
        if batched_enabled(None, get_backend()):
            assert engine.evaluator.n_batch_sweeps >= 1
        assert np.all(np.isfinite(result.latent.mean))

    def test_posterior_mode_reuse_and_cold_rebuild(self, fitted, grid_cells):
        engine, result = fitted
        warm = engine.posterior()
        cold = engine._nongaussian_posterior(result.theta_mode)
        np.testing.assert_allclose(warm.mu_perm, cold.mu_perm, atol=1e-8)

    def test_rejects_explicit_solver(self, grid_cells):
        from repro.inla.dalia import DALIA
        from repro.inla.solvers import SequentialSolver

        sc = grid_cells[0]
        with pytest.raises(ValueError):
            DALIA(sc.model, likelihood=sc.likelihood, solver=SequentialSolver())
