"""Chaos-suite fixtures: seeded fault schedules, leak checks, fast timeouts.

Every test here runs under an installed :class:`repro.faults.FaultPlan`
and must leave the machine exactly as it found it: no leaked
``/dev/shm/repro-spmd-*`` segments, no installed plan, no stranded
worker processes.  The assertions live in autouse fixtures so a
regression in any recovery path fails loudly in *every* chaos test.
"""

import glob

import pytest

from repro import faults

#: The chaos acceptance bar: every recovery scenario green over >= 3 seeds
#: (each module parametrizes over ``faults.chaos_seeds()``, which CI pins
#: to one seed per matrix leg via ``REPRO_CHAOS_SEED``).
CHAOS_SEEDS = faults.chaos_seeds()


def _spmd_segments() -> set:
    return set(glob.glob("/dev/shm/repro-spmd-*"))


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """A test must never leave a fault plan installed for its neighbors."""
    yield
    assert faults.active_plan() is None or faults._INSTALLED is None
    faults.uninstall()


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Teardown check: recovery paths must unlink every shm segment."""
    before = _spmd_segments()
    yield
    leaked = _spmd_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(autouse=True)
def fast_comm_timeout(monkeypatch):
    """Injected comm faults must fail in seconds, not the 120 s default."""
    monkeypatch.setenv("REPRO_COMM_TIMEOUT", "15")
