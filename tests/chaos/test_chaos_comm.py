"""SPMD self-healing under injected faults: kill, bootstrap, collective.

The acceptance contract: every recovered run returns results
bit-identical to the fault-free run (the pipeline is deterministic, so
replay-based recovery must be invisible in the numbers); exhaustion of
the retry budget raises a typed error carrying the full failure history;
and no scenario hangs or leaks segments (conftest asserts teardown).
"""

import numpy as np
import pytest

from repro.comm.errors import CommAbortError, SpmdRetryExhaustedError
from repro.comm.launcher import SpmdSession, spmd_retries, worker_store
from repro.faults import FaultPlan, chaos_seeds, injected
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.factor import d_factorize_proc

CHAOS_SEEDS = chaos_seeds()


def _store_warmup(comm, value):
    worker_store()["state"] = value * (comm.Get_rank() + 1)
    return comm.allreduce_scalar(float(value))


def _store_reduce(comm):
    return comm.allreduce_scalar(float(worker_store()["state"]))


def _rank_of(comm):
    return comm.Get_rank()


def _fault_free_reference():
    with SpmdSession(2) as s:
        s.run(_store_warmup, 3.0, warmup=True)
        return s.run(_store_reduce)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestSessionRecovery:
    def test_killed_worker_respawns_and_matches_fault_free_bits(self, seed):
        """Dispatch 0 is the warm-up, dispatch 1 the faulted epoch: rank 1
        dies mid-epoch, the session respawns, replays the warm-up (so the
        worker_store is rebuilt), and the retried epoch's result is
        bit-identical to the run that never saw a fault."""
        expect = _fault_free_reference()
        plan = FaultPlan.at("spmd.worker.kill.r1", after=1, times=1, seed=seed)
        with injected(plan), SpmdSession(2) as s:
            s.run(_store_warmup, 3.0, warmup=True)
            got = s.run(_store_reduce)
            # the respawn count proves the fault fired (the fire counter
            # itself lives in the killed worker's copy of the plan)
            assert s.respawns == 1
        assert got == expect

    def test_injected_collective_fault_recovers(self, seed):
        """A transient failure inside ShmComm._exchange (one rank's
        collective aborts the group) is retried to bit-identical success."""
        expect = _fault_free_reference()
        plan = FaultPlan.at("comm.shm.exchange.r0", after=1, times=1, seed=seed)
        with injected(plan), SpmdSession(2) as s:
            s.run(_store_warmup, 3.0, warmup=True)
            got = s.run(_store_reduce)
            assert s.respawns == 1
        assert got == expect

    def test_worker_lost_at_bootstrap_heals_on_first_run(self, seed):
        """Spawn generation 0 of rank 0 dies before attaching; the first
        run detects the dead worker, respawns generation 1, and serves."""
        plan = FaultPlan.at("spmd.worker.bootstrap.r0", times=1, seed=seed)
        with injected(plan), SpmdSession(2) as s:
            assert s.run(_rank_of) == [0, 1]
            assert s.respawns == 1

    def test_budget_exhaustion_raises_typed_error_with_history(self, seed, monkeypatch):
        """A fault firing on EVERY dispatch defeats every retry; the
        session must raise the typed exhaustion error carrying one
        exception per failed attempt — not hang, not raise something
        generic, not lose the intermediate causes."""
        monkeypatch.setenv("REPRO_SPMD_RETRIES", "2")
        plan = FaultPlan.at("spmd.worker.kill.r0", times=None, seed=seed)
        with injected(plan), SpmdSession(2) as s:
            with pytest.raises(SpmdRetryExhaustedError) as info:
                s.run(_rank_of)
        err = info.value
        assert isinstance(err, CommAbortError)  # typed-catch compatibility
        assert len(err.history) == 3  # initial attempt + 2 retries
        assert all(isinstance(e, CommAbortError) for e in err.history)
        assert "retry budget" in str(err)


class TestRetryKnob:
    def test_env_knob_and_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_RETRIES", "5")
        assert spmd_retries() == 5
        monkeypatch.setenv("REPRO_SPMD_RETRIES", "-1")
        with pytest.raises(ValueError, match="REPRO_SPMD_RETRIES"):
            spmd_retries()

    def test_zero_retries_fails_on_first_comm_fault(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_RETRIES", "0")
        plan = FaultPlan.at("spmd.worker.kill.r0", times=1)
        with injected(plan), SpmdSession(2) as s:
            with pytest.raises(SpmdRetryExhaustedError) as info:
                s.run(_rank_of)
            assert len(info.value.history) == 1
            # the budget is spent, but the session itself is still healable
            assert s.run(_rank_of) == [0, 1]


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestProcFactorSelfHealing:
    def test_solve_epoch_recovers_with_warmup_replay(self, seed):
        """Kill a rank during a *solve* epoch of the persistent-process
        factorization handle: the session respawns, replays the recorded
        factorize warm-up (rebuilding each rank's resident factor slices)
        and the retried solve is bit-identical to the fault-free one."""
        rng = np.random.default_rng(7)
        A = BTAMatrix.random_spd(BTAShape(n=6, b=4, a=2), rng)
        rhs = rng.standard_normal(A.N)
        with d_factorize_proc(A, 2) as clean:
            x_expect = clean.solve(rhs)
            ld_expect = clean.logdet()
        # dispatch 0 = factorize warm-up; the kill window opens at the solve
        plan = FaultPlan.at("spmd.worker.kill.r1", after=1, times=1, seed=seed)
        with injected(plan), d_factorize_proc(A, 2) as f:
            assert f.logdet() == ld_expect
            x = f.solve(rhs)
            assert f._session.respawns == 1
        assert np.array_equal(x, x_expect)
