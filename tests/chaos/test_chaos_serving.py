"""Serving-tier chaos: bit-identical retries, breakers, shedding, deadlines.

The acceptance contract mirrors the comm suite: a response produced
through any recovery path (transient retry, breaker half-open probe)
must be bit-identical to the fault-free response; overload and expiry
fail *synchronously* with typed errors; and the batcher thread never
dies leaving a future unresolved (the satellite-1 regression).
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    RequestTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.faults import FaultPlan, chaos_seeds, injected
from repro.inla.sampling import LatentPosterior
from repro.model.datasets import make_dataset
from repro.serving import ExceedanceRequest, ModelRegistry, SampleRequest, Server
from repro.serving.api import execute_batch

CHAOS_SEEDS = chaos_seeds()


@pytest.fixture(scope="module")
def served_model():
    model, gt, _ = make_dataset(nv=1, ns=18, nt=5, nr=1, obs_per_step=20, seed=13)
    return model, gt.theta


@pytest.fixture(scope="module")
def posterior(served_model):
    model, theta = served_model
    return LatentPosterior.at(model, theta)


class _GateRegistry(ModelRegistry):
    """Registry whose lookups block on a gate — pins the batcher inside a
    tick so tests can deterministically build up a queue behind it."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()
        self.entered = threading.Event()

    def posterior(self, model, theta):
        self.entered.set()
        assert self.gate.wait(10), "test never opened the registry gate"
        return super().posterior(model, theta)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestBitIdenticalRetry:
    def test_transient_group_fault_retried_to_identical_bits(self, seed, served_model, posterior):
        """An injected transient fault between refit and execution is
        retried; the caller-supplied rng's state was snapshotted, so the
        retried draw matches the fault-free draw bit-for-bit."""
        model, theta = served_model
        expect = posterior.sample(2, np.random.default_rng(1234))
        reg = ModelRegistry()
        reg.posterior(model, theta)  # pre-fit: isolate the group fault
        plan = FaultPlan.at("serving.group", times=1, seed=seed)
        with injected(plan), Server(reg) as server:
            req = SampleRequest(n_samples=2, rng=np.random.default_rng(1234))
            res = server.query(model, theta, req)
            assert server.stats.retries == 1
            assert server.stats.failed == 0
        assert np.array_equal(res.samples, expect)

    def test_transient_refit_fault_retried_on_cold_registry(self, seed, served_model, posterior):
        """A transient failure inside the registry miss path is retried;
        the eventual fit serves the group and the breaker ends closed."""
        model, theta = served_model
        expect = execute_batch(posterior, [ExceedanceRequest(threshold=0.5)])[0]
        plan = FaultPlan.at("serving.refit", times=1, seed=seed)
        with injected(plan), Server(ModelRegistry()) as server:
            res = server.query(model, theta, ExceedanceRequest(threshold=0.5))
            assert server.stats.retries == 1
            health = server.health()
        (breaker,) = health["breakers"].values()
        assert breaker["state"] == "closed" and breaker["consecutive_failures"] == 0
        assert np.array_equal(res.probability, expect.probability)


class TestCircuitBreaker:
    def test_repeated_refit_failures_trip_then_fast_fail(self, served_model):
        model, theta = served_model
        plan = FaultPlan.at("serving.refit", times=None)
        with injected(plan):
            with Server(
                ModelRegistry(), max_retries=0, breaker_threshold=2, breaker_reset_s=60.0
            ) as server:
                for _ in range(2):
                    with pytest.raises(InjectedFaultError):
                        server.query(model, theta, ExceedanceRequest(threshold=0.5))
                # Breaker is now open: the third request never reaches the
                # registry — it fails fast with the typed breaker error.
                with pytest.raises(CircuitOpenError, match="circuit breaker open"):
                    server.query(model, theta, ExceedanceRequest(threshold=0.5))
                health = server.health()
        (breaker,) = health["breakers"].values()
        assert breaker["state"] == "open" and breaker["consecutive_failures"] == 2
        assert health["stats"]["breaker_trips"] == 1
        assert health["stats"]["breaker_fast_fails"] == 1

    def test_half_open_probe_closes_breaker_after_reset(self, served_model, posterior):
        """Once the reset window elapses, one probe is let through; the
        fault schedule is exhausted by then, so the probe fits, serves
        bit-identical results, and closes the breaker."""
        model, theta = served_model
        expect = execute_batch(posterior, [ExceedanceRequest(threshold=0.5)])[0]
        plan = FaultPlan.at("serving.refit", times=1)
        with injected(plan):
            with Server(
                ModelRegistry(), max_retries=0, breaker_threshold=1, breaker_reset_s=0.2
            ) as server:
                with pytest.raises(InjectedFaultError):
                    server.query(model, theta, ExceedanceRequest(threshold=0.5))
                with pytest.raises(CircuitOpenError):
                    server.query(model, theta, ExceedanceRequest(threshold=0.5))
                time.sleep(0.25)
                res = server.query(model, theta, ExceedanceRequest(threshold=0.5))
                health = server.health()
        (breaker,) = health["breakers"].values()
        assert breaker["state"] == "closed" and breaker["consecutive_failures"] == 0
        assert np.array_equal(res.probability, expect.probability)


class TestOverloadAndDeadlines:
    def test_full_queue_sheds_at_admission(self, served_model):
        model, theta = served_model
        reg = _GateRegistry()
        with Server(reg, max_pending=2) as server:
            inflight = server.submit(model, theta, ExceedanceRequest(threshold=0.5))
            assert reg.entered.wait(5)  # batcher is pinned inside tick 1
            queued = [
                server.submit(model, theta, SampleRequest(n_samples=1, seed=i))
                for i in range(2)
            ]
            with pytest.raises(ServerOverloadedError, match="request shed"):
                server.submit(model, theta, SampleRequest(n_samples=1, seed=9))
            reg.gate.set()
            inflight.result()
            for f in queued:
                f.result()  # shed the overflow, served everything admitted
            assert server.stats.shed == 1
            assert server.stats.failed == 0

    def test_expired_request_fails_with_timeout_error(self, served_model):
        model, theta = served_model
        reg = _GateRegistry()
        with Server(reg, default_deadline_s=0.05) as server:
            inflight = server.submit(model, theta, ExceedanceRequest(threshold=0.5), deadline_s=30)
            assert reg.entered.wait(5)
            late = server.submit(model, theta, SampleRequest(n_samples=1, seed=0))
            time.sleep(0.1)  # the server-default deadline expires in queue
            reg.gate.set()
            inflight.result()
            with pytest.raises(RequestTimeoutError, match="deadline expired"):
                late.result()
            assert server.stats.timed_out == 1

    def test_deadline_validation(self, served_model):
        model, theta = served_model
        with Server(ModelRegistry()) as server:
            with pytest.raises(ValueError, match="deadline_s"):
                server.submit(
                    model, theta, ExceedanceRequest(threshold=0.5), deadline_s=0.0
                )


class TestTickDeathRegression:
    def test_dying_tick_fails_all_pending_and_closes_server(self, served_model):
        """Satellite 1: a non-transient fault in the tick machinery used
        to kill the daemon thread silently — futures hung forever and the
        server kept accepting work.  Now: every pending future fails with
        the cause, the server transitions to closed/failed, and further
        submits raise :class:`ServerClosedError` carrying the cause."""
        model, theta = served_model
        reg = _GateRegistry()
        # Tick 0 (hit index 0) is skipped by after=1; tick 1 dies.
        plan = FaultPlan.at("serving.tick", after=1, times=1)
        with injected(plan):
            server = Server(reg)
            inflight = server.submit(model, theta, ExceedanceRequest(threshold=0.5))
            assert reg.entered.wait(5)
            doomed = [
                server.submit(model, theta, SampleRequest(n_samples=1, seed=i))
                for i in range(2)
            ]
            reg.gate.set()
            inflight.result()  # tick 0 completes normally
            for f in doomed:  # tick 1 raised: both futures carry the cause
                with pytest.raises(RuntimeError, match="injected tick fault"):
                    f.result(timeout=5)
            assert server.closed and isinstance(server.failure, RuntimeError)
            health = server.health()
            assert health["closed"] and "injected tick fault" in health["failure"]
            with pytest.raises(ServerClosedError, match="failed") as info:
                server.submit(model, theta, ExceedanceRequest(threshold=0.5))
            assert info.value.__cause__ is server.failure
            server.close()  # idempotent: the dead batcher joins cleanly
