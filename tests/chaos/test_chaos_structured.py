"""Numerical graceful degradation: audited NPD jitter recovery.

Pins the ISSUE-10 contract for the structured layer: recovery is opt-in,
escalating, and *audited* (``applied_jitter`` on the handle plus
:class:`NPDJitterWarning` — never silent), and it never changes the bits
of a result that would have succeeded without it.
"""

import warnings

import numpy as np
import pytest

from repro.errors import NotPositiveDefiniteError, NPDJitterWarning
from repro.faults import FaultPlan, chaos_seeds, injected
from repro.structured.bta import BTAMatrix, BTAShape, BTAStack
from repro.structured.factor import NPDJitterPolicy, factorize
from repro.structured.multifactor import factorize_batch

CHAOS_SEEDS = chaos_seeds()

SHAPE = BTAShape(n=5, b=3, a=2)


def _spd(seed: int) -> BTAMatrix:
    return BTAMatrix.random_spd(SHAPE, np.random.default_rng(seed))


def _nearly_spd(bad: float = -1e-6) -> BTAMatrix:
    """Decoupled identity blocks with one slightly negative diagonal entry:
    indefinite, but curable by a small diagonal shift — and the block
    structure makes the cure threshold exactly predictable."""
    shape = BTAShape(n=3, b=2, a=1)
    A = BTAMatrix(
        diag=np.tile(np.eye(2), (3, 1, 1)),
        lower=np.zeros((2, 2, 2)),
        arrow=np.zeros((3, 1, 2)),
        tip=np.eye(1),
    )
    assert shape == A.shape3
    A.diag[1, 1, 1] = bad
    return A


def _assert_factor_bits_equal(f, g) -> None:
    assert np.array_equal(f.chol.factor.diag, g.chol.factor.diag)
    assert np.array_equal(f.chol.factor.lower, g.chol.factor.lower)
    assert np.array_equal(f.chol.factor.arrow, g.chol.factor.arrow)
    assert np.array_equal(f.chol.factor.tip, g.chol.factor.tip)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestInjectedNPD:
    def test_factorize_recovers_from_injected_npd(self, seed):
        """An injected NPD on the first attempt sends a genuinely SPD
        matrix down the recovery chain: rung one succeeds, the handle
        reports the added diagonal, and the warning fires."""
        A = _spd(seed)
        plan = FaultPlan.at("structured.pobtaf", times=1, seed=seed)
        with injected(plan), pytest.warns(NPDJitterWarning, match="succeeded only after"):
            f = factorize(A, jitter=True)
        assert f.applied_jitter > 0
        assert np.isfinite(f.logdet())

    def test_without_jitter_the_injected_npd_propagates(self, seed):
        plan = FaultPlan.at("structured.pobtaf", times=1, seed=seed)
        with injected(plan):
            with pytest.raises(NotPositiveDefiniteError, match="injected"):
                factorize(_spd(seed))

    def test_recovery_never_corrupts_the_caller_matrix(self, seed):
        """Even with ``overwrite=True``, an active jitter policy keeps the
        first attempt out-of-place: after a recovered factorization the
        caller's matrix still holds the pristine values."""
        A = _spd(seed)
        pristine = A.copy()
        plan = FaultPlan.at("structured.pobtaf", times=1, seed=seed)
        with injected(plan), pytest.warns(NPDJitterWarning):
            factorize(A, overwrite=True, jitter=True)
        assert np.array_equal(A.diag, pristine.diag)
        assert np.array_equal(A.lower, pristine.lower)
        assert np.array_equal(A.arrow, pristine.arrow)
        assert np.array_equal(A.tip, pristine.tip)

    def test_batch_fault_recovers_bit_identically(self, seed):
        """An injected batch-level NPD (fired before any block is touched)
        routes through per-lane recovery; every lane is genuinely SPD, so
        the recovered batch is bit-identical to the fault-free batch and
        reports zero applied jitter everywhere."""
        mats = [_spd(10 + j) for j in range(3)]
        expect = factorize_batch(mats)
        plan = FaultPlan.at("structured.factorize_batch", times=1, seed=seed)
        with injected(plan):
            got = factorize_batch(mats, jitter=True)
        assert np.array_equal(got.applied_jitter, np.zeros(3))
        for j in range(3):
            _assert_factor_bits_equal(got.factor(j), expect.factor(j))
            assert got.factor(j).logdet() == expect.factor(j).logdet()

    def test_batch_fault_with_overwritten_stack_recovers_from_pristine_copy(self, seed):
        """``overwrite=True`` + jitter retains a pristine copy of the
        caller's stack until the outcome is decided — recovery after the
        injected fault still sees unfactorized values."""
        mats = [_spd(20 + j) for j in range(2)]
        expect = factorize_batch(mats)
        stack = BTAStack.from_matrices(mats)
        plan = FaultPlan.at("structured.factorize_batch", times=1, seed=seed)
        with injected(plan):
            got = factorize_batch(stack, overwrite=True, jitter=True)
        for j in range(2):
            _assert_factor_bits_equal(got.factor(j), expect.factor(j))

    def test_batch_fault_without_jitter_propagates(self, seed):
        plan = FaultPlan.at("structured.factorize_batch", times=1, seed=seed)
        with injected(plan):
            with pytest.raises(NotPositiveDefiniteError, match="injected"):
                factorize_batch([_spd(0), _spd(1)])


class TestGenuineNPD:
    def test_escalates_to_the_curing_rung(self):
        """The ``-1e-6`` entry defeats rungs one (1e-8) and two (1e-6) and
        is cured by rung three (1e-4) — pinning that escalation actually
        escalates rather than succeeding or giving up on rung one."""
        A = _nearly_spd()
        with pytest.raises(NotPositiveDefiniteError):
            factorize(A.copy())
        with pytest.warns(NPDJitterWarning):
            f = factorize(A, jitter=True)
        scale = np.abs(
            np.concatenate([A.diag.diagonal(axis1=1, axis2=2).ravel(), A.tip.diagonal()])
        ).mean()
        assert f.applied_jitter == pytest.approx(1e-4 * scale)
        assert np.isfinite(f.logdet())

    def test_exhausted_rungs_reraise_with_cause(self):
        A = _nearly_spd(bad=-10.0)  # beyond the largest rung's reach
        with pytest.raises(NotPositiveDefiniteError, match="after 4 diagonal jitter") as info:
            factorize(A, jitter=True)
        assert isinstance(info.value.__cause__, NotPositiveDefiniteError)

    def test_clean_matrix_is_bit_identical_with_jitter_enabled(self):
        """Recovery must never change the bits of a successful result: a
        matrix that factorizes cleanly yields the same handle whether or
        not the policy is armed, with zero reported jitter and no warning."""
        A = _spd(3)
        plain = factorize(A.copy())
        with warnings.catch_warnings():
            warnings.simplefilter("error", NPDJitterWarning)
            armed = factorize(A.copy(), jitter=True)
        assert armed.applied_jitter == 0.0
        _assert_factor_bits_equal(armed, plain)

    def test_batch_recovers_only_the_bad_lane(self):
        """One indefinite lane poisons the whole stacked sweep; per-lane
        recovery jitters only that lane and leaves the clean lanes
        bit-identical to their per-theta factorizations."""
        shape = BTAShape(n=3, b=2, a=1)
        clean = [
            BTAMatrix.random_spd(shape, np.random.default_rng(s)) for s in (30, 31)
        ]
        mats = [clean[0], _nearly_spd(), clean[1]]
        with pytest.raises(NotPositiveDefiniteError):
            factorize_batch([m.copy() for m in mats])
        with pytest.warns(NPDJitterWarning):
            got = factorize_batch(mats, jitter=True)
        assert got.applied_jitter[1] > 0
        assert got.applied_jitter[0] == got.applied_jitter[2] == 0.0
        for j in (0, 2):
            _assert_factor_bits_equal(got.factor(j), factorize(mats[j], batched=True))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="initial"):
            NPDJitterPolicy(initial=0.0)
        with pytest.raises(ValueError, match="growth"):
            NPDJitterPolicy(growth=1.0)
        with pytest.raises(ValueError, match="max_tries"):
            NPDJitterPolicy(max_tries=0)
        with pytest.raises(TypeError, match="jitter"):
            factorize(_spd(0), jitter=42)
