"""Schema lint for ``.github/workflows/ci.yml``.

The repo has no way to execute GitHub Actions locally, so this test *is*
the actions-schema lint gate: it validates the workflow file against the
(subset of the) official workflow JSON schema the file uses, plus the
semantic invariants CI must keep — the tier-1 command of ``ROADMAP.md``,
the ``REPRO_BATCHED=0/1`` dual-path matrix over two python versions, and
the benchmark smoke job.  A malformed workflow therefore fails tier-1 on
this host before it ever reaches GitHub.
"""

import pathlib

import pytest

yaml = pytest.importorskip("yaml")
jsonschema = pytest.importorskip("jsonschema")

WORKFLOW = pathlib.Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"

# The subset of the github-workflow JSON schema
# (https://json.schemastore.org/github-workflow.json) that covers the
# constructs this repo's workflow uses.  Kept strict where it matters:
# every job needs runs-on + steps, every step needs run or uses, matrix
# values must be lists of scalars.
WORKFLOW_SCHEMA = {
    "type": "object",
    "required": ["on", "jobs"],
    "properties": {
        "name": {"type": "string"},
        "on": {
            "anyOf": [
                {"type": "string"},
                {"type": "array", "items": {"type": "string"}},
                {
                    "type": "object",
                    "additionalProperties": {
                        "anyOf": [
                            {"type": "null"},
                            {
                                "type": "object",
                                "properties": {
                                    "branches": {
                                        "type": "array",
                                        "items": {"type": "string"},
                                    }
                                },
                                "additionalProperties": True,
                            },
                        ]
                    },
                },
            ]
        },
        "env": {"type": "object"},
        "jobs": {
            "type": "object",
            "minProperties": 1,
            "patternProperties": {
                "^[a-zA-Z_][a-zA-Z0-9_-]*$": {
                    "type": "object",
                    "required": ["runs-on", "steps"],
                    "properties": {
                        "name": {"type": "string"},
                        "runs-on": {"type": "string"},
                        "continue-on-error": {"type": "boolean"},
                        "needs": {
                            "anyOf": [
                                {"type": "string"},
                                {"type": "array", "items": {"type": "string"}},
                            ]
                        },
                        "env": {
                            "type": "object",
                            "additionalProperties": {"type": ["string", "number", "boolean"]},
                        },
                        "strategy": {
                            "type": "object",
                            "properties": {
                                "fail-fast": {"type": "boolean"},
                                "matrix": {
                                    "type": "object",
                                    "additionalProperties": {
                                        "type": "array",
                                        "minItems": 1,
                                        "items": {"type": ["string", "number", "boolean"]},
                                    },
                                },
                            },
                        },
                        "steps": {
                            "type": "array",
                            "minItems": 1,
                            "items": {
                                "type": "object",
                                "anyOf": [{"required": ["run"]}, {"required": ["uses"]}],
                                "properties": {
                                    "name": {"type": "string"},
                                    "run": {"type": "string"},
                                    "uses": {"type": "string"},
                                    "with": {"type": "object"},
                                    "env": {"type": "object"},
                                },
                                "additionalProperties": False,
                            },
                        },
                    },
                    "additionalProperties": False,
                }
            },
            "additionalProperties": False,
        },
    },
    "additionalProperties": False,
}


def _load_workflow() -> dict:
    doc = yaml.safe_load(WORKFLOW.read_text())
    # YAML 1.1 parses the bare key `on` as boolean True; normalize it back
    # so the schema sees what GitHub sees.
    if True in doc:
        doc["on"] = doc.pop(True)
    return doc


def _runs(doc) -> list:
    return [
        step["run"]
        for job in doc["jobs"].values()
        for step in job["steps"]
        if "run" in step
    ]


class TestWorkflowSchema:
    def test_exists(self):
        assert WORKFLOW.is_file(), "CI workflow missing"

    def test_schema_valid(self):
        jsonschema.validate(_load_workflow(), WORKFLOW_SCHEMA)

    def test_needed_jobs_exist(self):
        doc = _load_workflow()
        for job in doc["jobs"].values():
            needs = job.get("needs", [])
            needs = [needs] if isinstance(needs, str) else needs
            for n in needs:
                assert n in doc["jobs"], f"needs references unknown job {n!r}"

    def test_uses_pinned_actions(self):
        doc = _load_workflow()
        for job in doc["jobs"].values():
            for step in job["steps"]:
                if "uses" in step:
                    assert "@" in step["uses"], f"unpinned action {step['uses']!r}"


class TestWorkflowSemantics:
    """The commands CI runs are the ones this repo documents and tests."""

    def test_runs_tier1_command(self):
        roadmap = (WORKFLOW.parent.parent.parent / "ROADMAP.md").read_text()
        assert "python -m pytest -x -q" in roadmap  # the documented tier-1 line
        assert any("python -m pytest -x -q" in r for r in _runs(_load_workflow()))

    def test_dual_path_matrix(self):
        doc = _load_workflow()
        tests = doc["jobs"]["tests"]
        matrix = tests["strategy"]["matrix"]
        assert sorted(matrix["repro-batched"]) == ["0", "1"], "REPRO_BATCHED matrix incomplete"
        assert len(matrix["python-version"]) >= 2, "need at least two python versions"
        assert tests["env"]["REPRO_BATCHED"] == "${{ matrix.repro-batched }}"

    def test_backend_matrix(self):
        """Tier-1 also runs under the mock device backend (ROADMAP item 1:
        the device execution path must be testable without a GPU)."""
        doc = _load_workflow()
        tests = doc["jobs"]["tests"]
        matrix = tests["strategy"]["matrix"]
        assert sorted(matrix["repro-backend"]) == ["mock_device", "numpy"], (
            "REPRO_BACKEND matrix incomplete"
        )
        assert tests["env"]["REPRO_BACKEND"] == "${{ matrix.repro-backend }}"

    def test_bench_smoke_job(self):
        doc = _load_workflow()
        runs = [
            step["run"] for step in doc["jobs"]["bench-smoke"]["steps"] if "run" in step
        ]
        assert any("--bench-smoke" in r for r in runs)
        assert any("bench_multirhs" in r for r in runs)
        assert any("bench_factor_reuse" in r for r in runs)
        assert any("bench_multitheta" in r for r in runs)
        assert any("bench_nongaussian" in r for r in runs)
        assert any("bench_assembly" in r for r in runs)
        assert any("bench_backend_transfers" in r for r in runs)
        assert any("bench_serving" in r for r in runs)

    def test_proc_backend_job(self):
        """The comm/structured suites must also run over real worker
        processes (REPRO_COMM=proc), with a short collective timeout so a
        hung rank fails the job loudly, plus the paired backend smoke
        gate of ``benchmarks/bench_comm_backends.py``."""
        doc = _load_workflow()
        job = doc["jobs"]["proc-backend"]
        assert job["env"]["REPRO_COMM"] == "proc"
        assert 0 < float(job["env"]["REPRO_COMM_TIMEOUT"]) <= 120
        runs = [s["run"] for s in job["steps"] if "run" in s]
        assert any("tests/comm" in r and "tests/structured" in r for r in runs)
        assert any("bench_comm_backends" in r for r in runs)

    def test_chaos_job(self):
        """The fault-injection suite runs over three schedule seeds (one
        matrix leg each, pinned via REPRO_CHAOS_SEED), repeats the chaos
        suites over real worker processes (REPRO_COMM=proc), and gates
        the serving fault-rate benchmark — the ISSUE 10 acceptance bar."""
        doc = _load_workflow()
        job = doc["jobs"]["chaos"]
        assert sorted(job["strategy"]["matrix"]["fault-seed"]) == ["0", "1", "2"]
        assert job["env"]["REPRO_CHAOS_SEED"] == "${{ matrix.fault-seed }}"
        assert 0 < float(job["env"]["REPRO_COMM_TIMEOUT"]) <= 120
        runs = [s["run"] for s in job["steps"] if "run" in s]
        assert any("tests/chaos" in r and "tests/test_faults.py" in r for r in runs)
        assert any("test_registry_failures" in r for r in runs)
        assert any("bench_serving" in r and "fault" in r for r in runs)
        proc_legs = [
            s for s in job["steps"] if s.get("env", {}).get("REPRO_COMM") == "proc"
        ]
        assert proc_legs and all("tests/chaos" in s["run"] for s in proc_legs)

    def test_pip_cache_enabled(self):
        """Every python setup caches pip (keyed on pyproject.toml)."""
        doc = _load_workflow()
        for name, job in doc["jobs"].items():
            for step in job["steps"]:
                if step.get("uses", "").startswith("actions/setup-python"):
                    with_ = step.get("with", {})
                    assert with_.get("cache") == "pip", f"no pip cache in {name!r}"
                    assert with_.get("cache-dependency-path") == "pyproject.toml"

    def test_lint_job_first(self):
        doc = _load_workflow()
        jobs = doc["jobs"]
        assert "lint" in jobs
        lint_runs = " ".join(s.get("run", "") for s in jobs["lint"]["steps"])
        assert "ruff check" in lint_runs and "ruff format --check" in lint_runs
        # Every other job gates on lint, making it the first CI stage.
        for name, job in jobs.items():
            if name == "lint":
                continue
            needs = job.get("needs", [])
            needs = [needs] if isinstance(needs, str) else needs
            assert "lint" in needs, f"job {name!r} does not gate on lint"
