"""Symbolic-once / numeric-batched assembly (the ISSUE 5 tentpole).

Contracts under test:

- the plan's values agree with the historical scipy-sparse assembly
  (``assemble_reference``) to 1e-10 relative — the independent
  cross-check of the term/coefficient decomposition,
- ``assemble_batch`` is bit-identical to looped ``assemble`` at every
  theta (shared numeric core; runs under both ``REPRO_BATCHED``
  settings in CI),
- every feasible theta's assembled pattern is a subset of the reference
  pattern (property test), with a clear error for escapes,
- infeasible thetas are screened by the coefficient check, matching the
  configurations for which ``assemble`` raises,
- stencil batches perform **zero** ``sp.kron`` / CSR-add calls after
  plan construction (monkeypatch assertion on the evaluator hot path),
- the workspace reuses theta-first stacks across batches.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.model.assembler import AssemblyWorkspace
from repro.model.datasets import make_dataset


@pytest.fixture(scope="module")
def models():
    uni = make_dataset(nv=1, ns=20, nt=5, nr=2, obs_per_step=25, seed=5)
    tri = make_dataset(nv=3, ns=10, nt=4, nr=2, obs_per_step=15, seed=11)
    return {"uni": uni, "tri": tri}


def _rel_err(a, b):
    scale = max(1.0, float(np.max(np.abs(b))))
    return float(np.max(np.abs(a - b))) / scale


class TestPlanMatchesSparseReference:
    @pytest.mark.parametrize("name", ["uni", "tri"])
    def test_assemble_matches_reference(self, models, name):
        """Plan values vs the kron/CSR-add reference path: 1e-10."""
        model, gt, _ = models[name]
        for dt in (0.0, 0.15, -0.25):
            new = model.assemble(gt.theta + dt)
            ref = model.assemble_reference(gt.theta + dt)
            for attr in ("diag", "lower", "arrow", "tip"):
                assert _rel_err(getattr(new.qp, attr), getattr(ref.qp, attr)) < 1e-10
                assert _rel_err(getattr(new.qc, attr), getattr(ref.qc, attr)) < 1e-10
            assert _rel_err(new.rhs, ref.rhs) < 1e-10
            assert _rel_err(new.qp_csr.toarray(), ref.qp_csr.toarray()) < 1e-10
            assert np.array_equal(new.taus, ref.taus)

    def test_assemble_sparse_shares_plan_values(self, models):
        """The sparse baseline rides the same value core as assemble."""
        model, gt, _ = models["tri"]
        qp, qc, rhs, taus = model.assemble_sparse(gt.theta)
        sys = model.assemble(gt.theta)
        p = model.permutation.perm.perm
        assert _rel_err(sys.qc.to_dense(), qc.toarray()[np.ix_(p, p)]) < 1e-12
        assert np.array_equal(rhs[p], sys.rhs)
        ref = model.likelihood.information_vector(model.A, taus)
        assert _rel_err(rhs, ref) < 1e-10


class TestBatchedLoopedBitIdentity:
    @pytest.mark.parametrize("name", ["uni", "tri"])
    def test_stencil_grid_bit_identical(self, models, name):
        """Batch stacks equal looped assemble bit-for-bit on a theta grid."""
        model, gt, _ = models[name]
        ws = AssemblyWorkspace()
        for d in (2, 4):
            grid = np.stack(
                [gt.theta + s * np.eye(model.layout.dim)[k % model.layout.dim]
                 for k, s in enumerate([0.0] + [0.1, -0.1] * d)]
            )
            batch = model.assemble_batch(grid, workspace=ws)
            assert batch.t == grid.shape[0]
            for i in range(batch.t):
                sys = model.assemble(grid[i])
                assert np.array_equal(batch.qp.diag[i], sys.qp.diag)
                assert np.array_equal(batch.qp.lower[i], sys.qp.lower)
                assert np.array_equal(batch.qp.arrow[i], sys.qp.arrow)
                assert np.array_equal(batch.qp.tip[i], sys.qp.tip)
                assert np.array_equal(batch.qc.diag[i], sys.qc.diag)
                assert np.array_equal(batch.qc.lower[i], sys.qc.lower)
                assert np.array_equal(batch.qc.arrow[i], sys.qc.arrow)
                assert np.array_equal(batch.qc.tip[i], sys.qc.tip)
                assert np.array_equal(batch.rhs[i], sys.rhs)
                view = batch.system(i)
                assert np.array_equal(view.qp_csr.data, sys.qp_csr.data)
                assert np.array_equal(view.taus, sys.taus)

    def test_prior_grid_zero_lambda(self, models):
        """lambda = 0 shrinks the numeric pattern; the plan absorbs it."""
        model, gt, _ = models["tri"]
        theta = gt.theta.copy()
        theta[model.layout.lambda_slice()] = 0.0
        batch = model.assemble_batch(np.stack([gt.theta, theta]))
        sys = model.assemble(theta)
        assert np.array_equal(batch.qp.diag[1], sys.qp.diag)
        assert np.isfinite(sys.qp.frobenius_norm())


class TestPatternSubsetProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-1.5, 1.5), min_size=4, max_size=4))
    def test_feasible_theta_pattern_subset_uni(self, deltas):
        """Every feasible theta's sparse pattern fits the reference
        pattern (alignment succeeds) and the plan reproduces its values."""
        model, gt, _ = _UNI
        theta = gt.theta + np.array(deltas)
        try:
            sys = model.assemble(theta)
        except ValueError:
            return  # infeasible configurations raise; nothing to check
        aligned = model._align_p.align(model._joint_prior(theta))
        qp, _, _, _ = model.assemble_sparse(theta)
        assert _rel_err(qp.data, aligned.data) < 1e-10
        assert np.isfinite(sys.qp.frobenius_norm())

    def test_pattern_escape_raises_clearly(self, models):
        model, _, _ = models["uni"]
        with pytest.raises(ValueError, match="outside the reference pattern"):
            model._align_p.slots_of(np.array([0]), np.array([model.N - 1]))


class TestInfeasibleScreening:
    def test_screen_matches_assemble_raise(self, models):
        """assemble_batch's coefficient screen flags exactly the thetas
        for which assemble raises."""
        model, gt, _ = models["uni"]
        lay = model.layout
        bad_range = gt.theta.copy()
        bad_range[lay.range_slice(0)] = 1000.0  # sigma0 overflow regime
        nonfinite = gt.theta.copy()
        nonfinite[0] = np.nan
        thetas = np.stack([gt.theta, bad_range, nonfinite, gt.theta + 0.05])
        batch = model.assemble_batch(thetas)
        assert list(batch.feasible) == [0, 3]
        for j in (1, 2):
            with pytest.raises(ValueError):
                model.assemble(thetas[j])

    def test_all_infeasible_batch_is_empty(self, models):
        model, gt, _ = models["uni"]
        bad = gt.theta.copy()
        bad[model.layout.range_slice(0)] = 1000.0
        batch = model.assemble_batch(np.stack([bad, bad]))
        assert batch.t == 0 and batch.qp is None


class TestNoSparseOpsInHotLoop:
    def test_stencil_batch_runs_no_kron_or_csr_add(self, models, monkeypatch):
        """After plan construction, a full gradient stencil through the
        evaluator's batch path must not touch sp.kron or sparse adds."""
        from repro.inla.evaluator import FobjEvaluator

        model, gt, _ = models["uni"]
        ev = FobjEvaluator(model, batch_stencils=True, cache_size=0)

        def boom(*a, **k):
            raise AssertionError("scipy sparse arithmetic in the stencil hot loop")

        monkeypatch.setattr(sp, "kron", boom)
        monkeypatch.setattr(sp.csr_matrix, "__add__", boom)
        monkeypatch.setattr(sp.csr_matrix, "__sub__", boom)
        monkeypatch.setattr(sp.csr_matrix, "multiply", boom)
        f0, grad, _ = ev.value_and_gradient(gt.theta)
        assert np.isfinite(f0) and np.all(np.isfinite(grad))
        assert ev.n_batch_sweeps == 2

    def test_looped_assemble_runs_no_kron_or_csr_add(self, models, monkeypatch):
        """The rewritten t = 1 assemble is sparse-arithmetic-free too."""
        model, gt, _ = models["tri"]

        def boom(*a, **k):
            raise AssertionError("scipy sparse arithmetic in assemble")

        monkeypatch.setattr(sp, "kron", boom)
        monkeypatch.setattr(sp.csr_matrix, "__add__", boom)
        sys = model.assemble(gt.theta)
        assert np.isfinite(sys.qp.frobenius_norm())


class TestAssemblyWorkspace:
    def test_stacks_reused_across_batches(self, models):
        model, gt, _ = models["uni"]
        ws = AssemblyWorkspace()
        thetas = np.stack([gt.theta + 0.02 * k for k in range(5)])
        b1 = model.assemble_batch(thetas, workspace=ws)
        d1 = b1.qp.diag
        b2 = model.assemble_batch(thetas + 0.01, workspace=ws)
        assert np.shares_memory(d1, b2.qp.diag)
        # Smaller batches reuse a head view of the grown buffers.
        b3 = model.assemble_batch(thetas[:2], workspace=ws)
        assert b3.qp.t == 2
        assert np.shares_memory(b3.qp.diag, d1)
        sys = model.assemble(thetas[0])
        assert np.array_equal(b3.qp.diag[0], sys.qp.diag)

    def test_fresh_alloc_default(self, models):
        model, gt, _ = models["uni"]
        thetas = np.stack([gt.theta, gt.theta + 0.02])
        b1 = model.assemble_batch(thetas)
        b2 = model.assemble_batch(thetas)
        assert not np.shares_memory(b1.qp.diag, b2.qp.diag)
        assert np.array_equal(b1.qp.diag, b2.qp.diag)


class TestAccounting:
    def test_plan_flop_and_byte_model(self, models):
        model, _, _ = models["tri"]
        plan = model.plan
        assert plan.flops(1) > 0 and plan.bytes_moved(1) > 0
        # Linear-in-t identity: batched assembly amortizes dispatch, not
        # arithmetic (the contract every counter in flops.py enforces).
        assert plan.flops(7) == 7 * plan.flops(1)
        assert plan.bytes_moved(7) == 7 * plan.bytes_moved(1)


_UNI = make_dataset(nv=1, ns=20, nt=5, nr=2, obs_per_step=25, seed=5)
