"""Model layer: theta layout, likelihood, designs, assembly."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.meshes.mesh2d import rectangle_mesh
from repro.meshes.temporal import TemporalMesh
from repro.model.assembler import CoregionalSTModel, ResponseData
from repro.model.design import joint_design, process_design, spacetime_design
from repro.model.layout import ThetaLayout
from repro.model.likelihood import GaussianLikelihood
from repro.model.datasets import TABLE_IV, make_dataset


class TestThetaLayout:
    def test_dims_match_paper(self):
        """Table IV: dim(theta) = 4 for univariate, 15 for trivariate."""
        assert ThetaLayout(1).dim == 4
        assert ThetaLayout(3).dim == 15

    def test_nfeval(self):
        assert ThetaLayout(3).n_feval == 31  # the paper's coregional count
        assert ThetaLayout(1).n_feval == 9

    def test_pack_extract_roundtrip(self):
        lay = ThetaLayout(3)
        taus = np.array([5.0, 10.0, 2.0])
        ranges = np.array([[0.5, 2.0], [0.7, 3.0], [0.4, 1.5]])
        sigmas = np.array([1.0, 1.5, 0.8])
        lambdas = np.array([0.3, -0.4, 0.1])
        theta = lay.pack(taus, ranges, sigmas, lambdas)
        assert np.allclose(lay.taus(theta), taus)
        assert np.allclose(lay.sigmas(theta), sigmas)
        assert np.allclose(lay.lambdas(theta), lambdas)
        for v in range(3):
            p = lay.process_params(theta, v)
            assert np.isclose(p.range_s, ranges[v, 0])
            assert np.isclose(p.range_t, ranges[v, 1])
            assert p.sigma == 1.0  # unit variance; scale lives in Lambda

    def test_slices_disjoint_cover(self):
        lay = ThetaLayout(2)
        covered = set()
        slices = [
            lay.tau_slice(),
            lay.range_slice(0),
            lay.range_slice(1),
            lay.sigma_slice(),
            lay.lambda_slice(),
        ]
        for s in slices:
            idx = set(range(*s.indices(lay.dim)))
            assert not (covered & idx)
            covered |= idx
        assert covered == set(range(lay.dim))

    def test_invalid_pack_rejected(self):
        lay = ThetaLayout(2)
        with pytest.raises(ValueError):
            lay.pack(np.array([1.0, -1.0]), np.ones((2, 2)), np.ones(2), np.zeros(1))

    def test_describe(self):
        lay = ThetaLayout(1)
        theta = lay.pack(np.array([2.0]), np.array([[0.5, 1.5]]), np.array([1.2]))
        d = lay.describe(theta)
        assert np.isclose(d["tau"][0], 2.0)
        assert np.isclose(d["sigma"][0], 1.2)


class TestGaussianLikelihood:
    def test_logpdf_matches_scipy(self, rng):
        from scipy.stats import norm

        y = rng.standard_normal(10)
        eta = rng.standard_normal(10)
        lik = GaussianLikelihood(y=y, response_of=np.zeros(10, dtype=np.int64))
        tau = np.array([4.0])
        ref = norm.logpdf(y, loc=eta, scale=0.5).sum()
        assert np.isclose(lik.logpdf(eta, tau), ref)

    def test_per_response_precisions(self, rng):
        y = rng.standard_normal(6)
        r = np.array([0, 0, 1, 1, 2, 2])
        lik = GaussianLikelihood(y=y, response_of=r)
        d = lik.noise_precisions(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(d, [1, 1, 2, 2, 3, 3])

    def test_information_vector(self, rng):
        y = rng.standard_normal(5)
        A = sp.random(5, 8, density=0.5, format="csr")
        lik = GaussianLikelihood(y=y, response_of=np.zeros(5, dtype=np.int64))
        ref = A.T @ (2.0 * y)
        assert np.allclose(lik.information_vector(A, np.array([2.0])), ref)

    def test_negative_tau_rejected(self, rng):
        lik = GaussianLikelihood(y=np.zeros(3), response_of=np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            lik.noise_precisions(np.array([-1.0]))


class TestDesign:
    def test_spacetime_design_places_time_blocks(self):
        mesh = rectangle_mesh(4, 3)
        tmesh = TemporalMesh(nt=3)
        coords = np.array([[0.5, 0.5], [0.2, 0.7]])
        A = spacetime_design(mesh, tmesh, coords, np.array([0, 2]))
        ns = mesh.n_nodes
        assert A.shape == (2, ns * 3)
        # First obs touches time block 0 only, second time block 2 only.
        assert A[0, ns:].nnz == 0
        assert A[1, : 2 * ns].nnz == 0
        assert np.isclose(A[1, 2 * ns :].sum(), 1.0)

    def test_process_design_appends_covariates(self):
        mesh = rectangle_mesh(3, 3)
        tmesh = TemporalMesh(nt=2)
        coords = np.array([[0.5, 0.5]])
        X = np.array([[1.0, 7.0]])
        A = process_design(mesh, tmesh, coords, np.array([1]), X)
        assert A.shape == (1, mesh.n_nodes * 2 + 2)
        assert A[0, -1] == 7.0

    def test_joint_design_block_diagonal(self):
        A1 = sp.csr_matrix(np.ones((2, 3)))
        A2 = sp.csr_matrix(2 * np.ones((1, 3)))
        J = joint_design([A1, A2])
        assert J.shape == (3, 6)
        assert J[2, 0] == 0
        assert J[2, 3] == 2

    def test_time_index_out_of_range(self):
        mesh = rectangle_mesh(3, 3)
        with pytest.raises(ValueError):
            spacetime_design(mesh, TemporalMesh(nt=2), np.array([[0.5, 0.5]]), np.array([5]))


class TestAssembly:
    def test_dimensions_match_paper_formula(self, tiny_model):
        model, _, _ = tiny_model
        assert model.N == model.nv * (model.ns * model.nt + model.nr)

    def test_qp_bta_matches_sparse(self, tiny_model):
        """The BTA block stacks must equal the permuted sparse matrix."""
        model, gt, _ = tiny_model
        sys = model.assemble(gt.theta)
        assert np.allclose(sys.qp.to_dense(), sys.qp_csr.toarray(), atol=1e-12)

    def test_qc_is_qp_plus_gram(self, tiny_model):
        model, gt, _ = tiny_model
        qp, qc, rhs, taus = model.assemble_sparse(gt.theta)
        gram = sum(t * g for t, g in zip(taus, model._grams))
        assert np.allclose(qc.toarray(), (qp + gram).toarray(), atol=1e-10)

    def test_qc_spd(self, tiny_model):
        model, gt, _ = tiny_model
        sys = model.assemble(gt.theta)
        w = np.linalg.eigvalsh(sys.qc.to_dense())
        assert w.min() > 0

    def test_assemble_consistent_with_sparse(self, tiny_model):
        model, gt, _ = tiny_model
        sys = model.assemble(gt.theta)
        qp_var, qc_var, rhs_var, _ = model.assemble_sparse(gt.theta)
        p = model.permutation.perm.perm
        assert np.allclose(sys.qc.to_dense(), qc_var.toarray()[np.ix_(p, p)], atol=1e-12)
        assert np.allclose(sys.rhs, rhs_var[p])

    def test_zero_lambda_assembles(self, tiny_model):
        """lambda = 0 shrinks the numeric pattern; alignment must absorb it."""
        model, gt, _ = tiny_model
        theta = gt.theta.copy()
        theta[model.layout.lambda_slice()] = 0.0
        sys = model.assemble(theta)
        assert np.isfinite(sys.qp.frobenius_norm())

    def test_split_latent_shapes(self, tiny_model):
        model, gt, latent = tiny_model
        parts = model.split_latent(model.permutation.permute_vector(latent))
        assert len(parts) == model.nv
        st, fixed = parts[0]
        assert st.shape == (model.nt, model.ns)
        assert fixed.shape == (model.nr,)

    def test_mismatched_nr_rejected(self):
        mesh = rectangle_mesh(3, 3)
        tmesh = TemporalMesh(nt=2)
        r1 = ResponseData(
            coords=np.array([[0.5, 0.5]]),
            time_idx=np.array([0]),
            covariates=np.ones((1, 1)),
            y=np.zeros(1),
        )
        r2 = ResponseData(
            coords=np.array([[0.5, 0.5]]),
            time_idx=np.array([0]),
            covariates=np.ones((1, 2)),
            y=np.zeros(1),
        )
        with pytest.raises(ValueError):
            CoregionalSTModel(mesh, tmesh, [r1, r2])


class TestDatasets:
    def test_table_iv_total_dims(self):
        """N = nv (ns nt + nr) for every Table IV row (paper Sec. IV-B)."""
        assert TABLE_IV["MB1"].N == 1 * (4002 * 250 + 6) == 1_000_506
        assert TABLE_IV["SA1"].N == 3 * (1675 * 192 + 1) == 964_803
        assert TABLE_IV["AP1"].N == 3 * (4210 * 48 + 2) == 606_246
        assert TABLE_IV["WA1"].dim_theta == 15
        assert TABLE_IV["MB1"].dim_theta == 4

    def test_make_dataset_reproducible(self):
        m1, g1, l1 = make_dataset(nv=1, ns=12, nt=3, nr=1, obs_per_step=8, seed=3)
        m2, g2, l2 = make_dataset(nv=1, ns=12, nt=3, nr=1, obs_per_step=8, seed=3)
        assert np.array_equal(l1, l2)
        assert np.array_equal(m1.likelihood.y, m2.likelihood.y)

    def test_make_dataset_observations_follow_latent(self, tiny_uni_model):
        model, gt, latent = tiny_uni_model
        eta = np.asarray(model.A @ latent).ravel()
        resid = model.likelihood.y - eta
        tau = model.layout.taus(gt.theta)[0]
        # Residual variance should match the observation noise level.
        assert np.isclose(resid.var(), 1.0 / tau, rtol=0.4)
