"""Synthetic air-pollution dataset (Sec. VI substrate)."""

import numpy as np
import pytest

from repro.model.pollution import (
    ELEVATION_EFFECTS,
    PAPER_LAMBDAS,
    POLLUTANTS,
    coarse_grid,
    coast_distance,
    downscaling_grid,
    elevation_km,
    make_pollution_dataset,
)


@pytest.fixture(scope="module")
def dataset():
    return make_pollution_dataset(ns=60, n_days=4, obs_cells=50, seed=7)


class TestGeography:
    def test_elevation_positive_and_bounded(self):
        pts = coarse_grid(0.2)
        e = elevation_km(pts)
        assert np.all(e >= 0)
        assert e.max() < 4.0  # the Alps, not the Himalaya

    def test_alps_higher_than_po_valley(self):
        north = elevation_km(np.array([[9.0, 46.5]]))
        valley = elevation_km(np.array([[9.0, 45.1]]))
        assert north[0] > valley[0] + 0.5

    def test_coast_distance_nonnegative(self):
        pts = coarse_grid(0.3)
        assert np.all(coast_distance(pts) >= 0)

    def test_grids_nest(self):
        coarse = coarse_grid(0.1)
        fine = downscaling_grid(factor=5)
        assert len(fine) == pytest.approx(25 * len(coarse), rel=0.05)


class TestDataset:
    def test_shapes(self, dataset):
        model = dataset.model
        assert model.nv == 3
        assert model.nr == 2  # intercept + elevation
        assert model.nt == dataset.n_days
        assert dataset.latent_true.shape == (model.N,)

    def test_ground_truth_fixed_effects_injected(self, dataset):
        model = dataset.model
        stride = model.dim_process
        k = model.ns * model.nt
        for v in range(3):
            assert dataset.latent_true[v * stride + k] == 0.0  # intercept
            assert dataset.latent_true[v * stride + k + 1] == ELEVATION_EFFECTS[v]

    def test_observation_noise_level(self, dataset):
        model = dataset.model
        eta = np.asarray(model.A @ dataset.latent_true).ravel()
        resid = model.likelihood.y - eta
        tau = dataset.layout.taus(dataset.theta_true)[0]
        assert np.isclose(resid.var(), 1.0 / tau, rtol=0.5)

    def test_lambda_truth_gives_paper_correlations(self, dataset):
        corr = dataset.model.coreg.response_correlations(
            dataset.layout.sigmas(dataset.theta_true), PAPER_LAMBDAS
        )
        assert corr[0, 1] > 0.9  # PM2.5-PM10 strongly positive
        assert corr[0, 2] < -0.3  # both negative with O3
        assert corr[1, 2] < -0.3

    def test_reproducible(self):
        a = make_pollution_dataset(ns=40, n_days=3, obs_cells=30, seed=1)
        b = make_pollution_dataset(ns=40, n_days=3, obs_cells=30, seed=1)
        assert np.array_equal(a.model.likelihood.y, b.model.likelihood.y)

    def test_fobj_finite_at_truth(self, dataset):
        from repro.inla import evaluate_fobj

        r = evaluate_fobj(dataset.model, dataset.theta_true)
        assert np.isfinite(r.value)

    def test_pollutant_names(self):
        assert POLLUTANTS == ("PM2.5", "PM10", "O3")
        assert len(ELEVATION_EFFECTS) == 3
