"""Assembly flop/byte accounting (ISSUE 5 satellite).

Same contract as every other counter in ``flops.py``: batched and
looped assembly execute identical arithmetic, so the counts are linear
in the batch size and independent of the strategy keywords.
"""

from repro.model.datasets import make_dataset
from repro.perfmodel.flops import bta_assembly_bytes, bta_assembly_flops


class TestAssemblyCounts:
    def test_linear_in_theta_batch(self):
        one = bta_assembly_flops(3, 10, 150, 1600, 800, 500)
        assert bta_assembly_flops(3, 10, 150, 1600, 800, 500, n_theta=9) == 9 * one
        assert bta_assembly_bytes(5000, 5400, n_theta=9) == 9 * bta_assembly_bytes(5000, 5400)

    def test_strategy_keywords_do_not_change_counts(self):
        base = bta_assembly_flops(2, 8, 100, 900, 400, 300)
        assert bta_assembly_flops(2, 8, 100, 900, 400, 300, batched=True) == base
        assert bta_assembly_flops(2, 8, 100, 900, 400, 300, stacked=True) == base

    def test_plan_reports_its_own_shape(self):
        model, _, _ = make_dataset(nv=2, ns=10, nt=3, nr=1, obs_per_step=8, seed=2)
        plan = model.plan
        expected = bta_assembly_flops(
            plan.nv, plan.ntt, plan.nnz_s, plan.nnz_u, plan.gram_nnz, plan.N
        )
        assert plan.flops() == expected
        assert plan.flops(4) == 4 * expected
        assert plan.bytes_moved() == bta_assembly_bytes(plan.nnz_p, plan.nnz_c)
