"""Host calibration of the performance model."""

import numpy as np
import pytest

from repro.perfmodel.calibrate import (
    KernelSample,
    PotrfSplitSample,
    calibrated_host_machine,
    fit_efficiency_law,
    measure_factorization,
    measure_potrf_split,
    print_potrf_recommendation,
    recommend_potrf_split,
)


class TestMeasurement:
    def test_samples_have_positive_rates(self):
        samples = measure_factorization((4, 8), n_blocks=6, repeats=1)
        assert len(samples) == 2
        for s in samples:
            assert s.seconds > 0
            assert s.rate > 0

    def test_rate_grows_with_block_size(self):
        """Bigger blocks amortize per-call overhead -> higher flop rate."""
        samples = measure_factorization((4, 64), n_blocks=8, repeats=2)
        assert samples[1].rate > samples[0].rate


class TestFit:
    def test_recovers_synthetic_law(self):
        peak, b_half = 5e10, 24.0
        samples = []
        for b in (4, 8, 16, 32, 64, 128):
            eff = b**3 / (b**3 + b_half**3)
            rate = peak * eff
            flops = KernelSample(b=b, n=10, seconds=1.0).flops
            samples.append(KernelSample(b=b, n=10, seconds=flops / rate))
        p, bh = fit_efficiency_law(samples)
        assert np.isclose(p, peak, rtol=0.05)
        assert np.isclose(bh, b_half, rtol=0.15)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_efficiency_law([KernelSample(b=8, n=4, seconds=0.1)])


class TestEndToEnd:
    def test_calibrated_machine_is_usable(self):
        m = calibrated_host_machine(block_sizes=(4, 8, 16), n_blocks=6)
        assert m.device.gemm_tflops > 0
        assert m.b_half > 0
        # Predictions from the fitted model must be positive and monotone.
        t1 = m.kernel_time(1e9, 16)
        t2 = m.kernel_time(2e9, 16)
        assert 0 < t1 < t2


class TestPotrfSplitCalibration:
    def test_measurement_shape(self):
        samples = measure_potrf_split((16, 32), repeats=1)
        assert [s.b for s in samples] == [16, 32]
        for s in samples:
            assert s.t_direct > 0 and s.t_split > 0 and s.speedup > 0

    def test_recommendation_logic(self):
        """The threshold is the smallest size from which wins persist."""
        mk = lambda b, x: PotrfSplitSample(b=b, t_direct=x, t_split=1.0)  # noqa: E731
        # Wins from 128 up; a noisy early win at 48 must not set it.
        samples = [mk(32, 0.5), mk(48, 1.5), mk(64, 0.9), mk(128, 1.2), mk(256, 1.3)]
        assert recommend_potrf_split(samples) == 128
        # Never wins -> None (keep the default).
        assert recommend_potrf_split([mk(64, 0.8), mk(128, 0.9)]) is None
        # Always wins -> smallest measured size.
        assert recommend_potrf_split([mk(64, 1.5), mk(128, 1.4)]) == 64

    def test_print_recommendation_smoke(self, capsys):
        rec = print_potrf_recommendation((16, 32), repeats=1)
        out = capsys.readouterr().out
        assert "blocked-POTRF crossover" in out
        assert rec is None or ("REPRO_POTRF_SPLIT" in out and rec in (16, 32))
