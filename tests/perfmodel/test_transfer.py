"""The transfer model predicts exactly what the mock backend measures.

Each workload profile in :mod:`repro.perfmodel.transfer` is an analytic
claim about how many host<->device crossings (and how many bytes) the
pipeline performs.  These tests run the real code under
:class:`MockDeviceBackend` — whose ``asarray``/``to_host`` count every
crossing — and require the measured ``TransferStats`` to match the
predicted :class:`TransferProfile` field for field.  A refactor that
adds a hidden round-trip (or drops a device-residency optimization)
shows up here as a count mismatch before it ever costs wall time on a
GPU.
"""

import numpy as np
import pytest

from repro.backend.mock import MOCK_DEVICE_BACKEND
from repro.perfmodel import (
    CPU_BASELINE_MACHINE,
    GH200_MACHINE,
    DaliaPerfModel,
    TransferProfile,
    device_execution_pays,
    factorize_host_matrix_profile,
    sample_profile,
    selected_inverse_profile,
    solve_stack_profile,
    stencil_batch_profile,
)
from repro.perfmodel.scaling import ModelShape
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.factor import factorize

SHAPE = BTAShape(n=5, b=4, a=3)


@pytest.fixture
def be():
    MOCK_DEVICE_BACKEND.transfers.reset()
    yield MOCK_DEVICE_BACKEND
    MOCK_DEVICE_BACKEND.transfers.reset()


def _measured(be) -> TransferProfile:
    return TransferProfile.from_stats(be.transfers)


def _device_factor(be, rng):
    A = BTAMatrix.random_spd(SHAPE, rng)
    f = factorize(
        BTAMatrix(be.asarray(A.diag), be.asarray(A.lower), be.asarray(A.arrow), be.asarray(A.tip))
    )
    be.transfers.reset()
    return f


class TestProfilesMatchMeasurement:
    def test_factorize_host_matrix(self, be, rng):
        A = BTAMatrix.random_spd(SHAPE, rng)
        dev = BTAMatrix(
            be.asarray(A.diag), be.asarray(A.lower), be.asarray(A.arrow), be.asarray(A.tip)
        )
        assert _measured(be) == factorize_host_matrix_profile(SHAPE.n, SHAPE.b, SHAPE.a)
        # Factorizing device-resident data crosses nothing further.
        factorize(dev)
        assert _measured(be).crossings == 4

    def test_solve_stack(self, be, rng):
        f = _device_factor(be, rng)
        x = f.solve_stack(rng.standard_normal((3, f.N)))
        be.to_host(x)
        assert _measured(be) == solve_stack_profile(f.N, 3)

    def test_sample(self, be, rng):
        f = _device_factor(be, rng)
        be.to_host(f.sample(4, rng))
        assert _measured(be) == sample_profile(f.N, 4)

    def test_sample_with_mean(self, be, rng):
        f = _device_factor(be, rng)
        mean = rng.standard_normal(f.N)
        be.to_host(f.sample(4, rng, mean=mean))
        assert _measured(be) == sample_profile(f.N, 4, with_mean=True)

    def test_selected_inverse(self, be, rng):
        f = _device_factor(be, rng)
        be.to_host(f.selected_inverse_diagonal())
        assert _measured(be) == selected_inverse_profile(f.N)

    def test_stencil_batch(self, be, monkeypatch, tiny_uni_model):
        """The full theta-batched objective sweep: one H2D (the RHS
        stack) + three D2H (mean stack, two logdet stacks) — everything
        else stays device-resident between assembly and epilogue."""
        from repro.inla.evaluator import FobjEvaluator

        model, gt, _ = tiny_uni_model
        monkeypatch.setenv("REPRO_BACKEND", "mock_device")
        ev = FobjEvaluator(model, batch_stencils=True, cache_size=0)
        be.transfers.reset()
        ev.value_and_gradient(gt.theta, h=1e-4)
        t = 2 * model.layout.dim + 1  # full central-difference stencil
        assert _measured(be) == stencil_batch_profile(model.N, t)


class TestMachineTransferTime:
    def test_latency_plus_volume(self):
        m = GH200_MACHINE
        assert m.transfer_time(0, n_crossings=0) == 0.0
        assert m.transfer_time(0, n_crossings=2) == pytest.approx(2 * m.h2d_latency_s)
        assert m.transfer_time(1e9, n_crossings=1) == pytest.approx(
            m.h2d_latency_s + 1e9 / m.h2d_bandwidth
        )
        with pytest.raises(ValueError):
            m.transfer_time(-1.0)

    def test_gh200_link_beats_pcie_default(self):
        # NVLink-C2C vs. the conservative PCIe-class default.
        assert GH200_MACHINE.h2d_bandwidth > CPU_BASELINE_MACHINE.h2d_bandwidth

    def test_profile_time_additive(self):
        p = stencil_batch_profile(1000, 9) + sample_profile(1000, 4)
        assert p.crossings == 4 + 2
        assert p.time(GH200_MACHINE) == pytest.approx(
            GH200_MACHINE.transfer_time(p.bytes_moved, n_crossings=p.crossings)
        )


class TestOffloadDecision:
    def test_stencil_transfer_negligible_at_paper_scale(self):
        """The design point the pipeline is built around: per stencil
        wave the link cost is microseconds against second-scale
        factorizations, so device execution always pays once the solver
        itself does."""
        shape = ModelShape(nv=3, ns=1675, nt=192, nr=1)
        m = DaliaPerfModel()
        assert m.stencil_transfer_time(shape) < 1e-2 * m.factorization_time(shape, 1)

    def test_device_execution_pays(self):
        p = stencil_batch_profile(1000, 9)
        assert device_execution_pays(1.0, 0.1, p)
        # A huge transfer bill flips the decision.
        slow = TransferProfile(1, int(1e15), 0, 0)
        assert not device_execution_pays(1.0, 0.1, slow)
