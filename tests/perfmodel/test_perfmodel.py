"""Performance model: flop counts, machine model, paper-shape predictions.

These tests pin the *qualitative* claims of the paper's evaluation:
speedup orders, efficiency declines, load-balancing behaviour, crossover
regimes.  Absolute GH200 seconds are calibration, not assertions.
"""

import pytest

from repro.perfmodel import (
    DaliaPerfModel,
    GH200_MACHINE,
    RInlaPerfModel,
    bta_factorization_flops,
    bta_selected_inversion_flops,
    bta_solve_flops,
    parallel_efficiency,
    partition_factorization_flops,
)
from repro.perfmodel.flops import (
    bta_batch_factorization_flops,
    bta_batch_solve_flops,
    bta_solve_and_selected_inversion_flops,
    bta_solve_lt_flops,
    d_pobtaf_critical_flops,
    d_pobtas_critical_flops,
    reduced_system_blocks,
)
from repro.perfmodel.scaling import ModelShape, ScalingPoint
from repro.structured.partition import partition_counts


class TestFlopCounts:
    def test_factorization_cubic_in_b(self):
        ratio = bta_factorization_flops(10, 40, 0) / bta_factorization_flops(10, 20, 0)
        assert ratio == pytest.approx(8, rel=0.05)

    def test_factorization_linear_in_n(self):
        assert bta_factorization_flops(20, 32, 4) == pytest.approx(
            2 * bta_factorization_flops(10, 32, 4) - 4**3 / 3, rel=1e-9
        )

    def test_solve_cheaper_than_factorization(self):
        """Paper Sec. V-C: triangular solve ~ an order of magnitude cheaper."""
        n, b, a = 128, 1675, 6
        assert bta_solve_flops(n, b, a) < 0.1 * bta_factorization_flops(n, b, a)

    def test_selected_inversion_same_order_as_factorization(self):
        n, b, a = 64, 500, 6
        r = bta_selected_inversion_flops(n, b, a) / bta_factorization_flops(n, b, a)
        assert 0.5 < r < 5.0

    def test_middle_partition_about_twice_first(self):
        """The source of the paper's lb = 1.6 load balancing."""
        f = partition_factorization_flops(32, 200, 4, first=True)
        m = partition_factorization_flops(32, 200, 4, first=False)
        assert 1.5 < m / f < 2.5

    def test_reduced_system_size(self):
        assert reduced_system_blocks(4) == 7
        assert reduced_system_blocks(1) == 1

    def test_multi_rhs_counts_linear_in_k(self):
        """Stacked and looped strategies count identically: k x single-RHS."""
        n, b, a = 96, 32, 4
        for k in (2, 8, 64):
            assert bta_solve_flops(n, b, a, k, stacked=True) == bta_solve_flops(
                n, b, a, k, stacked=False
            )
            assert bta_solve_flops(n, b, a, k) == k * bta_solve_flops(n, b, a, 1)
            assert bta_solve_lt_flops(n, b, a, k) == k * bta_solve_lt_flops(n, b, a, 1)

    def test_theta_batch_counts_linear_in_t(self):
        """Theta-batched and looped stencil strategies count identically:
        one batched sweep = t x the single-matrix flops (batching
        amortizes chain steps and dispatch, not arithmetic)."""
        n, b, a = 96, 32, 4
        for t in (1, 7, 31):
            assert bta_batch_factorization_flops(t, n, b, a, stacked=True) == (
                bta_batch_factorization_flops(t, n, b, a, stacked=False)
            )
            assert bta_batch_factorization_flops(t, n, b, a) == (
                t * bta_factorization_flops(n, b, a)
            )
            assert bta_batch_solve_flops(t, n, b, a, stacked=True) == (
                bta_batch_solve_flops(t, n, b, a, stacked=False)
            )
            assert bta_batch_solve_flops(t, n, b, a) == t * bta_solve_flops(n, b, a, 1)

    def test_lt_sweep_is_half_a_solve(self):
        n, b, a, k = 64, 48, 6, 8
        assert bta_solve_lt_flops(n, b, a, k) == pytest.approx(
            0.5 * bta_solve_flops(n, b, a, k), rel=1e-12
        )

    def test_fused_solve_sinv_counts_sum(self):
        """Fusion saves a factorization (counted by the caller), not flops."""
        n, b, a, k = 64, 32, 4, 3
        assert bta_solve_and_selected_inversion_flops(n, b, a, k) == pytest.approx(
            bta_solve_flops(n, b, a, k) + bta_selected_inversion_flops(n, b, a), rel=1e-12
        )

    def test_distributed_solve_critical_path_linear_in_k(self):
        counts = partition_counts(64, 4, lb=1.6)
        one = d_pobtas_critical_flops(counts, 32, 4, 1)
        eight = d_pobtas_critical_flops(counts, 32, 4, 8)
        assert eight == pytest.approx(8 * one, rel=1e-12)

    def test_load_balancing_reduces_critical_path(self):
        """Fig. 5's headline effect: lb = 1.6 cuts the 2-partition makespan."""
        n, b, a = 256, 300, 4
        even = d_pobtaf_critical_flops(partition_counts(n, 2, lb=1.0), b, a)
        balanced = d_pobtaf_critical_flops(partition_counts(n, 2, lb=1.6), b, a)
        assert balanced < even
        # Roughly the ~30% improvement the paper reports for P = 2.
        assert 0.55 < balanced / even < 0.92

    def test_load_balancing_hurts_solve(self):
        """Fig. 5: the triangular solve performs worse under lb tuned for
        the b^3 kernels — it is launch-latency bound, so the longer first
        partition directly lengthens its sweep."""
        shape = ModelShape(nv=1, ns=300, nt=256, nr=4)
        model = DaliaPerfModel()
        even = model.solve_time(shape, 2, lb=1.0)
        balanced = model.solve_time(shape, 2, lb=1.6)
        assert balanced >= even


class TestMachineModel:
    def test_efficiency_monotone_in_b(self):
        m = GH200_MACHINE
        assert m.gemm_efficiency(64) < m.gemm_efficiency(512) < m.gemm_efficiency(4096)

    def test_kernel_time_positive_and_monotone(self):
        m = GH200_MACHINE
        assert m.kernel_time(1e12, 500) < m.kernel_time(2e12, 500)

    def test_allreduce_zero_for_single_rank(self):
        assert GH200_MACHINE.allreduce_time(1e6, 1) == 0.0

    def test_invalid_flops(self):
        with pytest.raises(ValueError):
            GH200_MACHINE.kernel_time(-1.0, 10)


class TestPaperShapes:
    """The headline numbers of the paper, as shape assertions."""

    def setup_method(self):
        self.dalia = DaliaPerfModel()
        self.rinla = RInlaPerfModel()
        self.mb1 = ModelShape(nv=1, ns=4002, nt=250, nr=6)
        self.sa1 = ModelShape(nv=3, ns=1675, nt=192, nr=1)

    def test_mb1_single_gpu_speedup(self):
        """Fig. 4: DALIA one GPU beats R-INLA by ~an order of magnitude."""
        s = self.rinla.iteration_time(self.mb1, s1=9) / self.dalia.iteration_time(self.mb1)
        assert 6 < s < 25  # paper: 12.6x

    def test_mb1_18gpu_two_orders(self):
        """Fig. 4: 18 GPUs -> >= two orders of magnitude over R-INLA."""
        t18 = self.dalia.iteration_time(self.mb1, s1=9, s2=2)
        s = self.rinla.iteration_time(self.mb1, s1=9) / t18
        assert s > 100  # paper: 180x

    def test_sa1_three_orders_at_496(self):
        """Fig. 7: three orders of magnitude at 496 GPUs."""
        t = self.dalia.iteration_time(self.sa1, s1=31, s2=2, s3=8)
        s = self.rinla.iteration_time(self.sa1, s1=8) / t
        assert s > 1000

    def test_sa1_efficiency_declines(self):
        """Fig. 7: near-perfect efficiency at 31, decline by 496."""
        t1 = self.dalia.iteration_time(self.sa1)
        t31 = self.dalia.iteration_time(self.sa1, s1=31)
        t496 = self.dalia.iteration_time(self.sa1, s1=31, s2=2, s3=8)
        eff31 = t1 / (31 * t31)
        eff496 = t1 / (496 * t496)
        assert eff31 > 0.8  # paper: ~1.0 up to 31 GPUs
        assert 0.1 < eff496 < 0.6  # paper: 28.3%
        assert eff496 < eff31

    def test_small_model_construction_dominated(self):
        """Sec. V-D: for small models most time is NOT in the solver."""
        tiny = ModelShape(nv=3, ns=1247, nt=2, nr=1)
        solver = 2 * self.dalia.factorization_time(tiny, 1) + self.dalia.solve_time(tiny, 1)
        total = self.dalia.eval_time(tiny)
        assert solver / total < 0.5

    def test_large_model_solver_dominated(self):
        """Sec. V-D1: from ~64 steps the solver is ~90% of the runtime."""
        big = ModelShape(nv=3, ns=1247, nt=512, nr=1)
        solver = 2 * self.dalia.factorization_time(big, 1) + self.dalia.solve_time(big, 1)
        total = self.dalia.eval_time(big)
        assert solver / total > 0.7

    def test_superlinear_small_weak_scaling(self):
        """Fig. 6a: weak scaling through S1 is superlinear for small models."""
        d = self.dalia
        t_small = d.iteration_time(ModelShape(nv=3, ns=1247, nt=2, nr=1), s1=1)
        t_big = d.iteration_time(ModelShape(nv=3, ns=1247, nt=32, nr=1), s1=16, s2=1)
        assert t_small / t_big > 1.0  # more work AND faster per iteration


class TestScalingUtilities:
    def test_strong_efficiency(self):
        pts = [ScalingPoint(1, 10.0), ScalingPoint(2, 5.0), ScalingPoint(4, 4.0)]
        eff = parallel_efficiency(pts)
        assert eff[0] == 1.0
        assert eff[1] == pytest.approx(1.0)
        assert eff[2] == pytest.approx(10.0 / 16.0)

    def test_weak_efficiency(self):
        pts = [ScalingPoint(1, 10.0), ScalingPoint(4, 12.5)]
        assert parallel_efficiency(pts, weak=True)[1] == pytest.approx(0.8)

    def test_empty(self):
        assert parallel_efficiency([]) == []
