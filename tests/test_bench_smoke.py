"""Tier-1 smoke wiring for ``benchmarks/bench_batched_kernels.py``.

Runs the benchmark's smoke shape (one mid-sized BTA problem, a few
seconds) inside the regular test suite so that

- a *correctness* divergence between the batched and per-block kernel
  paths (> 1e-10) fails every tier-1 run,
- a *flop-accounting* divergence between the paths fails every tier-1 run,
- a gross *performance* regression of the batched path (falling toward or
  below per-block speed) fails every tier-1 run, and
- with ``pytest --bench-smoke`` the thresholds tighten to the speedups
  measured on this host (see ``benchmarks/results/batched_kernels.txt``).

Methodology: **paired medians**.  Each rep times both paths back-to-back
on the same machine state and the gated statistic is the median of the
per-rep ratios, so the 20-30% second-to-second drift of shared-vCPU
runners cancels inside each pair — the ROADMAP follow-up that replaced
the flaky best-of-N gates.  The strict floors are set with margin below
this host's paired medians (f+s 2.4-2.6x, sinv 3.2-3.5x at the smoke
shape); the lenient tier-1 floors are far below that so only a real
regression — e.g. the batched path degrading to per-block dispatch —
can trip them.
"""

import importlib.util
import pathlib
import sys

_BENCH = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "bench_batched_kernels.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_batched_kernels", _BENCH)
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_batched_kernels", mod)
    spec.loader.exec_module(mod)
    return mod


def test_bench_batched_smoke(request):
    bench = _load_bench()
    strict = request.config.getoption("--bench-smoke")
    # Strict mode takes more reps: the median over more pairs is what
    # keeps a single-CPU CI host's scheduling noise out of the gate.
    case = bench.smoke_case(reps=4 if strict else 2)

    # Correctness and accounting gates — always strict.
    assert case.max_err < 1e-10, case.max_err
    assert case.flops_equal

    # Paired-median floors.  Strict sits with margin under the measured
    # medians (2.4-2.6x / 3.2-3.5x); lenient survives foreign LAPACK
    # builds whose blocked TRSM kernels narrow the gap, yet still trips
    # if the batched path degrades to per-block dispatch (~1.0x).
    fs_floor, sinv_floor = (1.9, 2.6) if strict else (1.25, 1.5)
    assert case.speedup_fact_solve >= fs_floor, (
        f"batched factorization+solve paired-median speedup "
        f"{case.speedup_fact_solve:.2f}x below floor {fs_floor}x — batched path regressed"
    )
    assert case.speedup("sinv") >= sinv_floor, (
        f"batched selected-inversion paired-median speedup "
        f"{case.speedup('sinv'):.2f}x below floor {sinv_floor}x — batched path regressed"
    )
