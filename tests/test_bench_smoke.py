"""Tier-1 smoke wiring for ``benchmarks/bench_batched_kernels.py``.

Runs the benchmark's smoke shape (one mid-sized BTA problem, a few
seconds) inside the regular test suite so that

- a *correctness* divergence between the batched and per-block kernel
  paths (> 1e-10) fails every tier-1 run,
- a *flop-accounting* divergence between the paths fails every tier-1 run,
- a gross *performance* regression of the batched path (falling toward or
  below per-block speed) fails every tier-1 run, and
- with ``pytest --bench-smoke`` the thresholds tighten to the speedups
  measured on this host (see ``benchmarks/results/batched_kernels.txt``).

The lenient default floors are far below the measured speedups (~2.7x for
the objective workload, ~3.5x for selected inversion at the smoke shape)
so machine noise cannot flake tier-1, while a real regression — e.g. the
batched path silently falling back to per-block dispatch — still trips.
"""

import importlib.util
import pathlib
import sys

_BENCH = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "bench_batched_kernels.py"


def _load_bench():
    spec = importlib.util.spec_from_file_location("bench_batched_kernels", _BENCH)
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_batched_kernels", mod)
    spec.loader.exec_module(mod)
    return mod


def test_bench_batched_smoke(request):
    bench = _load_bench()
    strict = request.config.getoption("--bench-smoke")
    # Strict mode takes more reps: best-of-N timing is what keeps a
    # single-CPU CI host's scheduling noise out of the measured ratio.
    case = bench.smoke_case(reps=4 if strict else 2)

    # Correctness and accounting gates — always strict.
    assert case.max_err < 1e-10, case.max_err
    assert case.flops_equal

    # Default floors are deliberately far below this host's measurements:
    # they must survive timing noise AND a host whose LAPACK ships blocked
    # (fast) TRSM kernels, where the per-block reference path narrows the
    # gap.  They still trip if the batched path degrades to per-block
    # dispatch (speedup ~1.0x).  Strict floors recalibrated against this
    # host's current best-of-4 measurements (f+s 2.4-2.7x, sinv 3.3-3.9x
    # at the smoke shape): the old 2.2x f+s floor sat inside the noise
    # band of the 1-core container and flaked even on the pristine
    # PR 1 tree.
    fs_floor, sinv_floor = (2.0, 2.8) if strict else (1.25, 1.5)
    assert case.speedup_fact_solve >= fs_floor, (
        f"batched factorization+solve speedup {case.speedup_fact_solve:.2f}x "
        f"below floor {fs_floor}x — batched path regressed"
    )
    assert case.speedup("sinv") >= sinv_floor, (
        f"batched selected-inversion speedup {case.speedup('sinv'):.2f}x "
        f"below floor {sinv_floor}x — batched path regressed"
    )
