"""Cross-module integration tests.

These exercise complete paths through the stack that no single module
test covers: the three-layer parallel pipeline over real SPMD groups, the
GMRF density against scipy, sampling correctness, and the examples'
entry points.
"""

import numpy as np
import pytest
from scipy.stats import multivariate_normal

from repro.comm import ProcessGrid, run_spmd, split_process_grid
from repro.inla import DALIA, DistributedSolver, evaluate_fobj
from repro.inla.bfgs import BFGSOptions
from repro.model.datasets import make_dataset
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.pobtaf import pobtaf
from repro.structured.pobtas import pobtas_lt


class TestGMRFDensity:
    def test_logpdf_matches_scipy(self, rng):
        """Eq. 1's GMRF density via BTA logdet == scipy's dense mvn."""
        shape = BTAShape(n=5, b=3, a=2)
        Q = BTAMatrix.random_spd(shape, rng)
        Qd = Q.to_dense()
        x = rng.standard_normal(shape.N)
        chol = pobtaf(Q)
        ours = 0.5 * chol.logdet() - 0.5 * x @ Q.matvec(x) - 0.5 * shape.N * np.log(2 * np.pi)
        ref = multivariate_normal(mean=np.zeros(shape.N), cov=np.linalg.inv(Qd)).logpdf(x)
        assert np.isclose(ours, ref, atol=1e-8)

    def test_prior_sampling_statistics(self, rng):
        """pobtas_lt sampling: empirical precision ~ Q on the diagonal."""
        shape = BTAShape(n=3, b=3, a=1)
        Q = BTAMatrix.random_spd(shape, rng)
        chol = pobtaf(Q)
        Z = rng.standard_normal((shape.N, 40000))
        X = pobtas_lt(chol, Z)
        emp_cov_diag = (X**2).mean(axis=1)
        ref = np.diag(np.linalg.inv(Q.to_dense()))
        assert np.allclose(emp_cov_diag, ref, rtol=0.1)


class TestThreeLayerPipeline:
    def test_full_grid_objective(self):
        """S1 x S2 x S3 process grid evaluating fobj collaboratively.

        Each S1 group evaluates one stencil point; inside, the solver group
        runs the distributed factorization.  The aggregated values must be
        identical to serial evaluation.
        """
        model, gt, _ = make_dataset(nv=1, ns=16, nt=6, nr=1, obs_per_step=12, seed=9)
        h = 1e-4
        points = [gt.theta.copy(), gt.theta.copy(), gt.theta.copy(), gt.theta.copy()]
        points[1][0] += h
        points[2][1] += h
        points[3][2] += h
        grid = ProcessGrid(s1=4, s2=1, s3=2)

        def rank_fn(comm):
            gc = split_process_grid(comm, grid)
            theta = points[gc.i1]
            # Every rank of an eval group computes the same value through
            # the S3-distributed solver (thread-ranks inside thread-ranks
            # would deadlock the shared pool, so S3 here is per-group).
            val = evaluate_fobj(model, theta, solver=DistributedSolver(gc.grid.s3)).value
            # Aggregate one value per S1 group: group leaders contribute.
            contrib = val if (gc.i2 == 0 and gc.i3 == 0) else 0.0
            vec = np.zeros(4)
            vec[gc.i1] = contrib
            return gc.world.Allreduce(vec)

        out = run_spmd(grid.nprocs, rank_fn)
        ref = np.array([evaluate_fobj(model, t).value for t in points])
        for o in out:
            assert np.allclose(o, ref, atol=1e-9)

    def test_dalia_with_distributed_solver_end_to_end(self):
        model, gt, _ = make_dataset(nv=1, ns=16, nt=6, nr=1, obs_per_step=15, seed=3)
        seq = DALIA(model).fit(options=BFGSOptions(max_iter=25))
        dist = DALIA(model, solver=DistributedSolver(2)).fit(options=BFGSOptions(max_iter=25))
        assert np.allclose(seq.theta_mode, dist.theta_mode, atol=1e-8)
        assert np.allclose(seq.latent.sd, dist.latent.sd, rtol=1e-8)


class TestExamples:
    """The examples must at least import and expose a main()."""

    @pytest.mark.parametrize(
        "name", ["quickstart", "air_pollution", "distributed_solver", "scaling_prediction"]
    )
    def test_example_importable(self, name):
        import importlib.util
        import pathlib

        path = pathlib.Path(__file__).parent.parent / "examples" / f"{name}.py"
        spec = importlib.util.spec_from_file_location(name, path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert callable(mod.main)

    def test_distributed_solver_example_runs(self, capsys):
        import importlib.util
        import pathlib

        path = pathlib.Path(__file__).parent.parent / "examples" / "distributed_solver.py"
        spec = importlib.util.spec_from_file_location("ds_example", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        mod.main()
        out = capsys.readouterr().out
        assert "P=4 lb=1.6" in out
        assert "e-1" in out or "0.00e+00" in out  # tiny errors reported


class TestVersioning:
    def test_public_api(self):
        import repro

        assert repro.__version__ == "1.2.0"
        assert hasattr(repro, "DALIA")
        assert hasattr(repro, "make_dataset")
