"""The exposed term/coefficient decomposition agrees with ``precision``.

The 9-term Kronecker expansion is encoded in three places — the
``(T_j, S_j)`` pair list (:meth:`term_bases`), the coefficient rows
(:meth:`term_coefficient_stack`), and the assembler's factored
evaluation (``SymbolicAssembly._coeff_map`` / ``_temporal_mix``).  These
tests pin all of them to the one ground truth (``precision`` /
``spatial_operators``), so a reorder in any copy fails loudly instead
of silently diverging.
"""

import numpy as np

from repro.meshes.mesh2d import rectangle_mesh
from repro.meshes.temporal import TemporalMesh
from repro.spde.matern import (
    spatial_operator_bases,
    spatial_operator_coefficients,
    spatial_operators,
)
from repro.spde.params import SpatioTemporalParams
from repro.spde.spatiotemporal import N_TERMS, SpatioTemporalSPDE


def _rel_err(a, b):
    scale = max(1.0, float(np.max(np.abs(b))))
    return float(np.max(np.abs(a - b))) / scale


class TestSpatialDecomposition:
    def test_operator_powers_from_bases(self, unit_mesh):
        """q_i == sum_j coeff_ij B_j for the (C, G, H2, H3) bases."""
        from repro.meshes.fem import fem_matrices

        CG = fem_matrices(unit_mesh)
        bases = spatial_operator_bases(CG)
        for kappa in (0.4, 1.0, 3.7):
            coeffs = spatial_operator_coefficients(kappa)
            powers = spatial_operators(CG, kappa)
            for row, q_ref in zip(coeffs, powers):
                q = sum(c * B for c, B in zip(row, bases))
                assert _rel_err(q.toarray(), q_ref.toarray()) < 1e-12

    def test_infeasible_kappa_raises(self, unit_mesh):
        import pytest

        with pytest.raises(ValueError, match="kappa"):
            spatial_operator_coefficients(0.0)


class TestSpatioTemporalDecomposition:
    def test_term_sum_reproduces_precision(self):
        """sum_j c_j (T_j (x) S_j) == precision(params) for every theta."""
        import scipy.sparse as sp

        spde = SpatioTemporalSPDE(rectangle_mesh(5, 4), TemporalMesh(nt=4))
        bases = spde.term_bases()
        assert len(bases) == N_TERMS
        for params in (
            SpatioTemporalParams(range_s=0.5, range_t=2.0, sigma=1.0),
            SpatioTemporalParams(range_s=1.3, range_t=0.7, sigma=2.5),
        ):
            c = spde.term_coefficients(params)
            Q = sum(cj * sp.kron(T, S, format="csr") for cj, (T, S) in zip(c, bases))
            assert _rel_err(Q.toarray(), spde.precision(params).toarray()) < 1e-10

    def test_scalar_and_stacked_coefficients_agree(self):
        spde = SpatioTemporalSPDE(rectangle_mesh(4, 4), TemporalMesh(nt=3))
        rs, rt = np.array([0.6, 1.4]), np.array([1.1, 0.8])
        stacked, ok = spde.term_coefficient_stack(rs, rt)
        assert ok.all()
        for i in range(2):
            params = SpatioTemporalParams(range_s=rs[i], range_t=rt[i], sigma=1.0)
            assert np.array_equal(spde.term_coefficients(params), stacked[i])

    def test_infeasible_params_flagged_not_raised(self):
        spde = SpatioTemporalSPDE(rectangle_mesh(4, 4), TemporalMesh(nt=3))
        _, ok = spde.term_coefficient_stack(np.array([1.0, np.inf]), np.array([1.0, 1.0]))
        assert list(ok) == [True, False]
