"""SPDE precision construction, parameter maps, priors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.meshes.mesh2d import rectangle_mesh
from repro.meshes.temporal import TemporalMesh
from repro.spde.matern import matern_precision, spatial_operators
from repro.spde.params import (
    SpatioTemporalParams,
    gammas_from_interpretable,
    interpretable_from_gammas,
)
from repro.spde.priors import GaussianPrior, PriorCollection
from repro.spde.spatiotemporal import SpatioTemporalSPDE


class TestMatern:
    def test_precision_spd(self, unit_mesh):
        Q = matern_precision(unit_mesh, range_=0.4, sigma=1.0)
        w = np.linalg.eigvalsh(Q.toarray())
        assert w.min() > 0

    def test_variance_scales_with_sigma(self, unit_mesh):
        Q1 = matern_precision(unit_mesh, range_=0.3, sigma=1.0)
        Q2 = matern_precision(unit_mesh, range_=0.3, sigma=2.0)
        v1 = np.diag(np.linalg.inv(Q1.toarray()))
        v2 = np.diag(np.linalg.inv(Q2.toarray()))
        assert np.allclose(v2, 4.0 * v1)

    def test_spatial_operator_powers(self, unit_mesh):
        q1, q2, q3 = spatial_operators(unit_mesh, kappa=2.0)
        from repro.meshes.fem import fem_matrices

        C, G = fem_matrices(unit_mesh)
        cinv = np.diag(1.0 / C.diagonal())
        K = (4.0 * C + G).toarray()
        assert np.allclose(q1.toarray(), K)
        assert np.allclose(q2.toarray(), K @ cinv @ K)
        assert np.allclose(q3.toarray(), K @ cinv @ K @ cinv @ K)

    def test_invalid_kappa(self, unit_mesh):
        with pytest.raises(ValueError):
            spatial_operators(unit_mesh, kappa=0.0)

    def test_correlation_decays_with_distance(self):
        mesh = rectangle_mesh(15, 15)
        Q = matern_precision(mesh, range_=0.2, sigma=1.0)
        S = np.linalg.inv(Q.toarray())
        center = np.argmin(np.linalg.norm(mesh.points - 0.5, axis=1))
        d = np.linalg.norm(mesh.points - mesh.points[center], axis=1)
        corr = S[center] / np.sqrt(S[center, center] * np.diag(S))
        near = corr[(d > 0.05) & (d < 0.15)].mean()
        far = corr[d > 0.45].mean()
        assert near > far
        assert far < 0.35


class TestParamMaps:
    @settings(max_examples=30, deadline=None)
    @given(
        rs=st.floats(0.05, 10.0),
        rt=st.floats(0.1, 50.0),
        sig=st.floats(0.1, 5.0),
    )
    def test_roundtrip(self, rs, rt, sig):
        p = SpatioTemporalParams(range_s=rs, range_t=rt, sigma=sig)
        q = interpretable_from_gammas(*gammas_from_interpretable(p))
        assert np.isclose(q.range_s, rs, rtol=1e-10)
        assert np.isclose(q.range_t, rt, rtol=1e-10)
        assert np.isclose(q.sigma, sig, rtol=1e-10)

    def test_theta_roundtrip(self):
        p = SpatioTemporalParams(range_s=0.5, range_t=3.0, sigma=1.2)
        q = SpatioTemporalParams.from_theta(p.to_theta())
        assert np.isclose(q.range_s, p.range_s)
        assert np.isclose(q.range_t, p.range_t)
        assert np.isclose(q.sigma, p.sigma)

    def test_larger_range_smaller_gamma_s(self):
        g1 = gammas_from_interpretable(SpatioTemporalParams(1.0, 1.0, 1.0))
        g2 = gammas_from_interpretable(SpatioTemporalParams(2.0, 1.0, 1.0))
        assert g2[0] < g1[0]

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SpatioTemporalParams(range_s=-1.0, range_t=1.0, sigma=1.0)


class TestSpatioTemporalSPDE:
    @pytest.fixture
    def spde(self, unit_mesh):
        return SpatioTemporalSPDE(unit_mesh, TemporalMesh(nt=5))

    def test_dimension(self, spde):
        assert spde.dim == spde.ns * 5

    def test_precision_spd(self, spde):
        Q = spde.precision(SpatioTemporalParams(0.4, 2.0, 1.0))
        w = np.linalg.eigvalsh(Q.toarray())
        assert w.min() > 0

    def test_block_tridiagonal_pattern(self, spde):
        assert spde.block_bandwidth_check()

    def test_symmetry(self, spde):
        Q = spde.precision(SpatioTemporalParams(0.3, 1.5, 0.8)).toarray()
        assert np.allclose(Q, Q.T)

    def test_variance_scales_with_sigma(self, spde):
        Q1 = spde.precision(SpatioTemporalParams(0.4, 2.0, 1.0)).toarray()
        Q2 = spde.precision(SpatioTemporalParams(0.4, 2.0, 3.0)).toarray()
        v1 = np.diag(np.linalg.inv(Q1))
        v2 = np.diag(np.linalg.inv(Q2))
        assert np.allclose(v2, 9.0 * v1, rtol=1e-8)

    def test_marginal_variance_order_of_magnitude(self, spde):
        """Stationary-formula variance is right to within boundary effects."""
        target = 1.5
        Q = spde.precision(SpatioTemporalParams(0.25, 2.0, target)).toarray()
        v = np.diag(np.linalg.inv(Q))
        med = np.median(v)
        assert 0.3 * target**2 < med < 4.0 * target**2

    def test_temporal_correlation_increases_with_range_t(self, spde):
        def lag1_corr(rt):
            Q = spde.precision(SpatioTemporalParams(0.4, rt, 1.0)).toarray()
            S = np.linalg.inv(Q)
            ns = spde.ns
            i = 2 * ns + ns // 2  # same spatial node, consecutive times
            j = 3 * ns + ns // 2
            return S[i, j] / np.sqrt(S[i, i] * S[j, j])

        assert lag1_corr(8.0) > lag1_corr(0.5)

    def test_pattern_independent_of_theta(self, spde):
        Q1 = spde.precision(SpatioTemporalParams(0.2, 1.0, 1.0))
        Q2 = spde.precision(SpatioTemporalParams(0.9, 7.0, 2.5))
        assert np.array_equal(Q1.indices, Q2.indices)
        assert np.array_equal(Q1.indptr, Q2.indptr)

    def test_precision_from_theta(self, spde):
        p = SpatioTemporalParams(0.4, 2.0, 1.0)
        Q1 = spde.precision(p)
        Q2 = spde.precision_from_theta(p.to_theta())
        assert np.allclose(Q1.toarray(), Q2.toarray())


class TestPriors:
    def test_gaussian_logpdf_matches_scipy(self):
        from scipy.stats import norm

        p = GaussianPrior(mean=1.0, precision=4.0)
        assert np.isclose(p.logpdf(0.3), norm.logpdf(0.3, loc=1.0, scale=0.5))

    def test_grad_logpdf(self):
        p = GaussianPrior(mean=0.0, precision=2.0)
        h = 1e-6
        num = (p.logpdf(0.5 + h) - p.logpdf(0.5 - h)) / (2 * h)
        assert np.isclose(p.grad_logpdf(0.5), num, atol=1e-5)

    def test_collection_sum(self):
        c = PriorCollection.default(3, precision=1.0)
        theta = np.array([0.1, -0.2, 0.3])
        assert np.isclose(c.logpdf(theta), sum(p.logpdf(t) for p, t in zip(c.priors, theta)))

    def test_dimension_check(self):
        c = PriorCollection.default(2)
        with pytest.raises(ValueError):
            c.logpdf(np.zeros(3))

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            GaussianPrior(precision=-1.0)
