"""Sparse utilities: Kronecker sums, permutations, BTA mapping, alignment."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.sparse.align import PatternAligner
from repro.sparse.kron import KronSumPattern, kron_csr, kron_sum
from repro.sparse.mapping import BTAMapping
from repro.sparse.permutation import SymmetricPermutation, time_major_permutation
from repro.structured.bta import BTAShape


def _rand_sparse(rng, n, density=0.3):
    M = sp.random(n, n, density=density, random_state=np.random.RandomState(rng.integers(2**31)))
    return sp.csr_matrix(M + sp.identity(n))


class TestKron:
    def test_kron_matches_dense(self, rng):
        T = _rand_sparse(rng, 3)
        S = _rand_sparse(rng, 4)
        assert np.allclose(kron_csr(T, S).toarray(), np.kron(T.toarray(), S.toarray()))

    def test_kron_sum(self, rng):
        T1, S1 = _rand_sparse(rng, 3), _rand_sparse(rng, 4)
        T2, S2 = _rand_sparse(rng, 3), _rand_sparse(rng, 4)
        out = kron_sum([(2.0, T1, S1), (-0.5, T2, S2)])
        ref = 2.0 * np.kron(T1.toarray(), S1.toarray()) - 0.5 * np.kron(T2.toarray(), S2.toarray())
        assert np.allclose(out.toarray(), ref)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kron_sum([])

    def test_kron_sum_pattern_reassembly(self, rng):
        T1, S1 = _rand_sparse(rng, 3), _rand_sparse(rng, 5)
        T2, S2 = _rand_sparse(rng, 3), _rand_sparse(rng, 5)
        pat = KronSumPattern([(T1, S1), (T2, S2)])
        for c1, c2 in [(1.0, 1.0), (0.3, -2.0), (0.0, 5.0)]:
            out = pat.assemble([c1, c2])
            ref = c1 * np.kron(T1.toarray(), S1.toarray()) + c2 * np.kron(
                T2.toarray(), S2.toarray()
            )
            assert np.allclose(out.toarray(), ref)

    def test_kron_sum_pattern_inplace_reuse(self, rng):
        T, S = _rand_sparse(rng, 2), _rand_sparse(rng, 3)
        pat = KronSumPattern([(T, S)])
        out1 = pat.assemble([1.0])
        out2 = pat.assemble([2.0], out=out1)
        assert out2 is out1
        assert np.allclose(out2.toarray(), 2.0 * np.kron(T.toarray(), S.toarray()))

    def test_wrong_coeff_count(self, rng):
        pat = KronSumPattern([(_rand_sparse(rng, 2), _rand_sparse(rng, 2))])
        with pytest.raises(ValueError):
            pat.assemble([1.0, 2.0])


class TestSymmetricPermutation:
    def test_identity(self, rng):
        p = SymmetricPermutation(np.arange(5))
        A = _rand_sparse(rng, 5)
        assert np.allclose(p.apply_matrix(A).toarray(), A.toarray())

    def test_apply_matrix_matches_dense(self, rng):
        perm = rng.permutation(6)
        p = SymmetricPermutation(perm)
        A = _rand_sparse(rng, 6)
        ref = A.toarray()[np.ix_(perm, perm)]
        assert np.allclose(p.apply_matrix(A).toarray(), ref)

    def test_vector_roundtrip(self, rng):
        p = SymmetricPermutation(rng.permutation(8))
        x = rng.standard_normal(8)
        assert np.allclose(p.undo_vector(p.apply_vector(x)), x)

    def test_not_a_permutation_rejected(self):
        with pytest.raises(ValueError):
            SymmetricPermutation(np.array([0, 0, 1]))

    def test_planned_apply_matches_generic(self, rng):
        perm = rng.permutation(7)
        p = SymmetricPermutation(perm)
        A = _rand_sparse(rng, 7)
        p.build_plan(A)
        ref = p.apply_matrix(A).toarray()
        # New values on the same pattern.
        B = A.copy()
        B.data = rng.standard_normal(B.nnz)
        assert np.allclose(p.apply_data(B).toarray(), p.apply_matrix(B).toarray())
        assert np.allclose(p.apply_data(A).toarray(), ref)

    def test_planned_apply_rejects_different_pattern(self, rng):
        p = SymmetricPermutation(rng.permutation(5))
        A = _rand_sparse(rng, 5, density=0.4)
        p.build_plan(A)
        B = _rand_sparse(rng, 5, density=0.9)
        if B.nnz != A.nnz or not np.array_equal(B.indices, A.indices):
            with pytest.raises(ValueError):
                p.apply_data(B)

    def test_apply_data_before_plan_rejected(self, rng):
        p = SymmetricPermutation(rng.permutation(4))
        with pytest.raises(RuntimeError):
            p.apply_data(_rand_sparse(rng, 4))

    def test_thread_safety_fresh_outputs(self, rng):
        """apply_data must return independent matrices (S1 concurrency)."""
        p = SymmetricPermutation(rng.permutation(5))
        A = _rand_sparse(rng, 5)
        p.build_plan(A)
        out1 = p.apply_data(A)
        B = A.copy()
        B.data = B.data * 2.0
        out2 = p.apply_data(B)
        assert not np.shares_memory(out1.data, out2.data)
        assert np.allclose(out2.toarray(), 2 * out1.toarray())


class TestTimeMajorPermutation:
    @settings(max_examples=20, deadline=None)
    @given(
        nv=st.integers(1, 3),
        ns=st.integers(1, 4),
        nt=st.integers(1, 4),
        nr=st.integers(0, 3),
    )
    def test_is_valid_permutation(self, nv, ns, nt, nr):
        p = time_major_permutation(nv, ns, nt, nr)
        assert sorted(p.perm.tolist()) == list(range(nv * (ns * nt + nr)))

    def test_layout_nv2(self):
        # nv=2, ns=2, nt=2, nr=1; old: [v0: t0(2), t1(2), f0 | v1: ...]
        p = time_major_permutation(2, 2, 2, 1)
        expected = [0, 1, 5, 6, 2, 3, 7, 8, 4, 9]
        assert p.perm.tolist() == expected

    def test_univariate_identity(self):
        p = time_major_permutation(1, 3, 2, 2)
        assert p.perm.tolist() == list(range(8))


class TestBTAMapping:
    def _bta_pattern_matrix(self, rng, shape):
        from repro.structured.bta import BTAMatrix

        A = BTAMatrix.random_spd(shape, rng)
        dense = A.to_dense()
        # Sparsify: zero a few entries inside the pattern.
        Q = sp.csr_matrix(dense)
        return A, Q

    def test_roundtrip(self, rng):
        shape = BTAShape(n=4, b=3, a=2)
        A, Q = self._bta_pattern_matrix(rng, shape)
        mapping = BTAMapping(Q, shape)
        out = mapping.map(Q)
        assert np.allclose(out.to_dense(), A.to_dense())

    def test_bt_case(self, rng):
        shape = BTAShape(n=5, b=2, a=0)
        A, Q = self._bta_pattern_matrix(rng, shape)
        out = BTAMapping(Q, shape).map(Q)
        assert np.allclose(out.to_dense(), A.to_dense())

    def test_out_reuse(self, rng):
        shape = BTAShape(n=3, b=2, a=1)
        A, Q = self._bta_pattern_matrix(rng, shape)
        mapping = BTAMapping(Q, shape)
        buf = mapping.map(Q)
        Q2 = Q.copy()
        Q2.data = Q2.data * 3.0
        out = mapping.map(Q2, out=buf)
        assert out is buf
        assert np.allclose(out.to_dense(), 3.0 * A.to_dense())

    def test_entry_outside_pattern_rejected(self, rng):
        shape = BTAShape(n=4, b=2, a=0)
        bad = sp.lil_matrix((shape.N, shape.N))
        bad[0, 7] = 1.0  # two blocks away from the diagonal
        bad[7, 0] = 1.0
        with pytest.raises(ValueError):
            BTAMapping(bad.tocsr(), shape)

    def test_changed_pattern_rejected(self, rng):
        shape = BTAShape(n=3, b=2, a=1)
        A, Q = self._bta_pattern_matrix(rng, shape)
        mapping = BTAMapping(Q, shape)
        sub = sp.csr_matrix(sp.triu(Q))
        with pytest.raises(ValueError):
            mapping.map(sub)


class TestPatternAligner:
    def test_alignment_preserves_values(self, rng):
        full = _rand_sparse(rng, 6, density=0.6)
        aligner = PatternAligner(full)
        # A strict sub-pattern of `full`.
        sub = full.copy()
        sub.data = sub.data.copy()
        sub.data[::2] = 0.0
        sub.eliminate_zeros()
        out = aligner.align(sub)
        assert out.nnz == aligner.nnz
        assert np.allclose(out.toarray(), sub.toarray())

    def test_entry_outside_pattern_rejected(self, rng):
        base = sp.identity(5, format="csr")
        aligner = PatternAligner(base)
        extra = sp.lil_matrix((5, 5))
        extra[0, 3] = 2.0
        with pytest.raises(ValueError):
            aligner.align(sp.csr_matrix(extra))

    def test_cache_and_fresh_output(self, rng):
        full = _rand_sparse(rng, 5, density=0.8)
        aligner = PatternAligner(full)
        out1 = aligner.align(full)
        out2 = aligner.align(full)
        assert not np.shares_memory(out1.data, out2.data)
        assert np.allclose(out1.toarray(), out2.toarray())
