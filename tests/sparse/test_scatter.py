"""Fused BTA scatter composition (ISSUE 5 satellite).

``BTAMapping.composed`` fuses an upstream data gather (the permutation
plan's order) into the sparse-to-dense scatter so assembly jumps from
aligned CSR values straight into block stacks — per matrix
(:meth:`scatter`, fresh-alloc default) or per theta-first batch
(:meth:`scatter_stacks`).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.mapping import BTAMapping
from repro.structured.bta import BTAMatrix, BTAShape, BTAStack


def _case(seed=0, n=4, b=3, a=2):
    rng = np.random.default_rng(seed)
    shape = BTAShape(n=n, b=b, a=a)
    A = BTAMatrix.random_spd(shape, rng)
    dense = A.to_dense()
    # Sparsify a little so the pattern is not full.
    dense[np.abs(dense) < 0.3] = 0.0
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    dense = 0.5 * (dense + dense.T)
    Q = sp.csr_matrix(dense)
    Q.sum_duplicates()
    Q.sort_indices()
    return Q, shape, rng


class TestComposedScatter:
    def test_identity_composition_matches_map(self):
        Q, shape, _ = _case()
        mapping = BTAMapping(Q, shape)
        out_map = mapping.map(Q)
        out_scatter = mapping.composed().scatter(Q.data)
        for attr in ("diag", "lower", "arrow", "tip"):
            assert np.array_equal(getattr(out_map, attr), getattr(out_scatter, attr))

    def test_order_composition_fuses_gather(self):
        """scatter(composed(order), aligned) == map(data[order])."""
        Q, shape, rng = _case(seed=1)
        mapping = BTAMapping(Q, shape)
        order = rng.permutation(Q.nnz)
        permuted = sp.csr_matrix((np.empty(Q.nnz), Q.indices, Q.indptr), shape=Q.shape)
        aligned_data = rng.standard_normal(Q.nnz)
        permuted.data[:] = aligned_data[order]
        ref = mapping.map(permuted)
        got = mapping.composed(order).scatter(aligned_data)
        for attr in ("diag", "lower", "arrow", "tip"):
            assert np.array_equal(getattr(ref, attr), getattr(got, attr))

    def test_scatter_into_caller_storage(self):
        """out= writes into caller-provided blocks (e.g. a batch slice)."""
        Q, shape, rng = _case(seed=2)
        scatter = BTAMapping(Q, shape).composed()
        stack = BTAStack.zeros(shape, 3)
        out = scatter.scatter(Q.data, out=stack.matrix(1))
        assert np.shares_memory(out.diag, stack.diag)
        assert np.array_equal(stack.matrix(1).diag, scatter.scatter(Q.data).diag)
        assert np.all(stack.diag[0] == 0.0) and np.all(stack.diag[2] == 0.0)

    def test_scatter_stacks_matches_per_theta(self):
        Q, shape, rng = _case(seed=3)
        mapping = BTAMapping(Q, shape)
        scatter = mapping.composed()
        t = 4
        data = np.stack([Q.data * (j + 1.0) for j in range(t)])
        stack = BTAStack.zeros(shape, t)
        stack.diag[...] = 99.0  # stale values must be cleared
        scatter.scatter_stacks(data, stack.diag, stack.lower, stack.arrow, stack.tip)
        for j in range(t):
            ref = scatter.scatter(data[j])
            for attr in ("diag", "lower", "arrow", "tip"):
                assert np.array_equal(getattr(stack.matrix(j), attr), getattr(ref, attr))

    def test_bt_case_without_arrow(self):
        rng = np.random.default_rng(4)
        shape = BTAShape(n=4, b=3, a=0)
        A = BTAMatrix.random_spd(shape, rng)
        Q = sp.csr_matrix(A.to_dense())
        Q.sum_duplicates()
        Q.sort_indices()
        scatter = BTAMapping(Q, shape).composed()
        stack = BTAStack.zeros(shape, 2)
        scatter.scatter_stacks(
            np.stack([Q.data, 2.0 * Q.data]), stack.diag, stack.lower, stack.arrow, stack.tip
        )
        assert np.array_equal(stack.matrix(0).diag, A.diag)

    def test_map_out_reuse_still_works(self):
        Q, shape, _ = _case(seed=5)
        mapping = BTAMapping(Q, shape)
        out = mapping.map(Q)
        out2 = mapping.map(Q, out=out)
        assert out2 is out

    def test_pattern_mismatch_still_raises(self):
        Q, shape, _ = _case(seed=6)
        mapping = BTAMapping(Q, shape)
        other = Q.copy()
        other.data = np.ones_like(other.data)
        bad = sp.csr_matrix(np.eye(shape.N))
        with pytest.raises(ValueError, match="pattern differs"):
            mapping.map(bad)
