"""The mock device backend: tagging, transfer counting, monkeypatch-proofing.

These are the unit-level guarantees everything else builds on: arrays
produced by the backend are tagged device-resident and the tag survives
the operations the kernels use; every host<->device crossing is counted
with its exact byte size; and the ``xp`` proxy is pre-bound so a test can
poison the global NumPy namespace without breaking backend-routed
allocations — which is precisely how the no-escape test in
``tests/structured/test_backend_matrix.py`` catches hot-path ``np.*``
leaks.
"""

import numpy as np
import pytest

from repro.backend import (
    available_backends,
    backend_for,
    get_backend,
)
from repro.backend.cupy import CupyBackend, cupy_available
from repro.backend.mock import MOCK_DEVICE_BACKEND, MockDeviceArray, MockDeviceBackend


@pytest.fixture
def be():
    MOCK_DEVICE_BACKEND.transfers.reset()
    yield MOCK_DEVICE_BACKEND
    MOCK_DEVICE_BACKEND.transfers.reset()


class TestRegistry:
    def test_registered(self):
        assert "mock_device" in available_backends()
        assert get_backend("mock_device") is MOCK_DEVICE_BACKEND

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "mock_device")
        assert get_backend() is MOCK_DEVICE_BACKEND
        monkeypatch.delenv("REPRO_BACKEND")
        assert get_backend().name == "numpy"

    def test_capability_flags(self):
        be = MOCK_DEVICE_BACKEND
        assert not be.is_host
        assert not be.has_lapack
        assert be.has_batched_trsm and be.has_batched_potrf

    def test_backend_for_routes_device_arrays(self, be):
        d = be.zeros((3, 3))
        assert backend_for(d) is be
        assert backend_for(np.zeros(3), d) is be  # device wins mixed lists
        assert backend_for(np.zeros(3)).name == "numpy"


class TestTagging:
    def test_allocators_tag(self, be):
        for a in (
            be.empty((2, 3)),
            be.zeros((4,)),
            be.empty_blocks(3, 2),
            be.zeros_blocks(3, 2),
            be.asarray([1.0, 2.0]),
        ):
            assert isinstance(a, MockDeviceArray)
            assert a.dtype == np.float64

    def test_tag_survives_kernel_operations(self, be):
        a = be.asarray(np.eye(4))
        assert isinstance(a @ a, MockDeviceArray)
        assert isinstance(a[1:, :2], MockDeviceArray)
        assert isinstance(a + 1.0, MockDeviceArray)
        assert isinstance(np.empty_like(a), MockDeviceArray)
        assert isinstance(a.reshape(2, 8), MockDeviceArray)
        assert isinstance(a.diagonal(), MockDeviceArray)

    def test_xp_results_tagged(self, be):
        xp = be.xp
        assert isinstance(xp.zeros((2, 2)), MockDeviceArray)
        assert isinstance(xp.einsum("ij,jk->ik", np.eye(2), np.eye(2)), MockDeviceArray)
        assert isinstance(xp.linalg.cholesky(np.eye(3)), MockDeviceArray)
        assert xp.pi == np.pi  # constants pass through

    def test_view_is_zero_copy(self, be):
        host = np.arange(6.0)
        dev = host.view(MockDeviceArray)
        dev[0] = 42.0
        assert host[0] == 42.0


class TestTransferCounting:
    def test_asarray_foreign_counts_h2d(self, be):
        host = np.zeros((5, 7))
        out = be.asarray(host)
        assert be.transfers.h2d_calls == 1
        assert be.transfers.h2d_bytes == host.nbytes
        assert be.transfers.d2h_calls == 0
        assert isinstance(out, MockDeviceArray)

    def test_asarray_device_is_free(self, be):
        d = be.zeros((5, 7))
        be.asarray(d)
        assert be.transfers.crossings == 0

    def test_to_host_counts_d2h(self, be):
        d = be.zeros((3, 3))
        h = be.to_host(d)
        assert be.transfers.d2h_calls == 1
        assert be.transfers.d2h_bytes == d.nbytes
        assert type(h) is np.ndarray  # tag stripped, plain host memory

    def test_to_host_of_host_is_free(self, be):
        be.to_host(np.zeros(4))
        assert be.transfers.crossings == 0

    def test_reset(self, be):
        be.asarray(np.zeros(4))
        be.to_host(be.zeros(4))
        assert be.transfers.crossings == 2
        be.transfers.reset()
        assert be.transfers.crossings == 0 and be.transfers.bytes_moved == 0


class TestMonkeypatchProofing:
    """The pre-bound proxy keeps working when global NumPy is poisoned —
    the mechanism behind the hot-path no-escape assertion."""

    def test_xp_survives_poisoned_numpy(self, be, monkeypatch):
        def boom(*a, **k):
            raise AssertionError("global np allocation")

        monkeypatch.setattr(np, "empty", boom)
        monkeypatch.setattr(np, "zeros", boom)
        with pytest.raises(AssertionError):
            np.zeros(3)
        # Backend-routed allocations keep working.
        assert be.empty((2, 2)).shape == (2, 2)
        assert be.xp.zeros((2, 2)).shape == (2, 2)
        assert be.empty_blocks(2, 3).shape == (2, 3, 3)


class TestCupyStub:
    def test_importable_without_gpu(self):
        # The class must exist (and describe its capabilities) even when
        # no GPU is present; only instantiation needs the runtime.
        assert CupyBackend.name == "cupy"
        assert not CupyBackend.is_host
        assert CupyBackend.has_batched_trsm and CupyBackend.has_batched_potrf

    def test_registered_only_with_gpu(self):
        assert ("cupy" in available_backends()) == cupy_available()

    @pytest.mark.skipif(not cupy_available(), reason="no CUDA runtime")
    def test_roundtrip_on_gpu(self):  # pragma: no cover - GPU only
        be = get_backend("cupy")
        a = be.asarray(np.eye(3))
        assert np.allclose(be.to_host(a @ a), np.eye(3))
