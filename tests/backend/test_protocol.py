"""The Backend protocol: registry, resolution, capability-driven kernels."""

import numpy as np
import pytest

from repro.backend.protocol import (
    NUMPY_BACKEND,
    Backend,
    NumpyBackend,
    _REGISTRY,
    available_backends,
    backend_for,
    get_backend,
    register_backend,
)
from repro.structured import batched as bk


class _FakeDeviceArray:
    """Stand-in for a device array (owned by the fake backend)."""

    def __init__(self, host):
        self.host = host


class _FakeBackend(NumpyBackend):
    """A 'device' backend over NumPy: no LAPACK, substitution-only path."""

    name = "fake-device"
    is_host = False
    has_lapack = False
    has_batched_trsm = True
    has_batched_potrf = True

    def owns(self, array) -> bool:
        return isinstance(array, _FakeDeviceArray)


@pytest.fixture
def fake_backend():
    be = _FakeBackend()
    register_backend(be)
    yield be
    _REGISTRY.pop(be.name, None)


class TestProtocol:
    def test_numpy_backend_satisfies_protocol(self):
        assert isinstance(NUMPY_BACKEND, Backend)
        assert NUMPY_BACKEND.is_host and NUMPY_BACKEND.has_lapack
        assert NUMPY_BACKEND.xp is np

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            register_backend(object())

    def test_get_backend_default_and_unknown(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert get_backend() is NUMPY_BACKEND
        assert get_backend("numpy") is NUMPY_BACKEND
        with pytest.raises(KeyError):
            get_backend("no-such-backend")

    def test_env_override(self, fake_backend, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fake-device")
        assert get_backend() is fake_backend

    def test_registry_listing(self, fake_backend):
        names = available_backends()
        assert "numpy" in names and "fake-device" in names

    def test_backend_for_routes_by_ownership(self, fake_backend):
        assert backend_for(np.zeros(3)) is NUMPY_BACKEND
        assert backend_for() is NUMPY_BACKEND
        dev = _FakeDeviceArray(np.zeros(3))
        assert backend_for(dev) is fake_backend
        # Device array wins over host arrays in mixed argument lists.
        assert backend_for(np.zeros(3), dev) is fake_backend

    def test_allocators(self):
        a = NUMPY_BACKEND.empty_blocks(3, 2)
        assert a.shape == (3, 2, 2) and a.flags["C_CONTIGUOUS"]
        assert np.all(NUMPY_BACKEND.zeros_blocks(2, 2) == 0)
        with pytest.raises(ValueError):
            NUMPY_BACKEND.empty_blocks(-1, 2)


class TestCapabilityDrivenKernels:
    """Explicit backends steer the batched layer's execution strategy."""

    def _stack(self, m=3, b=5, seed=0):
        rng = np.random.default_rng(seed)
        g = rng.standard_normal((m, b, b))
        spd = g @ g.transpose(0, 2, 1) + b * np.eye(b)
        return np.linalg.cholesky(spd), rng

    def test_substitution_path_matches_lapack(self, fake_backend):
        """has_lapack=False forces the vectorized substitution; results
        agree with the looped-LAPACK host path to 1e-12."""
        l, rng = self._stack()
        rhs = rng.standard_normal((3, 5, 2))
        host = bk.batched_solve_lower(l, rhs, backend=NUMPY_BACKEND)
        subst = bk.batched_solve_lower(l, rhs, backend=fake_backend)
        assert np.max(np.abs(host - subst)) < 1e-12
        host_t = bk.batched_solve_lower_t(l, rhs, backend=NUMPY_BACKEND)
        subst_t = bk.batched_solve_lower_t(l, rhs, backend=fake_backend)
        assert np.max(np.abs(host_t - subst_t)) < 1e-12

    def test_tri_inverse_matches(self, fake_backend):
        l, _ = self._stack()
        host = bk.batched_tri_inverse_lower(l, backend=NUMPY_BACKEND)
        subst = bk.batched_tri_inverse_lower(l, backend=fake_backend)
        assert np.max(np.abs(host - subst)) < 1e-12

    def test_factor_carries_backend(self):
        from repro.structured import BTAMatrix, BTAShape, factorize

        A = BTAMatrix.random_spd(BTAShape(n=4, b=3, a=1), np.random.default_rng(0))
        f = factorize(A)
        assert f.backend is NUMPY_BACKEND
