"""Backend: devices, memory accounting, array helpers."""

import numpy as np
import pytest

from repro.backend import (
    Device,
    DeviceKind,
    MemoryBudgetError,
    MemoryTracker,
    bta_memory_bytes,
    empty_blocks,
    get_array_module,
    zeros_blocks,
)
from repro.backend.device import GH200
from repro.backend.memory import bt_memory_bytes, min_partitions


class TestArrayModule:
    def test_get_array_module(self):
        assert get_array_module(np.zeros(3)) is np

    def test_blocks_contiguous(self):
        a = empty_blocks(4, 3)
        assert a.shape == (4, 3, 3)
        assert a.flags["C_CONTIGUOUS"]

    def test_zeros_blocks(self):
        assert np.all(zeros_blocks(2, 2) == 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            empty_blocks(-1, 3)


class TestDevice:
    def test_fits_headroom(self):
        d = Device(DeviceKind.GPU, "x", memory_bytes=100, gemm_tflops=1, bandwidth_gbs=1)
        assert d.fits(84)
        assert not d.fits(86)

    def test_gh200_spec(self):
        assert GH200.memory_bytes == 96 * 2**30
        assert GH200.kind is DeviceKind.GPU


class TestMemoryAccounting:
    def test_bta_bytes_formula(self):
        # n=2, b=3, a=1: diag 2*9 + lower 1*9 + arrow 2*3 + tip 1 = 34 doubles
        assert bta_memory_bytes(2, 3, 1, factors=1) == 34 * 8

    def test_bt_is_bta_with_a0(self):
        assert bt_memory_bytes(5, 4) == bta_memory_bytes(5, 4, 0)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            bta_memory_bytes(0, 3, 1)

    def test_min_partitions_single_when_fits(self):
        assert min_partitions(100, 10, 2, GH200) == 1

    def test_min_partitions_grows_with_block_size(self):
        small = Device(DeviceKind.GPU, "s", memory_bytes=2**24, gemm_tflops=1, bandwidth_gbs=1)
        p = min_partitions(64, 100, 4, small)
        assert p > 1
        # The per-partition slice must then fit.
        n_local = -(-64 // p)
        assert small.fits(bta_memory_bytes(n_local, 100, 4))

    def test_min_partitions_infeasible(self):
        nano = Device(DeviceKind.GPU, "n", memory_bytes=100, gemm_tflops=1, bandwidth_gbs=1)
        with pytest.raises(MemoryBudgetError):
            min_partitions(4, 50, 0, nano)


class TestMemoryTracker:
    def test_tracks_peak(self):
        t = MemoryTracker(device=GH200)
        t.allocate(1000, "qp")
        t.allocate(500, "qc")
        t.free(1000, "qp")
        assert t.live_bytes == 500
        assert t.peak_bytes == 1500
        assert t.breakdown()["qc"] == 500

    def test_budget_enforced(self):
        small = Device(DeviceKind.GPU, "s", memory_bytes=1000, gemm_tflops=1, bandwidth_gbs=1)
        t = MemoryTracker(device=small)
        with pytest.raises(MemoryBudgetError):
            t.allocate(900)

    def test_over_free_rejected(self):
        t = MemoryTracker(device=GH200)
        t.allocate(10)
        with pytest.raises(ValueError):
            t.free(20)


class TestMinPartitionsClosedForm:
    """min_partitions is computed directly from the byte formula; it must
    agree with the historical O(n) linear scan everywhere."""

    def _scan_reference(self, n, b, a, device, factors=2, headroom=0.85):
        for p in range(1, n + 1):
            n_local = -(-n // p)
            if device.fits(
                bta_memory_bytes(n_local, b, a, factors=factors), headroom=headroom
            ):
                return p
        raise MemoryBudgetError("infeasible")

    def test_matches_linear_scan(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            n = int(rng.integers(1, 400))
            b = int(rng.integers(1, 80))
            a = int(rng.integers(0, 20))
            mem = int(rng.integers(b * b * 64, 2**26))
            dev = Device(DeviceKind.GPU, "t", memory_bytes=mem, gemm_tflops=1, bandwidth_gbs=1)
            try:
                ref = self._scan_reference(n, b, a, dev)
            except MemoryBudgetError:
                with pytest.raises(MemoryBudgetError):
                    min_partitions(n, b, a, dev)
                continue
            assert min_partitions(n, b, a, dev) == ref, (n, b, a, mem)

    def test_factors_changes_partitioning(self):
        """A factorize-only workload (factors=1) fits in half the memory of
        a selected-inversion workload (factors=2)."""
        dev = Device(DeviceKind.GPU, "s", memory_bytes=2**24, gemm_tflops=1, bandwidth_gbs=1)
        p_fact = min_partitions(64, 100, 4, dev, factors=1)
        p_sinv = min_partitions(64, 100, 4, dev, factors=2)
        assert p_fact < p_sinv
        n_local = -(-64 // p_fact)
        assert dev.fits(bta_memory_bytes(n_local, 100, 4, factors=1))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            min_partitions(0, 3, 1, GH200)
        with pytest.raises(ValueError):
            min_partitions(4, 3, 1, GH200, factors=0)
