"""SPMD communicator semantics (mpi4py-compatible subset)."""

import numpy as np
import pytest

from repro.comm import ReduceOp, SerialComm, run_spmd
from repro.comm.local import run_spmd as run_spmd_threads
from repro.comm.stats import CommStats, TraceComm


class TestSerialComm:
    def test_topology(self):
        c = SerialComm()
        assert c.Get_rank() == 0
        assert c.Get_size() == 1

    def test_allreduce_identity(self):
        c = SerialComm()
        x = np.arange(4.0)
        assert np.array_equal(c.Allreduce(x), x)

    def test_allreduce_copies(self):
        c = SerialComm()
        x = np.arange(4.0)
        y = c.Allreduce(x)
        y[0] = 99
        assert x[0] == 0

    def test_point_to_point_rejected(self):
        c = SerialComm()
        with pytest.raises(RuntimeError):
            c.Send(np.zeros(1), dest=0)
        with pytest.raises(RuntimeError):
            c.Recv(np.zeros(1), source=0)

    def test_gathers(self):
        c = SerialComm()
        assert c.allgather("x") == ["x"]
        assert len(c.Allgather(np.ones(2))) == 1

    def test_split_returns_serial(self):
        assert SerialComm().Split(color=3).Get_size() == 1


class TestRunSpmd:
    def test_single_rank_uses_serial(self):
        out = run_spmd(1, lambda comm: comm.Get_size())
        assert out == [1]

    def test_results_ordered_by_rank(self):
        out = run_spmd(4, lambda comm: comm.Get_rank())
        assert out == [0, 1, 2, 3]

    def test_exception_propagates(self):
        def fail(comm):
            if comm.Get_rank() == 1:
                raise ValueError("boom")
            comm.Barrier()

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(3, fail)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)


class TestThreadCollectives:
    def test_allreduce_sum(self):
        out = run_spmd(4, lambda comm: comm.Allreduce(np.full(3, float(comm.Get_rank()))))
        for o in out:
            assert np.array_equal(o, np.full(3, 6.0))

    def test_allreduce_max_min(self):
        out = run_spmd(3, lambda c: (
            c.Allreduce(np.array([float(c.Get_rank())]), ReduceOp.MAX)[0],
            c.Allreduce(np.array([float(c.Get_rank())]), ReduceOp.MIN)[0],
        ))
        assert all(o == (2.0, 0.0) for o in out)

    def test_allreduce_deterministic_across_ranks(self):
        def fn(comm):
            rng = np.random.default_rng(comm.Get_rank())
            return comm.Allreduce(rng.standard_normal(16))

        out = run_spmd(4, fn)
        for o in out[1:]:
            assert np.array_equal(o, out[0])  # bitwise identical

    def test_bcast(self):
        def fn(comm):
            x = np.full(4, float(comm.Get_rank()))
            return comm.Bcast(x, root=2)

        out = run_spmd(3, fn)
        for o in out:
            assert np.array_equal(o, np.full(4, 2.0))

    def test_allgather_order(self):
        out = run_spmd(3, lambda c: c.Allgather(np.array([c.Get_rank() * 1.0])))
        for o in out:
            assert [x[0] for x in o] == [0.0, 1.0, 2.0]

    def test_object_bcast_and_allgather(self):
        out = run_spmd(3, lambda c: c.allgather({"r": c.Get_rank()}))
        assert out[0] == [{"r": 0}, {"r": 1}, {"r": 2}]

    def test_sequential_collectives_do_not_interfere(self):
        def fn(comm):
            a = comm.Allreduce(np.array([1.0]))
            b = comm.Allreduce(np.array([2.0]))
            return a[0], b[0]

        out = run_spmd(4, fn)
        assert all(o == (4.0, 8.0) for o in out)

    def test_allreduce_scalar(self):
        out = run_spmd(3, lambda c: c.allreduce_scalar(float(c.Get_rank() + 1)))
        assert all(o == 6.0 for o in out)


class TestPointToPoint:
    def test_ring_exchange(self):
        def fn(comm):
            r, s = comm.Get_rank(), comm.Get_size()
            buf = np.empty(2)
            comm.Sendrecv(
                np.array([r, r + 0.5]), dest=(r + 1) % s, recvbuf=buf, source=(r - 1) % s
            )
            return buf[0]

        out = run_spmd(4, fn)
        assert out == [3.0, 0.0, 1.0, 2.0]

    def test_send_copies_buffer(self):
        def fn(comm):
            if comm.Get_rank() == 0:
                x = np.array([1.0])
                comm.Send(x, dest=1)
                x[0] = 99.0  # mutation after send must not be visible
                comm.Barrier()
                return None
            buf = np.empty(1)
            comm.Barrier()
            comm.Recv(buf, source=0)
            return buf[0]

        assert run_spmd(2, fn)[1] == 1.0

    def test_shape_mismatch_raises(self):
        def fn(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.zeros(3), dest=1)
            else:
                comm.Recv(np.zeros(4), source=0)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)

    def test_tagged_messages_do_not_mix(self):
        def fn(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.array([1.0]), dest=1, tag=7)
                comm.Send(np.array([2.0]), dest=1, tag=9)
                return None
            b9 = np.empty(1)
            b7 = np.empty(1)
            comm.Recv(b9, source=0, tag=9)
            comm.Recv(b7, source=0, tag=7)
            return b7[0], b9[0]

        assert run_spmd(2, fn)[1] == (1.0, 2.0)


class TestSplit:
    def test_split_into_two_groups(self):
        def fn(comm):
            color = comm.Get_rank() % 2
            sub = comm.Split(color=color, key=comm.Get_rank())
            return color, sub.Get_size(), sub.Get_rank()

        out = run_spmd(4, fn)
        assert out[0] == (0, 2, 0)
        assert out[1] == (1, 2, 0)
        assert out[2] == (0, 2, 1)
        assert out[3] == (1, 2, 1)

    def test_split_subgroup_collectives(self):
        def fn(comm):
            sub = comm.Split(color=comm.Get_rank() // 2)
            return sub.allreduce_scalar(1.0)

        assert run_spmd(4, fn) == [2.0, 2.0, 2.0, 2.0]

    def test_split_single_member_is_serial(self):
        def fn(comm):
            sub = comm.Split(color=comm.Get_rank())  # everyone alone
            return sub.Get_size()

        assert run_spmd(3, fn) == [1, 1, 1]


class TestTraceComm:
    def test_records_collective_traffic(self):
        stats = CommStats()

        def fn(comm):
            tc = TraceComm(comm, stats)
            tc.Allreduce(np.zeros(8))
            tc.Barrier()
            return None

        run_spmd_threads(2, fn)
        assert stats.counts["allreduce"] == 2  # one record per rank
        assert stats.bytes["allreduce"] == 2 * 64
        assert stats.counts["barrier"] == 2

    def test_merge(self):
        a = CommStats({"send": 1}, {"send": 10})
        b = CommStats({"send": 2, "recv": 1}, {"send": 5, "recv": 7})
        m = a.merge(b)
        assert m.counts == {"send": 3, "recv": 1}
        assert m.total_bytes() == 22
        assert m.total_messages() == 4

    def test_split_preserves_stats_object(self):
        stats = CommStats()

        def fn(comm):
            tc = TraceComm(comm, stats)
            sub = tc.Split(color=0)
            sub.Allreduce(np.zeros(4))
            return None

        run_spmd_threads(2, fn)
        assert stats.counts["allreduce"] == 2


class TestPayloadByteAccounting:
    """_nbytes must count every payload shape the collectives actually carry
    (scalars, tuples/lists of arrays, dataclasses) — not just bare ndarrays."""

    def test_ndarray_and_numpy_scalar(self):
        from repro.comm.stats import _nbytes

        assert _nbytes(np.zeros((3, 4))) == 96
        assert _nbytes(np.float64(1.5)) == 8
        assert _nbytes(np.int32(7)) == 4

    def test_python_scalars(self):
        from repro.comm.stats import _nbytes

        assert _nbytes(3.5) == 8
        assert _nbytes(42) == 8
        assert _nbytes(True) == 1
        assert _nbytes(1 + 2j) == 16
        assert _nbytes(None) == 0

    def test_nested_sequences(self):
        from repro.comm.stats import _nbytes

        payload = (np.zeros(4), [np.zeros(2), 1.0], (3,))
        assert _nbytes(payload) == 32 + (16 + 8) + 8

    def test_dataclass_payload(self):
        """The reduced-system allgather ships BoundaryContribution objects;
        their block arrays must count toward modeled traffic."""
        from repro.comm.stats import _nbytes
        from repro.structured.bta import BTAMatrix, BTAShape
        from repro.structured.d_pobtaf import partition_matrix, d_pobtaf

        rng = np.random.default_rng(0)
        A = BTAMatrix.random_spd(BTAShape(n=6, b=3, a=2), rng)
        slices = partition_matrix(A, 2)
        stats = CommStats()

        def fn(comm):
            d_pobtaf(slices[comm.Get_rank()], TraceComm(comm, stats))
            return None

        run_spmd_threads(2, fn)
        # Each contribution carries at least the bottom diag block (b*b
        # doubles) and the tip delta (a*a doubles), gathered across 2 ranks.
        assert stats.bytes["allgather_obj"] >= 2 * 2 * (3 * 3 + 2 * 2) * 8

    def test_object_allgather_counts_scalars(self):
        stats = CommStats()

        def fn(comm):
            tc = TraceComm(comm, stats)
            tc.allgather(1.25)
            return None

        run_spmd_threads(2, fn)
        # Per rank: one 8-byte float gathered from each of the 2 ranks.
        assert stats.bytes["allgather_obj"] == 2 * 2 * 8
