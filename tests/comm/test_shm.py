"""Process-backend (ShmComm) semantics, failure handling, and launcher.

Rank functions are module-level so they stay picklable under the
``spawn`` start method; under the default ``fork`` method closures would
also work, but these tests ARE the spawn-safety coverage.
"""

import os
import signal

import numpy as np
import pytest

from repro.comm import (
    CommAbortError,
    CommStats,
    ReduceOp,
    SpmdSession,
    TraceComm,
    run_spmd,
    worker_store,
)
from repro.comm.errors import CommTimeoutError
from repro.comm.shm import RING_BYTES, SLOT_BYTES, group_block_bytes, segment_bytes


def _seeded_allreduce(comm):
    rng = np.random.default_rng(comm.Get_rank())
    return comm.Allreduce(rng.standard_normal(16))


def _collective_tour(comm):
    r, s = comm.Get_rank(), comm.Get_size()
    out = {}
    out["allreduce"] = comm.Allreduce(np.full(3, float(r)))
    out["max"] = comm.Allreduce(np.array([float(r)]), ReduceOp.MAX)[0]
    out["bcast"] = comm.Bcast(np.full(4, float(r)), root=1)
    out["allgather"] = [float(a[0]) for a in comm.Allgather(np.array([r * 1.0]))]
    out["obj"] = comm.allgather({"rank": r})
    out["bcast_obj"] = comm.bcast("payload" if r == 0 else None, root=0)
    comm.Barrier()
    return out


def _ring_exchange(comm):
    r, s = comm.Get_rank(), comm.Get_size()
    buf = np.empty(2)
    comm.Sendrecv(np.array([r, r + 0.5]), dest=(r + 1) % s, recvbuf=buf, source=(r - 1) % s)
    return buf[0]


def _tag_reorder(comm):
    if comm.Get_rank() == 0:
        comm.Send(np.array([1.0]), dest=1, tag=7)
        comm.Send(np.array([2.0]), dest=1, tag=9)
        return None
    b9, b7 = np.empty(1), np.empty(1)
    comm.Recv(b9, source=0, tag=9)
    comm.Recv(b7, source=0, tag=7)
    return b7[0], b9[0]


def _chunked_allreduce(comm):
    n = (2 * SLOT_BYTES) // 8 + 11  # payload spans three collective sub-rounds
    return comm.Allreduce(np.full(n, 1.0 + comm.Get_rank()))


def _oversized_send(comm):
    n = (3 * RING_BYTES) // 8  # frame streams through the ring several times
    if comm.Get_rank() == 0:
        comm.Send(np.arange(n, dtype=float), dest=1)
        return None
    buf = np.empty(n)
    comm.Recv(buf, source=0)
    return float(buf[0]), float(buf[-1])


def _split_tour(comm):
    sub = comm.Split(color=comm.Get_rank() % 2, key=comm.Get_rank())
    return sub.Get_size(), sub.Get_rank(), sub.allreduce_scalar(1.0)


def _mismatched_tag(comm):
    if comm.Get_rank() == 0:
        comm.Send(np.array([1.0]), dest=1, tag=7)
    else:
        comm.Recv(np.empty(1), source=0, tag=99)


def _suicide(comm):
    if comm.Get_rank() == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    comm.Barrier()
    return comm.Get_rank()


def _raise_on_rank(comm, rank):
    if comm.Get_rank() == rank:
        raise ValueError("boom from the worker")
    comm.Barrier()


def _measured_vs_modeled(comm):
    stats = CommStats()
    traced = TraceComm(comm, stats)
    traced.Allreduce(np.zeros(64))
    traced.Bcast(np.zeros(32), root=0)
    for arr in traced.Allgather(np.zeros(16)):
        assert arr.shape == (16,)
    traced.Barrier()
    if comm.Get_rank() == 0:
        traced.Send(np.zeros(8), dest=1)
    elif comm.Get_rank() == 1:
        traced.Recv(np.empty(8), source=0)
    return stats.counts, stats.bytes, comm.measured.counts, comm.measured.bytes


def _store_put(comm, value):
    worker_store()["kept"] = value * (comm.Get_rank() + 1)
    return comm.allreduce_scalar(float(value))


def _store_get(comm):
    return worker_store()["kept"]


def _rank_of(comm):
    return comm.Get_rank()


class TestShmCollectives:
    def test_matches_thread_backend_bitwise(self):
        proc = run_spmd(4, _seeded_allreduce, backend="proc")
        thr = run_spmd(4, _seeded_allreduce, backend="threads")
        for p, t in zip(proc, thr):
            assert np.array_equal(p, t)  # bit-identical across backends

    @pytest.mark.parametrize("nranks", [2, 4])
    def test_collective_tour(self, nranks):
        out = run_spmd(nranks, _collective_tour, backend="proc")
        total = sum(range(nranks))
        for r, o in enumerate(out):
            assert np.array_equal(o["allreduce"], np.full(3, float(total)))
            assert o["max"] == nranks - 1
            assert np.array_equal(o["bcast"], np.full(4, 1.0))
            assert o["allgather"] == [float(i) for i in range(nranks)]
            assert o["obj"] == [{"rank": i} for i in range(nranks)]
            assert o["bcast_obj"] == "payload"

    def test_payload_larger_than_slot_chunks(self):
        out = run_spmd(3, _chunked_allreduce, backend="proc")
        expect = 1.0 + 2.0 + 3.0
        for o in out:
            assert o.shape[0] > 2 * SLOT_BYTES // 8
            assert np.all(o == expect)

    def test_split_subgroups(self):
        out = run_spmd(4, _split_tour, backend="proc")
        assert out[0] == (2, 0, 2.0)
        assert out[1] == (2, 0, 2.0)
        assert out[2] == (2, 1, 2.0)
        assert out[3] == (2, 1, 2.0)


class TestShmPointToPoint:
    def test_ring_exchange(self):
        assert run_spmd(4, _ring_exchange, backend="proc") == [3.0, 0.0, 1.0, 2.0]

    def test_tagged_messages_do_not_mix(self):
        assert run_spmd(2, _tag_reorder, backend="proc")[1] == (1.0, 2.0)

    def test_message_larger_than_ring_streams(self):
        out = run_spmd(2, _oversized_send, backend="proc")
        assert out[1] == (0.0, float(3 * RING_BYTES // 8 - 1))


class TestShmFailures:
    def test_killed_worker_raises_diagnosed_abort(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "10")
        with pytest.raises(CommAbortError) as info:
            run_spmd(3, _suicide, backend="proc")
        assert info.value.failed_rank == 1
        assert "rank 1" in str(info.value)

    def test_worker_exception_carries_remote_traceback(self):
        with pytest.raises(RuntimeError, match="rank 2") as info:
            run_spmd(3, _raise_on_rank, 2, backend="proc")
        assert isinstance(info.value.__cause__, ValueError)
        assert "remote traceback" in str(info.value)
        assert "boom from the worker" in str(info.value)

    def test_mismatched_tag_times_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "0.5")
        with pytest.raises(RuntimeError, match="rank 1") as info:
            run_spmd(2, _mismatched_tag, backend="proc")
        assert isinstance(info.value.__cause__, CommTimeoutError)
        assert "tag=99" in str(info.value.__cause__)


class TestMeasuredVsModeled:
    def test_tracecomm_modeled_matches_shm_measured(self):
        """Satellite cross-check: the modeled byte counts TraceComm records
        must equal the wire bytes ShmComm actually moved, kind for kind,
        for every ndarray operation (object ops add pickle framing, so
        measured >= modeled there)."""
        out = run_spmd(2, _measured_vs_modeled, backend="proc")
        for modeled_counts, modeled_bytes, measured_counts, measured_bytes in out:
            array_kinds = {
                k: v
                for k, v in modeled_bytes.items()
                if k in ("send", "recv", "allreduce", "bcast", "allgather", "barrier")
            }
            assert array_kinds == {
                k: measured_bytes.get(k, 0) for k in array_kinds
            } and all(
                modeled_counts[k] == measured_counts.get(k, 0) for k in array_kinds
            )


class TestSpmdSession:
    def test_epoch_reuse_via_worker_store(self):
        with SpmdSession(3) as s:
            first = s.run(_store_put, 5.0)
            again = s.run(_store_get)
            third = s.run(_store_get)
        assert first == [15.0] * 3
        assert again == third == [5.0, 10.0, 15.0]

    def test_application_failure_heals_on_next_run(self):
        """An application error propagates (no retry can help), but the
        session is NOT permanently poisoned: the next run respawns the
        worker group and succeeds on a clean segment."""
        with SpmdSession(2) as s:
            with pytest.raises(RuntimeError, match="rank 0"):
                s.run(_raise_on_rank, 0)
            assert s.run(_rank_of) == [0, 1]
            assert s.respawns == 1

    def test_close_is_idempotent(self):
        s = SpmdSession(2)
        assert s.run(_rank_of) == [0, 1]
        s.close()
        s.close()
        with pytest.raises(RuntimeError, match="closed"):
            s.run(_rank_of)


class TestSpawnSafety:
    def test_module_level_fn_under_spawn(self):
        # spawn re-imports this module in the child; ~1 s startup is the cost
        # of proving the subsystem never depends on fork's memory inheritance.
        out = run_spmd(2, _rank_of, backend="proc", start_method="spawn")
        assert out == [0, 1]


class TestSegmentSizing:
    def test_block_grows_quadratically_with_ranks(self):
        assert group_block_bytes(4) > group_block_bytes(2)
        assert segment_bytes(2) == 64 + 5 * group_block_bytes(2)

    def test_single_rank_runs_inline(self):
        # No segment, no processes: nranks=1 is always SerialComm.
        assert run_spmd(1, _rank_of, backend="proc") == [0]


class TestMpiAdapter:
    def test_import_is_guarded(self):
        from repro.comm import mpi

        if not mpi.HAVE_MPI:
            with pytest.raises(RuntimeError, match="mpi4py"):
                mpi.MpiComm()
            with pytest.raises(RuntimeError, match="mpi4py"):
                mpi.run_spmd_mpi(2, _rank_of)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown SPMD backend"):
            run_spmd(2, _rank_of, backend="nccl")
