"""Process-grid planning and splitting for the S1/S2/S3 layers."""

import pytest

from repro.comm import run_spmd
from repro.comm.groups import ProcessGrid, plan_process_grid, split_process_grid


class TestProcessGrid:
    def test_nprocs(self):
        assert ProcessGrid(s1=3, s2=2, s3=4).nprocs == 24

    def test_coords_roundtrip(self):
        g = ProcessGrid(s1=2, s2=2, s3=3)
        seen = set()
        for r in range(g.nprocs):
            seen.add(g.coords(r))
        assert len(seen) == g.nprocs

    def test_s2_capped_at_two(self):
        with pytest.raises(ValueError):
            ProcessGrid(s1=1, s2=3, s3=1)

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            ProcessGrid(s1=2, s2=1, s3=1).coords(2)


class TestPlanProcessGrid:
    def test_prefers_s1(self):
        g = plan_process_grid(8, nfeval=9)
        assert g.s1 == 8
        assert g.s2 == 1
        assert g.s3 == 1

    def test_s1_saturates_then_s2(self):
        g = plan_process_grid(18, nfeval=9)
        assert g.s1 == 9
        assert g.s2 == 2

    def test_overflow_goes_to_s3(self):
        g = plan_process_grid(72, nfeval=9)
        assert (g.s1, g.s2) == (9, 2)
        assert g.s3 == 4

    def test_memory_forces_min_s3(self):
        g = plan_process_grid(8, nfeval=31, min_s3=4)
        assert g.s3 >= 4
        assert g.s1 == 2

    def test_non_gaussian_disables_s2(self):
        g = plan_process_grid(18, nfeval=9, gaussian=False)
        assert g.s2 == 1

    def test_max_s3_respected(self):
        g = plan_process_grid(64, nfeval=3, max_s3=5)
        assert g.s3 <= 5

    def test_single_process(self):
        g = plan_process_grid(1, nfeval=31)
        assert g.nprocs == 1


class TestSplitProcessGrid:
    def test_group_sizes(self):
        grid = ProcessGrid(s1=2, s2=2, s3=2)

        def fn(comm):
            gc = split_process_grid(comm, grid)
            return gc.i1, gc.eval_comm.Get_size(), gc.solver_comm.Get_size()

        out = run_spmd(8, fn)
        for i1, eval_size, solver_size in out:
            assert eval_size == 4  # s2 * s3
            assert solver_size == 2  # s3

    def test_eval_groups_partition_world(self):
        grid = ProcessGrid(s1=2, s2=1, s3=2)

        def fn(comm):
            gc = split_process_grid(comm, grid)
            return gc.i1, gc.eval_comm.Get_rank()

        out = run_spmd(4, fn)
        by_group = {}
        for i1, r in out:
            by_group.setdefault(i1, []).append(r)
        assert sorted(by_group[0]) == [0, 1]
        assert sorted(by_group[1]) == [0, 1]

    def test_size_mismatch_rejected(self):
        grid = ProcessGrid(s1=2, s2=1, s3=1)
        with pytest.raises(RuntimeError):
            run_spmd(3, lambda comm: split_process_grid(comm, grid))
