"""The ``spmd`` CLI subcommand on both launcher backends."""

from repro.cli import main

_SMALL = ["--n", "8", "--b", "8", "--a", "2"]


def test_spmd_proc_backend(capsys):
    rc = main(["spmd", "--procs", "2", "--backend", "proc", *_SMALL])
    out = capsys.readouterr().out
    assert rc == 0
    assert "backend=proc P=2" in out
    assert "identical on all ranks: True" in out
    # The proc backend reports real wire bytes next to the modeled ones.
    assert "measured bytes" in out


def test_spmd_threads_backend(capsys):
    rc = main(["spmd", "--procs", "2", "--backend", "threads", *_SMALL])
    out = capsys.readouterr().out
    assert rc == 0
    assert "backend=threads P=2" in out
    assert "identical on all ranks: True" in out
