"""Timeout + group-abort semantics shared by all SPMD backends.

Before this layer existed a mismatched ``Recv`` tag hung the tier-1
suite forever; now every blocking wait carries the ``REPRO_COMM_TIMEOUT``
deadline and failures abort the whole group tree.
"""

import threading

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.comm.local import run_spmd as run_spmd_threads
from repro.comm.errors import (
    DEFAULT_COMM_TIMEOUT,
    CommAbortError,
    CommTimeoutError,
    comm_timeout,
)


class TestTimeoutPolicy:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMM_TIMEOUT", raising=False)
        assert comm_timeout() == DEFAULT_COMM_TIMEOUT

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "3.5")
        assert comm_timeout() == 3.5

    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "3.5")
        assert comm_timeout(0.25) == 0.25

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            comm_timeout(0.0)
        with pytest.raises(ValueError):
            comm_timeout(-1.0)


class TestThreadCommTimeouts:
    def test_mismatched_tag_times_out(self, monkeypatch):
        """A Recv on a tag nobody sends must raise, not hang the suite."""
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "0.3")

        def fn(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.array([1.0]), dest=1, tag=7)
            else:
                buf = np.empty(1)
                comm.Recv(buf, source=0, tag=99)  # nobody sends tag 99

        with pytest.raises(RuntimeError, match="rank 1") as info:
            run_spmd(2, fn)
        assert isinstance(info.value.__cause__, CommTimeoutError)
        assert "tag=99" in str(info.value.__cause__)

    def test_barrier_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "0.3")

        def fn(comm):
            if comm.Get_rank() == 0:
                comm.Barrier()  # rank 1 never arrives
            # rank 1 returns immediately

        with pytest.raises(RuntimeError, match="rank 0") as info:
            run_spmd(2, fn)
        assert isinstance(info.value.__cause__, CommTimeoutError)

    def test_peer_failure_aborts_blocked_recv(self, monkeypatch):
        """A raising rank must unblock a peer stuck in Recv well before the
        Recv deadline — the abort path, not the timeout path."""
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "30")
        released = threading.Event()

        def fn(comm):
            if comm.Get_rank() == 0:
                raise ValueError("boom")
            try:
                comm.Recv(np.empty(1), source=0)
            finally:
                released.set()

        # Thread backend pinned: the test observes a shared threading.Event.
        with pytest.raises(RuntimeError, match="rank 0") as info:
            run_spmd_threads(2, fn)
        assert isinstance(info.value.__cause__, ValueError)
        assert released.wait(timeout=5.0)

    def test_primary_error_preferred_over_abort(self, monkeypatch):
        """run_spmd must surface the causing ValueError from rank 2, not the
        secondary CommAbortError raised by the lower-numbered waiting ranks."""
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "30")

        def fn(comm):
            if comm.Get_rank() == 2:
                raise ValueError("the real cause")
            comm.Barrier()

        with pytest.raises(RuntimeError, match="rank 2") as info:
            run_spmd(3, fn)
        assert isinstance(info.value.__cause__, ValueError)

    def test_abort_reaches_subgroup_collectives(self, monkeypatch):
        """A failure in the world group must cascade into Split subgroups."""
        monkeypatch.setenv("REPRO_COMM_TIMEOUT", "30")
        caught: dict = {}

        def fn(comm):
            try:
                sub = comm.Split(color=comm.Get_rank() // 2)
                if comm.Get_rank() == 3:
                    raise ValueError("boom")
                # Ranks 0,1 rendezvous normally; rank 2's partner (rank 3)
                # died, so only the cascaded abort can release this wait.
                sub.Barrier()
            except CommAbortError as exc:
                caught[comm.Get_rank()] = exc.failed_rank
                raise

        # Thread backend pinned: the test inspects a shared dict.
        with pytest.raises(RuntimeError, match="rank 3"):
            run_spmd_threads(4, fn)
        assert caught.get(2) == 3
        assert all(rank == 3 for rank in caught.values())


class TestAbortErrorShape:
    def test_failed_rank_attribute(self):
        err = CommAbortError("aborted", failed_rank=5)
        assert err.failed_rank == 5
        assert isinstance(err, RuntimeError)

    def test_timeout_is_runtime_error(self):
        assert issubclass(CommTimeoutError, RuntimeError)
