"""Mesh generation and finite-element matrices."""

import numpy as np
import pytest

from repro.meshes.fem import lumped_mass, mass_matrix, stiffness_matrix
from repro.meshes.mesh2d import (
    Mesh2D,
    NORTHERN_ITALY_EXTENT,
    mesh_with_n_nodes,
    northern_italy_mesh,
    rectangle_mesh,
)
from repro.meshes.projector import point_interpolation_matrix
from repro.meshes.temporal import (
    TemporalMesh,
    temporal_boundary,
    temporal_fem_matrices,
    temporal_mass,
    temporal_stiffness,
)


class TestMesh2D:
    def test_rectangle_counts(self):
        m = rectangle_mesh(5, 4)
        assert m.n_nodes == 20
        assert m.n_triangles == 2 * 4 * 3

    def test_triangles_ccw(self):
        m = rectangle_mesh(6, 5)
        assert np.all(m.triangle_areas() > 0)

    def test_total_area(self):
        m = rectangle_mesh(4, 4, extent=((0, 2), (0, 3)))
        assert np.isclose(m.triangle_areas().sum(), 6.0)

    def test_refine_quadruples_triangles(self):
        m = rectangle_mesh(3, 3)
        r = m.refine()
        assert r.n_triangles == 4 * m.n_triangles
        assert np.isclose(r.triangle_areas().sum(), m.triangle_areas().sum())

    def test_refine_shares_edge_midpoints(self):
        m = rectangle_mesh(3, 3)
        r = m.refine()
        # New nodes = old nodes + unique edges; a 3x3 structured grid has
        # 9 nodes and 16 unique edges (6 horizontal, 6 vertical, 4 diagonal).
        assert r.n_nodes == 9 + 16

    def test_mesh_with_n_nodes_close(self):
        m = mesh_with_n_nodes(300)
        assert 0.7 * 300 <= m.n_nodes <= 1.3 * 300

    def test_northern_italy_extent(self):
        m = northern_italy_mesh(100)
        (x0, x1), (y0, y1) = m.bbox()
        assert x0 == pytest.approx(NORTHERN_ITALY_EXTENT[0][0])
        assert y1 == pytest.approx(NORTHERN_ITALY_EXTENT[1][1])

    def test_invalid_mesh_rejected(self):
        with pytest.raises(ValueError):
            Mesh2D(points=np.zeros((3, 2)), triangles=np.array([[0, 1, 5]]))

    def test_degenerate_extent_rejected(self):
        with pytest.raises(ValueError):
            rectangle_mesh(3, 3, extent=((0, 0), (0, 1)))


class TestSpatialFEM:
    def test_mass_total_equals_area(self, unit_mesh):
        C = mass_matrix(unit_mesh)
        assert np.isclose(C.sum(), 1.0)

    def test_lumped_mass_rowsums(self, unit_mesh):
        Cl = lumped_mass(unit_mesh)
        C = mass_matrix(unit_mesh)
        assert np.allclose(Cl.diagonal(), np.asarray(C.sum(axis=1)).ravel())

    def test_mass_spd(self, unit_mesh):
        C = mass_matrix(unit_mesh).toarray()
        assert np.linalg.eigvalsh(C).min() > 0

    def test_stiffness_symmetric_psd(self, unit_mesh):
        G = stiffness_matrix(unit_mesh).toarray()
        assert np.allclose(G, G.T)
        w = np.linalg.eigvalsh(G)
        assert w.min() > -1e-12

    def test_stiffness_kernel_is_constants(self, unit_mesh):
        G = stiffness_matrix(unit_mesh)
        assert np.allclose(G @ np.ones(unit_mesh.n_nodes), 0.0, atol=1e-12)

    def test_stiffness_energy_of_linear_function(self):
        # For f = x on the unit square: integral |grad f|^2 = 1.
        m = rectangle_mesh(9, 9)
        G = stiffness_matrix(m)
        f = m.points[:, 0]
        assert np.isclose(f @ (G @ f), 1.0)


class TestTemporalFEM:
    def test_mass_total_equals_length(self):
        tm = TemporalMesh(nt=7, dt=0.5)
        M0 = temporal_mass(tm)
        assert np.isclose(M0.sum(), (7 - 1) * 0.5)

    def test_boundary_matrix(self):
        M1 = temporal_boundary(TemporalMesh(nt=5))
        d = M1.diagonal()
        assert d[0] == 0.5 and d[-1] == 0.5
        assert np.all(d[1:-1] == 0)

    def test_stiffness_kernel(self):
        M2 = temporal_stiffness(TemporalMesh(nt=6, dt=2.0))
        assert np.allclose(M2 @ np.ones(6), 0.0)

    def test_stiffness_energy_linear(self):
        tm = TemporalMesh(nt=5, dt=1.0)
        M2 = temporal_stiffness(tm)
        f = tm.knots
        # integral of (df/dt)^2 = length of interval = 4
        assert np.isclose(f @ (M2 @ f), 4.0)

    def test_all_tridiagonal(self):
        M0, M1, M2 = temporal_fem_matrices(TemporalMesh(nt=8))
        for M in (M0, M1, M2):
            coo = M.tocoo()
            assert np.all(np.abs(coo.row - coo.col) <= 1)

    def test_too_few_knots_rejected(self):
        with pytest.raises(ValueError):
            TemporalMesh(nt=1)


class TestProjector:
    def test_partition_of_unity(self, unit_mesh, rng):
        pts = rng.uniform(0.05, 0.95, size=(40, 2))
        A = point_interpolation_matrix(unit_mesh, pts)
        assert np.allclose(np.asarray(A.sum(axis=1)).ravel(), 1.0)

    def test_linear_reproduction(self, unit_mesh, rng):
        pts = rng.uniform(0.1, 0.9, size=(30, 2))
        A = point_interpolation_matrix(unit_mesh, pts)
        f = 3.0 * unit_mesh.points[:, 0] - 2.0 * unit_mesh.points[:, 1] + 1.0
        assert np.allclose(A @ f, 3.0 * pts[:, 0] - 2.0 * pts[:, 1] + 1.0)

    def test_node_evaluation_is_exact(self, unit_mesh):
        A = point_interpolation_matrix(unit_mesh, unit_mesh.points[:5])
        eye = A[:, :5].toarray()
        assert np.allclose(eye, np.eye(5))

    def test_outside_point_raises(self, unit_mesh):
        with pytest.raises(ValueError):
            point_interpolation_matrix(unit_mesh, np.array([[2.0, 2.0]]))

    def test_outside_point_allowed_gives_zero_row(self, unit_mesh):
        A = point_interpolation_matrix(
            unit_mesh, np.array([[2.0, 2.0], [0.5, 0.5]]), allow_outside=True
        )
        assert A[0].nnz == 0
        assert np.isclose(A[1].sum(), 1.0)
