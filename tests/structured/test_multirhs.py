"""Stacked multi-RHS sweeps: edge cases and path agreement.

The contracts under test (see :mod:`repro.structured.multirhs`):

- a stacked solve with ``k = 1`` is bit-for-bit identical to the
  per-RHS entry points (they share the panel-sweep kernels);
- for any ``k`` the stacked batched path agrees with the looped
  per-RHS reference (``REPRO_BATCHED=0`` semantics) to 1e-10;
- degenerate shapes (``a = 0``, ``n = 1``, ``k = 0``) and
  non-contiguous / strided stacks are handled;
- the caller's stack is never mutated;
- the distributed stacked interface matches the sequential one;
- the fused selected-inversion + solve matches the separate passes;
- the solver-level stacked/fused methods agree with their unfused
  building blocks for both Sequential and Distributed dispatch.
"""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.inla.solvers import DistributedSolver, SequentialSolver
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.d_pobtaf import d_pobtaf, partition_matrix
from repro.structured.multirhs import (
    as_rhs_stack,
    d_pobtas_stack,
    pobtas_lt_stack,
    pobtas_stack,
)
from repro.structured.pobtaf import pobtaf
from repro.structured.pobtas import pobtas, pobtas_lt
from repro.structured.pobtasi import pobtasi, pobtasi_with_solve


def _case(n, b, a, seed=0):
    rng = np.random.default_rng(seed)
    A = BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)
    return A, pobtaf(A), rng


SHAPES = [(12, 6, 3), (5, 3, 0), (1, 4, 2), (1, 1, 0), (8, 2, 5)]


class TestStackNormalization:
    def test_vector_promotes_to_k1(self):
        stack, squeeze = as_rhs_stack(np.zeros(7), 7)
        assert stack.shape == (1, 7) and squeeze

    def test_matrix_passthrough(self):
        stack, squeeze = as_rhs_stack(np.zeros((3, 7)), 7)
        assert stack.shape == (3, 7) and not squeeze

    def test_wrong_width_raises(self):
        with pytest.raises(ValueError, match="rhs stack"):
            as_rhs_stack(np.zeros((3, 6)), 7)
        with pytest.raises(ValueError, match="rhs stack"):
            as_rhs_stack(np.zeros((2, 3, 7)), 7)


class TestStackedEqualsUnstacked:
    """k = 1 must be bit-for-bit the per-RHS path — both kernel paths."""

    @pytest.mark.parametrize("n,b,a", SHAPES)
    @pytest.mark.parametrize("batched", [True, False])
    def test_solve_bitwise(self, n, b, a, batched):
        _, chol, rng = _case(n, b, a)
        r = rng.standard_normal(chol.N)
        assert np.array_equal(
            pobtas_stack(chol, r, batched=batched), pobtas(chol, r, batched=batched)
        )
        assert np.array_equal(
            pobtas_stack(chol, r[None], batched=batched)[0],
            pobtas(chol, r, batched=batched),
        )

    @pytest.mark.parametrize("n,b,a", SHAPES)
    @pytest.mark.parametrize("batched", [True, False])
    def test_lt_bitwise(self, n, b, a, batched):
        _, chol, rng = _case(n, b, a)
        r = rng.standard_normal(chol.N)
        assert np.array_equal(
            pobtas_lt_stack(chol, r, batched=batched), pobtas_lt(chol, r, batched=batched)
        )


class TestStackedAgreesWithLooped:
    @pytest.mark.parametrize("n,b,a", SHAPES)
    @pytest.mark.parametrize("k", [2, 5, 64])
    def test_solve(self, n, b, a, k):
        _, chol, rng = _case(n, b, a)
        S = rng.standard_normal((k, chol.N))
        looped = np.stack([pobtas(chol, S[j], batched=False) for j in range(k)])
        assert np.max(np.abs(pobtas_stack(chol, S, batched=True) - looped)) < 1e-10
        assert np.max(np.abs(pobtas_stack(chol, S, batched=False) - looped)) < 1e-10

    @pytest.mark.parametrize("n,b,a", SHAPES)
    @pytest.mark.parametrize("k", [2, 64])
    def test_lt(self, n, b, a, k):
        _, chol, rng = _case(n, b, a)
        S = rng.standard_normal((k, chol.N))
        looped = np.stack([pobtas_lt(chol, S[j], batched=False) for j in range(k)])
        assert np.max(np.abs(pobtas_lt_stack(chol, S, batched=True) - looped)) < 1e-10
        assert np.max(np.abs(pobtas_lt_stack(chol, S, batched=False) - looped)) < 1e-10

    def test_solves_the_system(self):
        A, chol, rng = _case(10, 4, 2)
        S = rng.standard_normal((6, A.N))
        X = pobtas_stack(chol, S)
        assert np.max(np.abs(A.matvec(X.T) - S.T)) < 1e-8

    @pytest.mark.parametrize("batched", [True, False])
    def test_env_default_matches_override(self, batched, monkeypatch):
        _, chol, rng = _case(6, 3, 1)
        S = rng.standard_normal((4, chol.N))
        monkeypatch.setenv("REPRO_BATCHED", "1" if batched else "0")
        assert np.array_equal(pobtas_stack(chol, S), pobtas_stack(chol, S, batched=batched))


class TestEdgeCases:
    @pytest.mark.parametrize("batched", [True, False])
    def test_empty_stack(self, batched):
        _, chol, _ = _case(4, 3, 2)
        out = pobtas_stack(chol, np.empty((0, chol.N)), batched=batched)
        assert out.shape == (0, chol.N)
        out = pobtas_lt_stack(chol, np.empty((0, chol.N)), batched=batched)
        assert out.shape == (0, chol.N)

    def test_input_not_mutated(self):
        _, chol, rng = _case(6, 3, 2)
        r = rng.standard_normal(chol.N)
        S = rng.standard_normal((3, chol.N))
        r0, S0 = r.copy(), S.copy()
        pobtas_stack(chol, r)
        pobtas_stack(chol, S)
        pobtas_lt_stack(chol, r)
        assert np.array_equal(r, r0) and np.array_equal(S, S0)

    def test_noncontiguous_stacks(self):
        _, chol, rng = _case(7, 3, 2)
        big = rng.standard_normal((10, chol.N))
        strided = big[::2]  # row-strided view
        assert not strided.flags.c_contiguous
        expect = np.stack([pobtas(chol, big[2 * j]) for j in range(5)])
        assert np.max(np.abs(pobtas_stack(chol, strided) - expect)) < 1e-12
        transposed = np.asfortranarray(rng.standard_normal((4, chol.N)))
        expect = np.stack([pobtas(chol, transposed[j]) for j in range(4)])
        assert np.max(np.abs(pobtas_stack(chol, transposed) - expect)) < 1e-12

    def test_integer_stack_promotes(self):
        _, chol, _ = _case(4, 2, 1)
        S = np.arange(2 * chol.N).reshape(2, chol.N)
        out = pobtas_stack(chol, S)
        assert out.dtype == np.float64


class TestFusedSelectedInversionSolve:
    @pytest.mark.parametrize("n,b,a", SHAPES)
    @pytest.mark.parametrize("batched", [True, False])
    def test_matches_separate_passes(self, n, b, a, batched):
        _, chol, rng = _case(n, b, a)
        rhs = rng.standard_normal((chol.N, 3))
        X, x = pobtasi_with_solve(chol, rhs, batched=batched)
        X0 = pobtasi(chol, batched=False)
        x0 = pobtas(chol, rhs, batched=False)
        for blk in ("diag", "lower", "arrow", "tip"):
            got, ref = getattr(X, blk), getattr(X0, blk)
            assert got.shape == ref.shape
            if got.size:
                assert np.max(np.abs(got - ref)) < 1e-10, blk
        assert np.max(np.abs(x - x0)) < 1e-10

    def test_vector_rhs_squeezes(self):
        _, chol, rng = _case(6, 4, 2)
        r = rng.standard_normal(chol.N)
        _, x = pobtasi_with_solve(chol, r)
        assert x.shape == (chol.N,)
        assert np.max(np.abs(x - pobtas(chol, r))) < 1e-12


class TestDistributedStack:
    @pytest.mark.parametrize("P", [2, 3])
    @pytest.mark.parametrize("n,b,a", [(10, 3, 2), (9, 4, 0)])
    def test_matches_sequential(self, P, n, b, a):
        A, chol, rng = _case(n, b, a)
        k = 5
        S = rng.standard_normal((k, A.N))
        expect = pobtas_stack(chol, S)
        slices = partition_matrix(A, P)

        def rank_fn(comm):
            sl = slices[comm.Get_rank()]
            f = d_pobtaf(sl, comm)
            return d_pobtas_stack(
                f, S[:, sl.part.start * b : sl.part.stop * b], S[:, n * b :], comm
            )

        out = run_spmd(P, rank_fn)
        got = np.concatenate([o[0] for o in out] + [out[0][1]], axis=1)
        assert got.shape == (k, A.N)
        assert np.max(np.abs(got - expect)) < 1e-10

    def test_vector_rhs_squeezes(self):
        A, chol, rng = _case(8, 3, 2)
        r = rng.standard_normal(A.N)
        slices = partition_matrix(A, 2)
        b, n = A.b, A.n

        def rank_fn(comm):
            sl = slices[comm.Get_rank()]
            f = d_pobtaf(sl, comm)
            return d_pobtas_stack(
                f, r[sl.part.start * b : sl.part.stop * b], r[n * b :], comm
            )

        out = run_spmd(2, rank_fn)
        got = np.concatenate([o[0] for o in out] + [out[0][1]])
        assert got.shape == (A.N,)
        assert np.max(np.abs(got - pobtas(chol, r))) < 1e-10

    def test_mismatched_tip_height_raises(self):
        A, _, rng = _case(8, 3, 2)
        slices = partition_matrix(A, 2)

        def rank_fn(comm):
            sl = slices[comm.Get_rank()]
            f = d_pobtaf(sl, comm)
            with pytest.raises(ValueError, match="tip stack height"):
                d_pobtas_stack(
                    f,
                    np.zeros((3, sl.part.n_blocks * A.b)),
                    np.zeros((2, A.a)),
                    comm,
                )
            return True

        assert all(run_spmd(2, rank_fn))


@pytest.mark.filterwarnings("always::repro.inla.solvers.OneShotDeprecationWarning")
class TestSolverLevelStack:
    """Wrapper-own tests of the deprecated one-shot stack surface: they
    keep the legacy results pinned bit-exact, so they opt back out of the
    repo-wide warning-as-error escalation."""

    @pytest.mark.parametrize("solver", [SequentialSolver(), DistributedSolver(3)])
    def test_solve_stack(self, solver):
        A, chol, rng = _case(12, 3, 2)
        S = rng.standard_normal((4, A.N))
        ld, X = solver.solve_stack(A.copy(), S)
        assert np.isclose(ld, chol.logdet())
        assert X.shape == (4, A.N)
        assert np.max(np.abs(X - pobtas_stack(chol, S))) < 1e-10

    @pytest.mark.parametrize("solver", [SequentialSolver(), DistributedSolver(3)])
    def test_solve_stack_vector_rhs(self, solver):
        """1-D rhs is a k=1 stack for every solver (same squeeze contract)."""
        A, chol, rng = _case(12, 3, 2)
        r = rng.standard_normal(A.N)
        ld, x = solver.solve_stack(A.copy(), r)
        assert np.isclose(ld, chol.logdet())
        assert x.shape == (A.N,)
        assert np.max(np.abs(x - pobtas(chol, r))) < 1e-10

    @pytest.mark.parametrize("solver", [SequentialSolver(), DistributedSolver(3)])
    def test_fused_solve_and_variances(self, solver):
        A, chol, rng = _case(12, 3, 2)
        r = rng.standard_normal(A.N)
        ld, x, var = solver.solve_and_selected_inverse_diagonal(A.copy(), r)
        assert np.isclose(ld, chol.logdet())
        assert np.max(np.abs(x - pobtas(chol, r))) < 1e-10
        assert np.max(np.abs(var - pobtasi(chol).diagonal())) < 1e-10

    def test_base_class_fallback(self):
        """The generic (two-factorization) fallback stays correct."""
        A, chol, rng = _case(8, 3, 1)
        r = rng.standard_normal(A.N)
        ld, x, var = StructuredSolverFallback().solve_and_selected_inverse_diagonal(
            A.copy(), r
        )
        assert np.isclose(ld, chol.logdet())
        assert np.max(np.abs(x - pobtas(chol, r))) < 1e-10
        assert np.max(np.abs(var - pobtasi(chol).diagonal())) < 1e-10


class StructuredSolverFallback(SequentialSolver):
    """Subclass that deliberately does NOT override the fused method."""

    def solve_and_selected_inverse_diagonal(self, A, rhs):
        from repro.inla.solvers import StructuredSolver

        return StructuredSolver.solve_and_selected_inverse_diagonal(self, A, rhs)
