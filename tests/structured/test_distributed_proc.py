"""d_pobtaf / d_pobtas / d_pobtasi under real worker processes.

Acceptance coverage for the process backend: the full distributed sweep
family running over :class:`~repro.comm.shm.ShmComm` must be BIT-IDENTICAL
to the thread backend (same reductions in the same rank order) and agree
with the sequential solver to 1e-10.  Also exercises the persistent
:class:`~repro.structured.factor.ProcDistributedBTAFactor` handle, whose
workers keep their factor slices resident across epochs.

Rank functions are module-level so they stay picklable under any start
method.
"""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.d_pobtaf import d_pobtaf, partition_matrix
from repro.structured.d_pobtas import d_pobtas
from repro.structured.d_pobtasi import d_pobtasi_diag
from repro.structured.factor import (
    DistributedBTAFactor,
    ProcDistributedBTAFactor,
    d_factorize,
    d_factorize_proc,
)
from repro.structured.kernels import NotPositiveDefiniteError
from repro.structured.pobtaf import pobtaf
from repro.structured.pobtas import pobtas
from repro.structured.pobtasi import selected_inverse_diagonal


def _case(n=11, b=3, a=2, seed=0):
    rng = np.random.default_rng(seed)
    return BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)


def _epoch(comm, slices, rhs, batched):
    """One full distributed epoch: factorize, logdet, solve, selinv diag."""
    sl = slices[comm.Get_rank()]
    b, start, stop = sl.diag.shape[1], sl.part.start, sl.part.stop
    f = d_pobtaf(sl, comm, batched=batched)
    ld = f.logdet(comm, batched=batched)
    n_total = rhs.shape[0]  # n*b + a; tip lives past the block section
    tip_at = n_total - f.a
    xl, xt = d_pobtas(f, rhs[start * b : stop * b], rhs[tip_at:], comm, batched=batched)
    var_local, var_tip = d_pobtasi_diag(f, batched=batched)
    return ld, xl, xt, var_local, var_tip


def _npd_epoch(comm, slices):
    return d_pobtaf(slices[comm.Get_rank()], comm)


def _assemble(out, tip_index):
    x = np.concatenate([o[1] for o in out] + [out[0][2]])
    var = np.concatenate([o[3] for o in out] + [out[0][4]])
    return out[0][0], x, var


class TestProcMatchesThreadsAndSequential:
    @pytest.mark.parametrize("P", [2, 4])
    @pytest.mark.parametrize("batched", [False, True])
    def test_epoch_bitwise_and_vs_sequential(self, P, batched):
        A = _case()
        rng = np.random.default_rng(1)
        rhs = rng.standard_normal(A.n * A.b + A.a)
        slices = partition_matrix(A, P, lb=1.6)

        proc = run_spmd(P, _epoch, slices, rhs, batched, backend="proc")
        thr = run_spmd(P, _epoch, slices, rhs, batched, backend="threads")

        # Bit-identity between backends: same ordered reductions.
        for po, to in zip(proc, thr):
            assert po[0] == to[0]  # logdet
            for pa, ta in zip(po[1:], to[1:]):
                assert np.array_equal(pa, ta)

        # 1e-10 agreement with the sequential solver.
        chol = pobtaf(A, batched=batched)
        ld, x, var = _assemble(proc, A.n * A.b)
        assert np.isclose(ld, chol.logdet(batched=batched), atol=1e-10)
        assert np.allclose(x, pobtas(chol, rhs, batched=batched), atol=1e-10)
        assert np.allclose(var, selected_inverse_diagonal(chol, batched=batched), atol=1e-10)

    def test_not_positive_definite_propagates(self):
        A = _case()
        A.diag[2] -= 50.0 * np.eye(A.b)  # make a partition interior indefinite
        slices = partition_matrix(A, 2, lb=1.6)
        with pytest.raises(RuntimeError) as info:
            run_spmd(2, _npd_epoch, slices, backend="proc")
        cause = info.value.__cause__
        assert isinstance(cause, NotPositiveDefiniteError)


class TestProcFactorHandle:
    @pytest.mark.parametrize("batched", [False, True])
    def test_epoch_reuse_matches_thread_handle(self, batched):
        A = _case(seed=3)
        rng = np.random.default_rng(4)
        rhs = rng.standard_normal(A.N)
        stack = rng.standard_normal((3, A.N))

        ref: DistributedBTAFactor = d_factorize(A, 4, batched=batched)
        with d_factorize_proc(A, 4, batched=batched) as h:
            assert isinstance(h, ProcDistributedBTAFactor)
            assert (h.P, h.n, h.b, h.a, h.N) == (ref.P, ref.n, ref.b, ref.a, ref.N)
            # One factorization epoch, many solve epochs against resident
            # factors — every result bit-identical to the thread handle.
            assert h.logdet() == ref.logdet()
            assert np.array_equal(h.solve(rhs), ref.solve(rhs))
            assert np.array_equal(h.solve_stack(stack), ref.solve_stack(stack))
            assert np.array_equal(h.solve_lt_stack(stack), ref.solve_lt_stack(stack))
            assert np.array_equal(
                h.selected_inverse_diagonal(), ref.selected_inverse_diagonal()
            )
            x, var = h.solve_and_selected_inverse_diagonal(rhs)
            x_ref, var_ref = ref.solve_and_selected_inverse_diagonal(rhs)
            assert np.array_equal(x, x_ref)
            assert np.array_equal(var, var_ref)
            # Second solve epoch on the same resident factors.
            assert np.array_equal(h.solve(rhs), x_ref)

    def test_sample_covariance_shape_and_determinism(self):
        A = _case(seed=5)
        with d_factorize_proc(A, 2) as h:
            s1 = h.sample(4, np.random.default_rng(9))
            s2 = h.sample(4, np.random.default_rng(9))
        assert s1.shape == (4, A.N)
        assert np.array_equal(s1, s2)

    def test_solve_matches_sequential(self):
        A = _case(seed=6)
        rhs = np.random.default_rng(7).standard_normal(A.N)
        x_ref = pobtas(pobtaf(A), rhs)
        with d_factorize_proc(A, 4) as h:
            assert np.allclose(h.solve(rhs), x_ref, atol=1e-10)

    def test_close_releases_workers(self):
        A = _case(seed=8)
        h = d_factorize_proc(A, 2)
        ld = h.logdet()
        h.close()
        h.close()  # idempotent
        assert np.isfinite(ld)
        with pytest.raises(RuntimeError, match="closed"):
            h.solve(np.zeros(A.N))

    def test_not_positive_definite_raises_and_cleans_up(self):
        A = _case(seed=9)
        A.diag[1] -= 50.0 * np.eye(A.b)
        with pytest.raises(NotPositiveDefiniteError):
            d_factorize_proc(A, 2)

    def test_p1_runs_inline(self):
        A = _case(seed=10)
        with d_factorize_proc(A, 1) as h:
            assert np.isclose(h.logdet(), pobtaf(A).logdet(), atol=1e-10)
