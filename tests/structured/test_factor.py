"""Factorization handles: handle/legacy equivalence and amortization.

The handle API (``factorize`` / ``BTAFactor`` / ``DistributedBTAFactor``)
must be **bit-identical** to the legacy one-shot solver surface (the
one-shot methods are thin factorize-then-call wrappers), must perform
exactly one ``pobtaf`` per handle, and must keep its caches and reused
workspaces invisible to callers.
"""

import numpy as np
import pytest

from repro.inla.solvers import DistributedSolver, SequentialSolver
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.factor import d_factorize, factorize
from repro.structured.pobtaf import FACTORIZATIONS, pobtaf
from repro.structured.pobtasi import (
    pobtasi,
    pobtasi_with_solve,
    selected_inverse_diagonal,
    solve_and_selected_inverse_diagonal,
)


def _case(n=10, b=3, a=2, seed=7):
    rng = np.random.default_rng(seed)
    A = BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)
    return A, A.to_dense(), rng


@pytest.mark.filterwarnings("always::repro.inla.solvers.OneShotDeprecationWarning")
@pytest.mark.parametrize("batched", [False, True])
class TestHandleLegacyEquivalence:
    """factorize(A).<op>() bit-identical to the one-shot API, both paths.

    These are the deprecated wrappers' own equivalence tests, so they opt
    back out of the repo-wide warning-as-error escalation."""

    def test_logdet(self, batched):
        A, Ad, _ = _case()
        sv = SequentialSolver(batched=batched)
        assert sv.factorize(A.copy()).logdet() == sv.logdet(A.copy())
        assert np.isclose(sv.factorize(A.copy()).logdet(), np.linalg.slogdet(Ad)[1])

    def test_solve(self, batched):
        A, Ad, rng = _case()
        rhs = rng.standard_normal(A.N)
        sv = SequentialSolver(batched=batched)
        f = sv.factorize(A.copy())
        ld, x = sv.logdet_and_solve(A.copy(), rhs)
        assert f.logdet() == ld
        assert (f.solve(rhs) == x).all()
        assert np.allclose(Ad @ x, rhs)

    def test_selected_inverse_diagonal(self, batched):
        A, Ad, _ = _case()
        sv = SequentialSolver(batched=batched)
        d_handle = sv.factorize(A.copy()).selected_inverse_diagonal()
        d_oneshot = sv.selected_inverse_diagonal(A.copy())
        assert (d_handle == d_oneshot).all()
        assert np.allclose(d_handle, np.diag(np.linalg.inv(Ad)))

    def test_solve_stack(self, batched):
        A, _, rng = _case()
        S = rng.standard_normal((5, A.N))
        sv = SequentialSolver(batched=batched)
        f = sv.factorize(A.copy())
        ld, X = sv.solve_stack(A.copy(), S)
        assert f.logdet() == ld
        assert (f.solve_stack(S) == X).all()

    def test_solve_lt_stack(self, batched):
        A, _, rng = _case()
        S = rng.standard_normal((4, A.N))
        sv = SequentialSolver(batched=batched)
        f = sv.factorize(A.copy())
        assert (f.solve_lt_stack(S) == sv.solve_lt_stack(A.copy(), S)).all()

    def test_fused_solve_and_variances(self, batched):
        A, _, rng = _case()
        rhs = rng.standard_normal(A.N)
        sv = SequentialSolver(batched=batched)
        f = sv.factorize(A.copy())
        ld, x, var = sv.solve_and_selected_inverse_diagonal(A.copy(), rhs)
        x2, var2 = f.solve_and_selected_inverse_diagonal(rhs)
        assert f.logdet() == ld
        assert (x2 == x).all() and (var2 == var).all()


@pytest.mark.parametrize("batched", [False, True])
class TestDiagonalOnlySelectedInversion:
    """The carry-based diagonal recursion matches the full pobtasi."""

    @pytest.mark.parametrize("shape", [(10, 3, 2), (6, 4, 0), (1, 3, 2), (2, 2, 1)])
    def test_matches_full(self, batched, shape):
        n, b, a = shape
        A, _, _ = _case(n, b, a)
        chol = pobtaf(A, batched=batched)
        d_full = pobtasi(chol, batched=batched).diagonal()
        d_diag = selected_inverse_diagonal(chol, batched=batched)
        assert (d_full == d_diag).all() if batched else np.allclose(d_full, d_diag)

    def test_fused_matches_with_solve(self, batched):
        A, _, rng = _case()
        rhs = rng.standard_normal(A.N)
        chol = pobtaf(A, batched=batched)
        X, x_ref = pobtasi_with_solve(chol, rhs, batched=batched)
        x, var = solve_and_selected_inverse_diagonal(chol, rhs, batched=batched)
        assert np.allclose(x, x_ref, atol=1e-12)
        assert np.allclose(var, X.diagonal(), atol=1e-12)


class TestFactorCaching:
    def test_logdet_cached_and_stable(self):
        A, _, _ = _case()
        f = factorize(A.copy())
        assert f.logdet() == f.logdet()

    def test_selinv_cache_isolated_from_caller(self):
        """Mutating the returned diagonal must not corrupt the cache."""
        A, _, _ = _case()
        f = factorize(A.copy())
        d1 = f.selected_inverse_diagonal()
        d1[:] = -1.0
        assert (f.selected_inverse_diagonal() > 0).all()

    def test_workspace_reuse_across_widths(self):
        """Repeated stacked solves (same and different k) stay correct."""
        A, Ad, rng = _case(n=8, b=3, a=2)
        f = factorize(A.copy())
        for k in (3, 5, 3, 1, 3):
            S = rng.standard_normal((k, A.N))
            X = f.solve_stack(S)
            assert np.allclose(X @ Ad, S, atol=1e-8), k
        # Results from an earlier call must not alias the workspace.
        S1 = rng.standard_normal((4, A.N))
        X1 = f.solve_stack(S1).copy()
        f.solve_stack(rng.standard_normal((4, A.N)))
        assert (X1 == f.solve_stack(S1)).all()

    def test_k1_stack_results_do_not_alias_workspace(self):
        """Regression: a 2-D k=1 stack transposes to a (1, N) view that
        numpy flags contiguous, so the result must be copied out of the
        reused workspace explicitly."""
        A, Ad, rng = _case(n=8, b=3, a=2, seed=21)
        f = factorize(A.copy())
        r1 = rng.standard_normal(A.N)
        r2 = rng.standard_normal(A.N)
        x1 = f.solve_stack(r1[None, :])
        x2 = f.solve_stack(r2[None, :])
        assert not np.shares_memory(x1, x2)
        assert np.allclose((x1 @ Ad)[0], r1, atol=1e-8)
        z1 = f.solve_lt_stack(r1[None, :])
        f.solve_lt_stack(r2[None, :])
        assert np.allclose(np.einsum("kn,nm,km->k", z1, Ad, z1), [r1 @ r1])
        s1 = f.sample(1, np.random.default_rng(5))
        s2 = f.sample(1, np.random.default_rng(6))
        assert not np.shares_memory(s1, s2)
        assert not (s1 == s2).all()

    def test_sample_mean_and_reproducibility(self):
        A, Ad, _ = _case()
        f = factorize(A.copy())
        mean = np.arange(A.N, dtype=float)
        s1 = f.sample(6, np.random.default_rng(3), mean=mean)
        s2 = f.sample(6, np.random.default_rng(3), mean=mean)
        assert s1.shape == (6, A.N)
        assert (s1 == s2).all()
        # x - mean = L^{-T} z: the draws' quadratic forms equal |z|^2.
        z = np.random.default_rng(3).standard_normal((6, A.N))
        dev = s1 - mean
        assert np.allclose(
            np.einsum("kn,nm,km->k", dev, Ad, dev), np.einsum("kn,kn->k", z, z)
        )

    def test_sample_validates_k(self):
        A, _, _ = _case()
        with pytest.raises(ValueError):
            factorize(A.copy()).sample(0, np.random.default_rng(0))


class TestFactorizationCount:
    def test_factorize_runs_exactly_one_pobtaf(self):
        A, _, rng = _case()
        rhs = rng.standard_normal(A.N)
        c0 = FACTORIZATIONS.count
        f = factorize(A.copy())
        assert FACTORIZATIONS.count == c0 + 1
        f.logdet()
        f.solve(rhs)
        f.solve_stack(rng.standard_normal((3, A.N)))
        f.selected_inverse_diagonal()
        f.solve_and_selected_inverse_diagonal(rhs)
        f.sample(2, rng)
        assert FACTORIZATIONS.count == c0 + 1

    @pytest.mark.filterwarnings("always::repro.inla.solvers.OneShotDeprecationWarning")
    def test_oneshot_triple_runs_three(self):
        A, _, rng = _case()
        rhs = rng.standard_normal(A.N)
        sv = SequentialSolver()
        c0 = FACTORIZATIONS.count
        sv.logdet(A.copy())
        sv.logdet_and_solve(A.copy(), rhs)
        sv.selected_inverse_diagonal(A.copy())
        assert FACTORIZATIONS.count == c0 + 3

    def test_distributed_handle_amortizes(self):
        """After d_factorize (ONE shared reduced-system pobtaf per epoch,
        see factorize_reduced), no handle method factorizes again."""
        A, _, rng = _case(n=12, b=3, a=2)
        rhs = rng.standard_normal(A.N)
        P = 3
        c0 = FACTORIZATIONS.count
        df = d_factorize(A.copy(), P)
        assert FACTORIZATIONS.count == c0 + 1
        df.logdet()
        df.solve(rhs)
        df.solve_stack(rng.standard_normal((4, A.N)))
        df.solve_lt_stack(rng.standard_normal((4, A.N)))
        df.selected_inverse_diagonal()
        df.solve_and_selected_inverse_diagonal(rhs)
        df.sample(2, rng)
        assert FACTORIZATIONS.count == c0 + 1


class TestDistributedHandle:
    @pytest.mark.parametrize("P", [2, 3])
    def test_matches_sequential(self, P):
        A, Ad, rng = _case(n=12, b=3, a=2)
        rhs = rng.standard_normal(A.N)
        df = DistributedSolver(P).factorize(A.copy())
        assert np.isclose(df.logdet(), np.linalg.slogdet(Ad)[1])
        assert np.allclose(Ad @ df.solve(rhs), rhs, atol=1e-8)
        assert np.allclose(
            df.selected_inverse_diagonal(), np.diag(np.linalg.inv(Ad)), atol=1e-8
        )
        S = rng.standard_normal((5, A.N))
        assert np.allclose(df.solve_stack(S) @ Ad, S, atol=1e-8)
        x, var = df.solve_and_selected_inverse_diagonal(rhs)
        assert np.allclose(Ad @ x, rhs, atol=1e-8)
        assert np.allclose(var, np.diag(np.linalg.inv(Ad)), atol=1e-8)

    def test_small_matrix_falls_back_to_sequential_handle(self):
        A, _, _ = _case(n=2, b=2, a=1)
        f = DistributedSolver(8).factorize(A.copy())
        # n=2 clamps to one partition: a sequential BTAFactor comes back.
        assert hasattr(f, "chol")

    @pytest.mark.filterwarnings("always::repro.inla.solvers.OneShotDeprecationWarning")
    def test_matches_legacy_oneshot(self):
        A, _, rng = _case(n=12, b=3, a=2)
        rhs = rng.standard_normal(A.N)
        sv = DistributedSolver(3)
        df = sv.factorize(A.copy())
        ld, x = sv.logdet_and_solve(A.copy(), rhs)
        assert df.logdet() == ld
        assert (df.solve(rhs) == x).all()
        assert (
            df.selected_inverse_diagonal() == sv.selected_inverse_diagonal(A.copy())
        ).all()
