"""Tests for the BTA matrix container."""

import numpy as np
import pytest

from repro.structured.bta import BTAMatrix, BTAShape


class TestBTAShape:
    def test_total_dimension(self):
        s = BTAShape(n=5, b=3, a=2)
        assert s.N == 17

    def test_no_arrow(self):
        assert BTAShape(n=4, b=2, a=0).N == 8

    @pytest.mark.parametrize("n,b,a", [(0, 3, 1), (3, 0, 1), (3, 3, -1)])
    def test_invalid_dims_rejected(self, n, b, a):
        with pytest.raises(ValueError):
            BTAShape(n=n, b=b, a=a)


class TestBTAMatrixConstruction:
    def test_zeros_shapes(self):
        A = BTAMatrix.zeros(BTAShape(n=4, b=3, a=2))
        assert A.diag.shape == (4, 3, 3)
        assert A.lower.shape == (3, 3, 3)
        assert A.arrow.shape == (4, 2, 3)
        assert A.tip.shape == (2, 2)

    def test_default_blocks_are_zero(self):
        A = BTAMatrix(np.ones((3, 2, 2)))
        assert A.a == 0
        assert np.all(A.lower == 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BTAMatrix(np.ones((3, 2, 2)), lower=np.ones((3, 2, 2)))

    def test_non_square_diag_rejected(self):
        with pytest.raises(ValueError):
            BTAMatrix(np.ones((3, 2, 4)))

    def test_is_bt_flag(self, small_bt, small_bta):
        assert small_bt[0].is_bt
        assert not small_bta[0].is_bt


class TestDenseRoundtrip:
    def test_to_dense_symmetric(self, small_bta):
        A, Ad = small_bta
        assert np.allclose(Ad, Ad.T)

    def test_from_dense_roundtrip(self, small_bta):
        A, Ad = small_bta
        B = BTAMatrix.from_dense(Ad, A.shape3)
        assert np.allclose(B.to_dense(), Ad)

    def test_from_dense_wrong_shape(self, small_bta):
        A, Ad = small_bta
        with pytest.raises(ValueError):
            BTAMatrix.from_dense(Ad[:-1, :-1], A.shape3)


class TestAlgebra:
    def test_matvec_vector(self, small_bta, rng):
        A, Ad = small_bta
        x = rng.standard_normal(A.N)
        assert np.allclose(A.matvec(x), Ad @ x)

    def test_matvec_block(self, small_bta, rng):
        A, Ad = small_bta
        X = rng.standard_normal((A.N, 3))
        assert np.allclose(A.matvec(X), Ad @ X)

    def test_matvec_bt(self, small_bt, rng):
        A, Ad = small_bt
        x = rng.standard_normal(A.N)
        assert np.allclose(A.matvec(x), Ad @ x)

    def test_diagonal(self, small_bta):
        A, Ad = small_bta
        assert np.allclose(A.diagonal(), np.diag(Ad))

    def test_add_diagonal_scalar(self, small_bta):
        A, Ad = small_bta
        B = A.copy()
        B.add_diagonal(np.float64(2.5))
        assert np.allclose(B.to_dense(), Ad + 2.5 * np.eye(A.N))

    def test_add_diagonal_vector(self, small_bta, rng):
        A, Ad = small_bta
        v = rng.standard_normal(A.N)
        B = A.copy()
        B.add_diagonal(v)
        assert np.allclose(B.to_dense(), Ad + np.diag(v))

    def test_add_diagonal_wrong_length(self, small_bta):
        A, _ = small_bta
        with pytest.raises(ValueError):
            A.copy().add_diagonal(np.ones(A.N + 1))

    def test_frobenius_norm(self, small_bta):
        A, Ad = small_bta
        assert np.isclose(A.frobenius_norm(), np.linalg.norm(Ad))

    def test_copy_is_deep(self, small_bta):
        A, _ = small_bta
        B = A.copy()
        B.diag[0, 0, 0] += 1.0
        assert A.diag[0, 0, 0] != B.diag[0, 0, 0]


class TestRandomSPD:
    @pytest.mark.parametrize("n,b,a", [(3, 2, 0), (5, 3, 2), (2, 6, 4), (8, 1, 1)])
    def test_positive_definite(self, rng, n, b, a):
        A = BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)
        w = np.linalg.eigvalsh(A.to_dense())
        assert w.min() > 0
