"""Distributed solvers must match the sequential ones exactly.

These are the strongest correctness tests in the repository: the whole
nested-dissection pipeline (interior elimination, reduced-system assembly
over real collectives, back-substitution, selected-inverse propagation) is
compared block-for-block against the sequential kernels, for several
partition counts, with and without load balancing, with and without the
arrowhead.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import run_spmd
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.d_pobtaf import LocalBTASlice, d_pobtaf, partition_matrix
from repro.structured.d_pobtas import d_pobtas
from repro.structured.d_pobtasi import d_pobtasi, d_pobtasi_diag, gather_selected_inverse
from repro.structured.pobtaf import pobtaf
from repro.structured.pobtasi import pobtasi


def _case(n, b, a, seed=0):
    rng = np.random.default_rng(seed)
    A = BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)
    return A, A.to_dense(), rng


def _run_pipeline(A, P, lb, rhs):
    slices = partition_matrix(A, P, lb=lb)
    b, n = A.b, A.n

    def rank_fn(comm):
        sl = slices[comm.Get_rank()]
        f = d_pobtaf(sl, comm)
        ld = f.logdet(comm)
        xl, xt = d_pobtas(f, rhs[sl.part.start * b : sl.part.stop * b], rhs[n * b :], comm)
        return ld, xl, xt, d_pobtasi(f)

    return run_spmd(P, rank_fn)


class TestDistributedFactorization:
    @pytest.mark.parametrize("P", [1, 2, 3, 4])
    @pytest.mark.parametrize("lb", [1.0, 1.6])
    def test_logdet_matches_sequential(self, P, lb):
        A, Ad, _ = _case(10, 3, 2)
        ref = pobtaf(A).logdet()
        slices = partition_matrix(A, P, lb=lb)
        out = run_spmd(P, lambda comm: d_pobtaf(slices[comm.Get_rank()], comm).logdet(comm))
        assert all(np.isclose(v, ref) for v in out)

    def test_bt_case(self):
        A, Ad, _ = _case(9, 4, 0)
        ref = np.linalg.slogdet(Ad)[1]
        slices = partition_matrix(A, 3)
        out = run_spmd(3, lambda comm: d_pobtaf(slices[comm.Get_rank()], comm).logdet(comm))
        assert all(np.isclose(v, ref) for v in out)

    def test_rank_mismatch_rejected(self):
        A, _, _ = _case(6, 2, 1)
        slices = partition_matrix(A, 2)

        def bad(comm):
            # Every rank grabs slice 0 -> partition index mismatch on rank 1.
            return d_pobtaf(slices[0], comm)

        with pytest.raises(RuntimeError):
            run_spmd(2, bad)


class TestDistributedTriangularSolve:
    @pytest.mark.parametrize("P", [2, 3, 4])
    @pytest.mark.parametrize("lb", [1.0, 1.6])
    def test_solution_matches_dense(self, P, lb):
        A, Ad, rng = _case(11, 3, 2, seed=P)
        rhs = rng.standard_normal(A.N)
        out = _run_pipeline(A, P, lb, rhs)
        x = np.concatenate([o[1] for o in out] + [out[0][2]])
        assert np.allclose(Ad @ x, rhs, atol=1e-8)

    def test_tip_solution_identical_on_all_ranks(self):
        A, _, rng = _case(8, 2, 3)
        rhs = rng.standard_normal(A.N)
        out = _run_pipeline(A, 2, 1.0, rhs)
        assert np.allclose(out[0][2], out[1][2])

    def test_multiple_rhs(self):
        A, Ad, rng = _case(9, 3, 2, seed=5)
        rhs = rng.standard_normal((A.N, 3))
        slices = partition_matrix(A, 3)
        b, n = A.b, A.n

        def rank_fn(comm):
            sl = slices[comm.Get_rank()]
            f = d_pobtaf(sl, comm)
            return d_pobtas(f, rhs[sl.part.start * b : sl.part.stop * b], rhs[n * b :], comm)

        out = run_spmd(3, rank_fn)
        x = np.concatenate([o[0] for o in out] + [out[0][1]])
        assert np.allclose(Ad @ x, rhs, atol=1e-8)

    def test_bt_case(self):
        A, Ad, rng = _case(8, 3, 0)
        rhs = rng.standard_normal(A.N)
        out = _run_pipeline(A, 2, 1.0, rhs)
        x = np.concatenate([o[1] for o in out])
        assert np.allclose(Ad @ x, rhs, atol=1e-8)


class TestDistributedSelectedInversion:
    @pytest.mark.parametrize("P", [2, 3, 4])
    @pytest.mark.parametrize("lb", [1.0, 1.6])
    def test_matches_sequential(self, P, lb):
        A, Ad, rng = _case(12, 3, 2, seed=10 + P)
        rhs = rng.standard_normal(A.N)
        out = _run_pipeline(A, P, lb, rhs)
        dense_sel = gather_selected_inverse([o[3] for o in out])
        ref = BTAMatrix.from_dense(np.linalg.inv(Ad), A.shape3).to_dense()
        assert np.allclose(dense_sel, ref, atol=1e-8)

    def test_matches_sequential_pobtasi(self):
        A, _, rng = _case(10, 2, 1, seed=3)
        rhs = rng.standard_normal(A.N)
        ref = pobtasi(pobtaf(A))
        out = _run_pipeline(A, 3, 1.0, rhs)
        slices = sorted([o[3] for o in out], key=lambda s: s.part.index)
        for sl in slices:
            s, e = sl.part.start, sl.part.stop
            assert np.allclose(sl.diag, ref.diag[s:e], atol=1e-10)
            assert np.allclose(sl.arrow, ref.arrow[s:e], atol=1e-10)
            assert np.allclose(sl.lower, ref.lower[s : e - 1], atol=1e-10)
            if sl.lower_prev is not None:
                assert np.allclose(sl.lower_prev, ref.lower[s - 1], atol=1e-10)

    def test_no_interior_partitions(self):
        """Two-block partitions exercise the m == 0 code path."""
        A, Ad, rng = _case(6, 3, 2, seed=9)
        rhs = rng.standard_normal(A.N)
        out = _run_pipeline(A, 3, 1.0, rhs)  # 3 partitions of 2 blocks
        dense_sel = gather_selected_inverse([o[3] for o in out])
        ref = BTAMatrix.from_dense(np.linalg.inv(Ad), A.shape3).to_dense()
        assert np.allclose(dense_sel, ref, atol=1e-8)


class TestDistributedDiagonalOnly:
    """Carry-based per-rank diagonal recursion (no full inverse slices)."""

    @pytest.mark.parametrize("P", [2, 3, 4])
    @pytest.mark.parametrize("a", [0, 2])
    def test_bit_identical_to_full_recursion(self, P, a):
        A, _, _ = _case(12, 3, a, seed=20 + P + a)
        slices = partition_matrix(A, P, lb=1.6)

        def rank_fn(comm):
            f = d_pobtaf(slices[comm.Get_rank()], comm)
            xi = d_pobtasi(f)
            full = (
                np.ascontiguousarray(np.diagonal(xi.diag, axis1=1, axis2=2)).ravel(),
                np.ascontiguousarray(np.diagonal(xi.tip)),
            )
            return full, d_pobtasi_diag(f)

        for full, carry in run_spmd(P, rank_fn):
            assert np.array_equal(full[0], carry[0])
            assert np.array_equal(full[1], carry[1])

    @pytest.mark.parametrize("batched", [False, True])
    def test_matches_dense_inverse(self, batched):
        A, Ad, _ = _case(10, 3, 2, seed=31)
        P = 3
        slices = partition_matrix(A, P, lb=1.0)

        def rank_fn(comm):
            f = d_pobtaf(slices[comm.Get_rank()], comm, batched=batched)
            return f.part, d_pobtasi_diag(f, batched=batched)

        out = run_spmd(P, rank_fn)
        diag = np.empty(A.N)
        for part, (local, tip) in out:
            diag[part.start * A.b : part.stop * A.b] = local
            diag[A.n * A.b :] = tip
        assert np.allclose(diag, np.diag(np.linalg.inv(Ad)), atol=1e-9)

    def test_no_interior_partitions_diag(self):
        """Two-block partitions exercise the m == 0 carry path."""
        A, Ad, _ = _case(6, 3, 2, seed=9)
        slices = partition_matrix(A, 3, lb=1.0)

        def rank_fn(comm):
            f = d_pobtaf(slices[comm.Get_rank()], comm)
            return f.part, d_pobtasi_diag(f)

        out = run_spmd(3, rank_fn)
        ref = np.diag(np.linalg.inv(Ad))
        for part, (local, tip) in out:
            assert np.allclose(local, ref[part.start * A.b : part.stop * A.b], atol=1e-9)
            assert np.allclose(tip, ref[A.n * A.b :], atol=1e-9)


class TestDistributedProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(6, 14),
        b=st.integers(1, 4),
        a=st.integers(0, 3),
        P=st.integers(2, 4),
        lb=st.sampled_from([1.0, 1.4, 2.0]),
        seed=st.integers(0, 10**6),
    )
    def test_distributed_equals_sequential(self, n, b, a, P, lb, seed):
        if P > n // 2:
            return
        A, Ad, rng = _case(n, b, a, seed)
        rhs = rng.standard_normal(A.N)
        ref_logdet = np.linalg.slogdet(Ad)[1]
        out = _run_pipeline(A, P, lb, rhs)
        assert np.isclose(out[0][0], ref_logdet, rtol=1e-8, atol=1e-8)
        x = np.concatenate([o[1] for o in out] + ([out[0][2]] if a else []))
        assert np.allclose(Ad @ x, rhs, atol=1e-7)
        dense_sel = gather_selected_inverse([o[3] for o in out])
        ref = BTAMatrix.from_dense(np.linalg.inv(Ad), A.shape3).to_dense()
        assert np.allclose(dense_sel, ref, atol=1e-7)


class TestLocalSlice:
    def test_from_global_roundtrip(self):
        A, _, _ = _case(10, 2, 1)
        slices = partition_matrix(A, 3)
        assert slices[0].lower_prev is None
        assert slices[1].lower_prev is not None
        total = sum(sl.part.n_blocks for sl in slices)
        assert total == A.n

    def test_shape_validation(self):
        A, _, _ = _case(6, 2, 1)
        slices = partition_matrix(A, 2)
        with pytest.raises(ValueError):
            LocalBTASlice(
                part=slices[1].part,
                diag=slices[1].diag,
                lower=slices[1].lower,
                arrow=slices[1].arrow,
                tip=slices[1].tip,
                lower_prev=None,  # missing for p >= 1
            )
