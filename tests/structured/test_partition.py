"""Time-domain partitioning and load balancing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.structured.partition import (
    Partition,
    balanced_partitions,
    partition_counts,
    reduced_block_indices,
)


class TestPartitionCounts:
    def test_even_split(self):
        assert partition_counts(12, 3) == [4, 4, 4]

    def test_single_partition(self):
        assert partition_counts(7, 1) == [7]

    def test_total_preserved_with_lb(self):
        counts = partition_counts(100, 4, lb=1.6)
        assert sum(counts) == 100

    def test_lb_gives_first_partition_more(self):
        counts = partition_counts(100, 4, lb=1.6)
        assert counts[0] > counts[1]
        # Roughly lb x the even share.
        assert counts[0] == pytest.approx(100 * 1.6 / 4.6, abs=1.5)

    def test_later_partitions_get_two_blocks(self):
        counts = partition_counts(7, 3)
        assert all(c >= 2 for c in counts[1:])

    def test_too_many_partitions_rejected(self):
        with pytest.raises(ValueError):
            partition_counts(3, 4)

    def test_lb_below_one_rejected(self):
        with pytest.raises(ValueError):
            partition_counts(10, 2, lb=0.5)

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1, 200),
        P=st.integers(1, 8),
        lb=st.floats(1.0, 3.0),
    )
    def test_counts_always_partition_n(self, n, P, lb):
        if P > max(n // 2, 1) and P > 1:
            return  # not enough blocks for two-boundary partitions
        try:
            counts = partition_counts(n, P, lb=lb)
        except ValueError:
            return
        assert sum(counts) == n
        assert all(c >= 1 for c in counts)
        assert all(c >= 2 for c in counts[1:])


class TestBalancedPartitions:
    def test_contiguous_cover(self):
        parts = balanced_partitions(20, 4, lb=1.3)
        assert parts[0].start == 0
        assert parts[-1].stop == 20
        for a, b in zip(parts, parts[1:]):
            assert a.stop == b.start

    def test_partition_properties(self):
        p = Partition(index=2, start=5, stop=9)
        assert p.n_blocks == 4
        assert p.top_boundary == 5
        assert p.bottom_boundary == 8
        assert list(p.interior()) == [6, 7]

    def test_first_partition_interior(self):
        p = Partition(index=0, start=0, stop=4)
        assert p.top_boundary is None
        assert list(p.interior()) == [0, 1, 2]

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            Partition(index=0, start=3, stop=3)


class TestReducedIndices:
    def test_reduced_block_count(self):
        parts = balanced_partitions(20, 4)
        idx = reduced_block_indices(parts)
        assert len(idx) == 2 * 4 - 1

    def test_reduced_indices_are_boundaries(self):
        parts = balanced_partitions(15, 3)
        idx = reduced_block_indices(parts)
        assert idx[0] == parts[0].bottom_boundary
        assert parts[1].top_boundary in idx
        assert parts[2].bottom_boundary in idx

    def test_indices_strictly_increasing(self):
        parts = balanced_partitions(30, 5, lb=1.6)
        idx = reduced_block_indices(parts)
        assert all(a < b for a, b in zip(idx, idx[1:]))
