"""Theta-batched factorization: one sweep vs per-theta, both paths.

``factorize_batch`` must be bit-identical to the per-theta batched
handles at any ``t`` (the chain runs the same per-slab operations), agree
with the looped ``REPRO_BATCHED=0`` reference to 1e-10, count exactly one
factorization sweep per call, and serve full per-theta ``BTAFactor``
views off the shared stacks with zero further ``pobtaf``.
"""

import numpy as np
import pytest

from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.factor import factorize
from repro.structured.kernels import NotPositiveDefiniteError
from repro.structured.multifactor import factorize_batch
from repro.structured.pobtaf import FACTORIZATIONS


def _stencil(t=7, n=8, b=4, a=3, seed=42):
    """t same-shape SPD matrices with distinct values + per-theta RHS."""
    rng = np.random.default_rng(seed)
    shape = BTAShape(n=n, b=b, a=a)
    mats = [BTAMatrix.random_spd(shape, rng) for _ in range(t)]
    rhs = rng.standard_normal((t, shape.N))
    return mats, rhs


class TestAgainstPerTheta:
    def test_bit_identical_to_batched_handles(self):
        """Every theta slab runs the same ops as factorize(batched=True)."""
        mats, rhs = _stencil()
        batch = factorize_batch([A.copy() for A in mats])
        lds = batch.logdets()
        xs = batch.solve_each(rhs)
        for j, A in enumerate(mats):
            f = factorize(A.copy(), batched=True)
            assert lds[j] == f.logdet()
            assert np.array_equal(xs[j], f.solve(rhs[j]))

    def test_matches_looped_reference_path(self):
        """1e-10 agreement with the looped REPRO_BATCHED=0 reference."""
        mats, rhs = _stencil()
        batch = factorize_batch([A.copy() for A in mats])
        lds = batch.logdets()
        xs = batch.solve_each(rhs)
        for j, A in enumerate(mats):
            f = factorize(A.copy(), batched=False)
            assert abs(lds[j] - f.logdet()) < 1e-10 * max(1.0, abs(f.logdet()))
            assert np.max(np.abs(xs[j] - f.solve(rhs[j]))) < 1e-10

    def test_single_theta_bit_identical(self):
        """t = 1 is bit-for-bit the sequential batched path."""
        mats, rhs = _stencil(t=1)
        batch = factorize_batch([mats[0].copy()])
        f = factorize(mats[0].copy(), batched=True)
        assert batch.logdets()[0] == f.logdet()
        assert np.array_equal(batch.solve_each(rhs[:1])[0], f.solve(rhs[0]))
        v = batch.factor(0)
        assert np.array_equal(v.selected_inverse_diagonal(), f.selected_inverse_diagonal())

    def test_bt_no_arrow(self):
        """a = 0 (the prior Qp shape) runs the chain without arrow work."""
        mats, rhs = _stencil(t=5, a=0)
        batch = factorize_batch([A.copy() for A in mats])
        lds = batch.logdets()
        xs = batch.solve_each(rhs)
        assert batch.arrow_flat is None
        for j, A in enumerate(mats):
            f = factorize(A.copy(), batched=True)
            assert lds[j] == f.logdet()
            assert np.array_equal(xs[j], f.solve(rhs[j]))

    def test_single_block_chain(self):
        mats, rhs = _stencil(t=3, n=1, b=5, a=2)
        batch = factorize_batch([A.copy() for A in mats])
        for j, A in enumerate(mats):
            f = factorize(A.copy(), batched=True)
            assert batch.logdets()[j] == f.logdet()
            assert np.array_equal(batch.solve_each(rhs)[j], f.solve(rhs[j]))

    def test_dense_ground_truth(self):
        mats, rhs = _stencil(t=4, n=6, b=3, a=2)
        batch = factorize_batch(mats)
        xs = batch.solve_each(rhs)
        for j, A in enumerate(mats):
            Ad = A.to_dense()
            assert np.isclose(batch.logdets()[j], np.linalg.slogdet(Ad)[1])
            assert np.allclose(Ad @ xs[j], rhs[j], atol=1e-9)


class TestPerThetaViews:
    def test_views_share_storage_and_serve_everything(self):
        mats, rhs = _stencil(t=4)
        batch = factorize_batch(mats)
        refs = [factorize(A.copy(), batched=True) for A in mats]
        c0 = FACTORIZATIONS.count
        for j in range(batch.t):
            v = batch.factor(j)
            ref = refs[j]
            assert v.logdet() == ref.logdet()
            assert np.array_equal(v.solve(rhs[j]), ref.solve(rhs[j]))
            assert np.array_equal(
                v.selected_inverse_diagonal(), ref.selected_inverse_diagonal()
            )
            assert v.sample(3, np.random.default_rng(7)).shape == (3, batch.N)
            # zero-copy: the view's factor blocks alias the shared stacks
            assert np.shares_memory(v.chol.factor.diag, batch.diag)
            assert np.shares_memory(v.chol.factor.lower, batch.lower)
        # views never refactorize
        assert FACTORIZATIONS.count == c0
        assert batch.factor(1) is batch.factor(1)  # cached
        assert batch.factor(-1) is batch.factor(batch.t - 1)

    def test_factors_list(self):
        mats, _ = _stencil(t=3)
        batch = factorize_batch(mats)
        assert len(batch.factors()) == 3
        assert len(batch) == 3


class TestAccounting:
    def test_one_sweep_per_batch(self):
        mats, _ = _stencil(t=7)
        c0 = FACTORIZATIONS.count
        factorize_batch(mats)
        assert FACTORIZATIONS.count == c0 + 1  # one sweep, not t

    def test_inputs_not_modified(self):
        mats, _ = _stencil(t=3)
        pristine = [A.copy() for A in mats]
        factorize_batch(mats)
        for A, P in zip(mats, pristine):
            assert np.array_equal(A.diag, P.diag)
            assert np.array_equal(A.tip, P.tip)


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            factorize_batch([])

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        A = BTAMatrix.random_spd(BTAShape(n=4, b=3, a=1), rng)
        B = BTAMatrix.random_spd(BTAShape(n=4, b=4, a=1), rng)
        with pytest.raises(ValueError):
            factorize_batch([A, B])

    def test_not_positive_definite_raises(self):
        mats, _ = _stencil(t=3)
        mats[1].diag[2] -= 1e4 * np.eye(mats[1].b)  # poison one theta
        with pytest.raises(NotPositiveDefiniteError):
            factorize_batch(mats)

    def test_rhs_shape_checked(self):
        mats, _ = _stencil(t=3)
        batch = factorize_batch(mats)
        with pytest.raises(ValueError):
            batch.solve_each(np.zeros((2, batch.N)))
        with pytest.raises(IndexError):
            batch.factor(5)
