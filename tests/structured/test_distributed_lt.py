"""Distributed backward-only solve ``d_pobtas_lt`` (the S3 sampling sweep).

``L`` is the nested-dissection factor of the *permuted* matrix, so the
solutions differ entry-by-entry from the sequential ``pobtas_lt`` — the
contract is covariance-exactness: ``M = L^{-T}`` (applied columnwise to
the identity) must satisfy ``M M^T = A^{-1}``, and every draw must
satisfy the quadratic-form identity ``x^T A x = z^T z`` (because
``z = L^T x`` and the permutation preserves norms).
"""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.d_pobtaf import d_pobtaf, partition_matrix
from repro.structured.d_pobtas import d_pobtas_lt
from repro.structured.multirhs import d_pobtas_lt_stack


def _solve_lt(A, P, stack, *, batched=None, lb=1.6):
    """Columns of ``stack`` (k, N) through d_pobtas_lt_stack on P ranks."""
    slices = partition_matrix(A, P, lb=lb)
    n, b = A.n, A.b

    def rank_fn(comm):
        sl = slices[comm.Get_rank()]
        f = d_pobtaf(sl, comm, batched=batched)
        return d_pobtas_lt_stack(
            f,
            stack[:, sl.part.start * b : sl.part.stop * b],
            stack[:, n * b :],
            comm,
            batched=batched,
        )

    out = run_spmd(P, rank_fn)
    return np.concatenate([o[0] for o in out] + [out[0][1]], axis=1)


@pytest.mark.parametrize("batched", [False, True])
@pytest.mark.parametrize("P", [2, 3])
@pytest.mark.parametrize("shape", [(7, 3, 2), (6, 2, 0), (10, 3, 4)])
def test_covariance_identity(shape, P, batched, rng):
    """``L^{-T}`` applied to I gives M with ``M M^T = A^{-1}`` exactly."""
    n, b, a = shape
    A = BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)
    Ad = A.to_dense()
    M = _solve_lt(A, P, np.eye(A.N), batched=batched).T  # columns of L^{-T}
    assert np.allclose(M @ M.T, np.linalg.inv(Ad), atol=1e-10)


@pytest.mark.parametrize("P", [2, 3])
def test_quadratic_form_identity(P, rng):
    A = BTAMatrix.random_spd(BTAShape(n=9, b=3, a=2), rng)
    Ad = A.to_dense()
    Z = rng.standard_normal((5, A.N))
    X = _solve_lt(A, P, Z)
    assert np.allclose(
        np.einsum("kn,nm,km->k", X, Ad, X), np.einsum("kn,kn->k", Z, Z)
    )


@pytest.mark.parametrize("batched", [False, True])
def test_stack_matches_looped(batched, rng):
    """One stacked pass equals per-RHS d_pobtas_lt calls (1e-12; the
    only difference is GEMV-vs-GEMM low bits on the panel operands)."""
    A = BTAMatrix.random_spd(BTAShape(n=8, b=3, a=2), rng)
    P, n, b = 2, A.n, A.b
    Z = rng.standard_normal((4, A.N))
    stacked = _solve_lt(A, P, Z, batched=batched)
    slices = partition_matrix(A, P, lb=1.6)

    def rank_fn(comm):
        sl = slices[comm.Get_rank()]
        f = d_pobtaf(sl, comm, batched=batched)
        cols = [
            d_pobtas_lt(
                f,
                Z[j, sl.part.start * b : sl.part.stop * b],
                Z[j, n * b :],
                comm,
                batched=batched,
            )
            for j in range(Z.shape[0])
        ]
        return np.stack([c[0] for c in cols]), np.stack([c[1] for c in cols])

    out = run_spmd(P, rank_fn)
    looped = np.concatenate([o[0] for o in out] + [out[0][1]], axis=1)
    assert np.max(np.abs(stacked - looped)) < 1e-12


def test_vector_rhs_squeeze(rng):
    """A 1-D rhs round-trips as a k=1 stack (same squeeze contract)."""
    A = BTAMatrix.random_spd(BTAShape(n=8, b=3, a=2), rng)
    Ad = A.to_dense()
    z = rng.standard_normal(A.N)
    x = _solve_lt(A, 2, z[None, :])[0]
    slices = partition_matrix(A, 2, lb=1.6)

    def rank_fn(comm):
        sl = slices[comm.Get_rank()]
        f = d_pobtaf(sl, comm)
        return d_pobtas_lt(
            f, z[sl.part.start * A.b : sl.part.stop * A.b], z[A.n * A.b :], comm
        )

    out = run_spmd(2, rank_fn)
    x1 = np.concatenate([o[0] for o in out] + [out[0][1]])
    assert x1.shape == (A.N,)
    assert np.max(np.abs(x1 - x)) < 1e-12
    assert np.isclose(x1 @ Ad @ x1, z @ z)
