"""Sequential BTA kernels against dense LAPACK references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.kernels import NotPositiveDefiniteError
from repro.structured.pobtaf import pobtaf
from repro.structured.pobtas import pobtas, pobtas_lt
from repro.structured.pobtasi import pobtasi, selected_inverse_diagonal


def _random_case(n, b, a, seed):
    rng = np.random.default_rng(seed)
    A = BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)
    return A, A.to_dense(), rng


class TestPobtaf:
    @pytest.mark.parametrize("n,b,a", [(4, 3, 2), (1, 5, 3), (7, 2, 0), (3, 1, 1), (2, 4, 6)])
    def test_reconstruction(self, n, b, a):
        A, Ad, _ = _random_case(n, b, a, 0)
        L = pobtaf(A).to_dense()
        assert np.allclose(L @ L.T, Ad, atol=1e-10 * max(1, np.abs(Ad).max()))

    def test_logdet_matches_slogdet(self, small_bta):
        A, Ad = small_bta
        assert np.isclose(pobtaf(A).logdet(), np.linalg.slogdet(Ad)[1])

    def test_logdet_bt(self, small_bt):
        A, Ad = small_bt
        assert np.isclose(pobtaf(A).logdet(), np.linalg.slogdet(Ad)[1])

    def test_overwrite_destroys_input(self, small_bta):
        A, _ = small_bta
        B = A.copy()
        chol = pobtaf(B, overwrite=True)
        assert chol.factor.diag is B.diag

    def test_no_overwrite_preserves_input(self, small_bta):
        A, Ad = small_bta
        pobtaf(A, overwrite=False)
        assert np.allclose(A.to_dense(), Ad)

    def test_indefinite_raises(self):
        A = BTAMatrix(np.stack([-np.eye(3)] * 2))
        with pytest.raises(NotPositiveDefiniteError):
            pobtaf(A)

    def test_schur_complement_failure_raises(self, rng):
        # SPD diagonal blocks but indefinite overall matrix.
        diag = np.stack([np.eye(2), np.eye(2)])
        lower = np.array([[[5.0, 0.0], [0.0, 5.0]]])
        A = BTAMatrix(diag, lower)
        with pytest.raises(NotPositiveDefiniteError):
            pobtaf(A)


class TestPobtas:
    @pytest.mark.parametrize("n,b,a", [(4, 3, 2), (6, 2, 0), (1, 4, 2)])
    def test_solve_vector(self, n, b, a):
        A, Ad, rng = _random_case(n, b, a, 1)
        rhs = rng.standard_normal(A.N)
        x = pobtas(pobtaf(A), rhs)
        assert np.allclose(Ad @ x, rhs)

    def test_solve_multiple_rhs(self, small_bta, rng):
        A, Ad = small_bta
        rhs = rng.standard_normal((A.N, 4))
        x = pobtas(pobtaf(A), rhs)
        assert np.allclose(Ad @ x, rhs)

    def test_wrong_rhs_length_rejected(self, small_bta, rng):
        A, _ = small_bta
        with pytest.raises(ValueError):
            pobtas(pobtaf(A), rng.standard_normal(A.N + 1))

    def test_rhs_not_mutated(self, small_bta, rng):
        A, _ = small_bta
        rhs = rng.standard_normal(A.N)
        keep = rhs.copy()
        pobtas(pobtaf(A), rhs)
        assert np.array_equal(rhs, keep)

    def test_backward_only_solve(self, small_bta, rng):
        """pobtas_lt solves L^T x = z (the GMRF sampling primitive)."""
        A, _ = small_bta
        chol = pobtaf(A)
        Ld = chol.to_dense()
        z = rng.standard_normal(A.N)
        x = pobtas_lt(chol, z)
        assert np.allclose(Ld.T @ x, z)

    def test_sampling_covariance(self):
        """Empirical covariance of L^{-T} z approaches A^{-1}."""
        A, Ad, rng = _random_case(3, 2, 1, 7)
        chol = pobtaf(A)
        Z = rng.standard_normal((A.N, 20000))
        X = pobtas_lt(chol, Z)
        emp = X @ X.T / Z.shape[1]
        assert np.allclose(emp, np.linalg.inv(Ad), atol=0.15)


class TestPobtasi:
    @pytest.mark.parametrize("n,b,a", [(4, 3, 2), (6, 2, 0), (1, 4, 2), (5, 1, 1)])
    def test_selected_entries_match_dense_inverse(self, n, b, a):
        A, Ad, _ = _random_case(n, b, a, 2)
        X = pobtasi(pobtaf(A))
        ref = BTAMatrix.from_dense(np.linalg.inv(Ad), A.shape3)
        assert np.allclose(X.diag, ref.diag, atol=1e-12)
        assert np.allclose(X.lower, ref.lower, atol=1e-12)
        assert np.allclose(X.arrow, ref.arrow, atol=1e-12)
        assert np.allclose(X.tip, ref.tip, atol=1e-12)

    def test_diagonal_helper(self, small_bta):
        A, Ad = small_bta
        d = selected_inverse_diagonal(pobtaf(A))
        assert np.allclose(d, np.diag(np.linalg.inv(Ad)))

    def test_diag_blocks_symmetric(self, small_bta):
        A, _ = small_bta
        X = pobtasi(pobtaf(A))
        assert np.allclose(X.diag, X.diag.transpose(0, 2, 1))

    def test_variances_positive(self, small_bta):
        A, _ = small_bta
        assert np.all(selected_inverse_diagonal(pobtaf(A)) > 0)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 7),
        b=st.integers(1, 5),
        a=st.integers(0, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_factor_solve_inverse_consistency(self, n, b, a, seed):
        """For any SPD BTA matrix: L L^T = A, A x = rhs, X = selected inv."""
        A, Ad, rng = _random_case(n, b, a, seed)
        chol = pobtaf(A)
        # logdet
        assert np.isclose(chol.logdet(), np.linalg.slogdet(Ad)[1], rtol=1e-9, atol=1e-9)
        # solve
        rhs = rng.standard_normal(A.N)
        assert np.allclose(Ad @ pobtas(chol, rhs), rhs, atol=1e-8)
        # selected inversion diagonal
        assert np.allclose(
            pobtasi(chol).diagonal(), np.diag(np.linalg.inv(Ad)), atol=1e-8
        )

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(2, 6), b=st.integers(1, 4), seed=st.integers(0, 2**31 - 1))
    def test_solve_is_inverse_of_matvec(self, n, b, seed):
        """solve(matvec(x)) == x for BT matrices."""
        A, _, rng = _random_case(n, b, 0, seed)
        x = rng.standard_normal(A.N)
        chol = pobtaf(A)
        assert np.allclose(pobtas(chol, A.matvec(x)), x, atol=1e-8)
