"""Thread-safe sweep workspaces on shared factor handles (ISSUE 5).

A shared mode-factor serves concurrent S1 samplers; each stacked solve
must lease its own ``(N, k)`` buffer from the factor's pool instead of
racing a per-width singleton.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.factor import SweepWorkspacePool, factorize


def _factor(n=8, b=6, a=3, seed=7):
    rng = np.random.default_rng(seed)
    A = BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)
    return factorize(A.copy()), A.to_dense(), rng


class TestSweepWorkspacePool:
    def test_reuses_released_buffer(self):
        pool = SweepWorkspacePool(16)
        with pool.lease(3) as w1:
            first = w1
        with pool.lease(3) as w2:
            assert w2 is first  # steady state stays allocation-free

    def test_concurrent_leases_get_distinct_buffers(self):
        pool = SweepWorkspacePool(16)
        with pool.lease(3) as w1, pool.lease(3) as w2:
            assert w1 is not w2

    def test_idle_bound(self):
        pool = SweepWorkspacePool(4, max_idle=2)
        ctxs = [pool.lease(k) for k in range(1, 6)]
        buffers = [c.__enter__() for c in ctxs]
        for c in ctxs:
            c.__exit__(None, None, None)
        assert len(pool._free) == 2
        assert buffers[0].shape == (4, 1)


class TestConcurrentSharedHandle:
    def test_concurrent_solve_stack_matches_sequential(self):
        """Many threads hammering one handle reproduce the sequential
        results exactly — the racing-buffer failure mode of the old
        per-width singleton."""
        f, Ad, rng = _factor()
        stacks = [rng.standard_normal((3, f.N)) for _ in range(16)]
        expected = [f.solve_stack(S) for S in stacks]

        barrier = threading.Barrier(8)

        def worker(j):
            barrier.wait()
            out = []
            for S in stacks[j::8]:
                out.append(f.solve_stack(S))
            return out

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [fut.result() for fut in [pool.submit(worker, j) for j in range(8)]]
        for j, outs in enumerate(results):
            for got, want in zip(outs, expected[j::8]):
                assert np.array_equal(got, want)

    def test_concurrent_sampling_draws_are_exact(self):
        """solve_lt_stack under concurrency: each draw equals its
        sequential counterpart bit-for-bit (same z, same factor)."""
        f, _, rng = _factor(seed=13)
        zs = [rng.standard_normal((2, f.N)) for _ in range(12)]
        expected = [f.solve_lt_stack(z) for z in zs]

        with ThreadPoolExecutor(max_workers=6) as pool:
            got = list(pool.map(f.solve_lt_stack, zs))
        for g, w in zip(got, expected):
            assert np.array_equal(g, w)
