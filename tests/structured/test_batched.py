"""Batched kernel layer vs. the per-block reference path.

The batched path must be a drop-in replacement: for every solver and every
BTA shape — including the degenerate ``n = 1`` and ``a = 0`` cases — both
paths must agree to 1e-10 on the factor, the solution, the selected
inverse, and ``log det``, and must raise the same
``NotPositiveDefiniteError`` on non-SPD input.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.array_module import batched_enabled
from repro.comm import run_spmd
from repro.structured import batched as bk
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.d_pobtaf import d_pobtaf, partition_matrix
from repro.structured.d_pobtas import d_pobtas
from repro.structured.d_pobtasi import d_pobtasi, gather_selected_inverse
from repro.structured.kernels import (
    NotPositiveDefiniteError,
    chol_lower,
    logdet_from_chol_diag,
    solve_lower,
    solve_lower_t,
    tri_inverse_lower,
)
from repro.structured.pobtaf import pobtaf
from repro.structured.pobtas import pobtas, pobtas_lt
from repro.structured.pobtasi import pobtasi

ATOL = 1e-10

# Shapes chosen to hit the degenerate corners: single block, no arrowhead,
# arrow wider than the blocks, scalar blocks.
SHAPES = [(4, 3, 2), (1, 5, 3), (1, 4, 0), (7, 2, 0), (3, 1, 1), (2, 4, 6), (6, 4, 3)]


def _case(n, b, a, seed=0):
    rng = np.random.default_rng(seed)
    A = BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)
    return A, rng


def _chol_stack(n, b, seed=0):
    rng = np.random.default_rng(seed)
    s = rng.standard_normal((n, b, b))
    spd = s @ s.transpose(0, 2, 1) + (b + 1) * np.eye(b)
    return np.linalg.cholesky(spd), rng


class TestPrimitives:
    """Stacked primitives against the looped per-block kernels."""

    def test_batched_cholesky_matches_per_block(self):
        L, _ = _chol_stack(6, 5)
        spd = L @ L.transpose(0, 2, 1)
        got = bk.batched_chol_lower(spd)
        ref = np.stack([chol_lower(spd[i]) for i in range(6)])
        assert np.allclose(got, ref, atol=ATOL)

    def test_batched_cholesky_raises_on_any_bad_block(self):
        L, _ = _chol_stack(4, 3)
        spd = L @ L.transpose(0, 2, 1)
        spd[2] = -np.eye(3)
        with pytest.raises(NotPositiveDefiniteError):
            bk.batched_chol_lower(spd)

    @pytest.mark.parametrize("k", [1, 4])
    def test_batched_solves_match_per_block(self, k):
        L, rng = _chol_stack(5, 4)
        rhs = rng.standard_normal((5, 4, k))
        fwd = bk.batched_solve_lower(L, rhs)
        bwd = bk.batched_solve_lower_t(L, rhs)
        for i in range(5):
            assert np.allclose(fwd[i], solve_lower(L[i], rhs[i]), atol=ATOL)
            assert np.allclose(bwd[i], solve_lower_t(L[i], rhs[i]), atol=ATOL)

    def test_right_solves_match_definitions(self):
        L, rng = _chol_stack(3, 4)
        rhs = rng.standard_normal((3, 2, 4))
        right = bk.batched_right_solve_lower(L, rhs)
        right_t = bk.batched_right_solve_lower_t(L, rhs)
        for i in range(3):
            assert np.allclose(right[i] @ L[i], rhs[i], atol=ATOL)
            assert np.allclose(right_t[i] @ L[i].T, rhs[i], atol=ATOL)

    def test_substitution_fallback_matches_lapack_path(self):
        """The vectorized-substitution fallback (the CuPy-shaped code path)
        agrees with the looped-LAPACK host path."""
        L, rng = _chol_stack(6, 5, seed=3)
        rhs = rng.standard_normal((6, 5, 3))
        assert np.allclose(
            bk._subst_solve_lower(L, rhs), bk.batched_solve_lower(L, rhs), atol=ATOL
        )
        assert np.allclose(
            bk._subst_solve_lower_t(L, rhs), bk.batched_solve_lower_t(L, rhs), atol=ATOL
        )

    def test_tall_stacks_take_substitution_path(self):
        """Above the ratio threshold the host path switches to substitution;
        results must stay interchangeable."""
        L, rng = _chol_stack(64, 2, seed=4)
        rhs = rng.standard_normal((64, 2, 3))
        got = bk.batched_solve_lower(L, rhs)
        ref = np.stack([solve_lower(L[i], rhs[i]) for i in range(64)])
        assert np.allclose(got, ref, atol=ATOL)

    def test_batched_tri_inverse(self):
        L, _ = _chol_stack(5, 4)
        inv = bk.batched_tri_inverse_lower(L)
        ref = np.stack([tri_inverse_lower(L[i]) for i in range(5)])
        assert np.allclose(inv, ref, atol=ATOL)
        # Output must be cleanly lower-triangular (it feeds GEMMs).
        assert np.allclose(inv, np.tril(inv))

    def test_empty_stacks(self):
        empty = np.zeros((0, 3, 3))
        assert bk.batched_chol_lower(empty).shape == (0, 3, 3)
        assert bk.batched_tri_inverse_lower(empty).shape == (0, 3, 3)
        assert bk.batched_logdet_from_chol_diag(empty) == 0.0


class TestLogdetKernel:
    """Single-pass logdet: same error surface as the historical two-pass."""

    def test_matches_direct_sum(self):
        L, _ = _chol_stack(1, 6)
        expected = 2.0 * np.sum(np.log(np.diagonal(L[0])))
        assert np.isclose(logdet_from_chol_diag(L[0]), expected)
        assert np.isclose(bk.batched_logdet_from_chol_diag(L), expected)

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan])
    def test_invalid_diagonal_raises_in_both(self, bad):
        L, _ = _chol_stack(2, 3)
        L[1, 1, 1] = bad
        with pytest.raises(NotPositiveDefiniteError):
            logdet_from_chol_diag(L[1])
        with pytest.raises(NotPositiveDefiniteError):
            bk.batched_logdet_from_chol_diag(L)


class TestSequentialAgreement:
    @pytest.mark.parametrize("n,b,a", SHAPES)
    def test_factorization_agrees(self, n, b, a):
        A, _ = _case(n, b, a)
        Lb = pobtaf(A, batched=True)
        Lr = pobtaf(A, batched=False)
        assert np.allclose(Lb.to_dense(), Lr.to_dense(), atol=ATOL)
        assert np.isclose(
            Lb.logdet(batched=True), Lr.logdet(batched=False), atol=ATOL
        )

    @pytest.mark.parametrize("n,b,a", SHAPES)
    @pytest.mark.parametrize("k", [0, 1, 3])
    def test_solve_agrees(self, n, b, a, k):
        A, rng = _case(n, b, a, seed=1)
        rhs = rng.standard_normal((A.N, k) if k else A.N)
        chol = pobtaf(A, batched=True)
        xb = pobtas(chol, rhs, batched=True)
        xr = pobtas(chol, rhs, batched=False)
        assert xb.shape == xr.shape
        assert np.allclose(xb, xr, atol=ATOL)

    @pytest.mark.parametrize("n,b,a", SHAPES)
    def test_backward_only_solve_agrees(self, n, b, a):
        A, rng = _case(n, b, a, seed=2)
        chol = pobtaf(A, batched=True)
        z = rng.standard_normal(A.N)
        assert np.allclose(
            pobtas_lt(chol, z, batched=True),
            pobtas_lt(chol, z, batched=False),
            atol=ATOL,
        )

    @pytest.mark.parametrize("n,b,a", SHAPES)
    def test_selected_inversion_agrees(self, n, b, a):
        A, _ = _case(n, b, a, seed=3)
        chol = pobtaf(A, batched=True)
        Xb = pobtasi(chol, batched=True)
        Xr = pobtasi(chol, batched=False)
        assert np.allclose(Xb.diag, Xr.diag, atol=ATOL)
        assert np.allclose(Xb.lower, Xr.lower, atol=ATOL)
        assert np.allclose(Xb.arrow, Xr.arrow, atol=ATOL)
        assert np.allclose(Xb.tip, Xr.tip, atol=ATOL)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 7),
        b=st.integers(1, 5),
        a=st.integers(0, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_paths_agree(self, n, b, a, seed):
        """For any SPD BTA shape, the two paths agree end to end."""
        A, rng = _case(n, b, a, seed)
        rhs = rng.standard_normal(A.N)
        cb, cr = pobtaf(A, batched=True), pobtaf(A, batched=False)
        assert np.allclose(cb.to_dense(), cr.to_dense(), atol=ATOL)
        assert np.isclose(cb.logdet(batched=True), cr.logdet(batched=False), atol=ATOL)
        assert np.allclose(
            pobtas(cb, rhs, batched=True), pobtas(cr, rhs, batched=False), atol=ATOL
        )
        assert np.allclose(
            pobtasi(cb, batched=True).diagonal(),
            pobtasi(cr, batched=False).diagonal(),
            atol=ATOL,
        )

    @pytest.mark.parametrize("batched", [True, False])
    def test_not_spd_raises_in_both_paths(self, batched):
        A = BTAMatrix(np.stack([-np.eye(3)] * 2))
        with pytest.raises(NotPositiveDefiniteError):
            pobtaf(A, batched=batched)

    @pytest.mark.parametrize("batched", [True, False])
    def test_schur_failure_raises_in_both_paths(self, batched):
        # SPD diagonal blocks but indefinite overall matrix.
        diag = np.stack([np.eye(2), np.eye(2)])
        lower = np.array([[[5.0, 0.0], [0.0, 5.0]]])
        A = BTAMatrix(diag, lower)
        with pytest.raises(NotPositiveDefiniteError):
            pobtaf(A, batched=batched)

    @pytest.mark.parametrize("batched", [True, False])
    def test_indefinite_tip_raises_in_both_paths(self, batched):
        """The arrowhead tip Schur complement can fail on its own."""
        A, _ = _case(3, 2, 2, seed=5)
        A.tip[...] = -np.eye(2) * 100.0
        with pytest.raises(NotPositiveDefiniteError):
            pobtaf(A, batched=batched)


class TestDistributedAgreement:
    @pytest.mark.parametrize("P", [2, 3])
    @pytest.mark.parametrize("n,b,a", [(10, 3, 2), (9, 2, 0), (8, 3, 4)])
    def test_pipeline_agrees(self, P, n, b, a):
        A, rng = _case(n, b, a, seed=P)
        rhs = rng.standard_normal(A.N)

        def pipeline(batched):
            slices = partition_matrix(A, P, lb=1.4)

            def rank_fn(comm):
                sl = slices[comm.Get_rank()]
                f = d_pobtaf(sl, comm, batched=batched)
                ld = f.logdet(comm, batched=batched)
                xl, xt = d_pobtas(
                    f,
                    rhs[sl.part.start * b : sl.part.stop * b],
                    rhs[n * b :],
                    comm,
                    batched=batched,
                )
                return ld, xl, xt, d_pobtasi(f, batched=batched)

            return run_spmd(P, rank_fn)

        outb, outr = pipeline(True), pipeline(False)
        assert np.isclose(outb[0][0], outr[0][0], atol=ATOL)
        xb = np.concatenate([o[1] for o in outb] + [outb[0][2]])
        xr = np.concatenate([o[1] for o in outr] + [outr[0][2]])
        assert np.allclose(xb, xr, atol=ATOL)
        assert np.allclose(
            gather_selected_inverse([o[3] for o in outb]),
            gather_selected_inverse([o[3] for o in outr]),
            atol=ATOL,
        )

    @pytest.mark.parametrize("batched", [True, False])
    def test_distributed_not_spd_raises(self, batched):
        A, _ = _case(8, 2, 1, seed=7)
        A.diag[5] = -np.eye(2) * 1000.0
        slices = partition_matrix(A, 2)
        with pytest.raises(RuntimeError):
            run_spmd(2, lambda comm: d_pobtaf(slices[comm.Get_rank()], comm, batched=batched))


class TestSwitch:
    def test_env_parsing(self, monkeypatch):
        for val, expect in [
            ("1", True),
            ("0", False),
            ("false", False),
            ("off", False),
            ("no", False),
            ("true", True),
            ("ON", True),
        ]:
            monkeypatch.setenv("REPRO_BATCHED", val)
            assert batched_enabled() is expect, val
        monkeypatch.delenv("REPRO_BATCHED")
        assert batched_enabled() is True  # default on

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED", "0")
        assert batched_enabled(True) is True
        monkeypatch.setenv("REPRO_BATCHED", "1")
        assert batched_enabled(False) is False

    def test_env_switch_routes_pobtaf(self, monkeypatch):
        """REPRO_BATCHED=0 must actually dispatch to the per-block path."""
        import importlib

        # ``repro.structured`` re-exports the ``pobtaf`` *function*, which
        # shadows the submodule on attribute lookup.
        mod = importlib.import_module("repro.structured.pobtaf")

        calls = []
        monkeypatch.setattr(
            mod,
            "_pobtaf_batched",
            lambda L: calls.append("batched") or (mod._pobtaf_blocked(L), None),
        )
        A, _ = _case(3, 2, 1)
        monkeypatch.setenv("REPRO_BATCHED", "0")
        pobtaf(A)
        assert calls == []
        monkeypatch.setenv("REPRO_BATCHED", "1")
        pobtaf(A)
        assert calls == ["batched"]
