"""Reduced-system factorization: shared (once per epoch) vs redundant.

The ``2P-1``-block separator system used to be factorized by EVERY rank;
``factorize_reduced`` runs one sweep on rank 0 and broadcasts the factor.
These tests pin (a) bit-identity between the two schemes at P=2,4,8 on
both ``REPRO_BATCHED`` settings, (b) the ``FACTORIZATIONS`` sweep count
dropping from P per epoch to 1, and (c) full-pipeline agreement with the
sequential solver under the shared scheme.
"""

import numpy as np
import pytest

from repro.comm.local import run_spmd as run_spmd_threads
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.d_pobtaf import d_pobtaf, partition_matrix
from repro.structured.d_pobtas import d_pobtas
from repro.structured.pobtaf import FACTORIZATIONS, pobtaf
from repro.structured.pobtas import pobtas
from repro.structured.reduced_system import factorize_reduced, reduced_mode


def _case(n, b, a, seed=0):
    rng = np.random.default_rng(seed)
    return BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)


def _factor_bits(chol):
    f = chol.factor
    return f.diag.copy(), f.lower.copy(), f.arrow.copy(), f.tip.copy()


def _run_epoch(A, P, batched):
    """One d_pobtaf epoch under the ambient REPRO_REDUCED setting."""
    slices = partition_matrix(A, P, lb=1.6)

    def rank_fn(comm):
        sl = slices[comm.Get_rank()]
        f = d_pobtaf(sl, comm, batched=batched)
        return _factor_bits(f.reduced_chol), f.logdet(comm, batched=batched)

    return run_spmd_threads(P, rank_fn)


class TestModeValidation:
    def test_default_is_shared(self, monkeypatch):
        monkeypatch.delenv("REPRO_REDUCED", raising=False)
        assert reduced_mode() == "shared"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_REDUCED", "redundant")
        assert reduced_mode() == "redundant"
        assert reduced_mode("shared") == "shared"  # argument wins

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown reduced-system mode"):
            reduced_mode("batched-ish")


class TestSharedVsRedundantBitIdentity:
    @pytest.mark.parametrize("P", [2, 4, 8])
    @pytest.mark.parametrize("batched", [False, True])
    def test_factor_bits_identical(self, P, batched, monkeypatch):
        A = _case(2 * P + 3, 3, 2)
        out = {}
        for mode in ("shared", "redundant"):
            monkeypatch.setenv("REPRO_REDUCED", mode)
            out[mode] = _run_epoch(A, P, batched)
        for (bits_s, ld_s), (bits_r, ld_r) in zip(out["shared"], out["redundant"]):
            for arr_s, arr_r in zip(bits_s, bits_r):
                assert np.array_equal(arr_s, arr_r)  # bitwise, not approx
            assert ld_s == ld_r

    @pytest.mark.parametrize("batched", [False, True])
    def test_all_ranks_hold_identical_factor(self, batched, monkeypatch):
        monkeypatch.setenv("REPRO_REDUCED", "shared")
        A = _case(11, 3, 2)
        out = _run_epoch(A, 4, batched)
        bits0 = out[0][0]
        for bits, _ in out[1:]:
            for arr, arr0 in zip(bits, bits0):
                assert np.array_equal(arr, arr0)


class TestFactorizationCount:
    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_shared_runs_one_reduced_sweep_per_epoch(self, P, monkeypatch):
        """Counter assertion that per-rank redundancy is gone: an epoch is
        P interior eliminations (not counted: they never call pobtaf) plus
        exactly ONE reduced-system sweep — historically it was P."""
        monkeypatch.setenv("REPRO_REDUCED", "shared")
        A = _case(2 * P + 3, 3, 2)
        slices = partition_matrix(A, P, lb=1.6)

        def rank_fn(comm):
            return d_pobtaf(slices[comm.Get_rank()], comm).positions

        before = FACTORIZATIONS.count
        run_spmd_threads(P, rank_fn)
        assert FACTORIZATIONS.count - before == 1

    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_redundant_runs_p_sweeps(self, P, monkeypatch):
        monkeypatch.setenv("REPRO_REDUCED", "redundant")
        A = _case(2 * P + 3, 3, 2)
        slices = partition_matrix(A, P, lb=1.6)

        def rank_fn(comm):
            return d_pobtaf(slices[comm.Get_rank()], comm).positions

        before = FACTORIZATIONS.count
        run_spmd_threads(P, rank_fn)
        assert FACTORIZATIONS.count - before == P

    def test_explicit_mode_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_REDUCED", "redundant")
        A = _case(9, 3, 2)
        slices = partition_matrix(A, 3, lb=1.6)

        def rank_fn(comm):
            sl = slices[comm.Get_rank()]
            f = d_pobtaf(sl, comm)  # env: redundant
            chol = factorize_reduced(f.reduced, comm, mode="shared")
            return _factor_bits(chol)

        before = FACTORIZATIONS.count
        out = run_spmd_threads(3, rank_fn)
        # 3 redundant sweeps inside d_pobtaf + 1 shared re-factorization.
        # (The shared sweep factorizes rank 0's already-factorized copy in
        # place a second time, so only the sweep COUNT is asserted here.)
        assert FACTORIZATIONS.count - before == 4
        assert len(out) == 3


class TestSharedPipelineCorrectness:
    @pytest.mark.parametrize("P", [2, 4])
    @pytest.mark.parametrize("batched", [False, True])
    def test_solve_matches_sequential(self, P, batched, monkeypatch):
        monkeypatch.setenv("REPRO_REDUCED", "shared")
        A = _case(11, 3, 2)
        rng = np.random.default_rng(7)
        rhs = rng.standard_normal(A.n * A.b + A.a)
        ref_ld = pobtaf(A, batched=batched).logdet(batched=batched)
        x_ref = pobtas(pobtaf(A, batched=batched), rhs, batched=batched)
        slices = partition_matrix(A, P, lb=1.6)
        b, n = A.b, A.n

        def rank_fn(comm):
            sl = slices[comm.Get_rank()]
            f = d_pobtaf(sl, comm, batched=batched)
            ld = f.logdet(comm, batched=batched)
            xl, xt = d_pobtas(
                f, rhs[sl.part.start * b : sl.part.stop * b], rhs[n * b :], comm
            )
            return ld, xl, xt

        out = run_spmd_threads(P, rank_fn)
        x_parts = [xl for _, xl, _ in out]
        x = np.concatenate(x_parts + [out[0][2]])
        assert np.allclose(x, x_ref, atol=1e-10)
        for ld, _, _ in out:
            assert np.isclose(ld, ref_ld)
