"""Multi-lane stacked solves: one collective round, per-lane bit-identity.

The lanes contract (PR 9 satellite): ``solve_stack_lanes`` /
``solve_lt_stack_lanes`` batch the reduced-system collectives of several
``(k_i, N)`` stacks into ONE Allreduce + Allgather round, while every
lane's GEMM sweeps run at its exact solo width — so the per-lane results
must be BIT-IDENTICAL to separate ``solve_stack`` calls, on the
sequential handle, the thread-backed distributed handle, and the
process-backed handle (proc-vs-threads bit-identity included), with and
without the batched kernels.
"""

import numpy as np
import pytest

from repro.serving.api import _sweep_grouped
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.factor import d_factorize, d_factorize_proc, factorize

WIDTHS = (1, 5, 3)


def _case(n=8, b=4, a=2, seed=3):
    rng = np.random.default_rng(seed)
    A = BTAMatrix.random_spd(BTAShape(n=n, b=b, a=a), rng)
    stacks = [rng.standard_normal((k, A.N)) for k in WIDTHS]
    return A, stacks


class TestSequentialLanes:
    def test_matches_per_lane_solve_stack(self):
        A, stacks = _case()
        f = factorize(A)
        for got, s in zip(f.solve_stack_lanes(stacks), stacks):
            assert np.array_equal(got, f.solve_stack(s))
        for got, s in zip(f.solve_lt_stack_lanes(stacks), stacks):
            assert np.array_equal(got, f.solve_lt_stack(s))


class TestDistributedLanes:
    @pytest.mark.parametrize("batched", [False, True])
    @pytest.mark.parametrize("P", [2, 3])
    def test_threads_matches_per_lane(self, P, batched):
        A, stacks = _case()
        f = d_factorize(A, P, batched=batched)
        for got, s in zip(f.solve_stack_lanes(stacks), stacks):
            assert np.array_equal(got, f.solve_stack(s))
        for got, s in zip(f.solve_lt_stack_lanes(stacks), stacks):
            assert np.array_equal(got, f.solve_lt_stack(s))

    @pytest.mark.parametrize("batched", [False, True])
    def test_proc_bitwise_matches_threads(self, batched):
        A, stacks = _case()
        thr = d_factorize(A, 3, batched=batched)
        proc = d_factorize_proc(A, 3, batched=batched)
        try:
            for pg, tg in zip(proc.solve_stack_lanes(stacks), thr.solve_stack_lanes(stacks)):
                assert np.array_equal(pg, tg)
            for pg, tg in zip(
                proc.solve_lt_stack_lanes(stacks), thr.solve_lt_stack_lanes(stacks)
            ):
                assert np.array_equal(pg, tg)
        finally:
            proc.close()

    def test_single_lane_matches_solve_stack(self):
        A, stacks = _case()
        f = d_factorize(A, 2)
        (got,) = f.solve_stack_lanes(stacks[:1])
        assert np.array_equal(got, f.solve_stack(stacks[0]))

    def test_accuracy_vs_dense(self):
        A, stacks = _case()
        dense = A.to_dense()
        f = d_factorize(A, 2)
        for got, s in zip(f.solve_stack_lanes(stacks), stacks):
            np.testing.assert_allclose(got, np.linalg.solve(dense, s.T).T, atol=1e-9)


class TestSweepGroupedLanes:
    """``_sweep_grouped`` with a lanes sibling keeps composition-invariant
    bits: the lanes call collapses the collective rounds but runs exactly
    the jobs the per-job loop would have run."""

    @pytest.mark.parametrize("factory", [factorize, lambda A: d_factorize(A, 2)])
    def test_lanes_fn_bits_unchanged(self, factory):
        A, stacks = _case(seed=9)
        f = factory(A)
        plain = _sweep_grouped(f, stacks, f.solve_stack)
        laned = _sweep_grouped(f, stacks, f.solve_stack, f.solve_stack_lanes)
        for p, q in zip(plain, laned):
            assert np.array_equal(p, q)
        plain = _sweep_grouped(f, stacks, f.solve_lt_stack)
        laned = _sweep_grouped(f, stacks, f.solve_lt_stack, f.solve_lt_stack_lanes)
        for p, q in zip(plain, laned):
            assert np.array_equal(p, q)
