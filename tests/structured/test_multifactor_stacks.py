"""Caller-owned stack input to ``factorize_batch`` (ISSUE 5 satellite).

The batch assembly path produces theta-first :class:`BTAStack` storage;
``factorize_batch`` must consume it without re-stacking, eliminate in
place under ``overwrite=True``, and produce results identical to the
sequence-of-matrices path.
"""

import numpy as np
import pytest

from repro.structured.bta import BTAMatrix, BTAShape, BTAStack
from repro.structured.factor import factorize
from repro.structured.multifactor import factorize_batch


def _mats(t=5, n=6, b=4, a=3, seed=3):
    rng = np.random.default_rng(seed)
    shape = BTAShape(n=n, b=b, a=a)
    return [BTAMatrix.random_spd(shape, rng) for _ in range(t)], shape, rng


class TestBTAStack:
    def test_from_matrices_roundtrip(self):
        mats, shape, _ = _mats()
        stack = BTAStack.from_matrices(mats)
        assert stack.t == len(mats) and stack.shape3 == shape
        for j, A in enumerate(mats):
            assert np.array_equal(stack.matrix(j).diag, A.diag)
            assert np.array_equal(stack.matrix(j).tip, A.tip)

    def test_matrix_views_share_storage(self):
        mats, shape, _ = _mats()
        stack = BTAStack.from_matrices(mats)
        assert np.shares_memory(stack.matrix(0).diag, stack.diag)

    def test_head_view(self):
        mats, _, _ = _mats()
        stack = BTAStack.from_matrices(mats)
        head = stack.head(2)
        assert head.t == 2 and np.shares_memory(head.diag, stack.diag)
        with pytest.raises(ValueError):
            stack.head(len(mats) + 1)

    def test_shape_mismatch_rejected(self):
        mats, _, rng = _mats()
        other = BTAMatrix.random_spd(BTAShape(n=6, b=5, a=3), rng)
        with pytest.raises(ValueError, match="share one BTA shape"):
            BTAStack.from_matrices(mats + [other])


class TestFactorizeBatchStacks:
    def test_stack_input_matches_sequence_input(self):
        mats, _, rng = _mats()
        stack = BTAStack.from_matrices(mats)
        fb_seq = factorize_batch(mats)
        fb_stack = factorize_batch(stack)
        assert np.array_equal(fb_seq.diag, fb_stack.diag)
        assert np.array_equal(fb_seq.lower, fb_stack.lower)
        assert np.array_equal(fb_seq.logdets(), fb_stack.logdets())
        rhs = rng.standard_normal((len(mats), mats[0].N))
        assert np.array_equal(fb_seq.solve_each(rhs), fb_stack.solve_each(rhs))

    def test_overwrite_false_preserves_stack(self):
        mats, _, _ = _mats()
        stack = BTAStack.from_matrices(mats)
        before = stack.diag.copy()
        fb = factorize_batch(stack)
        assert np.array_equal(stack.diag, before)
        assert not np.shares_memory(fb.diag, stack.diag)

    def test_overwrite_true_eliminates_in_place(self):
        mats, _, _ = _mats()
        stack = BTAStack.from_matrices(mats)
        fb = factorize_batch(stack, overwrite=True)
        # The factor owns the caller's storage: zero copies.
        assert np.shares_memory(fb.diag, stack.diag)
        assert np.shares_memory(fb.tip, stack.tip)
        # Values still match the per-theta handles.
        for j, A in enumerate(mats):
            f = factorize(A.copy(), batched=True)
            assert np.isclose(fb.factor(j).logdet(), f.logdet(), atol=1e-10)

    def test_per_theta_agreement(self):
        mats, _, rng = _mats(t=4)
        stack = BTAStack.from_matrices(mats)
        fb = factorize_batch(stack, overwrite=True)
        rhs = rng.standard_normal((4, mats[0].N))
        xs = fb.solve_each(rhs)
        for j, A in enumerate(mats):
            x_ref = factorize(A.copy(), batched=True).solve(rhs[j])
            assert np.allclose(xs[j], x_ref, atol=1e-10)
