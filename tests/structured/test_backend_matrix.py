"""Backend execution matrix: the structured pipeline under numpy + mock device.

The contract the backend-threading refactor must keep, asserted over a
shape grid on both registered host-testable backends:

- **within-backend determinism** — running the same factorization twice
  on one backend is bit-identical (no hidden state, no allocator
  nondeterminism);
- **cross-backend agreement** — log-determinants are bit-identical
  (both paths sum the same diagonal logs); solves, selected inverses and
  posterior draws agree to ~machine epsilon (host LAPACK ``dtrtri``
  vs. the device path's vectorized substitution round differently), far
  inside 1e-12;
- **no host escape** — with global NumPy allocators poisoned, the whole
  pipeline (assemble → factorize_batch → solve_stack → selected inverse
  → sample) still runs under the mock device backend, proving every
  hot-path allocation routes through the owning backend's ``xp``;
- **ceiling lift** — a backend with genuinely batched POTRF ignores the
  host-measured ``REPRO_BATCH_STENCIL_MAX_B`` stencil-batching ceiling.
"""

import numpy as np
import pytest

from repro.backend import get_backend
from repro.backend.mock import MOCK_DEVICE_BACKEND, MockDeviceArray
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.factor import factorize
from repro.structured.multifactor import factorize_batch

BACKENDS = ["numpy", "mock_device"]
SHAPES = [BTAShape(n=4, b=3, a=2), BTAShape(n=6, b=5, a=0), BTAShape(n=3, b=8, a=4)]


@pytest.fixture(params=BACKENDS)
def backend(request):
    be = get_backend(request.param)
    if be is MOCK_DEVICE_BACKEND:
        be.transfers.reset()
    return be


def _on_backend(A: BTAMatrix, be) -> BTAMatrix:
    return BTAMatrix(
        be.asarray(A.diag), be.asarray(A.lower), be.asarray(A.arrow), be.asarray(A.tip)
    )


def _host_mats(shape, rng, t=1):
    return [BTAMatrix.random_spd(shape, rng) for _ in range(t)]


class TestFactorGrid:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_within_backend_bit_identity(self, backend, shape, rng):
        (A,) = _host_mats(shape, rng)
        rhs = rng.standard_normal(A.N)
        outs = []
        for _ in range(2):
            f = factorize(_on_backend(A, backend))
            outs.append((
                f.logdet(),
                backend.to_host(f.solve(rhs)),
                backend.to_host(f.selected_inverse_diagonal()),
            ))
        assert outs[0][0] == outs[1][0]
        assert np.array_equal(outs[0][1], outs[1][1])
        assert np.array_equal(outs[0][2], outs[1][2])

    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_cross_backend_agreement(self, shape, rng):
        (A,) = _host_mats(shape, rng)
        rhs = rng.standard_normal(A.N)
        host = factorize(A.copy())
        dev = factorize(_on_backend(A, MOCK_DEVICE_BACKEND))
        # Same diagonal logs; bit-identical on the default path, 1-ulp
        # apart when the host reference kernels run (REPRO_BATCHED=0).
        np.testing.assert_allclose(dev.logdet(), host.logdet(), rtol=1e-13)
        np.testing.assert_allclose(
            MOCK_DEVICE_BACKEND.to_host(dev.solve(rhs)), host.solve(rhs), rtol=1e-12
        )
        np.testing.assert_allclose(
            MOCK_DEVICE_BACKEND.to_host(dev.selected_inverse_diagonal()),
            host.selected_inverse_diagonal(),
            rtol=1e-12,
        )

    @pytest.mark.parametrize("shape", SHAPES[:2], ids=str)
    def test_cross_backend_sampling(self, shape, rng):
        (A,) = _host_mats(shape, rng)
        mean = rng.standard_normal(A.N)
        host = factorize(A.copy()).sample(3, np.random.default_rng(7), mean=mean)
        dev = factorize(_on_backend(A, MOCK_DEVICE_BACKEND)).sample(
            3, np.random.default_rng(7), mean=mean
        )
        assert isinstance(dev, MockDeviceArray)
        np.testing.assert_allclose(MOCK_DEVICE_BACKEND.to_host(dev), host, rtol=1e-11)

    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_device_results_stay_on_device(self, shape, rng):
        (A,) = _host_mats(shape, rng)
        f = factorize(_on_backend(A, MOCK_DEVICE_BACKEND))
        assert isinstance(f.solve(rng.standard_normal(A.N)), MockDeviceArray)
        assert isinstance(f.selected_inverse_diagonal(), MockDeviceArray)
        assert isinstance(f.solve_stack(rng.standard_normal((2, A.N))), MockDeviceArray)


class TestMultifactorGrid:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_batch_cross_backend(self, shape, rng):
        mats = _host_mats(shape, rng, t=4)
        rhs = rng.standard_normal((4, mats[0].N))
        host = factorize_batch(mats)
        dev = factorize_batch([_on_backend(A, MOCK_DEVICE_BACKEND) for A in mats])
        np.testing.assert_allclose(
            MOCK_DEVICE_BACKEND.to_host(dev.logdets()), host.logdets(), rtol=1e-13
        )
        np.testing.assert_allclose(
            MOCK_DEVICE_BACKEND.to_host(dev.solve_each(rhs)),
            host.solve_each(rhs),
            rtol=1e-11,
        )

    def test_batch_within_backend_bit_identity(self, backend, rng):
        mats = _host_mats(SHAPES[0], rng, t=3)
        rhs = rng.standard_normal((3, mats[0].N))
        runs = [
            factorize_batch([_on_backend(A, backend) for A in mats]) for _ in range(2)
        ]
        assert np.array_equal(
            backend.to_host(runs[0].logdets()), backend.to_host(runs[1].logdets())
        )
        assert np.array_equal(
            backend.to_host(runs[0].solve_each(rhs)),
            backend.to_host(runs[1].solve_each(rhs)),
        )


class TestAssemblyGrid:
    def _thetas(self, model, gt):
        base = gt.theta
        return np.stack([base, base + 0.05, base - 0.05])

    def test_assemble_batch_backend_identical(self, tiny_uni_model):
        """Assembly arithmetic is backend-independent: the stacks built on
        the mock device are bit-identical to the host ones."""
        from repro.model.assembler import AssemblyWorkspace

        model, gt, _ = tiny_uni_model
        thetas = self._thetas(model, gt)
        host = model.assemble_batch(thetas)
        dev = model.assemble_batch(
            thetas, workspace=AssemblyWorkspace(backend=MOCK_DEVICE_BACKEND)
        )
        assert isinstance(dev.qp.diag, MockDeviceArray)
        for name in ("diag", "lower", "arrow", "tip"):
            np.testing.assert_array_equal(
                MOCK_DEVICE_BACKEND.to_host(getattr(dev.qp, name)), getattr(host.qp, name)
            )
            np.testing.assert_array_equal(
                MOCK_DEVICE_BACKEND.to_host(getattr(dev.qc, name)), getattr(host.qc, name)
            )
        np.testing.assert_array_equal(np.asarray(dev.rhs), np.asarray(host.rhs))


class TestNoHostEscape:
    def test_pipeline_with_poisoned_numpy(self, tiny_uni_model, monkeypatch, rng):
        """The ISSUE's monkeypatch-asserted no-escape gate: after model
        construction, every allocation in assemble → factorize_batch →
        solve_stack → selected inverse → sample must come from the
        backend's pre-bound ``xp`` — a hot-path ``np.empty``/``np.zeros``
        (or ``*_like``) is an immediate failure, not a silent host
        round-trip."""
        from repro.model.assembler import AssemblyWorkspace

        model, gt, _ = tiny_uni_model
        thetas = np.stack([gt.theta, gt.theta + 0.05, gt.theta - 0.05])
        be = MOCK_DEVICE_BACKEND
        ws = AssemblyWorkspace(backend=be)

        # The noise block is host-RNG *input* (its asarray is the H2D
        # crossing), like the model itself — pre-draw it so the poisoned
        # region covers sample()'s own allocations, not numpy's RNG.
        z_host = np.random.default_rng(3).standard_normal((2, model.N))

        class _FrozenRng:
            def standard_normal(self, shape):
                assert shape == z_host.shape
                return z_host

        def boom(*a, **k):
            raise AssertionError("hot path allocated through global numpy")

        monkeypatch.setattr(np, "empty", boom)
        monkeypatch.setattr(np, "zeros", boom)
        monkeypatch.setattr(np, "empty_like", boom)
        monkeypatch.setattr(np, "zeros_like", boom)

        batch = model.assemble_batch(thetas, workspace=ws)
        fb = factorize_batch(batch.qc, overwrite=True)
        mu = fb.solve_each(batch.rhs)
        assert isinstance(mu, MockDeviceArray)
        f0 = fb.factor(0)
        x = f0.solve_stack(np.ones((2, f0.N)))
        var = f0.selected_inverse_diagonal()
        draws = f0.sample(2, _FrozenRng())
        for out in (x, var, draws):
            assert isinstance(out, MockDeviceArray)

        monkeypatch.undo()
        # Same numbers as the unpoisoned host run.
        host = model.assemble_batch(thetas)
        hb = factorize_batch(host.qc, overwrite=True)
        np.testing.assert_allclose(be.to_host(fb.logdets()), hb.logdets(), rtol=1e-13)
        # Condition-number amplification of the eps-level kernel
        # difference (host dtrtri vs. vectorized substitution) on real
        # assembled precisions — ~1e-10 relative, vs. ~1e-15 on the
        # diagonally dominant random grid above.
        np.testing.assert_allclose(
            be.to_host(mu), hb.solve_each(np.asarray(host.rhs)), rtol=1e-8
        )


class TestCeilingLift:
    def test_batched_potrf_backend_ignores_ceiling(self, tiny_uni_model, monkeypatch):
        """`has_batched_potrf=True` removes the host stencil ceiling: one
        fat launch beats t thin ones at any block size (ISSUE acceptance:
        the ceiling must not be applied under the mock backend)."""
        from repro.inla.evaluator import FobjEvaluator

        model, _, _ = tiny_uni_model
        ev = FobjEvaluator(model)  # auto mode
        monkeypatch.setenv("REPRO_BATCHED", "1")
        monkeypatch.setenv("REPRO_BATCH_STENCIL_MAX_B", "1")  # below any real b
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert not ev._use_batch(4)  # host path obeys the ceiling
        monkeypatch.setenv("REPRO_BACKEND", "mock_device")
        assert ev._use_batch(4)  # batched-potrf backend lifts it
