"""Deterministic fault injection: named points, seeded schedules.

The paper's pipeline is pure and deterministic per request, which makes
recovery paths cheap to *verify* — a recovered result can be compared
bit-for-bit against the fault-free run — but only if the faults
themselves are reproducible.  This module provides that harness:

- **fault points** are named sites threaded into the hot paths
  (``comm.shm.exchange``, ``spmd.worker.kill.r<rank>``,
  ``spmd.worker.bootstrap.r<rank>``, ``structured.pobtaf``,
  ``structured.factorize_batch``, ``serving.refit``, ``serving.group``,
  ``serving.tick`` — see the README catalogue).  When no plan is active
  a point is one dict lookup — the hot paths pay nothing in production.
- a :class:`FaultPlan` decides, deterministically, which *hits* of which
  points fire.  The decision for hit ``k`` of point ``p`` is a pure
  function of ``(seed, p, k)`` (splitmix64 → uniform), so a given plan
  produces the identical fault schedule on every run, every platform,
  regardless of thread interleaving *within one point*.

Activate a plan three ways:

- environment — ``REPRO_FAULTS="seed:point:rate[:times[:after]]"``
  (comma-separated for several specs; ``point`` is an ``fnmatch``
  pattern).  Read lazily on every hit, so worker processes — forked or
  spawned — inherit the schedule with no extra plumbing;
- :func:`install` / :func:`uninstall` — process-global programmatic
  plan (forked SPMD workers inherit a copy);
- ``with injected(plan):`` — scoped installation for tests.

Sites whose "fault" cannot be an exception (a killed worker) consult
:func:`should_fire` and act themselves (``os._exit``).  Sites where the
hit count restarts with the process (a respawned SPMD worker) pass an
explicit ``index`` — the epoch or spawn generation — so the schedule
survives recovery instead of re-firing forever.
"""

from __future__ import annotations

import os
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.errors import InjectedFaultError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "active_plan",
    "chaos_seeds",
    "fault_point",
    "should_fire",
    "install",
    "uninstall",
    "injected",
]


def chaos_seeds(default: tuple = (0, 1, 2)) -> tuple:
    """Seeds the chaos suites parametrize their schedules over.

    Locally every seed runs in one pytest invocation; the CI chaos job
    fans the same suite out as a matrix with ``REPRO_CHAOS_SEED`` pinning
    one seed per leg (three legs = the acceptance bar of >= 3 seeds).
    """
    raw = os.environ.get("REPRO_CHAOS_SEED")
    if raw is None:
        return tuple(default)
    return (int(raw),)

_MASK = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def _uniform(seed: int, point: str, k: int) -> float:
    """Deterministic uniform in [0, 1) for hit ``k`` of ``point``."""
    h = zlib.crc32(point.encode("utf-8"))
    z = _splitmix64(_splitmix64(_splitmix64(seed & _MASK) ^ h) ^ (k & _MASK))
    return z / 2.0**64


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: which points, how often, how many times.

    ``point`` is an ``fnmatch`` pattern over fault-point names.  For each
    matching hit with index ``k`` (0-based, per point): eligible when
    ``k >= after`` and fewer than ``times`` fires have happened (``None``
    = unbounded), then fires with probability ``rate`` — decided by the
    seeded hash, not a live RNG, so the schedule is reproducible.
    """

    point: str
    rate: float = 1.0
    times: int | None = 1
    after: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")


class FaultPlan:
    """A set of :class:`FaultSpec` plus the per-point hit/fire counters.

    Thread-safe; counters are observable (:meth:`hits`, :meth:`fired`)
    so tests can assert exactly which faults the run exercised.
    """

    def __init__(self, specs: list | tuple = (), *, seed: int | None = None):
        specs = list(specs)
        if seed is not None:
            specs = [
                FaultSpec(s.point, s.rate, s.times, s.after, seed) for s in specs
            ]
        self.specs: list = specs
        self._lock = threading.Lock()
        self._hits: dict = {}
        self._fired: dict = {}
        self._spec_fired: dict = {}  # id(spec) -> count, for `times` caps

    # -- construction ------------------------------------------------------

    @classmethod
    def at(
        cls,
        point: str,
        *,
        rate: float = 1.0,
        times: int | None = 1,
        after: int = 0,
        seed: int = 0,
    ) -> "FaultPlan":
        """Single-spec convenience constructor."""
        return cls([FaultSpec(point, rate, times, after, seed)])

    @classmethod
    def parse(cls, raw: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar.

        ``seed:point:rate[:times[:after]]``, comma-separated for several
        specs; ``times`` accepts ``inf`` (or ``*``) for unbounded.
        """
        specs = []
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) < 3:
                raise ValueError(
                    f"bad REPRO_FAULTS spec {part!r}: want seed:point:rate[:times[:after]]"
                )
            seed, point, rate = int(fields[0]), fields[1], float(fields[2])
            times: int | None = 1
            if len(fields) > 3:
                times = None if fields[3] in ("inf", "*") else int(fields[3])
            after = int(fields[4]) if len(fields) > 4 else 0
            specs.append(FaultSpec(point, rate, times, after, seed))
        return cls(specs)

    # -- observation -------------------------------------------------------

    def hits(self, point: str | None = None):
        """Hit counts — per point, or the one point's count."""
        with self._lock:
            return dict(self._hits) if point is None else self._hits.get(point, 0)

    def fired(self, point: str | None = None):
        """Fire counts — per point, or the one point's count."""
        with self._lock:
            return dict(self._fired) if point is None else self._fired.get(point, 0)

    # -- the decision ------------------------------------------------------

    def check(self, point: str, index: int | None = None) -> bool:
        """Record one hit of ``point``; True when a spec fires on it.

        ``index`` overrides the plan's own hit counter — callers whose
        counter would reset with the process (SPMD workers) pass their
        epoch / spawn generation instead, making the schedule stable
        across respawns.  Explicit-index hits ignore ``times`` caps (the
        window ``[after, after + times)`` bounds them instead): a
        restarted process cannot know how often older incarnations fired.
        """
        with self._lock:
            k = index if index is not None else self._hits.get(point, 0)
            self._hits[point] = self._hits.get(point, 0) + 1
            fire = False
            for spec in self.specs:
                if not fnmatchcase(point, spec.point):
                    continue
                if k < spec.after:
                    continue
                if spec.times is not None:
                    if index is not None:
                        if k >= spec.after + spec.times:
                            continue
                    elif self._spec_fired.get(id(spec), 0) >= spec.times:
                        continue
                if spec.rate < 1.0 and _uniform(spec.seed, point, k) >= spec.rate:
                    continue
                self._spec_fired[id(spec)] = self._spec_fired.get(id(spec), 0) + 1
                fire = True
                break
            if fire:
                self._fired[point] = self._fired.get(point, 0) + 1
            return fire


# ---------------------------------------------------------------------------
# the process-global activation switch
# ---------------------------------------------------------------------------

_INSTALLED: FaultPlan | None = None
_ENV_CACHE: tuple = ("", None)  # (raw value, parsed plan)
_ENV_LOCK = threading.Lock()


def install(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` process-wide (programmatic alternative to env)."""
    global _INSTALLED
    _INSTALLED = plan
    return plan


def uninstall() -> None:
    """Deactivate the installed plan (the env plan, if any, still applies)."""
    global _INSTALLED
    _INSTALLED = None


@contextmanager
def injected(plan: FaultPlan):
    """Scoped :func:`install` for tests: always uninstalls on exit."""
    global _INSTALLED
    prev = _INSTALLED
    install(plan)
    try:
        yield plan
    finally:
        _INSTALLED = prev


def _env_plan() -> FaultPlan | None:
    raw = os.environ.get("REPRO_FAULTS", "")
    if not raw:
        return None
    global _ENV_CACHE
    with _ENV_LOCK:
        if _ENV_CACHE[0] != raw:
            _ENV_CACHE = (raw, FaultPlan.parse(raw))
        return _ENV_CACHE[1]


def active_plan() -> FaultPlan | None:
    """The plan hits are checked against: installed first, else env."""
    return _INSTALLED if _INSTALLED is not None else _env_plan()


def should_fire(point: str, *, index: int | None = None) -> bool:
    """Non-raising fault check for sites that act themselves (worker kill)."""
    plan = active_plan()
    return plan is not None and plan.check(point, index)


def fault_point(point: str, exc=None, *, index: int | None = None) -> None:
    """Raise the site's exception when the active plan fires on ``point``.

    ``exc`` is a zero-argument exception factory (or ``None`` for the
    default transient :class:`~repro.errors.InjectedFaultError`).  Doing
    nothing — the overwhelmingly common case — costs one env lookup.
    """
    if should_fire(point, index=index):
        raise exc() if exc is not None else InjectedFaultError(
            f"injected fault at {point!r}"
        )
