"""Precomputed symmetric permutations of sparse matrices.

The coregional joint precision ``Q_nv`` (paper Eq. 11) is naturally
ordered *variable-major* (all time steps of response 1, then response 2,
...) which destroys the BT/BTA pattern (paper Fig. 2b).  Reordering
*time-major* (all responses' parameters for time step 1, then time step 2,
..., fixed effects last) recovers it with enlarged blocks ``b = nv * ns``
(Fig. 2c).

Because each univariate process carries its own hyperparameters, the joint
matrix must be permuted at *every* objective evaluation.  The paper's
trick (Sec. IV-B1): compute the permutation of the nonzero pattern once,
store the index map, and thereafter permute by fancy-indexing the CSR
*data array only* — ``O(nnz)`` with no index recomputation.
:class:`SymmetricPermutation` implements exactly that.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


class SymmetricPermutation:
    """A permutation ``pi`` applied symmetrically: ``B = A[pi, :][:, pi]``.

    ``pi`` maps new index -> old index (``B[i, j] = A[pi[i], pi[j]]``).
    """

    def __init__(self, perm: np.ndarray):
        perm = np.asarray(perm, dtype=np.int64)
        if perm.ndim != 1:
            raise ValueError("permutation must be a 1-D index vector")
        n = perm.size
        seen = np.zeros(n, dtype=bool)
        seen[perm] = True
        if not seen.all():
            raise ValueError("not a permutation: indices missing or repeated")
        self.perm = perm
        self.inverse = np.empty_like(perm)
        self.inverse[perm] = np.arange(n)
        self._plan_pattern = None
        self._plan_order = None
        self._plan_out = None

    @property
    def n(self) -> int:
        return self.perm.size

    # -- vectors ----------------------------------------------------------

    def apply_vector(self, x: np.ndarray) -> np.ndarray:
        """Permute a vector (or the leading axis of a matrix) into new order."""
        return np.asarray(x)[self.perm]

    def undo_vector(self, x: np.ndarray) -> np.ndarray:
        """Inverse-permute back to the original ordering."""
        return np.asarray(x)[self.inverse]

    def apply_stack(self, x: np.ndarray) -> np.ndarray:
        """Permute the *last* axis of a row-major ``(..., n)`` stack.

        The multi-RHS layout: each row of a ``(k, n)`` stack is one vector
        (a posterior draw, a stencil right-hand side); one fancy-indexing
        pass permutes all ``k`` at once.
        """
        return np.asarray(x)[..., self.perm]

    def undo_stack(self, x: np.ndarray) -> np.ndarray:
        """Inverse-permute the last axis of a row-major stack."""
        return np.asarray(x)[..., self.inverse]

    # -- matrices ----------------------------------------------------------

    def apply_matrix(self, A: sp.spmatrix) -> sp.csr_matrix:
        """``P A P^T`` computed from scratch (used once to build the plan)."""
        A = sp.csr_matrix(A)
        if A.shape != (self.n, self.n):
            raise ValueError(f"matrix shape {A.shape} != ({self.n}, {self.n})")
        out = A[self.perm, :][:, self.perm].tocsr()
        out.sum_duplicates()
        out.sort_indices()
        return out

    def build_plan(self, pattern: sp.spmatrix) -> None:
        """Precompute the data-array index map for matrices with this pattern.

        ``pattern`` must be in canonical CSR form (sorted indices, no
        duplicates); any later matrix with the *same* indptr/indices can be
        permuted by :meth:`apply_data` in ``O(nnz)``.
        """
        A = sp.csr_matrix(pattern).copy()
        A.sum_duplicates()
        A.sort_indices()
        tagged = sp.csr_matrix(
            (np.arange(A.nnz, dtype=np.int64) + 1, A.indices, A.indptr), shape=A.shape
        )
        permuted = tagged[self.perm, :][:, self.perm].tocsr()
        permuted.sum_duplicates()
        permuted.sort_indices()
        self._plan_pattern = (A.indptr.copy(), A.indices.copy())
        self._plan_order = (permuted.data - 1).astype(np.int64)
        # Permuted index arrays are shared read-only by every apply_data
        # call; each call gets a fresh data array (thread safety: objective
        # evaluations run concurrently under strategy S1).
        self._plan_indptr = permuted.indptr.copy()
        self._plan_indices = permuted.indices.copy()

    def plan_arrays(self) -> tuple:
        """The precomputed plan as raw arrays ``(order, indptr, indices)``.

        ``order`` gathers a planned-pattern data array into permuted
        order (``permuted.data = data[order]``); ``indptr``/``indices``
        are the permuted pattern.  Assembly plans compose ``order`` with
        downstream scatters so the permutation costs nothing at runtime.
        """
        if self._plan_order is None:
            raise RuntimeError("call build_plan(pattern) before plan_arrays")
        return self._plan_order, self._plan_indptr, self._plan_indices

    def apply_data(self, A: sp.spmatrix) -> sp.csr_matrix:
        """Permute using the precomputed plan (data-array shuffle only)."""
        if self._plan_order is None:
            raise RuntimeError("call build_plan(pattern) before apply_data")
        A = sp.csr_matrix(A)
        indptr, indices = self._plan_pattern
        if A.nnz != self._plan_order.size or not (
            np.array_equal(A.indptr, indptr) and np.array_equal(A.indices, indices)
        ):
            raise ValueError("matrix pattern differs from the planned pattern")
        return sp.csr_matrix(
            (A.data[self._plan_order], self._plan_indices, self._plan_indptr),
            shape=(self.n, self.n),
        )


def time_major_permutation(nv: int, ns: int, nt: int, nr: int) -> SymmetricPermutation:
    """Permutation from variable-major to time-major coregional ordering.

    Old (variable-major) layout, as Eq. 11 constructs it::

        [ v0: t0 s0..s_{ns-1}, t1 ..., fixed_0..fixed_{nr-1} | v1: ... | ... ]

    New (time-major) layout recovering BT/BTA (paper Fig. 2c)::

        [ t0: v0 s*, v1 s*, ..., | t1: ... | ... | all fixed effects ]

    Returns the :class:`SymmetricPermutation` with ``perm[new] = old``.
    """
    if min(nv, ns, nt) < 1 or nr < 0:
        raise ValueError(f"invalid dims nv={nv}, ns={ns}, nt={nt}, nr={nr}")
    stride = ns * nt + nr  # size of one univariate process block
    perm = np.empty(nv * stride, dtype=np.int64)
    pos = 0
    for t in range(nt):
        for v in range(nv):
            old = v * stride + t * ns
            perm[pos : pos + ns] = np.arange(old, old + ns)
            pos += ns
    for v in range(nv):
        old = v * stride + ns * nt
        perm[pos : pos + nr] = np.arange(old, old + nr)
        pos += nr
    assert pos == nv * stride
    return SymmetricPermutation(perm)
