"""Alignment of sparse matrices onto a fixed reference pattern.

The INLA objective re-assembles precision matrices at every evaluation;
their *numerical* pattern can shrink when couplings pass through zero
(e.g. an LMC ``lambda = 0`` removes whole blocks).  The structured-solver
mappings and permutation plans require a *fixed* pattern, so every
assembled matrix is scattered into the reference pattern's data array —
an ``O(nnz)`` fancy-indexed copy, never an index recomputation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def canonical_csr(Q: sp.spmatrix) -> sp.csr_matrix:
    """``Q`` as canonical CSR (deduplicated, sorted indices, copied).

    The shared normalization every fixed-pattern plan builds on — slot
    lookups and data-array scatters are only meaningful against a
    canonical index ordering.
    """
    Q = sp.csr_matrix(Q).copy()
    Q.sum_duplicates()
    Q.sort_indices()
    return Q


class PatternAligner:
    """Scatter matrices with sub-patterns into a fixed canonical pattern."""

    def __init__(self, pattern: sp.spmatrix):
        A = sp.csr_matrix(pattern).copy()
        A.sum_duplicates()
        A.sort_indices()
        self.pattern = A
        # Slot lookup: same-pattern CSR whose data are the slot indices.
        self._lookup = sp.csr_matrix(
            (np.arange(A.nnz, dtype=np.int64) + 1, A.indices, A.indptr), shape=A.shape
        )
        # (key, slots) stored as one tuple so concurrent readers (S1
        # threads) always see a consistent pair.
        self._cache = None

    @property
    def nnz(self) -> int:
        return self.pattern.nnz

    def slots_of(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Reference-pattern data slots of explicit ``(row, col)`` coordinates.

        The index primitive behind every precomputed assembly plan: a
        symbolic phase resolves each fixed basis matrix's coordinates to
        slots once, and the numeric phase is pure fancy indexing.  A
        coordinate outside the reference pattern raises with a clear
        message — the guarantee the stencil batch relies on (every
        feasible theta's pattern is a subset of the reference).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        slots = np.asarray(self._lookup[rows, cols]).ravel().astype(np.int64)
        if np.any(slots == 0):
            bad = np.argmax(slots == 0)
            raise ValueError(
                f"entry ({rows[bad]}, {cols[bad]}) is outside the reference pattern"
            )
        return slots - 1

    def slots_for(self, Q: sp.csr_matrix) -> np.ndarray:
        """Slot vector mapping ``Q``'s canonical CSR data into the pattern."""
        rows = np.repeat(np.arange(Q.shape[0]), np.diff(Q.indptr))
        return self.slots_of(rows, Q.indices)

    def align(self, Q: sp.spmatrix, out: sp.csr_matrix | None = None) -> sp.csr_matrix:
        """Return ``Q`` re-expressed on the reference pattern.

        Entries of the reference pattern absent from ``Q`` become explicit
        zeros; an entry of ``Q`` outside the pattern raises.  Row/column
        slot computations are cached per observed sub-pattern, so repeated
        calls with the same symbolic shape cost one fancy-indexed copy.
        """
        Q = sp.csr_matrix(Q)
        Q.sum_duplicates()
        Q.sort_indices()
        if Q.shape != self.pattern.shape:
            raise ValueError(f"shape {Q.shape} != pattern shape {self.pattern.shape}")
        key = hash((Q.indptr.tobytes(), Q.indices.tobytes()))
        cached = self._cache
        if cached is not None and cached[0] == key:
            slots = cached[1]
        else:
            slots = self.slots_for(Q)
            self._cache = (key, slots)
        if out is None:
            out = sp.csr_matrix(
                (np.zeros(self.nnz), self.pattern.indices, self.pattern.indptr),
                shape=self.pattern.shape,
            )
        else:
            out.data[:] = 0.0
        out.data[slots] = Q.data
        return out
