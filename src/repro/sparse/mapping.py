"""Sparse-to-structured-dense (BTA) mapping.

The distributed solver operates on densified BT/BTA block stacks, but the
precision matrices are assembled sparse.  Naively densifying costs
``O(n b^2)`` writes per evaluation; the paper implements custom CUDA
kernels to scatter only the nonzeros, bringing the cost to ``O(nnz)``
(and ``O(nnz / P)`` per rank under S3; Sec. IV-F).

:class:`BTAMapping` is the NumPy equivalent: for a fixed CSR pattern it
precomputes, once, the flat destination index of every nonzero inside the
``(n, b, b)`` / ``(n, a, b)`` / ``(a, a)`` block stacks; every subsequent
remap of new data is a single fancy-indexed scatter per stack.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.structured.bta import BTAMatrix, BTAShape


class BTAScatter:
    """Precomposed ``O(nnz)`` scatter from a flat data array into BTA stacks.

    Built by :meth:`BTAMapping.composed`: the destination indices come
    from the mapping, the source indices may be pre-composed with any
    upstream data-gather (e.g. a permutation plan's data-array order), so
    align -> permute -> densify collapses into one fancy-indexed copy per
    block stack.  Works on a single matrix (:meth:`scatter`, fresh-alloc
    default for ``overwrite=True`` consumers) or on theta-first batch
    stacks (:meth:`scatter_stacks` — all thetas in one indexing pass).
    """

    def __init__(self, shape3: BTAShape, diag, lower, arrow, tip):
        self.shape3 = shape3
        self._diag = diag  # (dst, src) index pairs per stack
        self._lower = lower
        self._arrow = arrow
        self._tip = tip

    def compose(self, order: np.ndarray) -> "BTAScatter":
        """Fuse an upstream data gather ``data -> data[order]`` into the sources."""
        order = np.asarray(order, dtype=np.int64)
        pairs = (self._diag, self._lower, self._arrow, self._tip)
        return BTAScatter(self.shape3, *[(dst, order[src]) for dst, src in pairs])

    def scatter(self, data: np.ndarray, out: BTAMatrix | None = None) -> BTAMatrix:
        """Scatter one matrix's data vector into BTA block storage.

        ``out=None`` (the default) allocates fresh stacks — the right
        contract for single-theta callers that factorize with
        ``overwrite=True``; pass ``out`` (possibly built on views of one
        slice of a batch stack) to skip the allocation.
        """
        if out is None:
            out = BTAMatrix.zeros(self.shape3)
        else:
            out.diag[...] = 0.0
            out.lower[...] = 0.0
            out.arrow[...] = 0.0
            out.tip[...] = 0.0
        out.diag.ravel()[self._diag[0]] = data[self._diag[1]]
        out.lower.ravel()[self._lower[0]] = data[self._lower[1]]
        if self.shape3.a:
            out.arrow.ravel()[self._arrow[0]] = data[self._arrow[1]]
            out.tip.ravel()[self._tip[0]] = data[self._tip[1]]
        return out

    def scatter_stacks(
        self,
        data: np.ndarray,
        diag: np.ndarray,
        lower: np.ndarray,
        arrow: np.ndarray | None,
        tip: np.ndarray | None,
    ) -> None:
        """Scatter a ``(t, nnz)`` data stack into theta-first block stacks.

        One fancy-indexed assignment per stack covers all ``t`` thetas —
        the batch path never materializes an intermediate per-theta
        :class:`BTAMatrix`.  The caller owns (and may preallocate and
        reuse) the output stacks; everything outside the pattern is
        zeroed here.
        """
        t = data.shape[0]
        diag[...] = 0.0
        lower[...] = 0.0
        diag.reshape(t, -1)[:, self._diag[0]] = data[:, self._diag[1]]
        lower.reshape(t, -1)[:, self._lower[0]] = data[:, self._lower[1]]
        if self.shape3.a:
            arrow[...] = 0.0
            tip[...] = 0.0
            arrow.reshape(t, -1)[:, self._arrow[0]] = data[:, self._arrow[1]]
            tip.reshape(t, -1)[:, self._tip[0]] = data[:, self._tip[1]]


class BTAMapping:
    """O(nnz) scatter from a fixed CSR pattern into BTA block storage."""

    def __init__(self, pattern: sp.spmatrix, shape: BTAShape):
        A = sp.csr_matrix(pattern).copy()
        A.sum_duplicates()
        A.sort_indices()
        if A.shape != (shape.N, shape.N):
            raise ValueError(f"pattern shape {A.shape} != ({shape.N}, {shape.N})")
        self.shape3 = shape
        self._indptr = A.indptr.copy()
        self._indices = A.indices.copy()
        n, b, a = shape.n, shape.b, shape.a

        rows = np.repeat(np.arange(shape.N), np.diff(A.indptr))
        cols = A.indices
        src = np.arange(A.nnz, dtype=np.int64)

        in_arrow_row = rows >= n * b
        in_arrow_col = cols >= n * b
        brow = np.where(in_arrow_row, -1, rows // b)
        bcol = np.where(in_arrow_col, -1, cols // b)

        # Lower-triangle-only storage: keep diag blocks fully (solvers read
        # the full symmetric block), keep sub-diagonal and arrow-row blocks,
        # drop strictly-upper entries (they mirror stored ones).
        diag_mask = (~in_arrow_row) & (~in_arrow_col) & (brow == bcol)
        lower_mask = (~in_arrow_row) & (~in_arrow_col) & (brow == bcol + 1)
        upper_mask = (~in_arrow_row) & (~in_arrow_col) & (bcol == brow + 1)
        arrow_mask = in_arrow_row & (~in_arrow_col)
        arrow_t_mask = (~in_arrow_row) & in_arrow_col
        tip_mask = in_arrow_row & in_arrow_col

        outside = ~(diag_mask | lower_mask | upper_mask | arrow_mask | arrow_t_mask | tip_mask)
        if outside.any():
            i, j = rows[outside][0], cols[outside][0]
            raise ValueError(
                f"pattern entry ({i}, {j}) falls outside the BTA structure "
                f"(n={n}, b={b}, a={a})"
            )

        def flat_block(mask, block_of_row, nrows_in_block, r_local, c_local):
            blk = block_of_row[mask]
            return (blk * nrows_in_block + r_local[mask]) * b + c_local[mask], src[mask]

        r_in = rows % b
        c_in = cols % b
        self._diag_dst, self._diag_src = flat_block(diag_mask, brow, b, r_in, c_in)
        self._lower_dst, self._lower_src = (
            ((brow[lower_mask] - 1) * b + r_in[lower_mask]) * b + c_in[lower_mask],
            src[lower_mask],
        )
        ra = rows - n * b
        ca = cols - n * b
        self._arrow_dst = (bcol[arrow_mask] * a + ra[arrow_mask]) * b + c_in[arrow_mask]
        self._arrow_src = src[arrow_mask]
        self._tip_dst = ca[tip_mask] + a * ra[tip_mask]
        self._tip_src = src[tip_mask]
        self.nnz = A.nnz
        self._scatter = BTAScatter(
            shape,
            (self._diag_dst, self._diag_src),
            (self._lower_dst, self._lower_src),
            (self._arrow_dst, self._arrow_src),
            (self._tip_dst, self._tip_src),
        )

    def check_pattern(self, A: sp.csr_matrix) -> None:
        if A.nnz != self.nnz or not (
            np.array_equal(A.indptr, self._indptr) and np.array_equal(A.indices, self._indices)
        ):
            raise ValueError("matrix pattern differs from the mapped pattern")

    def composed(self, order: np.ndarray | None = None) -> BTAScatter:
        """The mapping as a raw-data :class:`BTAScatter`, optionally fused.

        ``order`` is an upstream data-array gather (``data -> data[order]``,
        e.g. a :class:`repro.sparse.permutation.SymmetricPermutation`
        plan) to pre-compose into the source indices — the symbolic-once
        step that lets an assembly plan jump from aligned CSR values
        straight into the BTA block stacks.
        """
        return self._scatter if order is None else self._scatter.compose(order)

    def map(self, A: sp.spmatrix, out: BTAMatrix | None = None) -> BTAMatrix:
        """Scatter the CSR data into BTA block stacks (``O(nnz)``).

        ``out`` may be a previously returned matrix to reuse its storage.
        """
        A = sp.csr_matrix(A)
        self.check_pattern(A)
        return self._scatter.scatter(A.data, out=out)
