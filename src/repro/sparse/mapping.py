"""Sparse-to-structured-dense (BTA) mapping.

The distributed solver operates on densified BT/BTA block stacks, but the
precision matrices are assembled sparse.  Naively densifying costs
``O(n b^2)`` writes per evaluation; the paper implements custom CUDA
kernels to scatter only the nonzeros, bringing the cost to ``O(nnz)``
(and ``O(nnz / P)`` per rank under S3; Sec. IV-F).

:class:`BTAMapping` is the NumPy equivalent: for a fixed CSR pattern it
precomputes, once, the flat destination index of every nonzero inside the
``(n, b, b)`` / ``(n, a, b)`` / ``(a, a)`` block stacks; every subsequent
remap of new data is a single fancy-indexed scatter per stack.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.structured.bta import BTAMatrix, BTAShape


class BTAMapping:
    """O(nnz) scatter from a fixed CSR pattern into BTA block storage."""

    def __init__(self, pattern: sp.spmatrix, shape: BTAShape):
        A = sp.csr_matrix(pattern).copy()
        A.sum_duplicates()
        A.sort_indices()
        if A.shape != (shape.N, shape.N):
            raise ValueError(f"pattern shape {A.shape} != ({shape.N}, {shape.N})")
        self.shape3 = shape
        self._indptr = A.indptr.copy()
        self._indices = A.indices.copy()
        n, b, a = shape.n, shape.b, shape.a

        rows = np.repeat(np.arange(shape.N), np.diff(A.indptr))
        cols = A.indices
        src = np.arange(A.nnz, dtype=np.int64)

        in_arrow_row = rows >= n * b
        in_arrow_col = cols >= n * b
        brow = np.where(in_arrow_row, -1, rows // b)
        bcol = np.where(in_arrow_col, -1, cols // b)

        # Lower-triangle-only storage: keep diag blocks fully (solvers read
        # the full symmetric block), keep sub-diagonal and arrow-row blocks,
        # drop strictly-upper entries (they mirror stored ones).
        diag_mask = (~in_arrow_row) & (~in_arrow_col) & (brow == bcol)
        lower_mask = (~in_arrow_row) & (~in_arrow_col) & (brow == bcol + 1)
        upper_mask = (~in_arrow_row) & (~in_arrow_col) & (bcol == brow + 1)
        arrow_mask = in_arrow_row & (~in_arrow_col)
        arrow_t_mask = (~in_arrow_row) & in_arrow_col
        tip_mask = in_arrow_row & in_arrow_col

        outside = ~(diag_mask | lower_mask | upper_mask | arrow_mask | arrow_t_mask | tip_mask)
        if outside.any():
            i, j = rows[outside][0], cols[outside][0]
            raise ValueError(
                f"pattern entry ({i}, {j}) falls outside the BTA structure "
                f"(n={n}, b={b}, a={a})"
            )

        def flat_block(mask, block_of_row, nrows_in_block, r_local, c_local):
            blk = block_of_row[mask]
            return (blk * nrows_in_block + r_local[mask]) * b + c_local[mask], src[mask]

        r_in = rows % b
        c_in = cols % b
        self._diag_dst, self._diag_src = flat_block(diag_mask, brow, b, r_in, c_in)
        self._lower_dst, self._lower_src = (
            ((brow[lower_mask] - 1) * b + r_in[lower_mask]) * b + c_in[lower_mask],
            src[lower_mask],
        )
        ra = rows - n * b
        ca = cols - n * b
        self._arrow_dst = (bcol[arrow_mask] * a + ra[arrow_mask]) * b + c_in[arrow_mask]
        self._arrow_src = src[arrow_mask]
        self._tip_dst = ca[tip_mask] + a * ra[tip_mask]
        self._tip_src = src[tip_mask]
        self.nnz = A.nnz

    def check_pattern(self, A: sp.csr_matrix) -> None:
        if A.nnz != self.nnz or not (
            np.array_equal(A.indptr, self._indptr) and np.array_equal(A.indices, self._indices)
        ):
            raise ValueError("matrix pattern differs from the mapped pattern")

    def map(self, A: sp.spmatrix, out: BTAMatrix | None = None) -> BTAMatrix:
        """Scatter the CSR data into BTA block stacks (``O(nnz)``).

        ``out`` may be a previously returned matrix to reuse its storage.
        """
        A = sp.csr_matrix(A)
        self.check_pattern(A)
        s = self.shape3
        if out is None:
            out = BTAMatrix.zeros(s)
        else:
            out.diag[...] = 0.0
            out.lower[...] = 0.0
            out.arrow[...] = 0.0
            out.tip[...] = 0.0
        out.diag.ravel()[self._diag_dst] = A.data[self._diag_src]
        out.lower.ravel()[self._lower_dst] = A.data[self._lower_src]
        if s.a:
            out.arrow.ravel()[self._arrow_dst] = A.data[self._arrow_src]
            out.tip.ravel()[self._tip_dst] = A.data[self._tip_src]
        return out
