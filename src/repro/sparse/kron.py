"""Sparse Kronecker products and Kronecker sums.

The SPDE discretization expresses every spatio-temporal precision matrix
as ``sum_k T_k (x) S_k`` with small tridiagonal-ish temporal matrices
``T_k`` and sparse spatial matrices ``S_k`` (paper Sec. IV-B: "each of the
``Qp_i`` consist of the sum of sparse Kronecker products").  Ordering the
Kronecker product *time-major* (temporal index outer, spatial index inner)
is what yields the block-tridiagonal pattern with ``ns x ns`` spatial
blocks.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def kron_csr(T: sp.spmatrix, S: sp.spmatrix) -> sp.csr_matrix:
    """Kronecker product ``T (x) S`` in CSR with sorted, deduplicated indices."""
    out = sp.kron(sp.csr_matrix(T), sp.csr_matrix(S), format="csr")
    out.sum_duplicates()
    out.sort_indices()
    return out


def kron_sum(terms: list) -> sp.csr_matrix:
    """``sum_k coeff_k * (T_k (x) S_k)`` as one canonical CSR matrix.

    Parameters
    ----------
    terms:
        Iterable of ``(coeff, T, S)`` triples.
    """
    terms = list(terms)
    if not terms:
        raise ValueError("kron_sum needs at least one term")
    acc = None
    for coeff, T, S in terms:
        piece = kron_csr(T, S)
        piece = piece * float(coeff)
        acc = piece if acc is None else acc + piece
    acc = sp.csr_matrix(acc)
    acc.sum_duplicates()
    acc.sort_indices()
    return acc


class KronSumPattern:
    """Reusable assembly of ``sum_k c_k(theta) (T_k (x) S_k)`` at fixed pattern.

    The sparsity pattern of the sum does not depend on ``theta`` (only the
    coefficients do), so the union pattern and per-term scatter indices are
    computed once; re-assembly for new hyperparameters is a pure
    ``O(nnz)`` data-array operation — the same trick the paper uses for
    its precision-matrix updates.
    """

    def __init__(self, pairs: list):
        """``pairs``: list of ``(T_k, S_k)`` matrices defining the terms."""
        if not pairs:
            raise ValueError("need at least one (T, S) pair")
        self._pieces = [kron_csr(T, S) for T, S in pairs]
        # Union pattern with ones-data to fix canonical ordering.
        proto = None
        for p in self._pieces:
            q = p.copy()
            q.data = np.ones_like(q.data)
            proto = q if proto is None else proto + q
        proto = sp.csr_matrix(proto)
        proto.sum_duplicates()
        proto.sort_indices()
        self.pattern = proto
        nnz = proto.nnz
        # Map each piece's nonzeros to slots in the union data array.
        self._slots = []
        lookup = sp.csr_matrix(
            (np.arange(nnz, dtype=np.int64), proto.indices, proto.indptr), shape=proto.shape
        )
        for p in self._pieces:
            rows = np.repeat(np.arange(p.shape[0]), np.diff(p.indptr))
            slot = np.asarray(lookup[rows, p.indices]).ravel().astype(np.int64)
            self._slots.append(slot)

    @property
    def nnz(self) -> int:
        return self.pattern.nnz

    def assemble(self, coeffs: list, out: sp.csr_matrix | None = None) -> sp.csr_matrix:
        """Assemble the sum with the given per-term coefficients.

        When ``out`` (a matrix previously returned by this method) is
        passed, its data array is updated in place and no new index arrays
        are allocated.
        """
        if len(coeffs) != len(self._pieces):
            raise ValueError(f"expected {len(self._pieces)} coefficients, got {len(coeffs)}")
        if out is None:
            data = np.zeros(self.nnz)
            out = sp.csr_matrix(
                (data, self.pattern.indices, self.pattern.indptr), shape=self.pattern.shape
            )
        else:
            out.data[:] = 0.0
        for coeff, piece, slot in zip(coeffs, self._pieces, self._slots):
            np.add.at(out.data, slot, float(coeff) * piece.data)
        return out
