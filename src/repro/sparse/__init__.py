"""Sparse-matrix utilities underlying the precision-matrix machinery.

Three pieces:

- :mod:`repro.sparse.kron` — sums of sparse Kronecker products, the form
  every spatio-temporal SPDE precision takes (paper Sec. IV-F);
- :mod:`repro.sparse.permutation` — precomputed symmetric permutations
  applied directly to CSR data arrays, so the coregional reordering
  (paper Sec. IV-B1) costs ``O(nnz)`` per objective evaluation with no
  index recomputation;
- :mod:`repro.sparse.mapping` — the sparse-to-structured-dense mapping
  that scatters CSR nonzeros into BTA block stacks in ``O(nnz)``, the
  NumPy equivalent of the paper's custom CUDA kernels (Sec. IV-F).
"""

from repro.sparse.kron import kron_csr, kron_sum
from repro.sparse.mapping import BTAMapping
from repro.sparse.permutation import SymmetricPermutation, time_major_permutation

__all__ = [
    "kron_csr",
    "kron_sum",
    "BTAMapping",
    "SymmetricPermutation",
    "time_major_permutation",
]
