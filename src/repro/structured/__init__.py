"""Structured sparse linear algebra for BT / BTA matrices (Serinv substrate).

The precision matrices arising in DALIA's spatio-temporal models are
block-tridiagonal (BT, the prior ``Qp``) or block-tridiagonal with an
arrowhead (BTA, the conditional ``Qc``; paper Fig. 2).  This package
implements the three bottleneck operations on their *densified-block*
representation:

- Cholesky factorization      (``pobtaf``  / distributed ``d_pobtaf``)
- triangular solve            (``pobtas``  / distributed ``d_pobtas`` —
  the P POBTAS routine the paper contributes)
- selected inversion          (``pobtasi`` / distributed ``d_pobtasi``)

Naming follows Serinv: ``po`` (positive definite) + ``bta`` (block
tridiagonal arrowhead) + ``f``/``s``/``si``.  The distributed variants use
the nested-dissection time-domain partitioning of paper Sec. IV-C/D3 with
the boundary-weighted load balancing studied in Fig. 5.

Every solver has two execution paths selected by ``REPRO_BATCHED`` (or a
per-call ``batched=`` argument): the per-block reference kernels of
:mod:`repro.structured.kernels`, and the stacked/fused kernels of
:mod:`repro.structured.batched` (default) — see ``README.md`` in this
package for the layering and the measured crossover.

Sampling / smart-gradient workloads that drive many right-hand sides
through one factor use the stacked multi-RHS interface of
:mod:`repro.structured.multirhs` (``pobtas_stack`` / ``pobtas_lt_stack``
/ ``d_pobtas_stack`` / ``d_pobtas_lt_stack``) so ``k`` right-hand sides
cost one loop-carried pass, and the fused ``pobtasi_with_solve`` when
means and marginal variances are needed from the same factor.

Consumers that derive several quantities from one matrix should hold a
**factorization handle** (:mod:`repro.structured.factor`):
``factorize(A)`` / ``d_factorize(A, P)`` run the factorization once and
the returned :class:`BTAFactor` / :class:`DistributedBTAFactor` serves
``logdet`` / solves / selected inversion / sampling from it.
"""

from repro.structured.batched import batched_enabled
from repro.structured.bta import BTAMatrix, BTAShape, BTAStack
from repro.structured.partition import Partition, balanced_partitions, partition_counts
from repro.structured.pobtaf import FACTORIZATIONS, pobtaf
from repro.structured.pobtas import pobtas, pobtas_lt
from repro.structured.pobtasi import pobtasi, pobtasi_with_solve
from repro.structured.multirhs import (
    d_pobtas_lt_stack,
    d_pobtas_stack,
    pobtas_lt_stack,
    pobtas_stack,
)
from repro.structured.factor import (
    BTAFactor,
    DistributedBTAFactor,
    d_factorize,
    factorize,
)
from repro.structured.multifactor import BTAFactorBatch, factorize_batch
from repro.structured.d_pobtaf import DistributedFactors, d_pobtaf
from repro.structured.d_pobtas import d_pobtas, d_pobtas_lt
from repro.structured.d_pobtasi import d_pobtasi, d_pobtasi_diag
from repro.structured.reduced_system import ReducedSystem

__all__ = [
    "BTAMatrix",
    "BTAShape",
    "BTAStack",
    "BTAFactor",
    "BTAFactorBatch",
    "DistributedBTAFactor",
    "FACTORIZATIONS",
    "batched_enabled",
    "factorize",
    "factorize_batch",
    "d_factorize",
    "Partition",
    "balanced_partitions",
    "partition_counts",
    "pobtaf",
    "pobtas",
    "pobtas_lt",
    "pobtas_stack",
    "pobtas_lt_stack",
    "pobtasi",
    "pobtasi_with_solve",
    "DistributedFactors",
    "d_pobtaf",
    "d_pobtas",
    "d_pobtas_lt",
    "d_pobtas_stack",
    "d_pobtas_lt_stack",
    "d_pobtasi",
    "d_pobtasi_diag",
    "ReducedSystem",
]
