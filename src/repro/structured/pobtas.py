"""``pobtas`` — sequential triangular solve with a BTA Cholesky factor.

Solves ``A x = rhs`` given ``A = L L^T`` from :func:`repro.structured.pobtaf.pobtaf`
via a forward sweep ``L z = rhs`` followed by a backward sweep
``L^T x = z``.  INLA uses this to obtain the conditional mean
``mu = Qc^{-1} A^T D y`` in every objective-function evaluation
(paper Eq. 3/8) — it is roughly an order of magnitude cheaper than the
factorization itself (paper Sec. V-C).

``rhs`` may be a vector of length ``N`` or a block of ``k`` right-hand
sides ``(N, k)``; block solves are used by the predictive-sampling helpers.
"""

from __future__ import annotations

import numpy as np

from repro.structured.kernels import solve_lower, solve_lower_t
from repro.structured.pobtaf import BTACholesky


def pobtas(chol: BTACholesky, rhs: np.ndarray, *, overwrite: bool = False) -> np.ndarray:
    """Solve ``A x = rhs`` using the BTA Cholesky factor ``chol``."""
    L = chol.factor
    n, b, a, N = L.n, L.b, L.a, L.N
    rhs = np.asarray(rhs, dtype=np.float64)
    squeeze = rhs.ndim == 1
    if rhs.shape[0] != N:
        raise ValueError(f"rhs has leading dimension {rhs.shape[0]}, expected {N}")
    x = rhs.reshape(N, -1) if overwrite and rhs.ndim > 1 else np.array(rhs.reshape(N, -1), copy=True)

    # Views of the block segments (no copies; guide: use views).
    xb = x[: n * b].reshape(n, b, -1)
    xt = x[n * b :]

    # ---- forward sweep: L z = rhs --------------------------------------
    for i in range(n):
        if i > 0:
            xb[i] -= L.lower[i - 1] @ xb[i - 1]
        xb[i] = solve_lower(L.diag[i], xb[i])
        if a:
            xt -= L.arrow[i] @ xb[i]
    if a:
        xt[...] = solve_lower(L.tip, xt)

    # ---- backward sweep: L^T x = z --------------------------------------
    if a:
        xt[...] = solve_lower_t(L.tip, xt)
    for i in range(n - 1, -1, -1):
        if a:
            xb[i] -= L.arrow[i].T @ xt
        if i + 1 < n:
            xb[i] -= L.lower[i].T @ xb[i + 1]
        xb[i] = solve_lower_t(L.diag[i], xb[i])

    return x[:, 0] if squeeze else x


def pobtas_lt(chol: BTACholesky, rhs: np.ndarray) -> np.ndarray:
    """Backward-only solve ``L^T x = rhs``.

    This is the GMRF sampling primitive: if ``z ~ N(0, I)`` then
    ``x = L^{-T} z ~ N(0, A^{-1})`` — used by the synthetic-data
    generators to draw exact samples from the model prior.
    """
    L = chol.factor
    n, b, a, N = L.n, L.b, L.a, L.N
    rhs = np.asarray(rhs, dtype=np.float64)
    squeeze = rhs.ndim == 1
    if rhs.shape[0] != N:
        raise ValueError(f"rhs has leading dimension {rhs.shape[0]}, expected {N}")
    x = np.array(rhs.reshape(N, -1), copy=True)
    xb = x[: n * b].reshape(n, b, -1)
    xt = x[n * b :]
    if a:
        xt[...] = solve_lower_t(L.tip, xt)
    for i in range(n - 1, -1, -1):
        if a:
            xb[i] -= L.arrow[i].T @ xt
        if i + 1 < n:
            xb[i] -= L.lower[i].T @ xb[i + 1]
        xb[i] = solve_lower_t(L.diag[i], xb[i])
    return x[:, 0] if squeeze else x
