"""``pobtas`` — sequential triangular solve with a BTA Cholesky factor.

Solves ``A x = rhs`` given ``A = L L^T`` from :func:`repro.structured.pobtaf.pobtaf`
via a forward sweep ``L z = rhs`` followed by a backward sweep
``L^T x = z``.  INLA uses this to obtain the conditional mean
``mu = Qc^{-1} A^T D y`` in every objective-function evaluation
(paper Eq. 3/8) — it is roughly an order of magnitude cheaper than the
factorization itself (paper Sec. V-C).

``rhs`` may be a vector of length ``N`` or a block of ``k`` right-hand
sides ``(N, k)``; block solves are used by the predictive-sampling helpers.
Row-major ``(k, N)`` stacks — the sampling / smart-gradient layout — go
through :mod:`repro.structured.multirhs`, which drives the *same* panel
sweeps defined here, so the stacked and unstacked paths are bit-for-bit
identical at ``k = 1``.

On the batched path the per-block triangular solves become GEMMs against
the cached stacked inverses ``L[i,i]^{-1}`` (see
:meth:`repro.structured.pobtaf.BTACholesky.diag_inverses`), and the
arrow-row eliminations — which touch only the tip entry — are hoisted out
of the sweeps into single batched ``einsum``/GEMM updates over the whole
block stack.  With ``k`` right-hand sides every per-block operand widens
from a ``(b,)`` vector to a ``(b, k)`` panel, so the whole stack costs one
loop-carried pass instead of ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.structured import batched as bk
from repro.structured.kernels import solve_lower, solve_lower_t
from repro.structured.pobtaf import BTACholesky


def _prepare(chol: BTACholesky, rhs: np.ndarray, *, overwrite: bool = False):
    L = chol.factor
    n, b, N = L.n, L.b, L.N
    be = chol.get_backend()
    rhs = be.asarray(rhs)
    squeeze = rhs.ndim == 1
    if rhs.shape[0] != N:
        raise ValueError(f"rhs has leading dimension {rhs.shape[0]}, expected {N}")
    if overwrite and rhs.ndim > 1:
        x = rhs.reshape(N, -1)
    else:
        x = be.xp.array(rhs.reshape(N, -1), copy=True)
    return L, x, x[: n * b].reshape(n, b, -1), x[n * b :], squeeze


def _pobtas_blocked(L, xb, xt, a: int, n: int) -> None:
    """Reference per-block forward + backward sweeps (in place)."""
    # ---- forward sweep: L z = rhs --------------------------------------
    for i in range(n):
        if i > 0:
            xb[i] -= L.lower[i - 1] @ xb[i - 1]
        xb[i] = solve_lower(L.diag[i], xb[i])
        if a:
            xt -= L.arrow[i] @ xb[i]
    if a:
        xt[...] = solve_lower(L.tip, xt)

    # ---- backward sweep: L^T x = z --------------------------------------
    if a:
        xt[...] = solve_lower_t(L.tip, xt)
    for i in range(n - 1, -1, -1):
        if a:
            xb[i] -= L.arrow[i].T @ xt
        if i + 1 < n:
            xb[i] -= L.lower[i].T @ xb[i + 1]
        xb[i] = solve_lower_t(L.diag[i], xb[i])


def backward_sweep_panels(chol: BTACholesky, xb, xt, a: int, n: int) -> None:
    """``L^T x = z`` with GEMMs against the cached inverses (in place).

    ``xb`` is the ``(n, b, k)`` panel view of the right-hand sides and
    ``xt`` the ``(a, k)`` tip panel; ``k`` is arbitrary, so a whole RHS
    stack rides one loop-carried pass.  The tip back-propagation reads
    only the (final) tip solution, so it runs as one flat GEMM instead of
    n per-block panel updates.
    """
    L = chol.factor
    inv = chol.diag_inverses()
    lw = L.lower
    if a:
        xt[...] = bk.solve_lower_t_block(L.tip, xt, backend=chol.get_backend())
        x_flat = xb.reshape(n * L.b, -1)
        x_flat -= chol.arrow_flat().T @ xt
    cur = inv[n - 1].T @ xb[n - 1]
    xb[n - 1] = cur
    for i in range(n - 2, -1, -1):
        cur = inv[i].T @ (xb[i] - lw[i].T @ cur)
        xb[i] = cur


def forward_sweep_panels(chol: BTACholesky, xb, xt, a: int, n: int) -> None:
    """``L z = rhs`` on ``(b, k)`` panels (in place): GEMM against cached
    ``L[i,i]^{-1}``; arrow terms applied as single stacked updates outside
    the loop-carried chain."""
    L = chol.factor
    inv = chol.diag_inverses()
    lw = L.lower
    cur = inv[0] @ xb[0]
    xb[0] = cur
    for i in range(1, n):
        cur = inv[i] @ (xb[i] - lw[i - 1] @ cur)
        xb[i] = cur
    if a:
        # The arrow eliminations only accumulate onto the tip entry: one
        # GEMM of the flat arrow row against the solved stack.
        xt -= chol.arrow_flat() @ xb.reshape(n * L.b, -1)
        xt[...] = bk.solve_lower_block(L.tip, xt, backend=chol.get_backend())


def _pobtas_batched(chol: BTACholesky, xb, xt, a: int, n: int) -> None:
    """Batched sweeps: one forward + one backward panel pass."""
    forward_sweep_panels(chol, xb, xt, a, n)
    backward_sweep_panels(chol, xb, xt, a, n)


def pobtas(
    chol: BTACholesky,
    rhs: np.ndarray,
    *,
    overwrite: bool = False,
    batched: bool | None = None,
) -> np.ndarray:
    """Solve ``A x = rhs`` using the BTA Cholesky factor ``chol``."""
    L, x, xb, xt, squeeze = _prepare(chol, rhs, overwrite=overwrite)
    if batched_enabled(batched, chol.get_backend()):
        _pobtas_batched(chol, xb, xt, L.a, L.n)
    else:
        _pobtas_blocked(L, xb, xt, L.a, L.n)
    return x[:, 0] if squeeze else x


def pobtas_lt(
    chol: BTACholesky, rhs: np.ndarray, *, batched: bool | None = None
) -> np.ndarray:
    """Backward-only solve ``L^T x = rhs``.

    This is the GMRF sampling primitive: if ``z ~ N(0, I)`` then
    ``x = L^{-T} z ~ N(0, A^{-1})`` — used by the synthetic-data
    generators to draw exact samples from the model prior.
    """
    L, x, xb, xt, squeeze = _prepare(chol, rhs)
    n, a = L.n, L.a
    if batched_enabled(batched, chol.get_backend()):
        backward_sweep_panels(chol, xb, xt, a, n)
        return x[:, 0] if squeeze else x
    if a:
        xt[...] = solve_lower_t(L.tip, xt)
    for i in range(n - 1, -1, -1):
        if a:
            xb[i] -= L.arrow[i].T @ xt
        if i + 1 < n:
            xb[i] -= L.lower[i].T @ xb[i + 1]
        xb[i] = solve_lower_t(L.diag[i], xb[i])
    return x[:, 0] if squeeze else x
