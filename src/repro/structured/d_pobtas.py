"""``d_pobtas`` — distributed triangular solve (the paper's P POBTAS).

Serinv ships distributed factorization and selected inversion but *not* a
distributed triangular solve; the paper contributes this routine
(Sec. IV-E) using the same nested-dissection scheme as ``d_pobtaf``:

1. every rank forward-eliminates its interior right-hand-side entries,
   accumulating updates onto its boundary entries and a tip delta;
2. tip deltas are summed with an ``Allreduce``, boundary entries are
   ``Allgather``-ed into the reduced right-hand side;
3. the reduced BTA system is solved redundantly with the sequential
   ``pobtas``;
4. every rank back-substitutes its interior using the boundary solutions.

The routine is roughly an order of magnitude cheaper than factorization
(``O(n b^2)`` vs ``O(n b^3)`` per right-hand side), which is why the paper
observes it reacts *worse* to load balancing tuned for the ``b^3`` kernels
(Fig. 5 discussion).

On the batched path the interior sweeps run as GEMMs against the cached
``L[j,j]^{-1}`` stack, and every update that targets a *fixed* entry (the
tip delta, the top-boundary fill accumulation, and the back-propagation of
the boundary/tip solutions) is hoisted out of the loop-carried chain into
one batched ``einsum``/GEMM over the whole interior stack.
"""

from __future__ import annotations

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.comm.communicator import Communicator
from repro.structured import batched as bk
from repro.structured.d_pobtaf import DistributedFactors
from repro.structured.kernels import solve_lower, solve_lower_t
from repro.structured.pobtas import pobtas, pobtas_lt


def _forward_blocked(factors: DistributedFactors, rb, tip_delta, a: int, m: int) -> None:
    if factors.part.is_first:
        for i in range(m):
            rb[i] = solve_lower(factors.ldiag[i], rb[i])
            rb[i + 1] -= factors.lnext[i] @ rb[i]
            if a:
                tip_delta -= factors.larrow[i] @ rb[i]
    else:
        for i in range(m):
            j = i + 1  # local index of the interior block
            rb[j] = solve_lower(factors.ldiag[i], rb[j])
            rb[j + 1] -= factors.lnext[i] @ rb[j]
            rb[0] -= factors.lfill[i] @ rb[j]
            if a:
                tip_delta -= factors.larrow[i] @ rb[j]


def _forward_batched(factors: DistributedFactors, rb, tip_delta, a: int, m: int) -> None:
    inv = factors.ldiag_inverses()
    first = factors.part.is_first
    off = 0 if first else 1  # interiors live at rb[off : off + m]
    for i in range(m):
        j = i + off
        rb[j] = inv[i] @ rb[j]
        rb[j + 1] -= factors.lnext[i] @ rb[j]
    solved = rb[off : off + m]
    if not first and m:
        # Fill-column accumulation onto the (fixed) top boundary entry:
        # one batched contraction over the whole solved interior stack.
        rb[0] -= np.einsum("ibc,ick->bk", factors.lfill, solved)
    if a and m:
        tip_delta -= np.einsum("iab,ibk->ak", factors.larrow, solved)


def _backward_blocked(factors: DistributedFactors, x, x_tip, a: int, m: int) -> None:
    if factors.part.is_first:
        for i in range(m - 1, -1, -1):
            acc = x[i] - factors.lnext[i].T @ x[i + 1]
            if a:
                acc -= factors.larrow[i].T @ x_tip
            x[i] = solve_lower_t(factors.ldiag[i], acc)
    else:
        for i in range(m - 1, -1, -1):
            j = i + 1
            acc = x[j] - factors.lnext[i].T @ x[j + 1] - factors.lfill[i].T @ x[0]
            if a:
                acc -= factors.larrow[i].T @ x_tip
            x[j] = solve_lower_t(factors.ldiag[i], acc)


def _backward_batched(factors: DistributedFactors, x, x_tip, a: int, m: int) -> None:
    inv_t = factors.ldiag_inverses().transpose(0, 2, 1)
    first = factors.part.is_first
    off = 0 if first else 1
    if m == 0:
        return
    interior = x[off : off + m]
    # The boundary/tip solutions are fixed during the backward sweep, so
    # their propagation into the interior batches across the whole stack.
    if a:
        interior -= bk.batched_gemm(
            factors.larrow.transpose(0, 2, 1), x_tip[None, :, :]
        )
    if not first:
        interior -= bk.batched_gemm(
            factors.lfill.transpose(0, 2, 1), x[0][None, :, :]
        )
    for i in range(m - 1, -1, -1):
        j = i + off
        x[j] = inv_t[i] @ (x[j] - factors.lnext[i].T @ x[j + 1])


def d_pobtas(
    factors: DistributedFactors,
    rhs_local: np.ndarray,
    rhs_tip: np.ndarray,
    comm: Communicator,
    *,
    batched: bool | None = None,
) -> tuple:
    """Solve ``A x = rhs`` with distributed factors (collective over ``comm``).

    Parameters
    ----------
    factors:
        This rank's :class:`DistributedFactors` from ``d_pobtaf``.
    rhs_local:
        This rank's slice of the right-hand side, shape ``(nl * b,)`` or
        ``(nl * b, k)`` where ``nl`` is the partition's block count.
    rhs_tip:
        The arrow-tip right-hand side, replicated on every rank,
        shape ``(a,)`` or ``(a, k)``.
    batched:
        Force the batched (True) or per-block reference (False) path;
        None consults the ``REPRO_BATCHED`` environment switch.

    Returns
    -------
    (x_local, x_tip):
        This rank's solution slice (same shape as ``rhs_local``) and the
        tip solution (identical on every rank).
    """
    part, b, a = factors.part, factors.b, factors.a
    nl = part.n_blocks
    m = factors.n_interior
    use_batched = batched_enabled(batched)

    rhs_local = np.asarray(rhs_local, dtype=np.float64)
    rhs_tip = np.asarray(rhs_tip, dtype=np.float64)
    squeeze = rhs_local.ndim == 1
    if rhs_local.shape[0] != nl * b:
        raise ValueError(f"rhs_local leading dim {rhs_local.shape[0]} != {nl * b}")
    r = np.array(rhs_local.reshape(nl * b, -1), copy=True)
    k = r.shape[1]
    rb = r.reshape(nl, b, k)
    tip_delta = np.zeros((a, k))

    # ---- forward: eliminate interior unknowns ---------------------------
    if use_batched:
        _forward_batched(factors, rb, tip_delta, a, m)
    else:
        _forward_blocked(factors, rb, tip_delta, a, m)

    # ---- reduced right-hand side ----------------------------------------
    if a:
        tip_sum = comm.Allreduce(tip_delta)
        rt = rhs_tip.reshape(a, -1) + tip_sum
    else:
        comm.Allreduce(tip_delta)  # keep the collective schedule uniform
        rt = np.zeros((0, k))

    r_red = _gather_reduced_rhs(factors, rb, rt, comm)

    x_red = pobtas(factors.reduced_chol, r_red, batched=use_batched)

    # ---- backward: recover interior unknowns -----------------------------
    x = rb  # solve in place; boundary slots receive the reduced solution
    x_tip = _scatter_reduced_solution(factors, x, x_red)

    if use_batched:
        _backward_batched(factors, x, x_tip, a, m)
    else:
        _backward_blocked(factors, x, x_tip, a, m)

    x_local = x.reshape(nl * b, k)
    if squeeze:
        return x_local[:, 0], x_tip[:, 0]
    return x_local, x_tip


def _boundary_panels(factors: DistributedFactors, rb: np.ndarray) -> np.ndarray:
    """This rank's boundary rows of ``rb`` (the Allgather payload)."""
    pos_top, pos_bottom = factors.positions
    if pos_top is None or pos_top == pos_bottom:
        return rb[-1]
    return np.concatenate([rb[0], rb[-1]], axis=0)


def _reduced_from_gathered(
    factors: DistributedFactors, gathered: list, rt: np.ndarray, k: int
) -> np.ndarray:
    """Scatter gathered boundary pieces into the ``(mr b + a, k)`` reduced RHS."""
    b, a = factors.b, factors.a
    mr = factors.reduced.m
    r_red = np.zeros((mr * b + a, k))
    for p, piece in enumerate(gathered):
        top, bottom = factors.reduced.positions[p]
        if top is None or top == bottom:
            r_red[bottom * b : (bottom + 1) * b] = piece
        else:
            r_red[top * b : (top + 1) * b] = piece[:b]
            r_red[bottom * b : (bottom + 1) * b] = piece[b:]
    if a:
        r_red[mr * b :] = rt
    return r_red


def _gather_reduced_rhs(
    factors: DistributedFactors, rb: np.ndarray, rt: np.ndarray, comm: Communicator
) -> np.ndarray:
    """Allgather the per-rank boundary entries into the reduced RHS.

    ``rb`` is this rank's ``(nl, b, k)`` right-hand-side panels (boundary
    slots carry the boundary entries) and ``rt`` the ``(a, k)`` tip RHS
    (identical on every rank).  One collective per call, whatever ``k``.
    """
    gathered = comm.Allgather(np.ascontiguousarray(_boundary_panels(factors, rb)))
    return _reduced_from_gathered(factors, gathered, rt, rb.shape[-1])


def _scatter_reduced_solution(
    factors: DistributedFactors, x: np.ndarray, x_red: np.ndarray
) -> np.ndarray:
    """Place this rank's boundary slots from the reduced solution.

    Writes the top/bottom boundary panels of ``x`` in place and returns
    the ``(a, k)`` tip solution (identical on every rank).
    """
    b = factors.b
    pos_top, pos_bottom = factors.positions
    if pos_top is not None:
        x[0] = x_red[pos_top * b : (pos_top + 1) * b]
    x[-1] = x_red[pos_bottom * b : (pos_bottom + 1) * b]
    return x_red[factors.reduced.m * b :]


def d_pobtas_lt(
    factors: DistributedFactors,
    rhs_local: np.ndarray,
    rhs_tip: np.ndarray,
    comm: Communicator,
    *,
    batched: bool | None = None,
) -> tuple:
    """Backward-only distributed solve ``L^T x = rhs`` (collective).

    The distributed sampling primitive (paper's S3-scale analogue of
    :func:`repro.structured.pobtas.pobtas_lt`): with ``z ~ N(0, I)`` the
    solution ``x = L^{-T} z`` is an exact draw from ``N(0, A^{-1})``.
    Here ``L`` is the *nested-dissection* Cholesky factor of the
    symmetrically permuted matrix (interiors first, boundaries last), so
    the solution differs sample-by-sample from the sequential
    ``pobtas_lt`` — but its covariance is exactly ``A^{-1}``, which is the
    sampling contract (``x^T A x = z^T z`` holds identically; see
    ``tests/structured/test_distributed_lt.py``).

    The sweep needs a single ``Allgather`` (of the boundary right-hand
    sides) per call — one collective round for a whole ``(nl b, k)``
    stack: in the permuted ordering ``L^T`` is upper-triangular with the
    boundary block last, so the reduced system solves first
    (redundantly, via the sequential ``pobtas_lt``) and the interiors
    back-substitute without further communication.

    Parameters mirror :func:`d_pobtas`; returns ``(x_local, x_tip)``.
    """
    part, b, a = factors.part, factors.b, factors.a
    nl = part.n_blocks
    m = factors.n_interior
    use_batched = batched_enabled(batched)

    rhs_local = np.asarray(rhs_local, dtype=np.float64)
    rhs_tip = np.asarray(rhs_tip, dtype=np.float64)
    squeeze = rhs_local.ndim == 1
    if rhs_local.shape[0] != nl * b:
        raise ValueError(f"rhs_local leading dim {rhs_local.shape[0]} != {nl * b}")
    r = np.array(rhs_local.reshape(nl * b, -1), copy=True)
    k = r.shape[1]
    rb = r.reshape(nl, b, k)
    rt = rhs_tip.reshape(a, -1) if a else np.zeros((0, k))

    # ---- reduced system first: (L^T)[B, B] = L_red^T is the trailing
    # block of the permuted upper-triangular system, so the boundary/tip
    # unknowns close without any interior contribution.
    r_red = _gather_reduced_rhs(factors, rb, rt, comm)
    x_red = pobtas_lt(factors.reduced_chol, r_red, batched=use_batched)

    # ---- interiors: pure local back-substitution against the boundary
    # and tip solutions (no further collectives).
    x = rb
    x_tip = _scatter_reduced_solution(factors, x, x_red)
    if use_batched:
        _backward_batched(factors, x, x_tip, a, m)
    else:
        _backward_blocked(factors, x, x_tip, a, m)

    x_local = x.reshape(nl * b, k)
    if squeeze:
        return x_local[:, 0], x_tip[:, 0]
    return x_local, x_tip


def _lane_views(rhs_local: np.ndarray, rhs_tip: np.ndarray, widths, nl_b: int, a: int):
    """Split column-concatenated lanes back into per-lane contiguous copies.

    Each lane is copied out at its *own* width: the GEMM panel shapes —
    and therefore the floating-point bits — of every per-lane sweep then
    match the standalone :func:`d_pobtas` call on that lane exactly,
    which is the lanes contract the tests assert.
    """
    rhs_local = np.asarray(rhs_local, dtype=np.float64)
    rhs_tip = np.asarray(rhs_tip, dtype=np.float64)
    widths = [int(w) for w in widths]
    K = sum(widths)
    if rhs_local.shape != (nl_b, K):
        raise ValueError(f"rhs_local must be ({nl_b}, {K}), got {rhs_local.shape}")
    if rhs_tip.shape != (a, K):
        raise ValueError(f"rhs_tip must be ({a}, {K}), got {rhs_tip.shape}")
    locs, tips, off = [], [], 0
    for w in widths:
        locs.append(np.array(rhs_local[:, off : off + w], order="C", copy=True))
        tips.append(np.array(rhs_tip[:, off : off + w], order="C", copy=True))
        off += w
    return locs, tips, widths, K


def d_pobtas_lanes(
    factors: DistributedFactors,
    rhs_local: np.ndarray,
    rhs_tip: np.ndarray,
    comm: Communicator,
    widths,
    *,
    batched: bool | None = None,
) -> tuple:
    """Multi-lane distributed solve: one collective round for many stacks.

    ``rhs_local`` is the column concatenation of several independent
    right-hand-side stacks ("lanes") of widths ``widths`` — this rank's
    slices — and ``rhs_tip`` the matching ``(a, sum(widths))`` tip block.
    Each lane's interior sweeps and reduced-system solve run at the
    lane's *exact* width (bit-identical to a standalone :func:`d_pobtas`
    per lane: the collectives are element-wise/concatenating, so a
    column's bits never depend on its neighbors), but the tip-delta
    ``Allreduce`` and the boundary ``Allgather`` each fire ONCE for the
    whole lane set instead of once per lane — the k-collectives-to-one
    batching of the serving sweep groups.

    Returns ``(x_local, x_tip)`` in the same column-concatenated layout.
    """
    part, b, a = factors.part, factors.b, factors.a
    nl = part.n_blocks
    m = factors.n_interior
    use_batched = batched_enabled(batched)
    locs, tips, widths, K = _lane_views(rhs_local, rhs_tip, widths, nl * b, a)

    # ---- forward: per-lane interior elimination (local, exact widths) ---
    rbs, tip_deltas = [], []
    for r in locs:
        rb = r.reshape(nl, b, -1)
        tip_delta = np.zeros((a, rb.shape[-1]))
        if use_batched:
            _forward_batched(factors, rb, tip_delta, a, m)
        else:
            _forward_blocked(factors, rb, tip_delta, a, m)
        rbs.append(rb)
        tip_deltas.append(tip_delta)

    # ---- ONE Allreduce for every lane's tip delta -----------------------
    tip_all = comm.Allreduce(np.ascontiguousarray(np.concatenate(tip_deltas, axis=1)))
    rts = []
    off = 0
    for rt, w in zip(tips, widths):
        rts.append(rt + tip_all[:, off : off + w] if a else np.zeros((0, w)))
        off += w

    # ---- ONE Allgather for every lane's boundary panels -----------------
    mine = np.concatenate([_boundary_panels(factors, rb) for rb in rbs], axis=1)
    gathered = comm.Allgather(np.ascontiguousarray(mine))

    # ---- per-lane reduced solve + backward sweep (local, exact widths) --
    xls, xts = [], []
    off = 0
    for rb, rt, w in zip(rbs, rts, widths):
        piece = [np.array(g[:, off : off + w], order="C", copy=True) for g in gathered]
        r_red = _reduced_from_gathered(factors, piece, rt, w)
        x_red = pobtas(factors.reduced_chol, r_red, batched=use_batched)
        x = rb
        x_tip = _scatter_reduced_solution(factors, x, x_red)
        if use_batched:
            _backward_batched(factors, x, x_tip, a, m)
        else:
            _backward_blocked(factors, x, x_tip, a, m)
        xls.append(x.reshape(nl * b, w))
        xts.append(x_tip)
        off += w
    return np.concatenate(xls, axis=1), np.concatenate(xts, axis=1)


def d_pobtas_lt_lanes(
    factors: DistributedFactors,
    rhs_local: np.ndarray,
    rhs_tip: np.ndarray,
    comm: Communicator,
    widths,
    *,
    batched: bool | None = None,
) -> tuple:
    """Multi-lane backward-only distributed solve (one Allgather total).

    The ``L^T`` sibling of :func:`d_pobtas_lanes` — no forward sweep, no
    Allreduce; the single boundary ``Allgather`` carries every lane.
    Per-lane math at exact widths, bit-identical to standalone
    :func:`d_pobtas_lt` calls.
    """
    part, b, a = factors.part, factors.b, factors.a
    nl = part.n_blocks
    m = factors.n_interior
    use_batched = batched_enabled(batched)
    locs, tips, widths, K = _lane_views(rhs_local, rhs_tip, widths, nl * b, a)

    rbs = [r.reshape(nl, b, -1) for r in locs]
    rts = [rt if a else np.zeros((0, w)) for rt, w in zip(tips, widths)]

    mine = np.concatenate([_boundary_panels(factors, rb) for rb in rbs], axis=1)
    gathered = comm.Allgather(np.ascontiguousarray(mine))

    xls, xts = [], []
    off = 0
    for rb, rt, w in zip(rbs, rts, widths):
        piece = [np.array(g[:, off : off + w], order="C", copy=True) for g in gathered]
        r_red = _reduced_from_gathered(factors, piece, rt, w)
        x_red = pobtas_lt(factors.reduced_chol, r_red, batched=use_batched)
        x = rb
        x_tip = _scatter_reduced_solution(factors, x, x_red)
        if use_batched:
            _backward_batched(factors, x, x_tip, a, m)
        else:
            _backward_blocked(factors, x, x_tip, a, m)
        xls.append(x.reshape(nl * b, w))
        xts.append(x_tip)
        off += w
    return np.concatenate(xls, axis=1), np.concatenate(xts, axis=1)
