"""``d_pobtas`` — distributed triangular solve (the paper's P POBTAS).

Serinv ships distributed factorization and selected inversion but *not* a
distributed triangular solve; the paper contributes this routine
(Sec. IV-E) using the same nested-dissection scheme as ``d_pobtaf``:

1. every rank forward-eliminates its interior right-hand-side entries,
   accumulating updates onto its boundary entries and a tip delta;
2. tip deltas are summed with an ``Allreduce``, boundary entries are
   ``Allgather``-ed into the reduced right-hand side;
3. the reduced BTA system is solved redundantly with the sequential
   ``pobtas``;
4. every rank back-substitutes its interior using the boundary solutions.

The routine is roughly an order of magnitude cheaper than factorization
(``O(n b^2)`` vs ``O(n b^3)`` per right-hand side), which is why the paper
observes it reacts *worse* to load balancing tuned for the ``b^3`` kernels
(Fig. 5 discussion).
"""

from __future__ import annotations

import numpy as np

from repro.comm.communicator import Communicator
from repro.structured.d_pobtaf import DistributedFactors
from repro.structured.kernels import solve_lower, solve_lower_t
from repro.structured.pobtas import pobtas


def d_pobtas(
    factors: DistributedFactors,
    rhs_local: np.ndarray,
    rhs_tip: np.ndarray,
    comm: Communicator,
) -> tuple:
    """Solve ``A x = rhs`` with distributed factors (collective over ``comm``).

    Parameters
    ----------
    factors:
        This rank's :class:`DistributedFactors` from ``d_pobtaf``.
    rhs_local:
        This rank's slice of the right-hand side, shape ``(nl * b,)`` or
        ``(nl * b, k)`` where ``nl`` is the partition's block count.
    rhs_tip:
        The arrow-tip right-hand side, replicated on every rank,
        shape ``(a,)`` or ``(a, k)``.

    Returns
    -------
    (x_local, x_tip):
        This rank's solution slice (same shape as ``rhs_local``) and the
        tip solution (identical on every rank).
    """
    part, b, a = factors.part, factors.b, factors.a
    nl = part.n_blocks
    m = factors.n_interior

    rhs_local = np.asarray(rhs_local, dtype=np.float64)
    rhs_tip = np.asarray(rhs_tip, dtype=np.float64)
    squeeze = rhs_local.ndim == 1
    if rhs_local.shape[0] != nl * b:
        raise ValueError(f"rhs_local leading dim {rhs_local.shape[0]} != {nl * b}")
    r = np.array(rhs_local.reshape(nl * b, -1), copy=True)
    k = r.shape[1]
    rb = r.reshape(nl, b, k)
    tip_delta = np.zeros((a, k))

    # ---- forward: eliminate interior unknowns ---------------------------
    if part.is_first:
        for i in range(m):
            rb[i] = solve_lower(factors.ldiag[i], rb[i])
            rb[i + 1] -= factors.lnext[i] @ rb[i]
            if a:
                tip_delta -= factors.larrow[i] @ rb[i]
    else:
        for i in range(m):
            j = i + 1  # local index of the interior block
            rb[j] = solve_lower(factors.ldiag[i], rb[j])
            rb[j + 1] -= factors.lnext[i] @ rb[j]
            rb[0] -= factors.lfill[i] @ rb[j]
            if a:
                tip_delta -= factors.larrow[i] @ rb[j]

    # ---- reduced right-hand side ----------------------------------------
    if a:
        tip_sum = comm.Allreduce(tip_delta)
        rt = rhs_tip.reshape(a, -1) + tip_sum
    else:
        comm.Allreduce(tip_delta)  # keep the collective schedule uniform
        rt = np.zeros((0, k))

    pos_top, pos_bottom = factors.positions
    if pos_top is None or pos_top == pos_bottom:
        mine = rb[-1]
    else:
        mine = np.concatenate([rb[0], rb[-1]], axis=0)
    gathered = comm.Allgather(np.ascontiguousarray(mine))

    mr = factors.reduced.m
    r_red = np.zeros((mr * b + a, k))
    for p, piece in enumerate(gathered):
        top, bottom = factors.reduced.positions[p]
        if top is None or top == bottom:
            r_red[bottom * b : (bottom + 1) * b] = piece
        else:
            r_red[top * b : (top + 1) * b] = piece[:b]
            r_red[bottom * b : (bottom + 1) * b] = piece[b:]
    if a:
        r_red[mr * b :] = rt

    x_red = pobtas(factors.reduced_chol, r_red)
    x_tip = x_red[mr * b :]

    # ---- backward: recover interior unknowns -----------------------------
    x = rb  # solve in place; boundary slots receive the reduced solution
    if pos_top is not None:
        x[0] = x_red[pos_top * b : (pos_top + 1) * b]
    x[-1] = x_red[pos_bottom * b : (pos_bottom + 1) * b]

    if part.is_first:
        for i in range(m - 1, -1, -1):
            acc = x[i] - factors.lnext[i].T @ x[i + 1]
            if a:
                acc -= factors.larrow[i].T @ x_tip
            x[i] = solve_lower_t(factors.ldiag[i], acc)
    else:
        for i in range(m - 1, -1, -1):
            j = i + 1
            acc = x[j] - factors.lnext[i].T @ x[j + 1] - factors.lfill[i].T @ x[0]
            if a:
                acc -= factors.larrow[i].T @ x_tip
            x[j] = solve_lower_t(factors.ldiag[i], acc)

    x_local = x.reshape(nl * b, k)
    if squeeze:
        return x_local[:, 0], x_tip[:, 0]
    return x_local, x_tip
