"""Reduced (separator) system of the nested-dissection scheme.

Eliminating every partition's interior blocks leaves a system coupling only
the partition *boundary* blocks and the arrow tip.  With partitions
``p = 0..P-1`` the boundary blocks, in global order, are::

    [e_0,  s_1, e_1,  s_2, e_2,  ...,  s_{P-1}, e_{P-1}]

(``s_p``/``e_p`` = first/last block of partition ``p``; partition 0 has no
top boundary).  Consecutive boundary blocks are coupled either by an
original off-diagonal block (``e_p`` to ``s_{p+1} = e_p + 1``) or by the
fill block created through partition ``p``'s interior (``s_p`` to ``e_p``),
so the reduced system is itself a BTA matrix with ``2P - 1`` diagonal
blocks — this is what lets the same sequential kernels solve it.

Factorizing it is a collective concern: every rank needs the factor (the
backward/selected-inverse sweeps start from it), but the system is tiny
compared to the partitions, so the historical scheme — every rank runs
its own ``pobtaf`` on its own assembled copy — wastes ``P - 1``
factorizations per epoch and only looked free because ranks were
simulated threads.  :func:`factorize_reduced` replaces it: in ``shared``
mode (the default) rank 0 factorizes ONCE and broadcasts the factor's
block stacks; under the thread backend the broadcast is a zero-copy
reference hand-off, under the process/MPI backends it is one small
message instead of ``P`` redundant sweeps.  Both modes are bit-identical
— every rank assembled the same reduced matrix from the same ordered
contributions, and ``pobtaf`` is deterministic — so ``redundant``
(``REPRO_REDUCED=redundant``) remains available as an A/B reference.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.comm.communicator import Communicator
from repro.structured.bta import BTAMatrix
from repro.structured.partition import Partition


@dataclass
class BoundaryContribution:
    """Schur-complement data one partition contributes to the reduced system.

    All arrays are the partition's *updated* copies (original block plus
    accumulated Schur updates from the partition's interior elimination).
    """

    part: Partition
    #: updated top-boundary diagonal block ``A[s, s]`` (None for partition 0)
    diag_top: np.ndarray | None
    #: updated bottom-boundary diagonal block ``A[e, e]``
    diag_bottom: np.ndarray
    #: coupling ``A[e, s]`` through the interior (None for partition 0 and
    #: for single-boundary partitions)
    coupling: np.ndarray | None
    #: original inter-partition coupling ``A[s, s-1]`` (None for partition 0)
    lower_prev: np.ndarray | None
    #: updated arrow blocks ``A[t, s]`` / ``A[t, e]``
    arrow_top: np.ndarray | None
    arrow_bottom: np.ndarray
    #: this partition's Schur update to the arrow tip (a, a)
    tip_delta: np.ndarray


@dataclass
class ReducedSystem:
    """Assembled reduced BTA system plus the position bookkeeping."""

    matrix: BTAMatrix
    #: reduced position of each partition's (top, bottom) boundary;
    #: top is None for partition 0.
    positions: list

    @property
    def m(self) -> int:
        return self.matrix.n

    @classmethod
    def assemble(
        cls,
        contributions: list,
        tip_original: np.ndarray,
    ) -> "ReducedSystem":
        """Build the reduced BTA matrix from all partitions' contributions.

        ``contributions`` must be ordered by partition index.  The original
        tip is added exactly once; per-partition ``tip_delta`` updates are
        summed on top.
        """
        P = len(contributions)
        if P < 1:
            raise ValueError("need at least one contribution")
        b = contributions[0].diag_bottom.shape[0]
        a = tip_original.shape[0]
        m = 1 + sum(2 if c.part.index > 0 else 0 for c in contributions)
        # Single-boundary later partitions (top == bottom) contribute one block.
        for c in contributions[1:]:
            if c.part.n_blocks == 1:
                m -= 1

        diag = np.zeros((m, b, b))
        lower = np.zeros((max(m - 1, 0), b, b))
        arrow = np.zeros((m, a, b))
        tip = np.array(tip_original, copy=True)

        positions = []
        pos = 0
        for c in contributions:
            if c.part.index == 0:
                diag[pos] = c.diag_bottom
                arrow[pos] = c.arrow_bottom
                positions.append((None, pos))
                pos += 1
            else:
                # Coupling across the partition boundary: A[s_p, e_{p-1}].
                lower[pos - 1] = c.lower_prev
                if c.part.n_blocks == 1:
                    diag[pos] = c.diag_bottom
                    arrow[pos] = c.arrow_bottom
                    positions.append((pos, pos))
                    pos += 1
                else:
                    diag[pos] = c.diag_top
                    arrow[pos] = c.arrow_top
                    diag[pos + 1] = c.diag_bottom
                    arrow[pos + 1] = c.arrow_bottom
                    lower[pos] = c.coupling
                    positions.append((pos, pos + 1))
                    pos += 2
            tip += c.tip_delta
        assert pos == m, f"assembled {pos} reduced blocks, expected {m}"
        return cls(matrix=BTAMatrix(diag, lower, arrow, tip), positions=positions)


def reduced_mode(override: str | None = None) -> str:
    """Factorization scheme for the reduced system: ``shared`` (rank 0
    factorizes once and broadcasts) or ``redundant`` (every rank runs its
    own sweep, the legacy behavior).  ``REPRO_REDUCED`` sets the default."""
    mode = override if override is not None else (os.environ.get("REPRO_REDUCED", "") or "shared")
    if mode not in ("shared", "redundant"):
        raise ValueError(f"unknown reduced-system mode {mode!r} (shared|redundant)")
    return mode


def factorize_reduced(
    reduced: ReducedSystem,
    comm: Communicator,
    *,
    batched: bool | None = None,
    mode: str | None = None,
):
    """Factorize the reduced system once per *epoch*, not once per rank.

    Collective over ``comm``.  In ``shared`` mode rank 0 factorizes its
    assembled copy in place and broadcasts the factor's block stacks
    (``diag``/``lower``/``arrow``/``tip``); the other ranks wrap the
    received stacks in a :class:`~repro.structured.pobtaf.BTACholesky`
    without running a sweep.  Bit-identical to ``redundant`` mode because
    every rank assembled the identical reduced matrix.  Returns this
    rank's factor handle.
    """
    from repro.structured.pobtaf import BTACholesky, pobtaf

    use_batched = batched_enabled(batched)
    scheme = reduced_mode(mode)
    if scheme == "redundant" or comm.Get_size() == 1:
        return pobtaf(reduced.matrix, overwrite=True, batched=use_batched)
    if comm.Get_rank() == 0:
        chol = pobtaf(reduced.matrix, overwrite=True, batched=use_batched)
        f = chol.factor
        comm.bcast((f.diag, f.lower, f.arrow, f.tip), root=0)
        return chol
    diag, lower, arrow, tip = comm.bcast(None, root=0)
    return BTACholesky(BTAMatrix(diag, lower, arrow, tip))
