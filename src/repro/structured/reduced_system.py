"""Reduced (separator) system of the nested-dissection scheme.

Eliminating every partition's interior blocks leaves a system coupling only
the partition *boundary* blocks and the arrow tip.  With partitions
``p = 0..P-1`` the boundary blocks, in global order, are::

    [e_0,  s_1, e_1,  s_2, e_2,  ...,  s_{P-1}, e_{P-1}]

(``s_p``/``e_p`` = first/last block of partition ``p``; partition 0 has no
top boundary).  Consecutive boundary blocks are coupled either by an
original off-diagonal block (``e_p`` to ``s_{p+1} = e_p + 1``) or by the
fill block created through partition ``p``'s interior (``s_p`` to ``e_p``),
so the reduced system is itself a BTA matrix with ``2P - 1`` diagonal
blocks — this is what lets the same sequential kernels solve it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.structured.bta import BTAMatrix
from repro.structured.partition import Partition


@dataclass
class BoundaryContribution:
    """Schur-complement data one partition contributes to the reduced system.

    All arrays are the partition's *updated* copies (original block plus
    accumulated Schur updates from the partition's interior elimination).
    """

    part: Partition
    #: updated top-boundary diagonal block ``A[s, s]`` (None for partition 0)
    diag_top: np.ndarray | None
    #: updated bottom-boundary diagonal block ``A[e, e]``
    diag_bottom: np.ndarray
    #: coupling ``A[e, s]`` through the interior (None for partition 0 and
    #: for single-boundary partitions)
    coupling: np.ndarray | None
    #: original inter-partition coupling ``A[s, s-1]`` (None for partition 0)
    lower_prev: np.ndarray | None
    #: updated arrow blocks ``A[t, s]`` / ``A[t, e]``
    arrow_top: np.ndarray | None
    arrow_bottom: np.ndarray
    #: this partition's Schur update to the arrow tip (a, a)
    tip_delta: np.ndarray


@dataclass
class ReducedSystem:
    """Assembled reduced BTA system plus the position bookkeeping."""

    matrix: BTAMatrix
    #: reduced position of each partition's (top, bottom) boundary;
    #: top is None for partition 0.
    positions: list

    @property
    def m(self) -> int:
        return self.matrix.n

    @classmethod
    def assemble(
        cls,
        contributions: list,
        tip_original: np.ndarray,
    ) -> "ReducedSystem":
        """Build the reduced BTA matrix from all partitions' contributions.

        ``contributions`` must be ordered by partition index.  The original
        tip is added exactly once; per-partition ``tip_delta`` updates are
        summed on top.
        """
        P = len(contributions)
        if P < 1:
            raise ValueError("need at least one contribution")
        b = contributions[0].diag_bottom.shape[0]
        a = tip_original.shape[0]
        m = 1 + sum(2 if c.part.index > 0 else 0 for c in contributions)
        # Single-boundary later partitions (top == bottom) contribute one block.
        for c in contributions[1:]:
            if c.part.n_blocks == 1:
                m -= 1

        diag = np.zeros((m, b, b))
        lower = np.zeros((max(m - 1, 0), b, b))
        arrow = np.zeros((m, a, b))
        tip = np.array(tip_original, copy=True)

        positions = []
        pos = 0
        for c in contributions:
            if c.part.index == 0:
                diag[pos] = c.diag_bottom
                arrow[pos] = c.arrow_bottom
                positions.append((None, pos))
                pos += 1
            else:
                # Coupling across the partition boundary: A[s_p, e_{p-1}].
                lower[pos - 1] = c.lower_prev
                if c.part.n_blocks == 1:
                    diag[pos] = c.diag_bottom
                    arrow[pos] = c.arrow_bottom
                    positions.append((pos, pos))
                    pos += 1
                else:
                    diag[pos] = c.diag_top
                    arrow[pos] = c.arrow_top
                    diag[pos + 1] = c.diag_bottom
                    arrow[pos + 1] = c.arrow_bottom
                    lower[pos] = c.coupling
                    positions.append((pos, pos + 1))
                    pos += 2
            tip += c.tip_delta
        assert pos == m, f"assembled {pos} reduced blocks, expected {m}"
        return cls(matrix=BTAMatrix(diag, lower, arrow, tip), positions=positions)
