"""Stacked multi-RHS sweeps through the BTA solve stack.

The INLA workloads that dominate after the mode search — posterior
sampling, smart-gradient stencils, predictive variances — each push many
right-hand sides through the *same* BTA Cholesky factor.  The per-RHS
entry points (:func:`repro.structured.pobtas.pobtas` and friends) pay one
full loop-carried sweep per right-hand side; this module is the stacked
interface that amortizes them: a row-major ``(k, N)`` RHS stack costs one
forward + one backward pass in which every per-block operand is a
``(b, k)`` GEMM/TRSM panel against the cached per-factor triangular
inverses (``BTACholesky.diag_inverses`` / ``arrow_flat``).

Layout contract
---------------
Stacks are **row-major**: ``stack[j]`` is the ``j``-th right-hand side of
length ``N = n b + a``.  This is the natural layout of the consumers
(each posterior draw / stencil point is a row) and of
``rng.standard_normal((k, N))``.  Internally the stack is transposed once
into the ``(n, b, k)`` panel blocks the sweeps operate on — an ``O(k N)``
copy, negligible against the ``O(k n b^2)`` sweep — and transposed back
on return.  Non-contiguous and strided stacks are accepted.

Path contract
-------------
The batched path (default) drives the exact same panel-sweep kernels as
the unstacked solvers, so a stacked solve with ``k = 1`` is **bit-for-bit
identical** to the per-RHS entry point.  The reference path
(``REPRO_BATCHED=0`` or ``batched=False``) is defined as the *looped*
per-RHS solve — one full per-block sweep per row — which is both the
semantic baseline the tests compare against (1e-10) and the A/B baseline
of ``benchmarks/bench_multirhs.py``.
"""

from __future__ import annotations

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.backend.protocol import Backend, backend_for
from repro.comm.communicator import Communicator
from repro.structured.d_pobtaf import DistributedFactors
from repro.structured.d_pobtas import (
    d_pobtas,
    d_pobtas_lanes,
    d_pobtas_lt,
    d_pobtas_lt_lanes,
)
from repro.structured.pobtaf import BTACholesky
from repro.structured.pobtas import (
    backward_sweep_panels,
    forward_sweep_panels,
    pobtas,
    pobtas_lt,
)

__all__ = [
    "as_rhs_stack",
    "pobtas_stack",
    "pobtas_lt_stack",
    "d_pobtas_stack",
    "d_pobtas_lt_stack",
    "d_pobtas_stack_lanes",
    "d_pobtas_lt_stack_lanes",
]


def as_rhs_stack(stack: np.ndarray, N: int, *, backend: Backend | None = None) -> tuple:
    """Normalize a row-major RHS stack to ``(k, N)`` float64.

    A 1-D vector of length ``N`` is promoted to a ``k = 1`` stack; the
    returned flag records whether the caller should squeeze the result
    back to 1-D.  Strided / non-contiguous inputs are accepted (the panel
    transpose below copies anyway).  ``backend`` pins the array home
    (host stacks handed to a device factor cross H2D here).
    """
    be = backend if backend is not None else backend_for(stack)
    stack = be.asarray(stack)
    squeeze = stack.ndim == 1
    if squeeze:
        stack = stack[None, :]
    if stack.ndim != 2 or stack.shape[1] != N:
        raise ValueError(f"rhs stack must be (k, {N}), got {stack.shape}")
    return stack, squeeze


def _to_panels(chol: BTACholesky, stack: np.ndarray, workspace: np.ndarray | None) -> tuple:
    """``(k, N)`` stack -> contiguous ``(N, k)`` columns + panel views.

    Always copies the stack out of the caller's memory: the sweeps run in
    place on the returned buffer, and for degenerate shapes (``k = 1``)
    ``ascontiguousarray(stack.T)`` would alias it.  A ``workspace`` — a
    C-contiguous ``(N, k)`` buffer owned by a factor handle — is reused
    as that buffer, making the sweep allocation-free per call; results
    are copied out before return, so the buffer never escapes.
    """
    L = chol.factor
    n, b = L.n, L.b
    if workspace is not None and workspace.shape == (stack.shape[1], stack.shape[0]):
        cols = workspace
        cols[...] = stack.T
    else:
        cols = chol.get_backend().xp.array(stack.T, order="C", copy=True)
    return cols, cols[: n * b].reshape(n, b, -1), cols[n * b :]


def _from_panels(cols: np.ndarray, squeeze: bool, *, owned: bool) -> np.ndarray:
    xp = backend_for(cols).xp
    if squeeze:
        # cols[:, 0] aliases the sweep buffer; only safe to hand out when
        # the buffer was allocated for this call.
        return cols[:, 0] if owned else cols[:, 0].copy()
    if owned:
        return xp.ascontiguousarray(cols.T)
    # A reused workspace must never escape: for k = 1 the transposed
    # (1, N) view is already flagged contiguous, so ascontiguousarray
    # would return the alias — force the copy.
    return xp.array(cols.T, order="C", copy=True)


def pobtas_stack(
    chol: BTACholesky,
    stack: np.ndarray,
    *,
    batched: bool | None = None,
    workspace: np.ndarray | None = None,
) -> np.ndarray:
    """Solve ``A X^T = stack^T`` for a row-major ``(k, N)`` RHS stack.

    Returns the solutions in the same row-major layout.  On the batched
    path all ``k`` right-hand sides share one forward + one backward
    loop-carried pass; the reference path loops the per-RHS solver.
    ``workspace`` optionally supplies the ``(N, k)`` sweep buffer (see
    :class:`repro.structured.factor.BTAFactor`).
    """
    L = chol.factor
    stack, squeeze = as_rhs_stack(stack, L.N, backend=chol.get_backend())
    if stack.shape[0] == 0:
        return stack.copy()
    if not batched_enabled(batched, chol.get_backend()):
        out = np.stack([pobtas(chol, stack[j], batched=False) for j in range(stack.shape[0])])
        return out[0] if squeeze else out
    cols, xb, xt = _to_panels(chol, stack, workspace)
    forward_sweep_panels(chol, xb, xt, L.a, L.n)
    backward_sweep_panels(chol, xb, xt, L.a, L.n)
    return _from_panels(cols, squeeze, owned=cols is not workspace)


def pobtas_lt_stack(
    chol: BTACholesky,
    stack: np.ndarray,
    *,
    batched: bool | None = None,
    workspace: np.ndarray | None = None,
) -> np.ndarray:
    """Backward-only stacked solve ``L^T X^T = stack^T`` (row-major).

    The GMRF sampling primitive: ``k`` i.i.d. standard-normal rows become
    ``k`` exact draws from ``N(0, A^{-1})`` in one backward panel pass —
    this is what :class:`repro.inla.sampling.LatentPosterior` drives.
    """
    L = chol.factor
    stack, squeeze = as_rhs_stack(stack, L.N, backend=chol.get_backend())
    if stack.shape[0] == 0:
        return stack.copy()
    if not batched_enabled(batched, chol.get_backend()):
        out = np.stack(
            [pobtas_lt(chol, stack[j], batched=False) for j in range(stack.shape[0])]
        )
        return out[0] if squeeze else out
    cols, xb, xt = _to_panels(chol, stack, workspace)
    backward_sweep_panels(chol, xb, xt, L.a, L.n)
    return _from_panels(cols, squeeze, owned=cols is not workspace)


def d_pobtas_stack(
    factors: DistributedFactors,
    stack_local: np.ndarray,
    stack_tip: np.ndarray,
    comm: Communicator,
    *,
    batched: bool | None = None,
) -> tuple:
    """Row-major stacked interface to the distributed solve (P POBTAS).

    ``stack_local`` is ``(k, nl b)`` — this rank's slice of every RHS —
    and ``stack_tip`` the replicated ``(k, a)`` tip stack.  Internally the
    stacks are transposed once into the column panels ``d_pobtas``
    already batches over, so the interior sweeps, the reduced-system
    solve, and every collective carry all ``k`` right-hand sides in one
    pass (one Allreduce / Allgather for the whole stack instead of k).
    """
    nl_b = factors.part.n_blocks * factors.b
    stack_local, squeeze = as_rhs_stack(stack_local, nl_b)
    stack_tip, _ = as_rhs_stack(stack_tip, factors.a)
    if stack_tip.shape[0] != stack_local.shape[0]:
        raise ValueError(
            f"tip stack height {stack_tip.shape[0]} != rhs stack height {stack_local.shape[0]}"
        )
    xl, xt = d_pobtas(
        factors,
        np.ascontiguousarray(stack_local.T),
        np.ascontiguousarray(stack_tip.T),
        comm,
        batched=batched,
    )
    if squeeze:
        return xl[:, 0], xt[:, 0]
    return np.ascontiguousarray(xl.T), np.ascontiguousarray(xt.T)


def d_pobtas_lt_stack(
    factors: DistributedFactors,
    stack_local: np.ndarray,
    stack_tip: np.ndarray,
    comm: Communicator,
    *,
    batched: bool | None = None,
) -> tuple:
    """Row-major stacked interface to the distributed ``L^T`` solve.

    The S3-scale sampling primitive: ``k`` standard-normal rows become
    ``k`` exact draws from ``N(0, A^{-1})`` (``L`` is the
    nested-dissection factor — see
    :func:`repro.structured.d_pobtas.d_pobtas_lt`) with **one**
    ``Allgather`` round for the whole stack instead of one per draw.
    ``stack_local`` is ``(k, nl b)`` — this rank's slice of every RHS —
    and ``stack_tip`` the replicated ``(k, a)`` tip stack.
    """
    nl_b = factors.part.n_blocks * factors.b
    stack_local, squeeze = as_rhs_stack(stack_local, nl_b)
    stack_tip, _ = as_rhs_stack(stack_tip, factors.a)
    if stack_tip.shape[0] != stack_local.shape[0]:
        raise ValueError(
            f"tip stack height {stack_tip.shape[0]} != rhs stack height {stack_local.shape[0]}"
        )
    xl, xt = d_pobtas_lt(
        factors,
        np.ascontiguousarray(stack_local.T),
        np.ascontiguousarray(stack_tip.T),
        comm,
        batched=batched,
    )
    if squeeze:
        return xl[:, 0], xt[:, 0]
    return np.ascontiguousarray(xl.T), np.ascontiguousarray(xt.T)


def _lanes_to_cols(stacks_local: list, stacks_tip: list, nl_b: int, a: int) -> tuple:
    """Row-major lane stacks -> column-concatenated panels + widths."""
    if len(stacks_local) != len(stacks_tip):
        raise ValueError("need one tip stack per local stack")
    widths, loc_cols, tip_cols = [], [], []
    for sl, st in zip(stacks_local, stacks_tip):
        sl, _ = as_rhs_stack(sl, nl_b)
        st, _ = as_rhs_stack(st, a)
        if st.shape[0] != sl.shape[0]:
            raise ValueError(
                f"tip stack height {st.shape[0]} != rhs stack height {sl.shape[0]}"
            )
        widths.append(sl.shape[0])
        loc_cols.append(sl.T)
        tip_cols.append(st.T)
    return (
        np.ascontiguousarray(np.concatenate(loc_cols, axis=1)),
        np.ascontiguousarray(np.concatenate(tip_cols, axis=1)),
        widths,
    )


def _cols_to_lanes(xl: np.ndarray, xt: np.ndarray, widths: list) -> list:
    """Column-concatenated solutions -> per-lane row-major ``(k_i, ...)``."""
    out, off = [], 0
    for w in widths:
        out.append(
            (
                np.ascontiguousarray(xl[:, off : off + w].T),
                np.ascontiguousarray(xt[:, off : off + w].T),
            )
        )
        off += w
    return out


def d_pobtas_stack_lanes(
    factors: DistributedFactors,
    stacks_local: list,
    stacks_tip: list,
    comm: Communicator,
    *,
    batched: bool | None = None,
) -> list:
    """Row-major multi-lane interface to the distributed solve.

    ``stacks_local[i]`` is a ``(k_i, nl b)`` rank slice and
    ``stacks_tip[i]`` its replicated ``(k_i, a)`` tip stack.  All lanes
    share ONE Allreduce + ONE Allgather round
    (:func:`repro.structured.d_pobtas.d_pobtas_lanes`) while each lane's
    sweeps run at its exact width — the per-lane results are bit-identical
    to separate :func:`d_pobtas_stack` calls.  Returns a list of
    ``(x_local, x_tip)`` row-major pairs, in lane order.
    """
    nl_b = factors.part.n_blocks * factors.b
    cols_local, cols_tip, widths = _lanes_to_cols(stacks_local, stacks_tip, nl_b, factors.a)
    xl, xt = d_pobtas_lanes(factors, cols_local, cols_tip, comm, widths, batched=batched)
    return _cols_to_lanes(xl, xt, widths)


def d_pobtas_lt_stack_lanes(
    factors: DistributedFactors,
    stacks_local: list,
    stacks_tip: list,
    comm: Communicator,
    *,
    batched: bool | None = None,
) -> list:
    """Row-major multi-lane interface to the distributed ``L^T`` solve.

    One boundary ``Allgather`` for every lane (no Allreduce in the
    backward-only sweep); per-lane bits match separate
    :func:`d_pobtas_lt_stack` calls.  Returns ``(x_local, x_tip)``
    row-major pairs in lane order.
    """
    nl_b = factors.part.n_blocks * factors.b
    cols_local, cols_tip, widths = _lanes_to_cols(stacks_local, stacks_tip, nl_b, factors.a)
    xl, xt = d_pobtas_lt_lanes(factors, cols_local, cols_tip, comm, widths, batched=batched)
    return _cols_to_lanes(xl, xt, widths)
