"""``pobtaf`` — sequential Cholesky factorization of a BTA matrix.

Factorizes ``A = L L^T`` where ``A`` is symmetric positive definite with
block-tridiagonal-with-arrowhead structure.  The factor ``L`` inherits the
BTA sparsity exactly (no fill outside the pattern), which is what makes the
block-dense approach ``O(n b^3)`` instead of a general sparse
``O(fill)`` (paper Sec. IV-C, Table III):

    L[i, i]   — lower Cholesky factors of the Schur-complemented diagonals
    L[i+1, i] — sub-diagonal coupling factors
    L[t, i]   — arrow-row factors
    L[t, t]   — tip factor

Cost per diagonal block: one ``POTRF`` + two ``TRSM`` + three ``GEMM``-like
updates, i.e. ``O(n (b^3 + a b^2) + a^3)`` total.

Two execution paths (same math, same flop count — see
:mod:`repro.perfmodel.flops`):

- the per-block reference path, looping the SciPy kernels of
  :mod:`repro.structured.kernels` block by block;
- the batched path (default, ``REPRO_BATCHED=1``), which fuses the two
  TRSMs of each elimination step into one call on the stacked operand
  ``[lower; arrow]`` and all three Schur updates into a single GEMM
  ``G G^T``, and evaluates ``log det`` in one batched pass over the
  whole factor stack.  The Schur recurrence itself stays loop-carried —
  block ``i+1`` cannot be factorized before block ``i`` — but every
  per-step kernel goes through :mod:`repro.structured.batched`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.backend.protocol import Backend, backend_for
from repro import faults
from repro.structured import batched as bk
from repro.structured.bta import BTAMatrix
from repro.structured.kernels import (
    NotPositiveDefiniteError,
    chol_lower,
    logdet_from_chol_diag,
    right_solve_lower_t,
)


class _FactorizationCounter:
    """Thread-safe count of factorization *sweeps*.

    The handle API's amortization contract — one factorization feeding
    logdet, solves, selected inversion and sampling — is asserted by
    tests through this counter.  One ``pobtaf`` call counts one sweep; a
    theta-batched :func:`repro.structured.multifactor.factorize_batch`
    also counts **one** sweep however many stencil matrices it stacks
    (that single launch is the whole point), so the evaluator tests can
    assert both that batch stencils collapse ``2 (2 d + 1)`` sweeps into
    2 and that cache hits perform none at all.  The lock matters: S1/S2
    evaluate objectives from a thread pool.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def increment(self) -> None:
        with self._lock:
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count


#: Process-wide ``pobtaf`` call counter (monotonic; diff around a region
#: to count the factorizations it performed).
FACTORIZATIONS = _FactorizationCounter()


def _flatten_arrow(arrow: np.ndarray, *, backend: Backend | None = None) -> np.ndarray:
    """Arrow-row stack ``(n, a, b)`` as one contiguous ``(a, n b)`` matrix."""
    n, a, b = arrow.shape
    xp = (backend if backend is not None else backend_for(arrow)).xp
    return xp.ascontiguousarray(arrow.transpose(1, 0, 2)).reshape(a, n * b)


@dataclass
class BTACholesky:
    """Cholesky factor of a BTA matrix, stored in BTA block layout.

    ``factor.diag[i]`` is lower-triangular; ``factor.lower`` / ``factor.arrow``
    / ``factor.tip`` hold the corresponding factor blocks.
    """

    factor: BTAMatrix
    _diag_inv: np.ndarray | None = field(default=None, repr=False, compare=False)
    _arrow_flat: np.ndarray | None = field(default=None, repr=False, compare=False)
    #: Backend the factor's block stacks live on (resolved lazily from the
    #: arrays when not set at construction); threaded through every
    #: batched sweep so kernels never re-infer it per call.
    backend: Backend | None = field(default=None, repr=False, compare=False)

    def get_backend(self) -> Backend:
        if self.backend is None:
            self.backend = backend_for(self.factor.diag)
        return self.backend

    @property
    def n(self) -> int:
        return self.factor.n

    @property
    def b(self) -> int:
        return self.factor.b

    @property
    def a(self) -> int:
        return self.factor.a

    @property
    def N(self) -> int:
        return self.factor.N

    def diag_inverses(self) -> np.ndarray:
        """Stacked ``L[i,i]^{-1}`` ``(n, b, b)``, computed once and cached.

        The batched sweeps (``pobtas``/``pobtasi``) use these to express
        every per-block triangular solve as a batched GEMM.
        """
        if self._diag_inv is None:
            self._diag_inv = bk.batched_tri_inverse_lower(
                self.factor.diag, backend=self.get_backend()
            )
        return self._diag_inv

    def arrow_flat(self) -> np.ndarray:
        """The arrow row of ``L`` as one flat ``(a, n b)`` matrix, cached.

        Flattening turns the arrow eliminations of the batched sweeps —
        a reduction over the whole block stack — into a single GEMM
        against the (free, contiguous) flat view of the right-hand side.
        """
        if self._arrow_flat is None:
            self._arrow_flat = _flatten_arrow(
                self.factor.arrow, backend=self.get_backend()
            )
        return self._arrow_flat

    def logdet(self, *, batched: bool | None = None) -> float:
        """``log det A = 2 sum_i log diag(L)_i`` — the quantity INLA needs
        for every GMRF log-density evaluation (paper Eq. 1/3)."""
        be = self.get_backend()
        if bk.batched_enabled(batched, be):
            total = bk.batched_logdet_from_chol_diag(self.factor.diag, backend=be)
            if self.a:
                total += bk.batched_logdet_from_chol_diag(self.factor.tip, backend=be)
            return total
        total = 0.0
        for i in range(self.n):
            total += logdet_from_chol_diag(self.factor.diag[i])
        if self.a:
            total += logdet_from_chol_diag(self.factor.tip)
        return total

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` (delegates to :func:`repro.structured.pobtas.pobtas`)."""
        from repro.structured.pobtas import pobtas

        return pobtas(self, rhs)

    def selected_inverse(self) -> BTAMatrix:
        """Selected entries of ``A^{-1}`` (delegates to ``pobtasi``)."""
        from repro.structured.pobtasi import pobtasi

        return pobtasi(self)

    def to_dense(self) -> np.ndarray:
        """Dense lower-triangular factor (tests only)."""
        n, b, a = self.n, self.b, self.a
        out = np.zeros((self.N, self.N))
        for i in range(n):
            s = slice(i * b, (i + 1) * b)
            out[s, s] = np.tril(self.factor.diag[i])
            if i + 1 < n:
                out[(i + 1) * b : (i + 2) * b, s] = self.factor.lower[i]
            if a:
                out[n * b :, s] = self.factor.arrow[i]
        if a:
            out[n * b :, n * b :] = np.tril(self.factor.tip)
        return out


def _pobtaf_blocked(L: BTAMatrix) -> None:
    """Reference per-block elimination (in place) via the SciPy kernels."""
    n, a = L.n, L.a
    diag, lower, arrow, tip = L.diag, L.lower, L.arrow, L.tip

    for i in range(n):
        # Factorize the current (Schur-complemented) diagonal block.
        diag[i] = chol_lower(diag[i])
        li = diag[i]
        if i + 1 < n:
            # L[i+1, i] = A[i+1, i] L[i,i]^{-T}
            lower[i] = right_solve_lower_t(li, lower[i])
        if a:
            # L[t, i] = A[t, i] L[i,i]^{-T}
            arrow[i] = right_solve_lower_t(li, arrow[i])
        # Schur-complement the trailing blocks touched by column i.
        if i + 1 < n:
            diag[i + 1] -= lower[i] @ lower[i].T
            if a:
                arrow[i + 1] -= arrow[i] @ lower[i].T
        if a:
            tip -= arrow[i] @ arrow[i].T
    if a:
        tip[...] = chol_lower(tip)


def _pobtaf_batched(L: BTAMatrix) -> tuple[np.ndarray, np.ndarray | None]:
    """Batched elimination (in place) via the batched kernel layer.

    The block-tridiagonal chain runs first: per step one POTRF + one TRTRI
    (see :func:`repro.structured.batched.chol_and_inverse_block` for why
    the TRSMs become GEMMs against the explicit triangular inverse), one
    GEMM for ``L[i+1, i]`` and one GEMM for the Schur update.  The arrow
    row — which never feeds back into the chain — is deferred: its forward
    substitution against the finished BT factor runs as ``a x b`` GEMMs,
    and the tip Schur update collapses into a single batched contraction
    over the whole arrow stack (one kernel instead of ``n``).

    Returns ``(inv, arrow_flat)``: the stacked ``L[i,i]^{-1}`` by-product
    consumed by the sweeps via ``BTACholesky.diag_inverses``, and the flat
    arrow row (None when ``a == 0``) cached as ``BTACholesky.arrow_flat``.
    """
    n, a = L.n, L.a
    be = backend_for(L.diag)
    diag, lower, arrow, tip = L.diag, L.lower, L.arrow, L.tip
    inv = be.xp.empty_like(diag)

    def chol_inv(block):
        return bk.chol_and_inverse_block(block, backend=be)

    # ---- block-tridiagonal chain (loop-carried) -------------------------
    for i in range(n - 1):
        li, linv = chol_inv(diag[i])
        diag[i] = li
        inv[i] = linv
        G = lower[i] @ linv.T
        lower[i] = G
        diag[i + 1] -= G @ G.T
    li, linv = chol_inv(diag[n - 1])
    diag[n - 1] = li
    inv[n - 1] = linv

    # ---- arrow row: forward substitution against the BT factor ----------
    arrow_flat = None
    if a:
        cur = arrow[0] @ inv[0].T
        arrow[0] = cur
        for i in range(1, n):
            cur = (arrow[i] - cur @ lower[i - 1].T) @ inv[i].T
            arrow[i] = cur
        # Tip Schur update: one GEMM over the flattened arrow row (the
        # flat form is cached for the sweeps' arrow eliminations).
        arrow_flat = _flatten_arrow(arrow, backend=be)
        tip -= arrow_flat @ arrow_flat.T
        tip[...] = bk.chol_lower_block(tip, backend=be)
    return inv, arrow_flat


def pobtaf(
    A: BTAMatrix, *, overwrite: bool = False, batched: bool | None = None
) -> BTACholesky:
    """Factorize a symmetric positive definite BTA matrix ``A = L L^T``.

    Parameters
    ----------
    A:
        The matrix to factorize.  Only the lower-triangle blocks are read.
    overwrite:
        When True, ``A``'s storage is reused for the factor (the caller's
        matrix is destroyed).  This is the memory-lean mode used inside the
        INLA objective where ``Qp``/``Qc`` are rebuilt every evaluation.
    batched:
        Force the batched (True) or per-block reference (False) path;
        None consults the ``REPRO_BATCHED`` environment switch.

    Raises
    ------
    NotPositiveDefiniteError
        If any Schur-complemented diagonal block is not positive definite.
    """
    FACTORIZATIONS.increment()
    # Chaos hook: an injected NPD here (before any storage is touched)
    # exercises the audited jitter recovery chain in factorize().
    faults.fault_point(
        "structured.pobtaf",
        lambda: NotPositiveDefiniteError("injected fault at 'structured.pobtaf'"),
    )
    backend = backend_for(A.diag)
    L = A if overwrite else A.copy()
    if batched_enabled(batched, backend):
        inv, arrow_flat = _pobtaf_batched(L)
        return BTACholesky(
            factor=L, _diag_inv=inv, _arrow_flat=arrow_flat, backend=backend
        )
    _pobtaf_blocked(L)
    return BTACholesky(factor=L, backend=backend)
