"""``pobtaf`` — sequential Cholesky factorization of a BTA matrix.

Factorizes ``A = L L^T`` where ``A`` is symmetric positive definite with
block-tridiagonal-with-arrowhead structure.  The factor ``L`` inherits the
BTA sparsity exactly (no fill outside the pattern), which is what makes the
block-dense approach ``O(n b^3)`` instead of a general sparse
``O(fill)`` (paper Sec. IV-C, Table III):

    L[i, i]   — lower Cholesky factors of the Schur-complemented diagonals
    L[i+1, i] — sub-diagonal coupling factors
    L[t, i]   — arrow-row factors
    L[t, t]   — tip factor

Cost per diagonal block: one ``POTRF`` + two ``TRSM`` + three ``GEMM``-like
updates, i.e. ``O(n (b^3 + a b^2) + a^3)`` total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.structured.bta import BTAMatrix
from repro.structured.kernels import (
    chol_lower,
    logdet_from_chol_diag,
    right_solve_lower_t,
)


@dataclass
class BTACholesky:
    """Cholesky factor of a BTA matrix, stored in BTA block layout.

    ``factor.diag[i]`` is lower-triangular; ``factor.lower`` / ``factor.arrow``
    / ``factor.tip`` hold the corresponding factor blocks.
    """

    factor: BTAMatrix

    @property
    def n(self) -> int:
        return self.factor.n

    @property
    def b(self) -> int:
        return self.factor.b

    @property
    def a(self) -> int:
        return self.factor.a

    @property
    def N(self) -> int:
        return self.factor.N

    def logdet(self) -> float:
        """``log det A = 2 sum_i log diag(L)_i`` — the quantity INLA needs
        for every GMRF log-density evaluation (paper Eq. 1/3)."""
        total = 0.0
        for i in range(self.n):
            total += logdet_from_chol_diag(self.factor.diag[i])
        if self.a:
            total += logdet_from_chol_diag(self.factor.tip)
        return total

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` (delegates to :func:`repro.structured.pobtas.pobtas`)."""
        from repro.structured.pobtas import pobtas

        return pobtas(self, rhs)

    def selected_inverse(self) -> BTAMatrix:
        """Selected entries of ``A^{-1}`` (delegates to ``pobtasi``)."""
        from repro.structured.pobtasi import pobtasi

        return pobtasi(self)

    def to_dense(self) -> np.ndarray:
        """Dense lower-triangular factor (tests only)."""
        n, b, a = self.n, self.b, self.a
        out = np.zeros((self.N, self.N))
        for i in range(n):
            s = slice(i * b, (i + 1) * b)
            out[s, s] = np.tril(self.factor.diag[i])
            if i + 1 < n:
                out[(i + 1) * b : (i + 2) * b, s] = self.factor.lower[i]
            if a:
                out[n * b :, s] = self.factor.arrow[i]
        if a:
            out[n * b :, n * b :] = np.tril(self.factor.tip)
        return out


def pobtaf(A: BTAMatrix, *, overwrite: bool = False) -> BTACholesky:
    """Factorize a symmetric positive definite BTA matrix ``A = L L^T``.

    Parameters
    ----------
    A:
        The matrix to factorize.  Only the lower-triangle blocks are read.
    overwrite:
        When True, ``A``'s storage is reused for the factor (the caller's
        matrix is destroyed).  This is the memory-lean mode used inside the
        INLA objective where ``Qp``/``Qc`` are rebuilt every evaluation.

    Raises
    ------
    NotPositiveDefiniteError
        If any Schur-complemented diagonal block is not positive definite.
    """
    L = A if overwrite else A.copy()
    n, a = L.n, L.a
    diag, lower, arrow, tip = L.diag, L.lower, L.arrow, L.tip

    for i in range(n):
        # Factorize the current (Schur-complemented) diagonal block.
        diag[i] = chol_lower(diag[i])
        li = diag[i]
        if i + 1 < n:
            # L[i+1, i] = A[i+1, i] L[i,i]^{-T}
            lower[i] = right_solve_lower_t(li, lower[i])
        if a:
            # L[t, i] = A[t, i] L[i,i]^{-T}
            arrow[i] = right_solve_lower_t(li, arrow[i])
        # Schur-complement the trailing blocks touched by column i.
        if i + 1 < n:
            diag[i + 1] -= lower[i] @ lower[i].T
            if a:
                arrow[i + 1] -= arrow[i] @ lower[i].T
        if a:
            tip -= arrow[i] @ arrow[i].T
    if a:
        tip[...] = chol_lower(tip)
    return BTACholesky(factor=L)
