"""Time-domain partitioning with boundary load balancing.

The distributed solver splits the ``n`` diagonal blocks (= time steps) into
``P`` contiguous partitions (paper Sec. IV-C).  The nested-dissection
elimination gives partition 0 roughly *half* the per-block work of the
other partitions (it eliminates top-down without maintaining a fill
coupling to a top boundary), so an even split leaves rank 0 idle.  The
paper mitigates this by assigning a load-balancing factor ``lb`` of extra
time steps to the boundary partition (Fig. 5 uses ``lb = 1.6``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Partition:
    """One contiguous slice of diagonal blocks, owned by one rank.

    Attributes
    ----------
    index:
        Partition number ``p`` in ``0..P-1``.
    start, stop:
        Half-open block range ``[start, stop)`` owned by this partition.
    """

    index: int
    start: int
    stop: int

    def __post_init__(self):
        if self.stop <= self.start:
            raise ValueError(f"empty partition {self.index}: [{self.start}, {self.stop})")

    @property
    def n_blocks(self) -> int:
        return self.stop - self.start

    @property
    def is_first(self) -> bool:
        return self.index == 0

    @property
    def top_boundary(self) -> int | None:
        """Global index of the top boundary block (None for partition 0)."""
        return None if self.is_first else self.start

    @property
    def bottom_boundary(self) -> int:
        """Global index of the bottom boundary block."""
        return self.stop - 1

    def interior(self) -> range:
        """Global indices of the interior (eliminated) blocks."""
        if self.is_first:
            return range(self.start, self.stop - 1)
        return range(self.start + 1, self.stop - 1)


def partition_counts(n: int, P: int, *, lb: float = 1.0) -> list:
    """Block counts per partition for ``n`` blocks over ``P`` partitions.

    ``lb > 1`` gives partition 0 a proportionally larger share (its
    per-block elimination cost is about half of the others').  Counts are
    rounded while preserving the total; every partition receives at least
    one block, and partitions beyond 0 need two blocks (two boundaries)
    whenever they have interior work to shed.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if P < 1:
        raise ValueError("P must be >= 1")
    if P > n:
        raise ValueError(f"cannot split {n} blocks into {P} partitions")
    if lb < 1.0:
        raise ValueError("load-balancing factor must be >= 1")
    if P == 1:
        return [n]
    weights = np.ones(P)
    weights[0] = lb
    raw = weights / weights.sum() * n
    counts = np.floor(raw).astype(int)
    counts = np.maximum(counts, 1)
    # Distribute the remainder to the largest fractional parts.
    while counts.sum() < n:
        frac = raw - counts
        counts[int(np.argmax(frac))] += 1
        raw[int(np.argmax(frac))] -= 1  # avoid re-picking the same slot forever
    while counts.sum() > n:
        order = np.argsort(raw - counts)
        for j in order:
            if counts[j] > 1:
                counts[j] -= 1
                break
    # Middle/last partitions carry two boundary blocks; give them >= 2 when possible.
    for p in range(1, P):
        while counts[p] < 2:
            donor = int(np.argmax(counts))
            if counts[donor] <= 2 and donor != 0:
                raise ValueError(f"not enough blocks ({n}) for {P} partitions")
            if counts[donor] <= 1:
                raise ValueError(f"not enough blocks ({n}) for {P} partitions")
            counts[donor] -= 1
            counts[p] += 1
    assert counts.sum() == n
    return [int(c) for c in counts]


def balanced_partitions(n: int, P: int, *, lb: float = 1.0) -> list:
    """Build the list of :class:`Partition` covering ``[0, n)``."""
    counts = partition_counts(n, P, lb=lb)
    parts = []
    start = 0
    for p, c in enumerate(counts):
        parts.append(Partition(index=p, start=start, stop=start + c))
        start += c
    return parts


def reduced_block_indices(parts: list) -> list:
    """Global indices of the boundary blocks, in reduced-system order.

    Partition 0 contributes its bottom boundary; every later partition
    contributes its top and bottom boundaries, giving ``2P - 1`` reduced
    blocks (single-block partitions contribute one block, counted once).
    """
    idx = [parts[0].bottom_boundary]
    for part in parts[1:]:
        idx.append(part.top_boundary)
        if part.bottom_boundary != part.top_boundary:
            idx.append(part.bottom_boundary)
    return idx
