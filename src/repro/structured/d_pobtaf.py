"""``d_pobtaf`` — distributed Cholesky factorization of a BTA matrix.

Nested-dissection factorization across ``P`` time-domain partitions
(paper Sec. IV-C/D3).  Each rank owns a contiguous slice of diagonal
blocks and eliminates its *interior*:

- partition 0 eliminates top-down, exactly like the sequential ``pobtaf``
  restricted to its slice (one TRSM + two GEMM updates per block);
- partitions ``p >= 1`` eliminate their interior while maintaining a fill
  coupling to their top boundary block, which roughly doubles the
  per-block work — this is the load imbalance the paper's ``lb`` factor
  compensates (Fig. 5).

The remaining boundary blocks form a reduced BTA system of ``2P - 1``
blocks (see :mod:`repro.structured.reduced_system`), allgathered with the
same all-to-all pattern NCCL executes in the paper and factorized ONCE
per epoch via :func:`~repro.structured.reduced_system.factorize_reduced`
(rank 0 sweeps, the factor is broadcast; ``REPRO_REDUCED=redundant``
restores the legacy every-rank-factorizes scheme for A/B comparison).

On the batched path (``REPRO_BATCHED=1``, the default) each interior
elimination step fuses its two (or, with the fill column, three) TRSMs
into one call on the stacked operand and its Schur updates into a single
``G G^T`` GEMM whose tiles land on ``{diag, fill, arrow, tip}`` — the
same fusion the sequential ``pobtaf`` uses, applied to the permuted
sparsity pattern ``{j+1, s, tip}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.comm.communicator import Communicator
from repro.structured import batched as bk
from repro.structured.bta import BTAMatrix
from repro.structured.kernels import (
    chol_lower,
    logdet_from_chol_diag,
    right_solve_lower_t,
)
from repro.structured.partition import Partition, balanced_partitions
from repro.structured.pobtaf import BTACholesky
from repro.structured.reduced_system import (
    BoundaryContribution,
    ReducedSystem,
    factorize_reduced,
)


@dataclass
class LocalBTASlice:
    """One rank's slice of a global BTA matrix.

    ``diag``/``arrow`` cover global blocks ``[part.start, part.stop)``;
    ``lower`` holds the couplings *within* the slice (``A[j+1, j]`` for
    ``j`` in ``[start, stop-1)``); ``lower_prev`` is the coupling to the
    previous partition (``A[start, start-1]``, None for partition 0);
    ``tip`` is replicated on every rank (it is only ``a x a``).
    """

    part: Partition
    diag: np.ndarray
    lower: np.ndarray
    arrow: np.ndarray
    tip: np.ndarray
    lower_prev: np.ndarray | None

    def __post_init__(self):
        nl = self.part.n_blocks
        b = self.diag.shape[1]
        a = self.tip.shape[0]
        if self.diag.shape != (nl, b, b):
            raise ValueError(f"diag shape {self.diag.shape} != {(nl, b, b)}")
        if self.lower.shape != (max(nl - 1, 0), b, b):
            raise ValueError(f"lower shape {self.lower.shape} != {(nl - 1, b, b)}")
        if self.arrow.shape != (nl, a, b):
            raise ValueError(f"arrow shape {self.arrow.shape} != {(nl, a, b)}")
        if (self.lower_prev is None) != self.part.is_first:
            raise ValueError("lower_prev must be given exactly for partitions p >= 1")

    @property
    def b(self) -> int:
        return self.diag.shape[1]

    @property
    def a(self) -> int:
        return self.tip.shape[0]

    @classmethod
    def from_global(cls, A: BTAMatrix, part: Partition) -> "LocalBTASlice":
        """Cut one partition's slice out of a fully assembled matrix (tests)."""
        s, e = part.start, part.stop
        return cls(
            part=part,
            diag=A.diag[s:e].copy(),
            lower=A.lower[s : e - 1].copy(),
            arrow=A.arrow[s:e].copy(),
            tip=A.tip.copy(),
            lower_prev=None if part.is_first else A.lower[s - 1].copy(),
        )


@dataclass
class DistributedFactors:
    """Per-rank result of ``d_pobtaf``.

    Interior factor stacks are indexed in elimination order (ascending
    global block index over ``part.interior()``):

    - ``ldiag[k]``  — lower Cholesky factor of interior block ``j_k``
    - ``lnext[k]``  — ``L[j_k + 1, j_k]``
    - ``lfill[k]``  — ``L[s_p, j_k]`` (fill column; partitions ``p >= 1`` only)
    - ``larrow[k]`` — ``L[tip, j_k]``

    ``reduced`` is the assembled reduced boundary system and
    ``reduced_chol`` its (epoch-shared) Cholesky factor.
    """

    part: Partition
    ldiag: np.ndarray
    lnext: np.ndarray
    lfill: np.ndarray | None
    larrow: np.ndarray
    reduced: ReducedSystem
    reduced_chol: BTACholesky
    b: int
    a: int
    _ldiag_inv: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def n_interior(self) -> int:
        return self.ldiag.shape[0]

    @property
    def positions(self) -> tuple:
        """(top, bottom) reduced positions of this rank's boundaries."""
        return self.reduced.positions[self.part.index]

    def ldiag_inverses(self) -> np.ndarray:
        """Stacked ``L[j_k, j_k]^{-1}`` over this rank's interior — one
        genuinely batched call (the interiors are independent blocks)."""
        if self._ldiag_inv is None:
            self._ldiag_inv = bk.batched_tri_inverse_lower(self.ldiag)
        return self._ldiag_inv

    def logdet(self, comm: Communicator, *, batched: bool | None = None) -> float:
        """Global ``log det A``: interior contributions summed across ranks
        plus the reduced-system determinant (identical on every rank)."""
        if bk.batched_enabled(batched):
            local = bk.batched_logdet_from_chol_diag(self.ldiag)
        else:
            local = 0.0
            for k in range(self.n_interior):
                local += logdet_from_chol_diag(self.ldiag[k])
        total = comm.allreduce_scalar(local)
        return total + self.reduced_chol.logdet(batched=batched)


def _eliminate_first_partition(sl: LocalBTASlice):
    """Top-down interior elimination of partition 0 (no fill column)."""
    nl, b, a = sl.part.n_blocks, sl.b, sl.a
    m = nl - 1  # interiors
    ldiag = np.empty((m, b, b))
    lnext = np.empty((m, b, b))
    larrow = np.empty((m, a, b))
    diag = sl.diag.copy()
    lower = sl.lower.copy()
    arrow = sl.arrow.copy()
    tip_delta = np.zeros((a, a))
    for k in range(m):
        ldiag[k] = chol_lower(diag[k])
        lnext[k] = right_solve_lower_t(ldiag[k], lower[k])
        diag[k + 1] -= lnext[k] @ lnext[k].T
        if a:
            larrow[k] = right_solve_lower_t(ldiag[k], arrow[k])
            arrow[k + 1] -= larrow[k] @ lnext[k].T
            tip_delta -= larrow[k] @ larrow[k].T
        else:
            larrow[k] = np.zeros((a, b))
    contrib = BoundaryContribution(
        part=sl.part,
        diag_top=None,
        diag_bottom=diag[-1],
        coupling=None,
        lower_prev=None,
        arrow_top=None,
        arrow_bottom=arrow[-1],
        tip_delta=tip_delta,
    )
    return ldiag, lnext, None, larrow, contrib, None


def _eliminate_first_partition_batched(sl: LocalBTASlice):
    """Partition-0 elimination via the batched kernel layer.

    Like the sequential batched ``pobtaf``: the BT chain runs one POTRF +
    TRTRI per step with the TRSMs realized as GEMMs against the explicit
    triangular inverse (returned stacked, for reuse by ``d_pobtas`` /
    ``d_pobtasi``); the arrow row is deferred into a GEMM substitution
    whose tip update batches over the whole interior stack.
    """
    nl, b, a = sl.part.n_blocks, sl.b, sl.a
    m = nl - 1
    ldiag = np.empty((m, b, b))
    linv = np.empty((m, b, b))
    lnext = np.empty((m, b, b))
    larrow = np.zeros((m, a, b))
    diag = sl.diag.copy()
    lower = sl.lower.copy()
    arrow = sl.arrow.copy()
    tip_delta = np.zeros((a, a))
    chol_inv = bk.chol_and_inverse_block
    for k in range(m):
        li, inv_k = chol_inv(diag[k])
        ldiag[k] = li
        linv[k] = inv_k
        G = lower[k] @ inv_k.T
        lnext[k] = G
        diag[k + 1] -= G @ G.T
    if a and m:
        cur = arrow[0] @ linv[0].T
        larrow[0] = cur
        for k in range(1, m):
            cur = (arrow[k] - cur @ lnext[k - 1].T) @ linv[k].T
            larrow[k] = cur
        # Boundary arrow block: Schur-updated by the last interior column.
        arrow[m] -= cur @ lnext[m - 1].T
        tip_delta -= np.einsum("iab,icb->ac", larrow, larrow)
    contrib = BoundaryContribution(
        part=sl.part,
        diag_top=None,
        diag_bottom=diag[-1],
        coupling=None,
        lower_prev=None,
        arrow_top=None,
        arrow_bottom=arrow[-1],
        tip_delta=tip_delta,
    )
    return ldiag, lnext, None, larrow, contrib, linv


def _eliminate_middle_partition(sl: LocalBTASlice):
    """Interior elimination maintaining the fill column to the top boundary.

    Eliminating interior block ``j`` (neighbors ``{j+1, s, tip}`` in the
    permuted matrix) performs three TRSMs and six GEMM updates — twice the
    work of partition 0 per block, which is the source of the paper's load
    imbalance discussion.
    """
    nl, b, a = sl.part.n_blocks, sl.b, sl.a
    m = max(nl - 2, 0)  # interiors between the two boundaries
    ldiag = np.empty((m, b, b))
    lnext = np.empty((m, b, b))
    lfill = np.empty((m, b, b))
    larrow = np.empty((m, a, b))
    diag = sl.diag.copy()
    lower = sl.lower.copy()
    arrow = sl.arrow.copy()
    tip_delta = np.zeros((a, a))

    # Local indices: boundary top = 0, interiors = 1..nl-2, bottom = nl-1.
    # fill = A[s, j] for the current column j (starts at A[s, s+1] = lower[0]^T).
    fill = lower[0].T.copy() if m > 0 else None
    for k in range(m):
        j = k + 1  # local index of the interior block being eliminated
        ldiag[k] = chol_lower(diag[j])
        lnext[k] = right_solve_lower_t(ldiag[k], lower[j])
        lfill[k] = right_solve_lower_t(ldiag[k], fill)
        # Schur updates onto the remaining neighbors {j+1, s, tip}.
        diag[j + 1] -= lnext[k] @ lnext[k].T
        diag[0] -= lfill[k] @ lfill[k].T
        new_fill = -lfill[k] @ lnext[k].T  # A[s, j+1] fill (original entry is 0)
        if a:
            larrow[k] = right_solve_lower_t(ldiag[k], arrow[j])
            arrow[j + 1] -= larrow[k] @ lnext[k].T
            arrow[0] -= larrow[k] @ lfill[k].T
            tip_delta -= larrow[k] @ larrow[k].T
        else:
            larrow[k] = np.zeros((a, b))
        fill = new_fill
    if m == 0:
        # No interior: boundaries are directly coupled by the original block.
        coupling = lower[0].copy() if nl == 2 else None
    else:
        # After eliminating the last interior, `fill` is A[s, e]; the
        # reduced system stores the lower block A[e, s] = fill^T.
        coupling = fill.T.copy()
    contrib = BoundaryContribution(
        part=sl.part,
        diag_top=diag[0] if nl > 1 else None,
        diag_bottom=diag[-1],
        coupling=coupling,
        lower_prev=sl.lower_prev,
        arrow_top=arrow[0] if nl > 1 else None,
        arrow_bottom=arrow[-1],
        tip_delta=tip_delta,
    )
    return ldiag, lnext, lfill, larrow, contrib, None


def _eliminate_middle_partition_batched(sl: LocalBTASlice):
    """Middle-partition elimination via the batched kernel layer.

    The loop-carried chain fuses the two ``b x b`` operands that feed back
    into it — the next coupling and the fill column — into one GEMM
    against ``L^{-T}`` and one Schur GEMM whose tiles update
    ``{diag[j+1], diag[s], fill}``.  The arrow row is deferred like in the
    sequential solver; its accumulations onto the two boundary targets
    (top-boundary arrow and tip delta) batch over the whole interior
    stack as single contractions.
    """
    nl, b, a = sl.part.n_blocks, sl.b, sl.a
    m = max(nl - 2, 0)
    ldiag = np.empty((m, b, b))
    linv = np.empty((m, b, b))
    lnext = np.empty((m, b, b))
    lfill = np.empty((m, b, b))
    larrow = np.zeros((m, a, b))
    diag = sl.diag.copy()
    lower = sl.lower.copy()
    arrow = sl.arrow.copy()
    tip_delta = np.zeros((a, a))
    chol_inv = bk.chol_and_inverse_block

    fill = lower[0].T.copy() if m > 0 else None
    for k in range(m):
        j = k + 1
        li, inv_k = chol_inv(diag[j])
        ldiag[k] = li
        linv[k] = inv_k
        G = np.concatenate([lower[j], fill], axis=0) @ inv_k.T
        S = G @ G.T
        lnext[k] = G[:b]
        lfill[k] = G[b:]
        diag[j + 1] -= S[:b, :b]
        diag[0] -= S[b:, b:]
        fill = -S[b:, :b]  # -lfill @ lnext^T: A[s, j+1] fill
    if a and m:
        cur = arrow[1] @ linv[0].T
        larrow[0] = cur
        for k in range(1, m):
            cur = (arrow[k + 1] - cur @ lnext[k - 1].T) @ linv[k].T
            larrow[k] = cur
        # Bottom-boundary arrow: updated by the last interior column.
        arrow[-1] -= cur @ lnext[m - 1].T
        # Top-boundary arrow and tip delta: batched over the whole stack.
        arrow[0] -= np.einsum("iab,icb->ac", larrow, lfill)
        tip_delta -= np.einsum("iab,icb->ac", larrow, larrow)
    if m == 0:
        coupling = lower[0].copy() if nl == 2 else None
    else:
        coupling = fill.T.copy()
    contrib = BoundaryContribution(
        part=sl.part,
        diag_top=diag[0] if nl > 1 else None,
        diag_bottom=diag[-1],
        coupling=coupling,
        lower_prev=sl.lower_prev,
        arrow_top=arrow[0] if nl > 1 else None,
        arrow_bottom=arrow[-1],
        tip_delta=tip_delta,
    )
    return ldiag, lnext, lfill, larrow, contrib, linv


def d_pobtaf(
    sl: LocalBTASlice, comm: Communicator, *, batched: bool | None = None
) -> DistributedFactors:
    """Distributed BTA Cholesky factorization (collective over ``comm``).

    Every rank passes its :class:`LocalBTASlice`; partition indices must
    equal communicator ranks.  Returns this rank's
    :class:`DistributedFactors`, including the reduced-system factor
    (factorized once per epoch and broadcast — see
    :func:`repro.structured.reduced_system.factorize_reduced`).
    """
    if sl.part.index != comm.Get_rank():
        raise ValueError(
            f"partition index {sl.part.index} != communicator rank {comm.Get_rank()}"
        )
    use_batched = batched_enabled(batched)
    if sl.part.is_first:
        eliminate = (
            _eliminate_first_partition_batched if use_batched else _eliminate_first_partition
        )
    else:
        eliminate = (
            _eliminate_middle_partition_batched if use_batched else _eliminate_middle_partition
        )
    ldiag, lnext, lfill, larrow, contrib, linv = eliminate(sl)

    contributions = comm.allgather(contrib)
    contributions.sort(key=lambda c: c.part.index)
    reduced = ReducedSystem.assemble(contributions, tip_original=sl.tip)
    # One factorization per epoch (rank 0 sweeps, everyone gets the factor)
    # instead of the historical P redundant per-rank sweeps.
    reduced_chol = factorize_reduced(reduced, comm, batched=use_batched)
    return DistributedFactors(
        part=sl.part,
        ldiag=ldiag,
        lnext=lnext,
        lfill=lfill,
        larrow=larrow,
        reduced=reduced,
        reduced_chol=reduced_chol,
        b=sl.b,
        a=sl.a,
        _ldiag_inv=linv,
    )


def partition_matrix(A: BTAMatrix, P: int, *, lb: float = 1.0) -> list:
    """Split a fully assembled BTA matrix into ``P`` rank slices (driver/test helper)."""
    parts = balanced_partitions(A.n, P, lb=lb)
    return [LocalBTASlice.from_global(A, part) for part in parts]
