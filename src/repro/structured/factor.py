"""Factorization handles — one ``pobtaf`` amortized over every consumer.

The DALIA pipeline computes *several* quantities from each factorized
precision matrix: the log-determinant for the objective, conditional-mean
solves, Takahashi selected inversion for the marginal variances, and
``L^{-T} z`` sampling sweeps.  The historical ``StructuredSolver`` API was
stateless — every call took a raw :class:`~repro.structured.bta.BTAMatrix`
and refactorized — so consumers either paid redundant ``O(n b^3)``
factorizations or reached for ad-hoc fused entry points
(``pobtasi_with_solve``).

This module makes the factorization a first-class object:

- :class:`BTAFactor` — the sequential handle returned by
  :func:`factorize` / ``SequentialSolver.factorize``.  It owns the
  Cholesky block stacks, the cached per-factor triangular inverses and
  flat arrow row (computed once, GEMMed against by every sweep), the
  cached log-determinant and selected-inverse diagonal, and preallocated
  ``(N, k)`` sweep workspaces — so ``logdet()``, ``solve()``,
  ``solve_stack()``, ``solve_lt_stack()``, ``selected_inverse_diagonal()``
  and ``sample()`` all reuse the one factorization with zero per-call
  block allocation.
- :class:`DistributedBTAFactor` — the rank-partitioned handle returned by
  ``DistributedSolver.factorize``.  It retains every rank's
  :class:`~repro.structured.d_pobtaf.DistributedFactors` (interior factor
  stacks, cached interior inverses, the shared reduced-system factor)
  across SPMD epochs: each method launches one collective round
  against the stored factors instead of re-running ``d_pobtaf``.

Results are bit-identical to the legacy one-shot calls (which are now
thin ``factorize``-then-call wrappers).  Sequential handles are safe to
*read* concurrently: the mutable per-solve state is the sweep buffer,
which each stacked solve leases from a small acquire/release pool
(:class:`SweepWorkspacePool`) — a shared mode-factor can serve several
S1 sampler threads without racing (the scalar caches are idempotent).
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.backend.protocol import NUMPY_BACKEND, Backend
from repro.errors import NPDJitterWarning

# Pinned to the thread launcher on purpose: the closure-based rank
# functions below capture (and mutate) handle state across epochs, which
# only shared-memory threads can do.  The process backend has its own
# entry point (ProcDistributedBTAFactor / d_factorize_proc) whose jobs
# are module-level picklable and keep state in the worker_store.
from repro.comm.local import run_spmd
from repro.structured.bta import BTAMatrix, BTAShape
from repro.structured.d_pobtaf import DistributedFactors, d_pobtaf, partition_matrix
from repro.structured.d_pobtas import d_pobtas
from repro.structured.d_pobtasi import d_pobtasi_diag
from repro.structured.kernels import NotPositiveDefiniteError
from repro.structured.multirhs import (
    as_rhs_stack,
    d_pobtas_lt_stack,
    d_pobtas_lt_stack_lanes,
    d_pobtas_stack,
    d_pobtas_stack_lanes,
    pobtas_lt_stack,
    pobtas_stack,
)
from repro.structured.pobtaf import BTACholesky, pobtaf
from repro.structured.pobtas import pobtas, pobtas_lt
from repro.structured.pobtasi import (
    pobtasi,
    selected_inverse_diagonal,
    solve_and_selected_inverse_diagonal,
)

__all__ = [
    "BTAFactor",
    "DistributedBTAFactor",
    "ProcDistributedBTAFactor",
    "NPDJitterPolicy",
    "factorize",
    "d_factorize",
    "d_factorize_proc",
]

# Idle sweep workspaces cached per factor; buffers beyond this many are
# dropped on release instead of pooled (consumers use a handful of stack
# widths: sample counts, stencil widths, prediction batch sizes).
_MAX_WORKSPACES = 8


class SweepWorkspacePool:
    """Acquire/release pool of ``(N, k)`` sweep buffers for one factor.

    A shared mode-factor may serve several S1 sampler threads at once;
    the historical per-factor buffer dict handed every caller the *same*
    ``(N, k)`` array, so two concurrent ``solve_stack`` calls with equal
    ``k`` would race.  The pool leases a buffer per solve instead: free
    buffers are reused (the steady-state single-caller case stays
    allocation-free), a second concurrent lease of the same width simply
    allocates its own buffer, and at most ``max_idle`` buffers are kept
    idle.  Sweep results never alias the buffer (see
    :func:`repro.structured.multirhs._to_panels`), so returning it to
    the pool after the solve is safe.
    """

    def __init__(
        self,
        N: int,
        max_idle: int = _MAX_WORKSPACES,
        *,
        backend: Backend | None = None,
    ):
        self._N = int(N)
        self._max_idle = int(max_idle)
        self._backend = backend if backend is not None else NUMPY_BACKEND
        self._lock = threading.Lock()
        self._free: list = []  # [(k, buffer)] most-recently released last

    @contextmanager
    def lease(self, k: int):
        ws = None
        with self._lock:
            for i in range(len(self._free) - 1, -1, -1):
                if self._free[i][0] == k:
                    ws = self._free.pop(i)[1]
                    break
        if ws is None:
            # Buffers live where the factor lives: the owning backend's
            # allocator, never a bare np.empty.
            ws = self._backend.empty((self._N, k), order="C")
        try:
            yield ws
        finally:
            with self._lock:
                self._free.append((k, ws))
                while len(self._free) > self._max_idle:
                    self._free.pop(0)


def _run_spmd_spd(P: int, fn):
    """``run_spmd`` that surfaces per-rank positive-definiteness failures.

    An infeasible hyperparameter configuration makes a rank's Cholesky
    fail; the objective layer must see ``NotPositiveDefiniteError`` (so
    the optimizer backtracks) rather than a generic SPMD error.
    """
    try:
        return run_spmd(P, fn)
    except RuntimeError as exc:
        cause = exc.__cause__
        while cause is not None:
            if isinstance(cause, NotPositiveDefiniteError):
                raise NotPositiveDefiniteError(str(cause)) from exc
            cause = cause.__cause__
        raise


@dataclass
class BTAFactor:
    """Sequential factorization handle over one :class:`BTACholesky`.

    Every method reuses the one factorization; scalar/diagonal results
    are cached on first computation.  Obtain via :func:`factorize` or
    ``StructuredSolver.factorize``.
    """

    chol: BTACholesky
    #: Execution-path pin (None follows ``REPRO_BATCHED``), matching the
    #: ``batched=`` argument of the solver that produced the handle.
    batched: bool | None = None
    #: Absolute diagonal jitter the NPD recovery chain added before this
    #: factorization succeeded (0.0 on the normal, unjittered path).  The
    #: handle then factors ``A + applied_jitter * I``, not ``A``.
    applied_jitter: float = 0.0
    _logdet: float | None = field(default=None, repr=False)
    _selinv_diag: np.ndarray | None = field(default=None, repr=False)
    _pool: SweepWorkspacePool | None = field(default=None, repr=False)

    def __post_init__(self):
        if self._pool is None:
            self._pool = SweepWorkspacePool(self.N, backend=self.backend)

    # -- structure ---------------------------------------------------------

    @property
    def shape3(self) -> BTAShape:
        return self.chol.factor.shape3

    @property
    def n(self) -> int:
        return self.chol.n

    @property
    def b(self) -> int:
        return self.chol.b

    @property
    def a(self) -> int:
        return self.chol.a

    @property
    def N(self) -> int:
        return self.chol.N

    @property
    def backend(self) -> Backend:
        """The :class:`Backend` the factor's block stacks live on."""
        return self.chol.get_backend()

    # -- the amortized operations ------------------------------------------

    def logdet(self) -> float:
        """``log det A`` from the factor diagonal (cached)."""
        if self._logdet is None:
            self._logdet = self.chol.logdet(batched=self.batched)
        return self._logdet

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` (vector ``(N,)`` or columns ``(N, k)``)."""
        return pobtas(self.chol, rhs, batched=self.batched)

    def solve_stack(self, rhs_stack: np.ndarray) -> np.ndarray:
        """Solve a row-major ``(k, N)`` RHS stack in one panel pass.

        Thread-safe: the sweep buffer is leased from the factor's
        workspace pool for the duration of the solve, so concurrent
        callers sharing one handle never share a buffer.
        """
        rhs_stack = self.backend.asarray(rhs_stack)
        k = 1 if rhs_stack.ndim == 1 else rhs_stack.shape[0]
        with self._pool.lease(k) as ws:
            return pobtas_stack(self.chol, rhs_stack, batched=self.batched, workspace=ws)

    def solve_lt(self, rhs: np.ndarray) -> np.ndarray:
        """Backward-only solve ``L^T x = rhs`` (the sampling primitive)."""
        return pobtas_lt(self.chol, rhs, batched=self.batched)

    def solve_lt_stack(self, rhs_stack: np.ndarray) -> np.ndarray:
        """Backward-only solve for a row-major ``(k, N)`` stack.

        Thread-safe via the same leased sweep buffer as
        :meth:`solve_stack` — the S1 sampling primitive a shared
        mode-factor serves to concurrent samplers.
        """
        rhs_stack = self.backend.asarray(rhs_stack)
        k = 1 if rhs_stack.ndim == 1 else rhs_stack.shape[0]
        with self._pool.lease(k) as ws:
            return pobtas_lt_stack(self.chol, rhs_stack, batched=self.batched, workspace=ws)

    def solve_stack_lanes(self, stacks: list) -> list:
        """Solve several independent ``(k_i, N)`` stacks, in lane order.

        The sequential handle has no collectives to batch, so lanes are
        simply looped — the method exists so sweep-group consumers can
        target one API on every factor type (the distributed handles
        collapse the per-lane collective rounds into one).
        """
        return [self.solve_stack(s) for s in stacks]

    def solve_lt_stack_lanes(self, stacks: list) -> list:
        """Backward-only lane solves (see :meth:`solve_stack_lanes`)."""
        return [self.solve_lt_stack(s) for s in stacks]

    def selected_inverse(self) -> BTAMatrix:
        """Selected entries of ``A^{-1}`` (full BTA block pattern)."""
        return pobtasi(self.chol, batched=self.batched)

    def selected_inverse_diagonal(self) -> np.ndarray:
        """Diagonal of ``A^{-1}`` — the marginal variances (cached).

        Runs the diagonal-only Takahashi recursion (no full-``X``
        materialization) on the batched path.
        """
        if self._selinv_diag is None:
            self._selinv_diag = selected_inverse_diagonal(self.chol, batched=self.batched)
        return self._selinv_diag.copy()

    def solve_and_selected_inverse_diagonal(self, rhs: np.ndarray) -> tuple:
        """``(x, var)`` from one fused backward recursion.

        The conditional-mean solve rides the diagonal-only
        selected-inversion backward pass
        (:func:`repro.structured.pobtasi.solve_and_selected_inverse_diagonal`)
        — the INLA marginals' hot pair.
        """
        x, var = solve_and_selected_inverse_diagonal(
            self.chol, rhs, batched=self.batched
        )
        if self._selinv_diag is None:
            self._selinv_diag = var.copy()
        return x, var

    def sample(self, k: int, rng: np.random.Generator, *, mean: np.ndarray | None = None):
        """``k`` exact draws from ``N(mean, A^{-1})``, row-major ``(k, N)``.

        One stacked backward sweep (``x = mean + L^{-T} z``); no dense
        covariance is ever formed.
        """
        if k < 1:
            raise ValueError(f"need k >= 1 samples, got {k}")
        # The normal draws are generated on the host (the RNG lives
        # there); moving them through the backend's asarray is the H2D
        # crossing a real device pays per sampling round.
        z = self.backend.asarray(rng.standard_normal((k, self.N)))
        x = self.solve_lt_stack(z)
        if mean is not None:
            x += self.backend.asarray(mean)[None, :]
        return x


@dataclass
class DistributedBTAFactor:
    """Rank-partitioned factorization handle (strategy S3).

    Holds every rank's :class:`DistributedFactors` from one ``d_pobtaf``
    collective; each method launches a single SPMD epoch over the stored
    factors — the factorization itself (and its cached interior
    inverses and reduced-system factor) is never recomputed.  Built by
    :func:`d_factorize` / ``DistributedSolver.factorize``.
    """

    shape3: BTAShape
    factors: list
    batched: bool | None = None
    _logdet: float | None = field(default=None, repr=False)
    _selinv_diag: np.ndarray | None = field(default=None, repr=False)

    @property
    def P(self) -> int:
        return len(self.factors)

    @property
    def n(self) -> int:
        return self.shape3.n

    @property
    def b(self) -> int:
        return self.shape3.b

    @property
    def a(self) -> int:
        return self.shape3.a

    @property
    def N(self) -> int:
        return self.shape3.N

    def _rank_factors(self, comm) -> DistributedFactors:
        return self.factors[comm.Get_rank()]

    def _local(self, arr: np.ndarray, f: DistributedFactors) -> np.ndarray:
        """This rank's slice of a leading-``N`` array (blocks, then tip)."""
        b = self.b
        return arr[f.part.start * b : f.part.stop * b]

    def logdet(self) -> float:
        """Global ``log det A`` (one Allreduce round; cached)."""
        if self._logdet is None:

            def rank_fn(comm):
                f = self._rank_factors(comm)
                return f.logdet(comm, batched=self.batched)

            self._logdet = _run_spmd_spd(self.P, rank_fn)[0]
        return self._logdet

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` with the stored factors (one pipeline)."""
        rhs = np.asarray(rhs, dtype=np.float64)
        tip = rhs[self.n * self.b :]

        def rank_fn(comm):
            f = self._rank_factors(comm)
            return d_pobtas(f, self._local(rhs, f), tip, comm, batched=self.batched)

        out = _run_spmd_spd(self.P, rank_fn)
        return np.concatenate([o[0] for o in out] + [out[0][1]])

    def solve_stack(self, rhs_stack: np.ndarray) -> np.ndarray:
        """Row-major ``(k, N)`` stack: one collective round for the lot."""
        stack, squeeze = as_rhs_stack(rhs_stack, self.N)
        tip = stack[:, self.n * self.b :]

        def rank_fn(comm):
            f = self._rank_factors(comm)
            b = self.b
            return d_pobtas_stack(
                f,
                stack[:, f.part.start * b : f.part.stop * b],
                tip,
                comm,
                batched=self.batched,
            )

        out = _run_spmd_spd(self.P, rank_fn)
        x = np.concatenate([o[0] for o in out] + [out[0][1]], axis=1)
        return x[0] if squeeze else x

    def solve_lt_stack(self, rhs_stack: np.ndarray) -> np.ndarray:
        """Backward-only ``L^T`` solve for a ``(k, N)`` stack.

        ``L`` is the nested-dissection factor of the permuted matrix, so
        individual solutions differ from the sequential ``pobtas_lt`` —
        but ``x = L^{-T} z`` has covariance exactly ``A^{-1}``, which is
        the sampling contract (see
        :func:`repro.structured.d_pobtas.d_pobtas_lt`).  One Allgather
        round per stack.
        """
        stack, squeeze = as_rhs_stack(rhs_stack, self.N)
        tip = stack[:, self.n * self.b :]

        def rank_fn(comm):
            f = self._rank_factors(comm)
            b = self.b
            return d_pobtas_lt_stack(
                f,
                stack[:, f.part.start * b : f.part.stop * b],
                tip,
                comm,
                batched=self.batched,
            )

        out = _run_spmd_spd(self.P, rank_fn)
        x = np.concatenate([o[0] for o in out] + [out[0][1]], axis=1)
        return x[0] if squeeze else x

    def _solve_lanes(self, stacks: list, lanes_fn) -> list:
        """Shared driver for the multi-lane solves: one SPMD epoch, one
        collective round, per-lane results reassembled in lane order."""
        norm = [as_rhs_stack(s, self.N)[0] for s in stacks]
        tips = [s[:, self.n * self.b :] for s in norm]

        def rank_fn(comm):
            f = self._rank_factors(comm)
            b = self.b
            locs = [s[:, f.part.start * b : f.part.stop * b] for s in norm]
            return lanes_fn(f, locs, tips, comm, batched=self.batched)

        out = _run_spmd_spd(self.P, rank_fn)
        return [
            np.concatenate([o[i][0] for o in out] + [out[0][i][1]], axis=1)
            for i in range(len(stacks))
        ]

    def solve_stack_lanes(self, stacks: list) -> list:
        """Solve several ``(k_i, N)`` stacks with ONE collective round.

        All lanes share a single Allreduce + Allgather
        (:func:`repro.structured.multirhs.d_pobtas_stack_lanes`); each
        lane's sweeps run at its exact width, so the per-lane results are
        bit-identical to separate :meth:`solve_stack` calls.
        """
        return self._solve_lanes(stacks, d_pobtas_stack_lanes)

    def solve_lt_stack_lanes(self, stacks: list) -> list:
        """Backward-only lane solves, one Allgather round for the lot."""
        return self._solve_lanes(stacks, d_pobtas_lt_stack_lanes)

    def selected_inverse_diagonal(self) -> np.ndarray:
        """Diagonal of ``A^{-1}`` (communication-free per rank; cached).

        Each rank runs the carry-based diagonal-only recursion
        (:func:`repro.structured.d_pobtasi.d_pobtasi_diag`) — bit-identical
        values to the full per-rank selected inversion without
        materializing any inverse block slice.
        """
        if self._selinv_diag is None:

            def rank_fn(comm):
                return d_pobtasi_diag(self._rank_factors(comm), batched=self.batched)

            out = _run_spmd_spd(self.P, rank_fn)
            self._selinv_diag = np.concatenate([o[0] for o in out] + [out[0][1]])
        return self._selinv_diag.copy()

    def solve_and_selected_inverse_diagonal(self, rhs: np.ndarray) -> tuple:
        """``(x, var)`` from one SPMD epoch over the stored factors."""
        rhs = np.asarray(rhs, dtype=np.float64)
        tip = rhs[self.n * self.b :]

        def rank_fn(comm):
            f = self._rank_factors(comm)
            xl, xt = d_pobtas(f, self._local(rhs, f), tip, comm, batched=self.batched)
            var_local, var_tip = d_pobtasi_diag(f, batched=self.batched)
            return xl, xt, var_local, var_tip

        out = _run_spmd_spd(self.P, rank_fn)
        x = np.concatenate([o[0] for o in out] + [out[0][1]])
        var = np.concatenate([o[2] for o in out] + [out[0][3]])
        if self._selinv_diag is None:
            self._selinv_diag = var.copy()
        return x, var

    def sample(self, k: int, rng: np.random.Generator, *, mean: np.ndarray | None = None):
        """``k`` exact draws from ``N(mean, A^{-1})``, row-major ``(k, N)``."""
        if k < 1:
            raise ValueError(f"need k >= 1 samples, got {k}")
        z = rng.standard_normal((k, self.N))
        x = self.solve_lt_stack(z)
        if mean is not None:
            x += np.asarray(mean, dtype=np.float64)[None, :]
        return x


# ---------------------------------------------------------------------------
# Process-backed distributed handle
# ---------------------------------------------------------------------------
#
# The closure-based DistributedBTAFactor above keeps every rank's factors in
# the PARENT's memory and re-binds them each epoch — only threads can do
# that.  The proc-backed handle below keeps each rank's DistributedFactors
# resident in its OWN worker process (repro.comm.launcher.worker_store)
# across epochs, shipping only RHS vectors and results.  The job functions
# are module-level so they pickle under any start method.

_STORE_KEY = "dbta_factors"


def _proc_job_factorize(comm, slices, batched):
    from repro.comm.launcher import worker_store

    f = d_pobtaf(slices[comm.Get_rank()], comm, batched=batched)
    worker_store()[_STORE_KEY] = f
    return f.logdet(comm, batched=batched)


def _proc_job_solve(comm, rhs, tip, batched):
    from repro.comm.launcher import worker_store

    f = worker_store()[_STORE_KEY]
    b = f.b
    return d_pobtas(f, rhs[f.part.start * b : f.part.stop * b], tip, comm, batched=batched)


def _proc_job_solve_stack(comm, stack, tip, batched):
    from repro.comm.launcher import worker_store

    f = worker_store()[_STORE_KEY]
    b = f.b
    return d_pobtas_stack(
        f, stack[:, f.part.start * b : f.part.stop * b], tip, comm, batched=batched
    )


def _proc_job_solve_lt_stack(comm, stack, tip, batched):
    from repro.comm.launcher import worker_store

    f = worker_store()[_STORE_KEY]
    b = f.b
    return d_pobtas_lt_stack(
        f, stack[:, f.part.start * b : f.part.stop * b], tip, comm, batched=batched
    )


def _proc_job_solve_stack_lanes(comm, stacks, tips, batched):
    from repro.comm.launcher import worker_store

    f = worker_store()[_STORE_KEY]
    b = f.b
    locs = [s[:, f.part.start * b : f.part.stop * b] for s in stacks]
    return d_pobtas_stack_lanes(f, locs, tips, comm, batched=batched)


def _proc_job_solve_lt_stack_lanes(comm, stacks, tips, batched):
    from repro.comm.launcher import worker_store

    f = worker_store()[_STORE_KEY]
    b = f.b
    locs = [s[:, f.part.start * b : f.part.stop * b] for s in stacks]
    return d_pobtas_lt_stack_lanes(f, locs, tips, comm, batched=batched)


def _proc_job_selinv_diag(comm, batched):
    from repro.comm.launcher import worker_store

    return d_pobtasi_diag(worker_store()[_STORE_KEY], batched=batched)


def _proc_job_solve_and_selinv(comm, rhs, tip, batched):
    from repro.comm.launcher import worker_store

    f = worker_store()[_STORE_KEY]
    b = f.b
    xl, xt = d_pobtas(f, rhs[f.part.start * b : f.part.stop * b], tip, comm, batched=batched)
    var_local, var_tip = d_pobtasi_diag(f, batched=batched)
    return xl, xt, var_local, var_tip


class ProcDistributedBTAFactor:
    """Distributed factorization handle over persistent worker *processes*.

    Same epoch-reuse contract as :class:`DistributedBTAFactor` — one
    ``d_pobtaf`` collective, then every logdet/solve/selected-inverse/
    sampling call reuses the stored factors — but the ranks are OS
    processes holding their factor slices in their own address space
    (via :func:`repro.comm.launcher.worker_store`), talking through a
    :class:`~repro.comm.shm.ShmComm` shared-memory segment.  Built by
    :func:`d_factorize_proc`; close (or use as a context manager) to
    release the workers and the segment.
    """

    def __init__(
        self,
        A: BTAMatrix,
        P: int,
        *,
        lb: float = 1.6,
        batched: bool | None = None,
        start_method: str | None = None,
    ):
        from repro.comm.launcher import SpmdSession

        if P < 1:
            raise ValueError(f"P must be >= 1, got {P}")
        self.shape3 = A.shape3
        self.batched = batched
        slices = partition_matrix(A, P, lb=lb)
        self._bounds = [(sl.part.start, sl.part.stop) for sl in slices]
        self._selinv_diag: np.ndarray | None = None
        self._session = SpmdSession(P, start_method=start_method)
        try:
            # warmup=True: the session replays this epoch after a respawn,
            # rebuilding every rank's resident factor slices before any
            # retried solve epoch touches the worker_store.
            self._logdet = self._run(_proc_job_factorize, slices, batched, warmup=True)[0]
        except BaseException:
            self._session.close()
            raise

    def _run(self, job, *args, warmup: bool = False) -> list:
        try:
            return self._session.run(job, *args, warmup=warmup)
        except RuntimeError as exc:
            cause = exc.__cause__
            while cause is not None:
                if isinstance(cause, NotPositiveDefiniteError):
                    raise NotPositiveDefiniteError(str(cause)) from exc
                cause = cause.__cause__
            raise

    @property
    def P(self) -> int:
        return len(self._bounds)

    @property
    def n(self) -> int:
        return self.shape3.n

    @property
    def b(self) -> int:
        return self.shape3.b

    @property
    def a(self) -> int:
        return self.shape3.a

    @property
    def N(self) -> int:
        return self.shape3.N

    def logdet(self) -> float:
        return self._logdet

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=np.float64)
        out = self._run(_proc_job_solve, rhs, rhs[self.n * self.b :], self.batched)
        return np.concatenate([o[0] for o in out] + [out[0][1]])

    def solve_stack(self, rhs_stack: np.ndarray) -> np.ndarray:
        stack, squeeze = as_rhs_stack(rhs_stack, self.N)
        out = self._run(
            _proc_job_solve_stack, stack, stack[:, self.n * self.b :], self.batched
        )
        x = np.concatenate([o[0] for o in out] + [out[0][1]], axis=1)
        return x[0] if squeeze else x

    def solve_lt_stack(self, rhs_stack: np.ndarray) -> np.ndarray:
        stack, squeeze = as_rhs_stack(rhs_stack, self.N)
        out = self._run(
            _proc_job_solve_lt_stack, stack, stack[:, self.n * self.b :], self.batched
        )
        x = np.concatenate([o[0] for o in out] + [out[0][1]], axis=1)
        return x[0] if squeeze else x

    def _solve_lanes(self, stacks: list, job) -> list:
        norm = [as_rhs_stack(s, self.N)[0] for s in stacks]
        tips = [s[:, self.n * self.b :] for s in norm]
        out = self._run(job, norm, tips, self.batched)
        return [
            np.concatenate([o[i][0] for o in out] + [out[0][i][1]], axis=1)
            for i in range(len(stacks))
        ]

    def solve_stack_lanes(self, stacks: list) -> list:
        """Multi-lane solve: one worker epoch, one collective round.

        Bit-identical per lane to :meth:`solve_stack` — and to the
        thread-backed :class:`DistributedBTAFactor` lanes (the collectives
        reduce in rank order on both transports).
        """
        return self._solve_lanes(stacks, _proc_job_solve_stack_lanes)

    def solve_lt_stack_lanes(self, stacks: list) -> list:
        """Backward-only multi-lane solve (see :meth:`solve_stack_lanes`)."""
        return self._solve_lanes(stacks, _proc_job_solve_lt_stack_lanes)

    def selected_inverse_diagonal(self) -> np.ndarray:
        if self._selinv_diag is None:
            out = self._run(_proc_job_selinv_diag, self.batched)
            self._selinv_diag = np.concatenate([o[0] for o in out] + [out[0][1]])
        return self._selinv_diag.copy()

    def solve_and_selected_inverse_diagonal(self, rhs: np.ndarray) -> tuple:
        rhs = np.asarray(rhs, dtype=np.float64)
        out = self._run(_proc_job_solve_and_selinv, rhs, rhs[self.n * self.b :], self.batched)
        x = np.concatenate([o[0] for o in out] + [out[0][1]])
        var = np.concatenate([o[2] for o in out] + [out[0][3]])
        if self._selinv_diag is None:
            self._selinv_diag = var.copy()
        return x, var

    def sample(self, k: int, rng: np.random.Generator, *, mean: np.ndarray | None = None):
        if k < 1:
            raise ValueError(f"need k >= 1 samples, got {k}")
        z = rng.standard_normal((k, self.N))
        x = self.solve_lt_stack(z)
        if mean is not None:
            x += np.asarray(mean, dtype=np.float64)[None, :]
        return x

    def close(self) -> None:
        self._session.close()

    def __enter__(self) -> "ProcDistributedBTAFactor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def d_factorize_proc(
    A: BTAMatrix,
    P: int,
    *,
    lb: float = 1.6,
    batched: bool | None = None,
    start_method: str | None = None,
) -> ProcDistributedBTAFactor:
    """Distributed factorization over ``P`` worker *processes*.

    The factorization epoch runs immediately; the returned handle keeps
    the workers (and their resident factor slices) alive for later
    solve/selected-inverse/sampling epochs.  Close the handle when done.
    """
    return ProcDistributedBTAFactor(A, P, lb=lb, batched=batched, start_method=start_method)


@dataclass(frozen=True)
class NPDJitterPolicy:
    """Opt-in escalating diagonal-jitter recovery for non-SPD matrices.

    When a factorization hits :class:`NotPositiveDefiniteError`, the
    recovery chain retries on a *fresh copy* of the pristine input with
    ``eps * scale`` added to every diagonal entry (``scale`` = mean
    absolute diagonal entry of the input), escalating ``eps`` from
    ``initial`` by ``growth`` per rung for at most ``max_tries`` rungs.
    A success reports the absolute jitter on the handle
    (``applied_jitter``) and warns (:class:`NPDJitterWarning`) — never
    silent.  Exhausting the rungs re-raises the final
    ``NotPositiveDefiniteError``.
    """

    initial: float = 1e-8
    growth: float = 100.0
    max_tries: int = 4

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise ValueError(f"initial jitter must be positive, got {self.initial}")
        if self.growth <= 1:
            raise ValueError(f"growth must be > 1, got {self.growth}")
        if self.max_tries < 1:
            raise ValueError(f"max_tries must be >= 1, got {self.max_tries}")

    def rungs(self):
        eps = self.initial
        for _ in range(self.max_tries):
            yield eps
            eps *= self.growth


def _resolve_jitter(jitter) -> NPDJitterPolicy | None:
    if jitter is None or jitter is False:
        return None
    if jitter is True:
        return NPDJitterPolicy()
    if not isinstance(jitter, NPDJitterPolicy):
        raise TypeError(f"jitter must be None, bool, or NPDJitterPolicy, got {jitter!r}")
    return jitter


def _diag_scale(A: BTAMatrix) -> float:
    """Mean absolute diagonal entry — the jitter's relative unit."""
    total = float(abs(A.diag.diagonal(axis1=1, axis2=2)).sum())
    count = A.n * A.b
    if A.a:
        total += float(abs(A.tip.diagonal()).sum())
        count += A.a
    scale = total / count
    return scale if scale > 0 else 1.0


def _with_diag_jitter(A: BTAMatrix, amount: float) -> BTAMatrix:
    """A fresh copy of ``A`` with ``amount`` added to every diagonal entry."""
    Aj = A.copy()
    ib = np.arange(A.b)
    Aj.diag[:, ib, ib] += amount
    if A.a:
        ia = np.arange(A.a)
        Aj.tip[ia, ia] += amount
    return Aj


def factorize(
    A: BTAMatrix,
    *,
    overwrite: bool = False,
    batched: bool | None = None,
    jitter: bool | NPDJitterPolicy | None = None,
) -> BTAFactor:
    """Factorize ``A = L L^T`` and return the sequential handle.

    ``overwrite=True`` reuses ``A``'s storage for the factor (the
    caller's matrix is destroyed) — the memory-lean mode of the INLA
    objective, where precision matrices are rebuilt every evaluation.

    ``jitter`` opts into the audited NPD recovery chain (``True`` for the
    default :class:`NPDJitterPolicy`, or a custom policy).  A matrix that
    factorizes cleanly is returned bit-identically to the ``jitter=None``
    path — recovery never changes the bits of a successful result — and a
    recovered factorization reports the added diagonal on the handle's
    ``applied_jitter`` and via :class:`NPDJitterWarning`.  With jitter
    active the first attempt never overwrites the caller's matrix (the
    pristine values seed every retry); ``overwrite=True`` then only
    grants permission to drop the input after the outcome is decided.
    """
    policy = _resolve_jitter(jitter)
    if policy is None:
        return BTAFactor(chol=pobtaf(A, overwrite=overwrite, batched=batched), batched=batched)
    try:
        # Never in place: a mid-factorization NPD abort would corrupt the
        # pristine values every recovery rung must start from.
        return BTAFactor(chol=pobtaf(A, overwrite=False, batched=batched), batched=batched)
    except NotPositiveDefiniteError:
        pass
    scale = _diag_scale(A)
    last_exc: NotPositiveDefiniteError | None = None
    for eps in policy.rungs():
        amount = eps * scale
        try:
            chol = pobtaf(_with_diag_jitter(A, amount), overwrite=True, batched=batched)
        except NotPositiveDefiniteError as exc:
            last_exc = exc
            continue
        warnings.warn(
            f"factorization succeeded only after adding {amount:.3e} "
            f"(= {eps:.1e} x mean |diag|) to the diagonal",
            NPDJitterWarning,
            stacklevel=2,
        )
        return BTAFactor(chol=chol, batched=batched, applied_jitter=amount)
    raise NotPositiveDefiniteError(
        f"matrix is not positive definite even after {policy.max_tries} "
        f"diagonal jitter attempts up to {eps * scale:.3e}"
    ) from last_exc


def d_factorize(
    A: BTAMatrix, P: int, *, lb: float = 1.6, batched: bool | None = None
) -> DistributedBTAFactor:
    """Distributed factorization over ``P`` SPMD ranks, returning the handle.

    One collective ``d_pobtaf`` epoch; the per-rank factors (and the
    shared reduced-system factor) persist on the handle for
    every later solve / selected-inversion / sampling round.  The global
    log-determinant is computed in the same epoch — it costs one scalar
    Allreduce against the already-synchronized ranks — and cached.
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    slices = partition_matrix(A, P, lb=lb)

    def rank_fn(comm):
        f = d_pobtaf(slices[comm.Get_rank()], comm, batched=batched)
        return f, f.logdet(comm, batched=batched)

    out = _run_spmd_spd(P, rank_fn)
    return DistributedBTAFactor(
        shape3=A.shape3,
        factors=[o[0] for o in out],
        batched=batched,
        _logdet=out[0][1],
    )
