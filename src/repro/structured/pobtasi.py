"""``pobtasi`` — sequential selected inversion of a BTA matrix.

Computes exactly the entries of ``X = A^{-1}`` that are structurally
nonzero in ``A`` (diagonal, sub-diagonal, arrow blocks and tip) without
ever forming a dense inverse — the operation INLA needs for the posterior
marginal variances of the latent field (paper Sec. III-4 and III-A2).

Derivation.  With ``A = L L^T`` the inverse satisfies ``X L = L^{-T}``.
Restricting to block column ``i`` of ``L`` (nonzeros at rows
``{i, i+1, tip}``) gives, for rows ``r > i`` inside the pattern:

    X[r, i] = -(X[r, i+1] L[i+1, i] + X[r, t] L[t, i]) L[i, i]^{-1}

and on the diagonal (``L^{-T}`` is upper triangular):

    X[i, i] = (L[i, i]^{-T} - X[i+1, i]^T L[i+1, i] - X[t, i]^T L[t, i])
              L[i, i]^{-1}

which closes a backward recursion starting from the tip,
``X[t, t] = L[t, t]^{-T} L[t, t]^{-1}``.  Total cost is again
``O(n (b^3 + a b^2))`` — the same order as the factorization, matching the
microbenchmark observation of paper Fig. 5.

The recursion is loop-carried (column ``i`` needs ``X[i+1, i+1]``), but on
the batched path every right-division by ``L[i, i]`` becomes a GEMM
against the cached stacked inverses, so each step is pure batched-GEMM
work — the kernel mix the paper runs on the GPU.
"""

from __future__ import annotations

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.structured import batched as bk
from repro.structured.bta import BTAMatrix
from repro.structured.kernels import (
    right_solve_lower,
    solve_lower_t,
    tri_inverse_lower,
)
from repro.structured.pobtaf import BTACholesky


def _pobtasi_blocked(chol: BTACholesky, X: BTAMatrix) -> None:
    """Reference per-block backward recursion via the SciPy kernels."""
    L = chol.factor
    n, b, a = L.n, L.b, L.a

    if a:
        tip_inv = tri_inverse_lower(L.tip)
        X.tip[...] = tip_inv.T @ tip_inv

    # Backward recursion over block columns.
    for i in range(n - 1, -1, -1):
        li = L.diag[i]
        has_next = i + 1 < n
        lo = L.lower[i] if has_next else None
        ar = L.arrow[i] if a else None

        # Off-diagonal selected blocks of column i.
        if has_next:
            # X[i+1, i]
            acc_next = X.diag[i + 1] @ lo
            if a:
                acc_next += X.arrow[i + 1].T @ ar
            X.lower[i] = -right_solve_lower(li, acc_next)
            if a:
                # X[t, i]
                acc_tip = X.arrow[i + 1] @ lo + X.tip @ ar
                X.arrow[i] = -right_solve_lower(li, acc_tip)
        elif a:
            X.arrow[i] = -right_solve_lower(li, X.tip @ ar)

        # Diagonal block.
        acc_diag = solve_lower_t(li, np.eye(b))
        if has_next:
            acc_diag -= X.lower[i].T @ lo
        if a:
            acc_diag -= X.arrow[i].T @ ar
        X.diag[i] = right_solve_lower(li, acc_diag)
        # Enforce exact symmetry (the recursion is symmetric only in exact
        # arithmetic; downstream variance extraction expects symmetry).
        X.diag[i] = 0.5 * (X.diag[i] + X.diag[i].T)


def _pobtasi_batched(chol: BTACholesky, X: BTAMatrix, xb=None, xt=None) -> None:
    """Backward recursion where every right-division is a GEMM against the
    cached ``L[i,i]^{-1}`` stack (see ``BTACholesky.diag_inverses``).

    When solve panels are given (``xb`` the ``(n, b, k)`` right-hand-side
    panels already forward-swept, ``xt`` the ``(a, k)`` tip panel), the
    backward substitution ``L^T x = z`` rides the same ``i = n-1..0``
    loop and the same cached-inverse operands — this is the fused path
    behind :func:`pobtasi_with_solve`.
    """
    L = chol.factor
    n, a = L.n, L.a
    inv = chol.diag_inverses()
    fused = xb is not None

    if a:
        tip_inv = bk.tri_inverse_lower_block(L.tip, backend=chol.get_backend())
        X.tip[...] = tip_inv.T @ tip_inv
        if fused:
            # Solve's tip back-propagation: one flat GEMM over the stack.
            xt[...] = bk.solve_lower_t_block(L.tip, xt, backend=chol.get_backend())
            x_flat = xb.reshape(n * L.b, -1)
            x_flat -= chol.arrow_flat().T @ xt

    cur = None  # backward-solve carry (solution panel of block i + 1)
    for i in range(n - 1, -1, -1):
        inv_i = inv[i]
        has_next = i + 1 < n
        lo = L.lower[i] if has_next else None
        ar = L.arrow[i] if a else None

        if fused:
            cur = inv_i.T @ (xb[i] - lo.T @ cur) if has_next else inv_i.T @ xb[i]
            xb[i] = cur

        if has_next:
            acc_next = X.diag[i + 1] @ lo
            if a:
                acc_next += X.arrow[i + 1].T @ ar
            X.lower[i] = -(acc_next @ inv_i)
            if a:
                X.arrow[i] = -((X.arrow[i + 1] @ lo + X.tip @ ar) @ inv_i)
        elif a:
            X.arrow[i] = -(X.tip @ ar @ inv_i)

        # Diagonal block: L^{-T} is exactly inv_i^T here.
        acc_diag = inv_i.T.copy()
        if has_next:
            acc_diag -= X.lower[i].T @ lo
        if a:
            acc_diag -= X.arrow[i].T @ ar
        X.diag[i] = bk.symmetrize(acc_diag @ inv_i)


def _pobtasi_batched_diag(chol: BTACholesky, xb=None, xt=None) -> np.ndarray:
    """Diagonal-only Takahashi recursion (carry-based, no ``X`` stacks).

    Every production consumer of the selected inverse — marginal
    variances, exceedance probabilities, the fused mean+variance pass —
    reads only ``diag(A^{-1})``; the full block pattern is needed for
    validation only.  This variant runs the *same* per-step operations as
    :func:`_pobtasi_batched` (same expressions, same order — the
    returned diagonal is bit-identical) but keeps the ``X[i+1, i+1]`` /
    ``X[t, i+1]`` blocks as loop carries instead of materializing the
    full ``O(n b^2)`` inverse: no block-stack allocation, and the working
    set per step stays cache-resident.  Flop count is unchanged
    (:func:`repro.perfmodel.flops.bta_selected_inversion_flops`).

    Optional ``xb``/``xt`` fuse the backward substitution of a solve
    into the recursion, exactly like :func:`_pobtasi_batched`.
    """
    L = chol.factor
    n, b, a = L.n, L.b, L.a
    inv = chol.diag_inverses()
    be = chol.get_backend()
    fused = xb is not None
    out = be.empty((L.N,))

    tt = None
    if a:
        tip_inv = bk.tri_inverse_lower_block(L.tip, backend=be)
        tt = tip_inv.T @ tip_inv
        out[n * b :] = be.xp.diagonal(tt)
        if fused:
            xt[...] = bk.solve_lower_t_block(L.tip, xt, backend=be)
            x_flat = xb.reshape(n * b, -1)
            x_flat -= chol.arrow_flat().T @ xt

    cur = None  # backward-solve carry (solution panel of block i + 1)
    x_next = None  # X[i+1, i+1] carry
    xa_next = None  # X[t, i+1] carry
    for i in range(n - 1, -1, -1):
        inv_i = inv[i]
        has_next = i + 1 < n
        lo = L.lower[i] if has_next else None
        ar = L.arrow[i] if a else None

        if fused:
            cur = inv_i.T @ (xb[i] - lo.T @ cur) if has_next else inv_i.T @ xb[i]
            xb[i] = cur

        x_off = None
        if has_next:
            acc_next = x_next @ lo
            if a:
                acc_next += xa_next.T @ ar
            x_off = -(acc_next @ inv_i)
            if a:
                xa = -((xa_next @ lo + tt @ ar) @ inv_i)
        elif a:
            xa = -(tt @ ar @ inv_i)

        acc_diag = inv_i.T.copy()
        if has_next:
            acc_diag -= x_off.T @ lo
        if a:
            acc_diag -= xa.T @ ar
        x_next = bk.symmetrize(acc_diag @ inv_i)
        if a:
            xa_next = xa
        out[i * b : (i + 1) * b] = be.xp.diagonal(x_next)
    return out


def pobtasi(chol: BTACholesky, *, batched: bool | None = None) -> BTAMatrix:
    """Selected inverse of the BTA matrix factorized in ``chol``.

    Returns a :class:`BTAMatrix` whose blocks hold the corresponding blocks
    of ``A^{-1}`` (symmetric; lower-triangle layout like the input).
    """
    X = BTAMatrix.zeros(chol.factor.shape3, backend=chol.get_backend())
    if batched_enabled(batched, chol.get_backend()):
        _pobtasi_batched(chol, X)
    else:
        _pobtasi_blocked(chol, X)
    return X


def pobtasi_with_solve(
    chol: BTACholesky, rhs: np.ndarray, *, batched: bool | None = None
) -> tuple:
    """Selected inverse *and* ``A^{-1} rhs`` from one factor, fused.

    The INLA marginals need both the conditional means (a solve) and the
    marginal variances (a selected inversion) at the mode; historically
    that cost two factorizations of ``Qc``.  This entry point reuses one
    :class:`BTACholesky` for both: the forward sweep runs first, then the
    backward substitution rides the same ``i = n-1..0`` recursion (and the
    same cached ``L[i,i]^{-1}`` GEMM operands) as the selected-inversion
    backward pass.  ``rhs`` may be a vector ``(N,)`` or columns ``(N, k)``
    (for row-major ``(k, N)`` stacks go through
    :mod:`repro.structured.multirhs` and transpose).

    Returns ``(X, x)`` — the selected inverse and the solution in the
    layout of ``rhs``.  The reference path (``batched=False``) runs the
    two per-block passes separately; agreement is regression-tested to
    1e-10.
    """
    from repro.structured.pobtas import _prepare, forward_sweep_panels

    if not batched_enabled(batched, chol.get_backend()):
        from repro.structured.pobtas import pobtas

        return pobtasi(chol, batched=False), pobtas(chol, rhs, batched=False)

    L = chol.factor
    _, x, xb, xt, squeeze = _prepare(chol, rhs)
    forward_sweep_panels(chol, xb, xt, L.a, L.n)
    X = BTAMatrix.zeros(chol.factor.shape3, backend=chol.get_backend())
    _pobtasi_batched(chol, X, xb=xb, xt=xt)
    return X, (x[:, 0] if squeeze else x)


def selected_inverse_diagonal(chol: BTACholesky, *, batched: bool | None = None) -> np.ndarray:
    """Scalar diagonal of ``A^{-1}`` (the posterior marginal variances).

    On the batched path this runs the carry-based diagonal-only recursion
    (:func:`_pobtasi_batched_diag`) — bit-identical values to
    ``pobtasi(chol).diagonal()`` without materializing the full selected
    inverse.  The reference path keeps the full per-block recursion as
    ground truth.
    """
    if batched_enabled(batched, chol.get_backend()):
        return _pobtasi_batched_diag(chol)
    return pobtasi(chol, batched=False).diagonal()


def solve_and_selected_inverse_diagonal(
    chol: BTACholesky, rhs: np.ndarray, *, batched: bool | None = None
) -> tuple:
    """``(x, var)`` — conditional mean and marginal variances, fused.

    The INLA marginals' hot pair, via the diagonal-only Takahashi
    recursion with the solve's backward substitution riding the same
    loop (the carry-based analogue of :func:`pobtasi_with_solve`).
    ``rhs`` may be a vector ``(N,)`` or columns ``(N, k)``.  The
    reference path runs the two per-block passes separately.
    """
    from repro.structured.pobtas import _prepare, forward_sweep_panels

    if not batched_enabled(batched, chol.get_backend()):
        from repro.structured.pobtas import pobtas

        return (
            pobtas(chol, rhs, batched=False),
            pobtasi(chol, batched=False).diagonal(),
        )

    L = chol.factor
    _, x, xb, xt, squeeze = _prepare(chol, rhs)
    forward_sweep_panels(chol, xb, xt, L.a, L.n)
    var = _pobtasi_batched_diag(chol, xb=xb, xt=xt)
    return (x[:, 0] if squeeze else x), var
