"""Theta-batched factorization — one ``pobtaf`` sweep for a whole stencil.

The paper's S1 strategy evaluates the ``2 d + 1`` objective stencil in
parallel because every point is independent — but the per-theta handle
API still pays ``2 (2 d + 1)`` *separate* ``pobtaf`` sweeps per BFGS
iteration even though all stencil points share the exact same BTA block
structure and differ only in values.  This module adds the missing axis:
:func:`factorize_batch` stacks ``t`` same-shape BTA matrices into
``(t, n, b, b)`` theta-leading arrays and runs **one** batched
elimination sweep whose per-step kernels operate on ``(t, b, b)`` stacks
(stacked Cholesky+inverse via
:func:`repro.structured.batched.batched_chol_and_inverse`, stacked GEMMs
via ``matmul`` broadcasting) — ``n`` loop-carried steps total instead of
``t n``.  On a device backend this is the shape the CuPy path wants: one
fat batched kernel launch per chain step instead of ``2 d + 1`` thin
ones.

The returned :class:`BTAFactorBatch` owns the shared theta-stacked
factor arrays (Cholesky blocks, cached triangular inverses, flat arrow
rows) and serves

- ``logdets()`` — all ``t`` log-determinants from one vectorized pass,
- ``solve_each(rhs_stack)`` — one right-hand side *per theta* through a
  single theta-batched forward/backward sweep (the conditional-mean
  solve of every stencil point at once),
- ``factor(j)`` / ``factors()`` — full per-theta
  :class:`~repro.structured.factor.BTAFactor` handles built on zero-copy
  views of the shared stacks, so selected inversion, stacked solves and
  sampling for any single theta reuse the batch factorization.

Path contract.  Each theta's slab undergoes the *identical* per-step
operations as the sequential batched path
(:func:`repro.structured.pobtaf._pobtaf_batched`): at ``t = 1`` results
are bit-for-bit equal to ``factorize(A, batched=True)``, and the looped
``REPRO_BATCHED=0`` reference agrees to 1e-10
(``tests/structured/test_multifactor.py``).  The
:data:`repro.structured.pobtaf.FACTORIZATIONS` counter counts
factorization *sweeps*: one ``factorize_batch`` call increments it once,
however many thetas it stacks — which is exactly what the evaluator's
accounting tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import faults
from repro.backend.protocol import Backend, backend_for
from repro.structured import batched as bk
from repro.structured.bta import BTAMatrix, BTAShape, BTAStack
from repro.structured.factor import BTAFactor, NPDJitterPolicy, _resolve_jitter, factorize
from repro.structured.kernels import NotPositiveDefiniteError
from repro.structured.pobtaf import FACTORIZATIONS, BTACholesky

__all__ = ["BTAFactorBatch", "factorize_batch"]


def _flatten_arrows(arrow: np.ndarray, *, backend: Backend | None = None) -> np.ndarray:
    """Arrow stacks ``(t, n, a, b)`` as contiguous ``(t, a, n b)`` slabs."""
    t, n, a, b = arrow.shape
    xp = (backend if backend is not None else backend_for(arrow)).xp
    return xp.ascontiguousarray(arrow.transpose(0, 2, 1, 3)).reshape(t, a, n * b)


@dataclass
class BTAFactorBatch:
    """``t`` same-shape BTA Cholesky factors sharing theta-stacked storage.

    Produced by :func:`factorize_batch`; all arrays carry the theta axis
    first.  Per-theta consumers go through :meth:`factor` (zero-copy
    views); cross-theta consumers use the batched :meth:`logdets` /
    :meth:`solve_each` sweeps.
    """

    shape3: BTAShape
    diag: np.ndarray  # (t, n, b, b) lower Cholesky factors
    lower: np.ndarray  # (t, n-1, b, b) sub-diagonal factor blocks
    arrow: np.ndarray  # (t, n, a, b) arrow-row factor blocks
    tip: np.ndarray  # (t, a, a) tip factors
    inv: np.ndarray  # (t, n, b, b) cached L[i,i]^{-1} stacks
    arrow_flat: np.ndarray | None  # (t, a, n b) flat arrow rows (None if a == 0)
    backend: Backend
    #: Per-theta diagonal jitter the NPD recovery chain added (None when the
    #: batch factorized cleanly; lanes that needed none report 0.0).
    applied_jitter: np.ndarray | None = field(default=None, repr=False)
    _logdets: np.ndarray | None = field(default=None, repr=False)
    _factors: dict = field(default_factory=dict, repr=False)

    # -- structure ---------------------------------------------------------

    @property
    def t(self) -> int:
        """Number of stacked thetas (stencil width)."""
        return self.diag.shape[0]

    @property
    def n(self) -> int:
        return self.shape3.n

    @property
    def b(self) -> int:
        return self.shape3.b

    @property
    def a(self) -> int:
        return self.shape3.a

    @property
    def N(self) -> int:
        return self.shape3.N

    def __len__(self) -> int:
        return self.t

    # -- batched operations ------------------------------------------------

    def logdets(self) -> np.ndarray:
        """All ``t`` log-determinants, one vectorized pass (cached)."""
        if self._logdets is None:
            totals = bk.batched_logdets_from_chol_diag(self.diag, backend=self.backend)
            if self.a:
                totals = totals + bk.batched_logdets_from_chol_diag(
                    self.tip, backend=self.backend
                )
            self._logdets = totals
        return self._logdets.copy()

    def solve_each(self, rhs_stack: np.ndarray) -> np.ndarray:
        """Solve ``A_j x_j = rhs_stack[j]`` for every theta at once.

        ``rhs_stack`` is row-major ``(t, N)`` — one right-hand side per
        stacked matrix (each stencil point's information vector).  One
        theta-batched forward + backward sweep: every per-step operand is
        a ``(t, b, 1)`` panel GEMMed against the shared inverse stacks,
        mirroring :func:`repro.structured.pobtas.forward_sweep_panels` /
        ``backward_sweep_panels`` per theta.
        """
        rhs_stack = self.backend.asarray(rhs_stack)
        t, n, b, a = self.t, self.n, self.b, self.a
        if rhs_stack.shape != (t, self.N):
            raise ValueError(f"rhs stack must be ({t}, {self.N}), got {rhs_stack.shape}")
        xp = self.backend.xp
        cols = xp.array(rhs_stack[..., None], order="C", copy=True)  # (t, N, 1)
        xb = cols[:, : n * b].reshape(t, n, b, 1)
        xt = cols[:, n * b :]  # (t, a, 1)
        inv, lw = self.inv, self.lower
        inv_t = inv.transpose(0, 1, 3, 2)
        lw_t = lw.transpose(0, 1, 3, 2)

        # ---- forward sweep: L z = rhs (theta-batched panels) -------------
        cur = inv[:, 0] @ xb[:, 0]
        xb[:, 0] = cur
        for i in range(1, n):
            cur = inv[:, i] @ (xb[:, i] - lw[:, i - 1] @ cur)
            xb[:, i] = cur
        if a:
            xt -= self.arrow_flat @ cols[:, : n * b]
            xt[...] = bk.batched_solve_lower(self.tip, xt, backend=self.backend)

        # ---- backward sweep: L^T x = z -----------------------------------
        if a:
            xt[...] = bk.batched_solve_lower_t(self.tip, xt, backend=self.backend)
            cols[:, : n * b] -= self.arrow_flat.transpose(0, 2, 1) @ xt
        cur = inv_t[:, n - 1] @ xb[:, n - 1]
        xb[:, n - 1] = cur
        for i in range(n - 2, -1, -1):
            cur = inv_t[:, i] @ (xb[:, i] - lw_t[:, i] @ cur)
            xb[:, i] = cur
        return cols[..., 0]

    # -- per-theta views ---------------------------------------------------

    def factor(self, j: int) -> BTAFactor:
        """Full :class:`BTAFactor` handle for theta ``j`` (zero-copy views).

        The handle's Cholesky blocks, cached triangular inverses and flat
        arrow row are views into the shared theta stacks — selected
        inversion, stacked solves and sampling for this theta all reuse
        the batch factorization without any further ``pobtaf``.  The
        execution path is pinned to the batched kernels (the sweeps GEMM
        against the cached inverses the batch sweep produced).
        """
        j = int(j)
        if not -self.t <= j < self.t:
            raise IndexError(f"theta index {j} out of range for batch of {self.t}")
        j %= self.t
        cached = self._factors.get(j)
        if cached is not None:
            return cached
        chol = BTACholesky(
            factor=BTAMatrix(self.diag[j], self.lower[j], self.arrow[j], self.tip[j]),
            _diag_inv=self.inv[j],
            _arrow_flat=None if self.arrow_flat is None else self.arrow_flat[j],
            backend=self.backend,
        )
        f = BTAFactor(
            chol=chol,
            batched=True,
            applied_jitter=(
                0.0 if self.applied_jitter is None else float(self.applied_jitter[j])
            ),
        )
        if self._logdets is not None:
            f._logdet = float(self._logdets[j])
        self._factors[j] = f
        return f

    def factors(self) -> list:
        """All ``t`` per-theta handles, in stacking order."""
        return [self.factor(j) for j in range(self.t)]


def _pristine_lane(pristine, j: int) -> BTAMatrix:
    """Lane ``j`` of the pre-elimination values, safe to hand to factorize."""
    if isinstance(pristine, BTAStack):
        return BTAMatrix(
            pristine.diag[j].copy(),
            pristine.lower[j].copy(),
            pristine.arrow[j].copy(),
            pristine.tip[j].copy(),
        )
    return pristine[j]  # BTAMatrix sequence input: never modified by the batch


def _recover_batch(pristine, t: int, be: Backend, policy: NPDJitterPolicy) -> BTAFactorBatch:
    """Per-lane NPD recovery: refactorize every theta from pristine values.

    Each lane goes through :func:`repro.structured.factor.factorize` with
    the batched kernels pinned and the caller's jitter policy.  Lanes that
    factorize cleanly report ``applied_jitter`` 0.0 and are bit-identical
    to the fault-free batch result (the documented ``factorize_batch`` ==
    per-theta ``factorize(batched=True)`` contract); only lanes that
    genuinely need jitter differ — audited, never silent.
    """
    lanes = [factorize(_pristine_lane(pristine, j), batched=True, jitter=policy) for j in range(t)]
    xp = be.xp
    batch = BTAFactorBatch(
        shape3=lanes[0].shape3,
        diag=xp.stack([f.chol.factor.diag for f in lanes]),
        lower=xp.stack([f.chol.factor.lower for f in lanes]),
        arrow=xp.stack([f.chol.factor.arrow for f in lanes]),
        tip=xp.stack([f.chol.factor.tip for f in lanes]),
        inv=xp.stack([f.chol._diag_inv for f in lanes]),
        arrow_flat=(
            xp.stack([f.chol._arrow_flat for f in lanes]) if lanes[0].a else None
        ),
        backend=be,
        applied_jitter=np.array([f.applied_jitter for f in lanes]),
    )
    return batch


def factorize_batch(
    mats: Sequence[BTAMatrix] | BTAStack,
    *,
    backend: Backend | None = None,
    overwrite: bool = False,
    jitter: bool | NPDJitterPolicy | None = None,
) -> BTAFactorBatch:
    """Factorize ``t`` same-shape BTA matrices in one batched sweep.

    The matrices are stacked along a leading theta axis and eliminated
    together: per chain step one stacked Cholesky+inverse over the
    ``(t, b, b)`` diagonal blocks and two stacked GEMMs, then one
    theta-batched deferred arrow substitution and a single flattened tip
    contraction per theta — ``n`` loop-carried steps total, independent
    of ``t``.  Counts as **one** factorization sweep on
    :data:`repro.structured.pobtaf.FACTORIZATIONS`.

    ``mats`` is either a sequence of :class:`BTAMatrix` (stacked here —
    the inputs are not modified) or an already theta-first
    :class:`~repro.structured.bta.BTAStack`, the layout
    ``CoregionalSTModel.assemble_batch`` produces.  With a stack,
    ``overwrite=True`` eliminates in the caller's storage — zero copies
    between assembly and factorization, the memory-lean mode of the
    stencil evaluator whose stacks are rebuilt every batch.

    ``jitter`` opts into the audited per-lane NPD recovery chain: on any
    failure the whole batch is refactorized lane by lane from pristine
    values through ``factorize(..., batched=True, jitter=policy)``.
    Lanes needing no jitter stay bit-identical to the fault-free batch;
    recovered lanes report their added diagonal in the returned batch's
    ``applied_jitter`` array.  With ``overwrite=True`` and jitter active,
    a pristine copy of the stack is retained until the outcome is decided.

    Raises
    ------
    NotPositiveDefiniteError
        If *any* stacked matrix fails the factorization (and, when
        ``jitter`` is set, per-lane recovery failed too).  The caller
        cannot tell which theta failed — evaluators fall back to the
        per-theta path to resolve infeasible stencil points.
    """
    policy = _resolve_jitter(jitter)
    pristine = None  # pre-elimination values, only retained when recovery may need them
    if isinstance(mats, BTAStack):
        if overwrite:
            stack = mats
            if policy is not None:
                pristine = BTAStack(
                    mats.diag.copy(), mats.lower.copy(), mats.arrow.copy(), mats.tip.copy()
                )
        else:
            stack = BTAStack(
                mats.diag.copy(), mats.lower.copy(), mats.arrow.copy(), mats.tip.copy()
            )
            pristine = mats
    else:
        mats = list(mats)
        if not mats:
            raise ValueError("need at least one matrix to factorize")
        stack = BTAStack.from_matrices(mats)
        pristine = mats
    shape3 = stack.shape3
    FACTORIZATIONS.increment()
    n, a = shape3.n, shape3.a
    be = backend if backend is not None else backend_for(stack.diag)
    try:
        return _eliminate_stack(stack, shape3, n, a, be)
    except NotPositiveDefiniteError:
        if policy is None:
            raise
        return _recover_batch(pristine, stack.diag.shape[0], be, policy)


def _eliminate_stack(stack: BTAStack, shape3: BTAShape, n: int, a: int, be: Backend):
    """The in-place theta-batched elimination sweep (one launch per step)."""
    # Chaos hook: an injected NPD (before any block is touched) exercises
    # the per-lane recovery path against still-pristine values.
    faults.fault_point(
        "structured.factorize_batch",
        lambda: NotPositiveDefiniteError("injected fault at 'structured.factorize_batch'"),
    )
    diag, lower, arrow, tip = stack.diag, stack.lower, stack.arrow, stack.tip
    inv = be.xp.empty_like(diag)

    # ---- block-tridiagonal chain (loop-carried, theta-batched) -----------
    for i in range(n - 1):
        li, linv = bk.batched_chol_and_inverse(diag[:, i], backend=be)
        diag[:, i] = li
        inv[:, i] = linv
        G = lower[:, i] @ linv.transpose(0, 2, 1)
        lower[:, i] = G
        diag[:, i + 1] -= G @ G.transpose(0, 2, 1)
    li, linv = bk.batched_chol_and_inverse(diag[:, n - 1], backend=be)
    diag[:, n - 1] = li
    inv[:, n - 1] = linv

    # ---- arrow row: deferred forward substitution per theta --------------
    arrow_flat = None
    if a:
        cur = arrow[:, 0] @ inv[:, 0].transpose(0, 2, 1)
        arrow[:, 0] = cur
        for i in range(1, n):
            cur = (arrow[:, i] - cur @ lower[:, i - 1].transpose(0, 2, 1)) @ inv[
                :, i
            ].transpose(0, 2, 1)
            arrow[:, i] = cur
        arrow_flat = _flatten_arrows(arrow, backend=be)
        tip -= arrow_flat @ arrow_flat.transpose(0, 2, 1)
        for j in range(tip.shape[0]):
            tip[j] = bk.chol_lower_block(tip[j], backend=be)
    return BTAFactorBatch(
        shape3=shape3,
        diag=diag,
        lower=lower,
        arrow=arrow,
        tip=tip,
        inv=inv,
        arrow_flat=arrow_flat,
        backend=be,
    )
