"""Batched (stacked) block kernels for the structured solvers.

The paper's core performance claim is that every BTA kernel is expressed
through the batched NumPy/CuPy-compatible API, so the same solver source
drives host and device execution and never pays per-block dispatch
overhead in Python.  This module is that layer: every primitive operates
on a *stack* of blocks ``(m, b, b)`` (or ``(m, a, b)`` / ``(m, b, k)``)
and resolves its execution strategy from a
:class:`repro.backend.protocol.Backend` — passed explicitly by factors
(``backend=``) or inferred from the arrays via
:func:`repro.backend.protocol.backend_for` — so a registered CuPy backend
takes the device path unchanged.  The capability flags
(``has_lapack``/``has_batched_trsm``) decide between the looped-LAPACK
host path and the vectorized substitution below.

Two implementation strategies per triangular primitive:

- **host fast path** (NumPy inputs): direct LAPACK calls
  (``dtrtrs``/``dtrtri``/``dpotrf``) looped over the stack in the cheapest
  possible way — these wrappers cost ~3x less per call than the
  ``scipy.linalg.solve_triangular`` convenience layer used by the
  per-block reference kernels in :mod:`repro.structured.kernels`;
- **vectorized substitution fallback** (any other array module, or large
  stacks where the ``O(b)`` Python steps amortize): forward/backward
  substitution over the ``b`` rows, vectorized across the whole stack
  with batched ``matmul`` — the shape a ``cublas<t>trsmBatched`` call
  takes on the GPU.

Single-block ``*_block`` helpers are exported for the loop-carried Schur
recurrences, which cannot batch across the chain but do fuse their
operands (e.g. one TRSM for ``[lower; arrow]`` instead of two).

The per-block kernels in :mod:`repro.structured.kernels` remain the
reference implementation; ``REPRO_BATCHED=0`` routes every solver back to
them (see :func:`repro.backend.array_module.batched_enabled`).
"""

from __future__ import annotations

import os

import numpy as np
from scipy.linalg.lapack import dpotrf as _dpotrf, dtrtri as _dtrtri, dtrtrs as _dtrtrs

from repro.backend.array_module import batched_enabled, get_array_module
from repro.backend.protocol import Backend, backend_for
from repro.structured.kernels import NotPositiveDefiniteError

__all__ = [
    "NotPositiveDefiniteError",
    "batched_enabled",
    "batched_chol_lower",
    "batched_chol_and_inverse",
    "batched_solve_lower",
    "batched_solve_lower_t",
    "batched_right_solve_lower",
    "batched_right_solve_lower_t",
    "batched_tri_inverse_lower",
    "batched_logdet_from_chol_diag",
    "batched_logdets_from_chol_diag",
    "batched_gemm",
    "symmetrize",
    "chol_lower_block",
    "solve_lower_block",
    "solve_lower_t_block",
    "right_solve_lower_block",
    "right_solve_lower_t_block",
    "tri_inverse_lower_block",
]

# Stacks at least this many times taller than the block size switch from
# the looped-LAPACK host path to the vectorized substitution (the Python
# row loop is O(b) regardless of stack height, so tall stacks amortize it).
_SUBST_RATIO = 4
_SUBST_MIN = 32

# At or above this block size, recursive 2x2 splitting beats LAPACK's
# ``dtrtri`` (the half-size inversions recurse; the off-diagonal work runs
# as GEMM instead of Level-2 substitution).  The recursion is *full*: each
# half splits again until it falls under the threshold.
_TRTRI_SPLIT_MIN = 48

# At or above this block size, the recursive blocked POTRF(+TRTRI) beats
# the direct LAPACK calls.  Measured on this host (OpenBLAS, whose
# ``dpotrf`` is already blocked): the fused factor+inverse recursion wins
# 1.1-1.3x for b >= 128 and loses below; on hosts shipping the unblocked
# reference kernels (~2-3 GF/s vs ~50 GF/s GEMM) the crossover sits far
# lower, so the threshold is environment-overridable.
_POTRF_SPLIT_MIN = 128


def _potrf_split_min() -> int:
    """Recursive-POTRF threshold (``REPRO_POTRF_SPLIT`` overrides).

    :func:`repro.perfmodel.calibrate.recommend_potrf_split` measures the
    crossover on the current host and prints the recommended setting.
    """
    raw = os.environ.get("REPRO_POTRF_SPLIT", "").strip()
    return int(raw) if raw else _POTRF_SPLIT_MIN


def _resolve(backend: Backend | None, *arrays) -> Backend:
    """Explicit backend wins; otherwise infer from the array arguments.

    Factors thread their backend through every sweep (see
    :class:`repro.structured.factor.BTAFactor`), so per-call inference is
    only the fallback for direct kernel use.
    """
    return backend if backend is not None else backend_for(*arrays)


def _lapack_path(be: Backend) -> bool:
    """True when the looped direct-LAPACK host path is available."""
    return be.is_host and be.has_lapack


# ---------------------------------------------------------------------------
# Cholesky
# ---------------------------------------------------------------------------


def batched_chol_lower(stack, *, backend: Backend | None = None):
    """Lower Cholesky factors of a stack of SPD blocks ``(m, b, b)``.

    Dispatches to the array module's stacked ``cholesky`` (one C-level loop
    for NumPy, one batched kernel for CuPy).  Raises
    :class:`NotPositiveDefiniteError` if *any* block fails.
    """
    xp = _resolve(backend, stack).xp
    if stack.shape[-1] == 0 or stack.shape[0] == 0:
        return stack.copy()
    try:
        return xp.linalg.cholesky(stack)
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(str(exc)) from exc


def _dpotrf_checked(a, off=0):
    """``dpotrf`` with the NotPositiveDefinite diagnostic; ``off`` shifts
    the reported minor order so recursion leaves name the offending pivot
    of the *full* block, not the leaf submatrix."""
    c, info = _dpotrf(a, lower=1, clean=1)
    if info != 0:
        raise NotPositiveDefiniteError(
            f"leading minor of order {info + off} is not positive definite"
        )
    return c


def _chol_host(a, split, off=0):
    """Recursive blocked host POTRF.

    ``chol([[A11, .], [A21, A22]])``: factorize ``A11``, solve
    ``L21 = A21 L11^{-T}`` (one Level-3 TRSM), Schur-complement ``A22``
    with a GEMM, recurse on both halves.  Below ``split`` the direct
    LAPACK call is the leaf.  This moves the O(b^3) off-diagonal work of
    large blocks to GEMM speed, which lifts the factorization floor on
    hosts whose LAPACK ships unblocked reference kernels.
    """
    b = a.shape[0]
    if b < split:
        return _dpotrf_checked(a, off)
    h = b // 2
    l11 = _chol_host(a[:h, :h], split, off)
    # L21 = A21 L11^{-T}, via L11^{-1} A21^T = L21^T (only the lower
    # triangle of ``a`` is read, matching the LAPACK lower=1 contract).
    l21 = _trtrs_block(l11, np.ascontiguousarray(a[h:, :h].T), trans=0).T
    l22 = _chol_host(a[h:, h:] - l21 @ l21.T, split, off + h)
    out = np.zeros_like(a)
    out[:h, :h] = l11
    out[h:, :h] = l21
    out[h:, h:] = l22
    return out


def _chol_and_inverse_host(a, split, off=0):
    """Recursive blocked host ``(L, L^{-1})`` — factor and inverse together.

    The fused recursion shares the half-size factors between the POTRF
    and TRTRI recurrences::

        L   = [[L11, 0], [L21, L22]],  L21 = A21 I11^T
        L^-1= [[I11, 0], [-I22 (L21 I11), I22]]

    so every off-diagonal flop is GEMM.  Measured on this host the fusion
    beats ``dpotrf`` + ``dtrtri`` by 1.1-1.3x from ``b = 128`` up; the
    unblocked-reference-LAPACK regime the paper targets crosses over far
    earlier (see ``README.md``).
    """
    b = a.shape[0]
    if b < split:
        c = _dpotrf_checked(a, off)
        return c, _tri_inverse_host(c)
    h = b // 2
    l11, i11 = _chol_and_inverse_host(a[:h, :h], split, off)
    l21 = a[h:, :h] @ i11.T
    l22, i22 = _chol_and_inverse_host(a[h:, h:] - l21 @ l21.T, split, off + h)
    out = np.zeros_like(a)
    out[:h, :h] = l11
    out[h:, :h] = l21
    out[h:, h:] = l22
    inv = np.zeros_like(a)
    inv[:h, :h] = i11
    inv[h:, h:] = i22
    inv[h:, :h] = -(i22 @ (l21 @ i11))
    return out, inv


def chol_lower_block(a, *, backend: Backend | None = None):
    """Single-block ``chol`` for the loop-carried chains (low call overhead)."""
    be = _resolve(backend, a)
    if _lapack_path(be):
        if a.shape[0] == 0:
            return a.copy()
        return _chol_host(a, _potrf_split_min())
    return batched_chol_lower(a, backend=be)


def chol_and_inverse_block(a, *, backend: Backend | None = None):
    """``(L, L^{-1})`` of one SPD block — the batched chain's work-horse.

    The loop-carried Schur recurrences factorize one block and then apply
    ``L^{-T}`` to a (fused) right-hand side.  On hosts where GEMM runs an
    order of magnitude faster than LAPACK's reference TRSM (wide-SIMD
    CPUs; every GPU), explicitly inverting the small triangular factor and
    multiplying is faster than a triangular solve — and the inverse is
    exactly what the downstream sweeps (``pobtas``/``pobtasi``) reuse, so
    it is cached rather than recomputed there.  ``dpotrf(clean=1)`` zeroes
    the strict upper triangle, so ``dtrtri``'s output is clean for GEMM
    use without an extra ``tril`` pass.
    """
    be = _resolve(backend, a)
    if _lapack_path(be):
        if a.shape[0] == 0:
            return a.copy(), a.copy()
        return _chol_and_inverse_host(a, _potrf_split_min())
    c = batched_chol_lower(a, backend=be)
    return c, batched_tri_inverse_lower(c[None], backend=be)[0]


def batched_chol_and_inverse(stack, *, backend: Backend | None = None):
    """``(L_i, L_i^{-1})`` of an SPD block stack ``(m, b, b)``.

    The multi-theta chain primitive: one theta-batched ``pobtaf`` sweep
    (see :mod:`repro.structured.multifactor`) factorizes the stencil's
    ``m`` independent diagonal blocks of step ``i`` in one call.  On the
    LAPACK host path each block runs the *identical* fused recursion as
    the single-block :func:`chol_and_inverse_block`, so a batch of one is
    bit-for-bit the per-theta path; a device backend with
    ``has_batched_potrf`` runs the stacked Cholesky plus the batched
    triangular inversion instead.
    """
    be = _resolve(backend, stack)
    m, b = stack.shape[0], stack.shape[-1]
    if m == 0 or b == 0:
        return stack.copy(), stack.copy()
    if _lapack_path(be) and not be.has_batched_potrf:
        split = _potrf_split_min()
        chol = np.empty_like(stack)
        inv = np.empty_like(stack)
        for i in range(m):
            chol[i], inv[i] = _chol_and_inverse_host(stack[i], split)
        return chol, inv
    chol = batched_chol_lower(stack, backend=be)
    return chol, batched_tri_inverse_lower(chol, backend=be)


# ---------------------------------------------------------------------------
# Triangular solves
# ---------------------------------------------------------------------------


def _subst_solve_lower(l, rhs):
    """Vectorized forward substitution ``L_i^{-1} B_i`` across a stack.

    ``O(b)`` Python steps; each step is one batched mat-vec over the whole
    stack.  This is the CuPy-compatible fallback and the fast host path for
    tall stacks.
    """
    xp = get_array_module(l, rhs)
    b = l.shape[-1]
    x = xp.empty_like(rhs)
    for j in range(b):
        acc = rhs[..., j, :]
        if j:
            # L[j, :j] @ X[:j]  batched over the stack.
            acc = acc - xp.matmul(l[..., j : j + 1, :j], x[..., :j, :])[..., 0, :]
        x[..., j, :] = acc / l[..., j : j + 1, j]
    return x


def _subst_solve_lower_t(l, rhs):
    """Vectorized backward substitution ``L_i^{-T} B_i`` across a stack."""
    xp = get_array_module(l, rhs)
    b = l.shape[-1]
    x = xp.empty_like(rhs)
    for j in range(b - 1, -1, -1):
        acc = rhs[..., j, :]
        if j + 1 < b:
            # (L^T)[j, j+1:] = L[j+1:, j]  batched over the stack.
            acc = acc - xp.matmul(
                l[..., j + 1 :, j][..., None, :], x[..., j + 1 :, :]
            )[..., 0, :]
        x[..., j, :] = acc / l[..., j : j + 1, j]
    return x


def _trtrs_block(l, rhs, trans):
    x, info = _dtrtrs(l, rhs, lower=1, trans=trans)
    if info != 0:
        raise NotPositiveDefiniteError(
            f"singular triangular factor in dtrtrs (info={info})"
        )
    return x


def _use_substitution(m: int, b: int) -> bool:
    return m >= _SUBST_MIN and m >= _SUBST_RATIO * b


def _stacked_trsm_path(be: Backend, m: int, b: int) -> bool:
    """Use the vectorized/batched substitution instead of looped LAPACK.

    Backends with a genuine batched TRSM always take it; hosts with
    LAPACK take it only for tall stacks where the ``O(b)`` Python steps
    amortize across the stack height.
    """
    if be.has_batched_trsm or not _lapack_path(be):
        return True
    return _use_substitution(m, b)


def batched_solve_lower(l, rhs, *, backend: Backend | None = None):
    """``L_i^{-1} B_i`` for stacks ``l: (m, b, b)``, ``rhs: (m, b, k)``."""
    be = _resolve(backend, l, rhs)
    m, b = l.shape[0], l.shape[-1]
    if m == 0 or b == 0 or rhs.shape[-1] == 0:
        return rhs.copy()
    if not _stacked_trsm_path(be, m, b):
        out = np.empty_like(rhs)
        for i in range(m):
            out[i] = _trtrs_block(l[i], rhs[i], trans=0)
        return out
    return _subst_solve_lower(l, rhs)


def batched_solve_lower_t(l, rhs, *, backend: Backend | None = None):
    """``L_i^{-T} B_i`` for stacks."""
    be = _resolve(backend, l, rhs)
    m, b = l.shape[0], l.shape[-1]
    if m == 0 or b == 0 or rhs.shape[-1] == 0:
        return rhs.copy()
    if not _stacked_trsm_path(be, m, b):
        out = np.empty_like(rhs)
        for i in range(m):
            out[i] = _trtrs_block(l[i], rhs[i], trans=1)
        return out
    return _subst_solve_lower_t(l, rhs)


def batched_right_solve_lower(l, rhs, *, backend: Backend | None = None):
    """``B_i L_i^{-1}`` for stacks ``rhs: (m, p, b)`` (right division)."""
    # (B L^{-1})^T = L^{-T} B^T, batched via the transposed stacks.
    out = batched_solve_lower_t(l, rhs.transpose(0, 2, 1), backend=backend)
    return out.transpose(0, 2, 1)


def batched_right_solve_lower_t(l, rhs, *, backend: Backend | None = None):
    """``B_i L_i^{-T}`` for stacks ``rhs: (m, p, b)``."""
    out = batched_solve_lower(l, rhs.transpose(0, 2, 1), backend=backend)
    return out.transpose(0, 2, 1)


def _tri_inverse_host(l):
    """``L^{-1}`` of one clean lower-triangular host block.

    Fully recursive 2x2 block splitting: above ``_TRTRI_SPLIT_MIN`` each
    half splits again until it falls under the threshold, so all
    off-diagonal work runs as GEMM and only threshold-sized diagonal
    leaves hit ``dtrtri``:

        inv([[L11, 0], [L21, L22]]) = [[I11, 0], [-I22 (L21 I11), I22]]
    """
    b = l.shape[0]
    if b >= _TRTRI_SPLIT_MIN:
        h = b // 2
        i11 = _tri_inverse_host(l[:h, :h])
        i22 = _tri_inverse_host(l[h:, h:])
        out = np.zeros_like(l)
        out[:h, :h] = i11
        out[h:, h:] = i22
        out[h:, :h] = -(i22 @ (l[h:, :h] @ i11))
        return out
    inv, info = _dtrtri(l, lower=1)
    if info != 0:
        raise NotPositiveDefiniteError(
            f"singular triangular factor in dtrtri (info={info})"
        )
    return inv


def batched_tri_inverse_lower(l, *, backend: Backend | None = None):
    """Explicit ``L_i^{-1}`` for a stack of lower-triangular blocks.

    The stacked inverse turns every downstream triangular solve of the
    sweeps (``pobtas``/``pobtasi``) into a batched GEMM — the trade the
    paper makes on the GPU, where TRSM is latency-bound but GEMM saturates
    the tensor cores.  Output blocks are cleanly lower-triangular.
    """
    be = _resolve(backend, l)
    m, b = l.shape[0], l.shape[-1]
    if m == 0 or b == 0:
        return l.copy()
    if _lapack_path(be):
        out = np.empty_like(l)
        for i in range(m):
            out[i] = _tri_inverse_host(l[i])
        # dtrtri leaves the strict upper triangle of its input in place.
        return np.tril(out)
    xp = be.xp
    eye = xp.broadcast_to(xp.eye(b, dtype=l.dtype), l.shape)
    return _subst_solve_lower(l, eye)


# ---------------------------------------------------------------------------
# Single-block helpers for the loop-carried chains
# ---------------------------------------------------------------------------


def solve_lower_block(l, rhs, *, backend: Backend | None = None):
    """``L^{-1} B`` for one block (fused operands welcome)."""
    be = _resolve(backend, l, rhs)
    if _lapack_path(be):
        if l.shape[0] == 0 or rhs.shape[-1] == 0:
            return rhs.copy()
        return _trtrs_block(l, rhs, trans=0)
    return batched_solve_lower(l[None], rhs[None], backend=be)[0]


def solve_lower_t_block(l, rhs, *, backend: Backend | None = None):
    """``L^{-T} B`` for one block."""
    be = _resolve(backend, l, rhs)
    if _lapack_path(be):
        if l.shape[0] == 0 or rhs.shape[-1] == 0:
            return rhs.copy()
        return _trtrs_block(l, rhs, trans=1)
    return batched_solve_lower_t(l[None], rhs[None], backend=be)[0]


def right_solve_lower_block(l, rhs, *, backend: Backend | None = None):
    """``B L^{-1}`` for one block."""
    return solve_lower_t_block(l, rhs.T, backend=backend).T


def right_solve_lower_t_block(l, rhs, *, backend: Backend | None = None):
    """``B L^{-T}`` for one block."""
    return solve_lower_block(l, rhs.T, backend=backend).T


def tri_inverse_lower_block(l, *, backend: Backend | None = None):
    """``L^{-1}`` of one lower-triangular block."""
    return batched_tri_inverse_lower(l[None], backend=backend)[0]


# ---------------------------------------------------------------------------
# GEMM / reductions
# ---------------------------------------------------------------------------


def batched_gemm(a, b, *, backend: Backend | None = None):
    """Stacked matrix product (``cublas`` GEMM-batched on device)."""
    return _resolve(backend, a, b).xp.matmul(a, b)


def symmetrize(stack):
    """``(X + X^T) / 2`` over the last two axes of a stack."""
    return 0.5 * (stack + stack.swapaxes(-1, -2))


def batched_logdet_from_chol_diag(l, *, backend: Backend | None = None) -> float:
    """``2 sum log diag(L_i)`` over a whole factor stack, single pass.

    Unlike the historical per-block kernel (which scanned the diagonal for
    non-positive entries *and then* took logs), this reads each diagonal
    entry exactly once: non-positive (or non-finite) entries surface as
    non-finite logs, detected on the already-reduced scalar.  Raises the
    same :class:`NotPositiveDefiniteError` as the per-block path.
    """
    xp = _resolve(backend, l).xp
    d = xp.diagonal(l, axis1=-2, axis2=-1)
    with np.errstate(invalid="ignore", divide="ignore"):
        total = float(xp.sum(xp.log(d)))
    if d.size and not np.isfinite(total):
        raise NotPositiveDefiniteError("non-positive diagonal in Cholesky factor")
    return 2.0 * total


def batched_logdets_from_chol_diag(l, *, backend: Backend | None = None):
    """Per-slab ``2 sum log diag(L)`` over a leading batch axis, one pass.

    ``l`` is ``(t, ..., b, b)``; the return is the ``(t,)`` vector of
    log-determinant contributions — the theta-batched analogue of
    :func:`batched_logdet_from_chol_diag`, reducing each theta's factor
    stack independently in a single vectorized sweep.  Raises
    :class:`NotPositiveDefiniteError` if *any* slab has a non-positive
    diagonal entry.
    """
    xp = _resolve(backend, l).xp
    t = l.shape[0]
    d = xp.diagonal(l, axis1=-2, axis2=-1)
    # Flatten each slab so the per-row pairwise reduction visits the same
    # contiguous elements in the same order as the single-factor scalar
    # reduction above (bit-identical at t = 1).
    d = xp.ascontiguousarray(d).reshape(t, -1)
    with np.errstate(invalid="ignore", divide="ignore"):
        totals = xp.sum(xp.log(d), axis=1)
    if d.size and not xp.all(xp.isfinite(totals)):
        raise NotPositiveDefiniteError("non-positive diagonal in Cholesky factor")
    return 2.0 * totals
