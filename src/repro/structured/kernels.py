"""Small dense block kernels shared by the structured solvers.

All routines operate on individual ``b x b`` (or ``a x b``) blocks and wrap
LAPACK through SciPy with ``check_finite=False`` (the solvers validate
inputs once at the top, not per block — guide: avoid needless per-call
overhead in hot loops).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import LinAlgError, cholesky as _cholesky, solve_triangular as _solve_triangular

# Re-homed into the unified hierarchy (repro.errors); this module stays
# the historical import path for every solver-layer consumer.
from repro.errors import NotPositiveDefiniteError


def chol_lower(a: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of a symmetric positive definite block."""
    try:
        return _cholesky(a, lower=True, check_finite=False)
    except LinAlgError as exc:
        raise NotPositiveDefiniteError(str(exc)) from exc


def solve_lower(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``L^{-1} B`` for lower-triangular ``L``."""
    return _solve_triangular(l, b, lower=True, check_finite=False)


def solve_lower_t(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``L^{-T} B`` for lower-triangular ``L``."""
    return _solve_triangular(l, b, lower=True, trans="T", check_finite=False)


def right_solve_lower(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``B L^{-1}`` for lower-triangular ``L`` (right division)."""
    # (B L^{-1})^T = L^{-T} B^T
    return _solve_triangular(l, b.T, lower=True, trans="T", check_finite=False).T


def right_solve_lower_t(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``B L^{-T}`` for lower-triangular ``L`` (right division by transpose)."""
    # (B L^{-T})^T = L^{-1} B^T
    return _solve_triangular(l, b.T, lower=True, check_finite=False).T


def tri_inverse_lower(l: np.ndarray) -> np.ndarray:
    """Explicit ``L^{-1}`` of a small lower-triangular block."""
    return _solve_triangular(l, np.eye(l.shape[0]), lower=True, check_finite=False)


def logdet_from_chol_diag(l: np.ndarray) -> float:
    """``log det`` contribution of one Cholesky block: ``2 sum log diag(L)``.

    Single pass over the diagonal: instead of scanning for non-positive
    entries and then taking logs (two reads of ``d`` on the hot path),
    invalid entries surface as non-finite logs and are detected on the
    reduced scalar.  This also catches NaNs, which the old ``d <= 0``
    check silently let through.
    """
    d = np.diagonal(l)
    with np.errstate(invalid="ignore", divide="ignore"):
        total = float(np.sum(np.log(d)))
    if d.size and not np.isfinite(total):
        raise NotPositiveDefiniteError("non-positive diagonal in Cholesky factor")
    return 2.0 * total
