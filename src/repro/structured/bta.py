"""Block-tridiagonal-with-arrowhead (BTA) matrix container.

A BTA matrix (paper Fig. 2c) with ``n`` diagonal blocks of size ``b`` and
an arrow tip of size ``a`` is stored densified:

- ``diag``  — ``(n, b, b)``   main-diagonal blocks ``A[i, i]``
- ``lower`` — ``(n-1, b, b)`` sub-diagonal blocks ``A[i+1, i]``
- ``arrow`` — ``(n, a, b)``   arrow-row blocks ``A[tip, i]``
- ``tip``   — ``(a, a)``      arrow-tip block

Only the lower triangle is stored; the matrix is symmetric by contract
(``A[i, i+1] = A[i+1, i]^T``).  With ``a = 0`` this degenerates to a plain
BT matrix, which is how the prior ``Qp`` of a model without fixed effects
is represented.

Memory is ``O(n b^2)`` — the densification trade-off of paper Sec. IV-C —
and all solvers in this package operate on these stacks in place, never
materializing an ``N x N`` dense matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.protocol import Backend, backend_for


def _contiguous(xp, a, dtype=np.float64):
    """C-contiguous float64 view/copy through the owning backend's module.

    Routing through ``xp`` (instead of the global ``np``) keeps device
    array types intact: ``np.ascontiguousarray`` strips ``ndarray``
    subclasses and would silently pull a device-tagged array back to
    plain host storage.  Already-contiguous inputs stay zero-copy.
    """
    return xp.ascontiguousarray(a, dtype=dtype)


@dataclass(frozen=True)
class BTAShape:
    """Structural dimensions of a BTA matrix.

    ``n`` diagonal blocks of size ``b``, tip of size ``a``; total matrix
    dimension ``N = n*b + a`` (paper Table III).
    """

    n: int
    b: int
    a: int

    def __post_init__(self):
        if self.n < 1:
            raise ValueError(f"need at least one diagonal block, got n={self.n}")
        if self.b < 1:
            raise ValueError(f"block size must be positive, got b={self.b}")
        if self.a < 0:
            raise ValueError(f"arrow size must be non-negative, got a={self.a}")

    @property
    def N(self) -> int:
        return self.n * self.b + self.a


class BTAMatrix:
    """Densified symmetric BTA matrix (lower-triangle storage)."""

    def __init__(
        self,
        diag: np.ndarray,
        lower: np.ndarray | None = None,
        arrow: np.ndarray | None = None,
        tip: np.ndarray | None = None,
    ):
        be = backend_for(diag, lower, arrow, tip)
        xp = be.xp
        diag = _contiguous(xp, diag)
        if diag.ndim != 3 or diag.shape[1] != diag.shape[2]:
            raise ValueError(f"diag must be (n, b, b), got {diag.shape}")
        n, b, _ = diag.shape
        if lower is None:
            lower = be.zeros((max(n - 1, 0), b, b))
        lower = _contiguous(xp, lower)
        if lower.shape != (max(n - 1, 0), b, b):
            raise ValueError(f"lower must be (n-1, b, b) = {(n - 1, b, b)}, got {lower.shape}")
        if tip is None:
            a = 0 if arrow is None else arrow.shape[1]
            tip = be.zeros((a, a))
        tip = _contiguous(xp, tip)
        a = tip.shape[0]
        if tip.shape != (a, a):
            raise ValueError(f"tip must be square, got {tip.shape}")
        if arrow is None:
            arrow = be.zeros((n, a, b))
        arrow = _contiguous(xp, arrow)
        if arrow.shape != (n, a, b):
            raise ValueError(f"arrow must be (n, a, b) = {(n, a, b)}, got {arrow.shape}")

        self.diag = diag
        self.lower = lower
        self.arrow = arrow
        self.tip = tip
        self.shape3 = BTAShape(n=n, b=b, a=a)

    # -- convenience accessors --------------------------------------------

    @property
    def n(self) -> int:
        return self.shape3.n

    @property
    def b(self) -> int:
        return self.shape3.b

    @property
    def a(self) -> int:
        return self.shape3.a

    @property
    def N(self) -> int:
        return self.shape3.N

    @property
    def is_bt(self) -> bool:
        """True when there is no arrowhead (plain block-tridiagonal)."""
        return self.a == 0

    @property
    def backend(self):
        """The backend owning this matrix's block storage."""
        return backend_for(self.diag)

    def copy(self) -> "BTAMatrix":
        return BTAMatrix(
            self.diag.copy(), self.lower.copy(), self.arrow.copy(), self.tip.copy()
        )

    # -- constructors -------------------------------------------------------

    @classmethod
    def zeros(cls, shape: BTAShape, *, backend: Backend | None = None) -> "BTAMatrix":
        be = backend if backend is not None else backend_for()
        return cls(
            be.zeros((shape.n, shape.b, shape.b)),
            be.zeros((max(shape.n - 1, 0), shape.b, shape.b)),
            be.zeros((shape.n, shape.a, shape.b)),
            be.zeros((shape.a, shape.a)),
        )

    @classmethod
    def random_spd(
        cls,
        shape: BTAShape,
        rng: np.random.Generator,
        *,
        diagonal_dominance: float = 2.0,
    ) -> "BTAMatrix":
        """Random symmetric positive-definite BTA matrix (for tests/benches).

        Off-diagonal blocks are random; diagonal blocks are made symmetric
        and shifted by a dominance factor times the largest possible row
        sum, which guarantees strict diagonal dominance, hence SPD.
        """
        n, b, a = shape.n, shape.b, shape.a
        diag = rng.standard_normal((n, b, b))
        diag = 0.5 * (diag + diag.transpose(0, 2, 1))
        lower = rng.standard_normal((max(n - 1, 0), b, b))
        arrow = rng.standard_normal((n, a, b))
        tip = rng.standard_normal((a, a))
        tip = 0.5 * (tip + tip.T)
        # Row-sum bound: each block row touches <= 3 b-blocks and the arrow.
        shift = diagonal_dominance * (3.0 * b + a + 1.0)
        diag += shift * np.eye(b)
        tip += diagonal_dominance * (float(n) * b + a + 1.0) * np.eye(a) if a else 0.0
        return cls(diag, lower, arrow, tip)

    @classmethod
    def from_dense(cls, dense: np.ndarray, shape: BTAShape) -> "BTAMatrix":
        """Extract BTA blocks from a dense matrix (test helper).

        Entries of ``dense`` outside the BTA pattern are ignored.
        """
        n, b, a = shape.n, shape.b, shape.a
        if dense.shape != (shape.N, shape.N):
            raise ValueError(f"dense shape {dense.shape} != {(shape.N, shape.N)}")
        diag = np.empty((n, b, b))
        lower = np.empty((max(n - 1, 0), b, b))
        arrow = np.empty((n, a, b))
        for i in range(n):
            s = slice(i * b, (i + 1) * b)
            diag[i] = dense[s, s]
            if i + 1 < n:
                lower[i] = dense[(i + 1) * b : (i + 2) * b, s]
            arrow[i] = dense[n * b :, s]
        tip = np.array(dense[n * b :, n * b :])
        return cls(diag, lower, arrow, tip)

    # -- conversions ---------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialize the full symmetric matrix (tests / tiny cases only)."""
        n, b, a = self.n, self.b, self.a
        out = np.zeros((self.N, self.N))
        for i in range(n):
            s = slice(i * b, (i + 1) * b)
            out[s, s] = self.diag[i]
            if i + 1 < n:
                t = slice((i + 1) * b, (i + 2) * b)
                out[t, s] = self.lower[i]
                out[s, t] = self.lower[i].T
            if a:
                out[n * b :, s] = self.arrow[i]
                out[s, n * b :] = self.arrow[i].T
        if a:
            out[n * b :, n * b :] = self.tip
        return out

    # -- algebra ---------------------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Symmetric matrix-vector product ``A @ x`` without densifying.

        ``x`` may be a vector of length ``N`` or a matrix ``(N, k)``.
        """
        xp = backend_for(self.diag, x).xp
        x = xp.asarray(x)
        squeeze = x.ndim == 1
        xm = x.reshape(self.N, -1)
        n, b, a = self.n, self.b, self.a
        y = xp.zeros_like(xm)
        xb = xm[: n * b].reshape(n, b, -1)
        yb = y[: n * b].reshape(n, b, -1)
        # Diagonal blocks (batched GEMM).
        yb += self.diag @ xb
        # Off-diagonal blocks.
        if n > 1:
            yb[1:] += self.lower @ xb[:-1]
            yb[:-1] += self.lower.transpose(0, 2, 1) @ xb[1:]
        if a:
            xt = xm[n * b :]
            # Arrow row and column.
            y[n * b :] += xp.einsum("iab,ibk->ak", self.arrow, xb)
            yb += self.arrow.transpose(0, 2, 1) @ xt[None, :, :]
            y[n * b :] += self.tip @ xt
        return y[:, 0] if squeeze else y

    def diagonal(self) -> np.ndarray:
        """Scalar diagonal of the matrix (length ``N``)."""
        xp = backend_for(self.diag).xp
        d = xp.concatenate(
            [xp.diagonal(self.diag, axis1=1, axis2=2).ravel(), xp.diagonal(self.tip)]
        )
        return xp.ascontiguousarray(d)

    def add_diagonal(self, values: np.ndarray) -> None:
        """In-place add a scalar diagonal (e.g. a regularization shift)."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 0:
            values = np.full(self.N, float(values))
        if values.shape != (self.N,):
            raise ValueError(f"diagonal length {values.shape} != ({self.N},)")
        n, b, a = self.n, self.b, self.a
        idx = np.arange(b)
        self.diag[:, idx, idx] += values[: n * b].reshape(n, b)
        if a:
            ia = np.arange(a)
            self.tip[ia, ia] += values[n * b :]

    def frobenius_norm(self) -> float:
        """Frobenius norm of the full symmetric matrix."""
        off = 2.0 * (np.sum(self.lower**2) + np.sum(self.arrow**2))
        return float(np.sqrt(np.sum(self.diag**2) + off + np.sum(self.tip**2)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BTAMatrix(n={self.n}, b={self.b}, a={self.a}, N={self.N})"


class BTAStack:
    """``t`` same-shape BTA matrices in theta-first stacked storage.

    The batch-assembly / batch-factorization interchange format: all
    arrays carry the theta axis first (``diag`` is ``(t, n, b, b)``,
    ``lower`` ``(t, n-1, b, b)``, ``arrow`` ``(t, n, a, b)``, ``tip``
    ``(t, a, a)``), so one fancy-indexed scatter fills every theta and
    one batched sweep eliminates every theta without re-stacking.  The
    caller owns the storage — a stack may be preallocated once per
    stencil width and refilled every batch
    (:meth:`repro.model.assembler.CoregionalSTModel.assemble_batch`),
    and :func:`repro.structured.multifactor.factorize_batch` can
    factorize it in place (``overwrite=True``).
    """

    def __init__(self, diag, lower, arrow, tip):
        xp = backend_for(diag, lower, arrow, tip).xp
        diag = _contiguous(xp, diag)
        if diag.ndim != 4 or diag.shape[2] != diag.shape[3]:
            raise ValueError(f"diag must be (t, n, b, b), got {diag.shape}")
        t, n, b, _ = diag.shape
        lower = _contiguous(xp, lower)
        tip = _contiguous(xp, tip)
        arrow = _contiguous(xp, arrow)
        a = tip.shape[1] if tip.ndim == 3 else -1
        if lower.shape != (t, max(n - 1, 0), b, b):
            raise ValueError(f"lower must be (t, n-1, b, b), got {lower.shape}")
        if tip.shape != (t, a, a):
            raise ValueError(f"tip must be (t, a, a), got {tip.shape}")
        if arrow.shape != (t, n, a, b):
            raise ValueError(f"arrow must be (t, n, a, b), got {arrow.shape}")
        self.diag = diag
        self.lower = lower
        self.arrow = arrow
        self.tip = tip
        self.shape3 = BTAShape(n=n, b=b, a=a)

    @property
    def t(self) -> int:
        return self.diag.shape[0]

    @property
    def backend(self):
        """The backend owning this stack's storage."""
        return backend_for(self.diag)

    def __len__(self) -> int:
        return self.t

    @classmethod
    def zeros(cls, shape: BTAShape, t: int, *, backend: Backend | None = None) -> "BTAStack":
        if t < 1:
            raise ValueError(f"need t >= 1 stacked matrices, got {t}")
        be = backend if backend is not None else backend_for()
        return cls(
            be.zeros((t, shape.n, shape.b, shape.b)),
            be.zeros((t, max(shape.n - 1, 0), shape.b, shape.b)),
            be.zeros((t, shape.n, shape.a, shape.b)),
            be.zeros((t, shape.a, shape.a)),
        )

    @classmethod
    def from_matrices(cls, mats) -> "BTAStack":
        """Stack existing matrices (copies; the inputs stay untouched)."""
        mats = list(mats)
        if not mats:
            raise ValueError("need at least one matrix to stack")
        shape3 = mats[0].shape3
        for A in mats[1:]:
            if A.shape3 != shape3:
                raise ValueError(
                    f"all matrices must share one BTA shape; got {A.shape3} != {shape3}"
                )
        xp = backend_for(*(A.diag for A in mats)).xp
        return cls(
            xp.stack([A.diag for A in mats]),
            xp.stack([A.lower for A in mats]),
            xp.stack([A.arrow for A in mats]),
            xp.stack([A.tip for A in mats]),
        )

    def matrix(self, j: int) -> BTAMatrix:
        """Zero-copy :class:`BTAMatrix` view of stacked matrix ``j``."""
        j = int(j)
        if not -self.t <= j < self.t:
            raise IndexError(f"index {j} out of range for stack of {self.t}")
        j %= self.t
        return BTAMatrix(self.diag[j], self.lower[j], self.arrow[j], self.tip[j])

    def head(self, t: int) -> "BTAStack":
        """Zero-copy view of the first ``t`` stacked matrices."""
        if not 1 <= t <= self.t:
            raise ValueError(f"head size {t} out of range for stack of {self.t}")
        return BTAStack(self.diag[:t], self.lower[:t], self.arrow[:t], self.tip[:t])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.shape3
        return f"BTAStack(t={self.t}, n={s.n}, b={s.b}, a={s.a})"
