"""``d_pobtasi`` — distributed selected inversion of a BTA matrix.

Given the distributed factors of ``d_pobtaf``, computes the selected
inverse (the blocks of ``A^{-1}`` inside the BTA pattern) with the same
nested-dissection decomposition:

1. every rank selected-inverts the reduced boundary system redundantly
   with the sequential ``pobtasi`` (it already holds the reduced factor);
2. every rank then sweeps its interior *backwards*, propagating the
   boundary inverse blocks inward with the Takahashi recursion restricted
   to the permuted sparsity pattern ``{j+1, s, tip}``.

Step 2 is embarrassingly parallel — no communication at all — which is
why the selected inversion weak-scales like the factorization in the
paper's Fig. 5.

On the batched path the interior sweep's right-divisions by ``L[j, j]``
become GEMMs against the rank's cached ``L[j,j]^{-1}`` stack (computed in
one batched triangular inversion over the independent interior factors),
so each recursion step is pure batched-GEMM work.

Production consumers read only ``diag(A^{-1})`` (marginal variances):
:func:`d_pobtasi_diag` mirrors the sequential carry-based recursion
(:func:`repro.structured.pobtasi._pobtasi_batched_diag`) per rank — the
same per-step operations and order as :func:`d_pobtasi`, but the
``X[j+1, j+1]`` / ``X[s, j+1]`` / ``X[t, j+1]`` blocks stay loop carries
instead of materializing the full ``O(n_local b^2)`` inverse slice.
"""

from __future__ import annotations

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.structured.d_pobtaf import DistributedFactors, LocalBTASlice
from repro.structured.kernels import right_solve_lower, solve_lower_t
from repro.structured.pobtasi import pobtasi


def _symmetrize(block: np.ndarray) -> np.ndarray:
    return 0.5 * (block + block.T)


def d_pobtasi(
    factors: DistributedFactors, *, batched: bool | None = None
) -> LocalBTASlice:
    """This rank's slice of the selected inverse (no communication needed).

    Returns a :class:`LocalBTASlice` holding the inverse blocks for the
    rank's partition: diagonal blocks, within-slice sub-diagonal blocks,
    arrow blocks, the (replicated) tip inverse, and — for partitions
    ``p >= 1`` — the inter-partition coupling block ``X[s_p, s_p - 1]``.
    """
    part, b, a = factors.part, factors.b, factors.a
    nl = part.n_blocks
    m = factors.n_interior
    use_batched = batched_enabled(batched)
    Xr = pobtasi(factors.reduced_chol, batched=use_batched)
    pos_top, pos_bottom = factors.positions

    if use_batched and m:
        inv = factors.ldiag_inverses()
        inv_t = inv.transpose(0, 2, 1)

        def right_div(k, acc):
            """``acc @ L[j_k, j_k]^{-1}`` via the cached inverse stack."""
            return acc @ inv[k]

        def linv_t(k):
            return inv_t[k].copy()

    else:

        def right_div(k, acc):
            return right_solve_lower(factors.ldiag[k], acc)

        def linv_t(k):
            return solve_lower_t(factors.ldiag[k], np.eye(b))

    diag_out = np.empty((nl, b, b))
    lower_out = np.empty((max(nl - 1, 0), b, b))
    arrow_out = np.empty((nl, a, b))
    tip_out = Xr.tip.copy()

    if part.is_first:
        x_next = Xr.diag[pos_bottom]  # X[j+1, j+1], starts at the boundary
        xa_next = Xr.arrow[pos_bottom]  # X[t, j+1]
        diag_out[-1] = x_next
        arrow_out[-1] = xa_next
        for k in range(m - 1, -1, -1):
            en, ea = factors.lnext[k], factors.larrow[k]
            acc = x_next @ en
            if a:
                acc += xa_next.T @ ea
            x_off = -right_div(k, acc)  # X[j+1, j]
            if a:
                x_arr = -right_div(k, xa_next @ en + tip_out @ ea)  # X[t, j]
            else:
                x_arr = np.zeros((a, b))
            acc_d = linv_t(k) - x_off.T @ en
            if a:
                acc_d -= x_arr.T @ ea
            x_diag = _symmetrize(right_div(k, acc_d))
            lower_out[k] = x_off
            arrow_out[k] = x_arr
            diag_out[k] = x_diag
            x_next, xa_next = x_diag, x_arr
        return LocalBTASlice(
            part=part,
            diag=diag_out,
            lower=lower_out,
            arrow=arrow_out,
            tip=tip_out,
            lower_prev=None,
        )

    # ---- partitions p >= 1 ------------------------------------------------
    x_ss = Xr.diag[pos_top]  # X[s, s]
    x_ts = Xr.arrow[pos_top]  # X[t, s]
    lower_prev_out = Xr.lower[pos_top - 1].copy()  # X[s_p, e_{p-1}]
    diag_out[0] = x_ss
    arrow_out[0] = x_ts

    if nl == 1:
        return LocalBTASlice(
            part=part,
            diag=diag_out,
            lower=lower_out,
            arrow=arrow_out,
            tip=tip_out,
            lower_prev=lower_prev_out,
        )

    x_next = Xr.diag[pos_bottom]  # X[e, e]
    xa_next = Xr.arrow[pos_bottom]  # X[t, e]
    xs_next = Xr.lower[pos_top].T  # X[s, e]  (reduced stores X[e, s])
    diag_out[-1] = x_next
    arrow_out[-1] = xa_next
    if m == 0:
        # Two boundary blocks, no interior: the within-slice coupling is
        # exactly the reduced off-diagonal block.
        lower_out[0] = Xr.lower[pos_top]
        return LocalBTASlice(
            part=part,
            diag=diag_out,
            lower=lower_out,
            arrow=arrow_out,
            tip=tip_out,
            lower_prev=lower_prev_out,
        )

    xs_j = None  # X[s, j] from the previous iteration (for lower_out[0])
    for k in range(m - 1, -1, -1):
        j = k + 1  # local index of the interior block
        en, ef, ea = factors.lnext[k], factors.lfill[k], factors.larrow[k]
        # X[j+1, j]
        acc = x_next @ en + xs_next.T @ ef
        if a:
            acc += xa_next.T @ ea
        x_off = -right_div(k, acc)
        # X[s, j]
        acc_s = xs_next @ en + x_ss @ ef
        if a:
            acc_s += x_ts.T @ ea
        xs_j = -right_div(k, acc_s)
        # X[t, j]
        if a:
            x_arr = -right_div(k, xa_next @ en + x_ts @ ef + tip_out @ ea)
        else:
            x_arr = np.zeros((a, b))
        # X[j, j]
        acc_d = linv_t(k) - x_off.T @ en - xs_j.T @ ef
        if a:
            acc_d -= x_arr.T @ ea
        x_diag = _symmetrize(right_div(k, acc_d))

        lower_out[j] = x_off
        arrow_out[j] = x_arr
        diag_out[j] = x_diag
        x_next, xs_next, xa_next = x_diag, xs_j, x_arr
    # The coupling between the top boundary and the first interior block:
    # X[s+1, s] = X[s, s+1]^T, computed in the last iteration above.
    lower_out[0] = xs_j.T
    return LocalBTASlice(
        part=part,
        diag=diag_out,
        lower=lower_out,
        arrow=arrow_out,
        tip=tip_out,
        lower_prev=lower_prev_out,
    )


def d_pobtasi_diag(
    factors: DistributedFactors, *, batched: bool | None = None
) -> tuple:
    """This rank's slice of ``diag(A^{-1})`` — carry-based, no full slice.

    Returns ``(diag_local, tip_diag)``: the scalar diagonal over the
    rank's partition (length ``n_local * b``) and the (replicated) tip
    diagonal (length ``a``).  Runs the *same* per-step expressions in the
    same order as :func:`d_pobtasi` — the returned diagonal is
    bit-identical — but keeps the previous block's inverse blocks as loop
    carries, so no ``(n_local, b, b)`` inverse stacks are ever
    materialized (only the small reduced boundary system is still
    selected-inverted in full).  The reference path (``batched=False``)
    extracts the diagonal from the full recursion as ground truth.
    """
    part, b, a = factors.part, factors.b, factors.a
    nl = part.n_blocks
    m = factors.n_interior
    if not batched_enabled(batched):
        xi = d_pobtasi(factors, batched=False)
        return (
            np.ascontiguousarray(np.diagonal(xi.diag, axis1=1, axis2=2)).ravel(),
            np.ascontiguousarray(np.diagonal(xi.tip)),
        )

    Xr = pobtasi(factors.reduced_chol, batched=True)
    pos_top, pos_bottom = factors.positions
    tip_out = Xr.tip
    tip_diag = np.ascontiguousarray(np.diagonal(tip_out))
    diag_out = np.empty((nl, b))

    if m:
        inv = factors.ldiag_inverses()
        inv_t = inv.transpose(0, 2, 1)

    if part.is_first:
        x_next = Xr.diag[pos_bottom]  # X[j+1, j+1] carry, starts at the boundary
        xa_next = Xr.arrow[pos_bottom]  # X[t, j+1] carry
        diag_out[-1] = np.diagonal(x_next)
        for k in range(m - 1, -1, -1):
            en, ea = factors.lnext[k], factors.larrow[k]
            acc = x_next @ en
            if a:
                acc += xa_next.T @ ea
            x_off = -(acc @ inv[k])  # X[j+1, j]
            if a:
                x_arr = -((xa_next @ en + tip_out @ ea) @ inv[k])  # X[t, j]
            acc_d = inv_t[k].copy() - x_off.T @ en
            if a:
                acc_d -= x_arr.T @ ea
            x_next = _symmetrize(acc_d @ inv[k])
            if a:
                xa_next = x_arr
            diag_out[k] = np.diagonal(x_next)
        return diag_out.ravel(), tip_diag

    # ---- partitions p >= 1 ------------------------------------------------
    x_ss = Xr.diag[pos_top]  # X[s, s]
    x_ts = Xr.arrow[pos_top]  # X[t, s]
    diag_out[0] = np.diagonal(x_ss)
    if nl == 1:
        return diag_out.ravel(), tip_diag

    x_next = Xr.diag[pos_bottom]  # X[e, e] carry
    xa_next = Xr.arrow[pos_bottom]  # X[t, e] carry
    xs_next = Xr.lower[pos_top].T  # X[s, e] carry (reduced stores X[e, s])
    diag_out[-1] = np.diagonal(x_next)
    for k in range(m - 1, -1, -1):
        j = k + 1  # local index of the interior block
        en, ef, ea = factors.lnext[k], factors.lfill[k], factors.larrow[k]
        acc = x_next @ en + xs_next.T @ ef  # X[j+1, j]
        if a:
            acc += xa_next.T @ ea
        x_off = -(acc @ inv[k])
        acc_s = xs_next @ en + x_ss @ ef  # X[s, j]
        if a:
            acc_s += x_ts.T @ ea
        xs_j = -(acc_s @ inv[k])
        if a:
            x_arr = -((xa_next @ en + x_ts @ ef + tip_out @ ea) @ inv[k])  # X[t, j]
        acc_d = inv_t[k].copy() - x_off.T @ en - xs_j.T @ ef
        if a:
            acc_d -= x_arr.T @ ea
        x_next = _symmetrize(acc_d @ inv[k])
        xs_next = xs_j
        if a:
            xa_next = x_arr
        diag_out[j] = np.diagonal(x_next)
    return diag_out.ravel(), tip_diag


def gather_selected_inverse(slices: list) -> "np.ndarray":
    """Stitch per-rank selected-inverse slices into dense blocks (test helper).

    Returns a dense ``N x N`` matrix holding the selected entries (zeros
    elsewhere).  Only for small validation problems.
    """
    from repro.structured.bta import BTAMatrix

    slices = sorted(slices, key=lambda s: s.part.index)
    n = slices[-1].part.stop
    b = slices[0].b
    a = slices[0].a
    diag = np.zeros((n, b, b))
    lower = np.zeros((max(n - 1, 0), b, b))
    arrow = np.zeros((n, a, b))
    for sl in slices:
        s, e = sl.part.start, sl.part.stop
        diag[s:e] = sl.diag
        lower[s : e - 1] = sl.lower
        arrow[s:e] = sl.arrow
        if sl.lower_prev is not None:
            lower[s - 1] = sl.lower_prev
    return BTAMatrix(diag, lower, arrow, slices[0].tip).to_dense()
