"""Non-separable spatio-temporal SPDE precision (DEMF(1,2,1)).

The diffusion-based model of paper ref. [25] treats the field as the
solution of ``(gamma_t d/dt + gamma_s^2 - Delta)(tau u) = dE_t`` with
spatially colored noise.  Discretizing time with linear elements and space
with P1 elements (lumped mass) yields the precision

    Q_st = gamma_e^2 [ gamma_t^2 (M2 (x) q1)
                       + 2 gamma_t (M1 (x) q2)
                       +            M0 (x) q3 ]

with temporal matrices ``M0, M1, M2`` (mass, boundary, stiffness; all at
most tridiagonal) and spatial operator powers ``q_k`` of
``K = gamma_s^2 C + G`` (see :mod:`repro.spde.matern`).  In time-major
ordering the three Kronecker terms are all block-tridiagonal with
``ns x ns`` blocks — the BT pattern of paper Fig. 2a.

Because the temporal pattern is fixed and only ``(gamma_s, gamma_t,
gamma_e)`` change between objective evaluations, the class precomputes a
:class:`repro.sparse.kron.KronSumPattern` per ``gamma_s`` grid... no — the
spatial operators themselves depend on ``gamma_s``, so the q_k must be
re-formed; what *is* reused is the FEM matrices and the union sparsity
pattern (identical for every ``gamma_s > 0``), keeping re-assembly
``O(nnz)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.meshes.fem import fem_matrices
from repro.meshes.mesh2d import Mesh2D
from repro.meshes.temporal import TemporalMesh, temporal_fem_matrices
from repro.spde.matern import spatial_operator_bases, spatial_operators
from repro.spde.params import (
    SpatioTemporalParams,
    gammas_from_interpretable,
    gammas_from_interpretable_stack,
)

#: Number of fixed Kronecker terms in the symbolic decomposition of
#: ``Q_st`` (see :meth:`SpatioTemporalSPDE.term_bases`).
N_TERMS = 9


class SpatioTemporalSPDE:
    """Precision-matrix factory for one univariate spatio-temporal process.

    Parameters
    ----------
    mesh:
        Spatial triangulation (``ns`` nodes).
    tmesh:
        Temporal mesh (``nt`` knots).

    The factory caches the FEM matrices; :meth:`precision` assembles
    ``Q_st(theta)`` for any hyperparameter configuration.
    """

    def __init__(self, mesh: Mesh2D, tmesh: TemporalMesh):
        self.mesh = mesh
        self.tmesh = tmesh
        self.C, self.G = fem_matrices(mesh)
        self.M0, self.M1, self.M2 = temporal_fem_matrices(tmesh)

    @property
    def ns(self) -> int:
        return self.mesh.n_nodes

    @property
    def nt(self) -> int:
        return self.tmesh.nt

    @property
    def dim(self) -> int:
        """Latent dimension ``ns * nt`` (time-major ordering)."""
        return self.ns * self.nt

    def precision(self, params: SpatioTemporalParams) -> sp.csr_matrix:
        """Assemble ``Q_st`` (time-major, CSR, canonical form)."""
        gamma_s, gamma_t, gamma_e = gammas_from_interpretable(params)
        q1, q2, q3 = spatial_operators((self.C, self.G), gamma_s)
        ge2 = gamma_e**2
        Q = (
            (ge2 * gamma_t**2) * sp.kron(self.M2, q1, format="csr")
            + (2.0 * ge2 * gamma_t) * sp.kron(self.M1, q2, format="csr")
            + ge2 * sp.kron(self.M0, q3, format="csr")
        )
        Q = sp.csr_matrix(Q)
        Q.sum_duplicates()
        Q.sort_indices()
        return Q

    # -- symbolic/numeric split ----------------------------------------------

    def term_bases(self) -> list:
        """The nine fixed ``(temporal, spatial)`` Kronecker factor pairs.

        Substituting the polynomial expansion of the operator powers
        (:func:`repro.spde.matern.spatial_operator_bases`) into the
        DEMF(1,2,1) precision gives

        .. code-block:: text

            Q_st = sum_j  c_j(theta) * (T_j (x) S_j)

        over hyperparameter-*independent* factors ``T_j in {M0, M1, M2}``
        and ``S_j in {C, G, H2, H3}`` — the symbolic phase of assembly.
        Order matches :meth:`term_coefficient_stack` row-for-row.
        """
        C, G, H2, H3 = spatial_operator_bases((self.C, self.G))
        return [
            (self.M2, C),
            (self.M2, G),
            (self.M1, C),
            (self.M1, G),
            (self.M1, H2),
            (self.M0, C),
            (self.M0, G),
            (self.M0, H2),
            (self.M0, H3),
        ]

    def term_coefficient_stack(
        self, range_s: np.ndarray, range_t: np.ndarray, sigma: np.ndarray | None = None
    ) -> tuple:
        """Scalar term coefficients for a stack of hyperparameter points.

        The numeric phase of the split: for interpretable parameter
        arrays (one entry per theta) return ``(coeffs, feasible)`` with
        ``coeffs[i, j]`` the coefficient of term ``j`` of
        :meth:`term_bases` at point ``i`` — all elementwise arithmetic,
        so a length-1 stack is bit-identical to any batch.  Infeasible
        points (where :meth:`precision` would raise) carry
        ``feasible[i] = False`` instead of raising.
        """
        gamma_s, gamma_t, gamma_e, feasible = gammas_from_interpretable_stack(
            range_s, range_t, sigma
        )
        with np.errstate(all="ignore"):
            ge2 = gamma_e * gamma_e
            w1 = ge2 * gamma_t * gamma_t  # weight of M2 (x) q1
            w2 = 2.0 * ge2 * gamma_t  # weight of M1 (x) q2
            w3 = ge2  # weight of M0 (x) q3
            k2 = gamma_s * gamma_s
            k4 = k2 * k2
            coeffs = np.stack(
                [
                    w1 * k2,  # M2 (x) C
                    w1,  # M2 (x) G
                    w2 * k4,  # M1 (x) C
                    w2 * (2.0 * k2),  # M1 (x) G
                    w2,  # M1 (x) H2
                    w3 * (k4 * k2),  # M0 (x) C
                    w3 * (3.0 * k4),  # M0 (x) G
                    w3 * (3.0 * k2),  # M0 (x) H2
                    w3,  # M0 (x) H3
                ],
                axis=-1,
            )
        feasible = feasible & np.isfinite(coeffs).all(axis=-1)
        return coeffs, feasible

    def term_coefficients(self, params: SpatioTemporalParams) -> np.ndarray:
        """Term coefficients of one point (raises where :meth:`precision` would)."""
        coeffs, feasible = self.term_coefficient_stack(
            np.array([params.range_s]), np.array([params.range_t]), np.array([params.sigma])
        )
        if not feasible[0]:
            raise ValueError(f"hyperparameters out of range: {params}")
        return coeffs[0]

    def precision_from_theta(self, theta: np.ndarray) -> sp.csr_matrix:
        """Assemble from unconstrained coordinates ``(log r_s, log r_t, log sigma)``."""
        return self.precision(SpatioTemporalParams.from_theta(theta))

    def pattern(self) -> sp.csr_matrix:
        """Sparsity pattern of ``Q_st`` (same for all hyperparameters)."""
        Q = self.precision(SpatioTemporalParams(range_s=1.0, range_t=1.0, sigma=1.0))
        P = Q.copy()
        P.data = np.ones_like(P.data)
        return P

    def block_bandwidth_check(self) -> bool:
        """True if the pattern is block-tridiagonal in time-major order."""
        Q = self.pattern().tocoo()
        t_row = Q.row // self.ns
        t_col = Q.col // self.ns
        return bool(np.all(np.abs(t_row - t_col) <= 1))
