"""SPDE / GMRF precision-matrix construction.

Implements the stochastic-partial-differential-equation representation of
Gaussian fields (paper refs. [24], [25]):

- :mod:`repro.spde.matern` — stationary spatial Matern fields
  (``alpha = 2``) on a triangulated mesh;
- :mod:`repro.spde.spatiotemporal` — the diffusion-based (DEMF(1,2,1))
  non-separable spatio-temporal model whose precision is a sum of three
  sparse Kronecker products, block-tridiagonal in time-major order;
- :mod:`repro.spde.params` — mappings between interpretable
  hyperparameters (spatial range, temporal range, marginal standard
  deviation) and the internal SPDE coefficients
  ``(gamma_s, gamma_t, gamma_e)``;
- :mod:`repro.spde.priors` — Gaussian priors on log-hyperparameters.
"""

from repro.spde.matern import matern_precision, spatial_operators
from repro.spde.params import (
    SpatioTemporalParams,
    gammas_from_interpretable,
    interpretable_from_gammas,
)
from repro.spde.priors import GaussianPrior, PriorCollection
from repro.spde.spatiotemporal import SpatioTemporalSPDE

__all__ = [
    "matern_precision",
    "spatial_operators",
    "SpatioTemporalSPDE",
    "SpatioTemporalParams",
    "gammas_from_interpretable",
    "interpretable_from_gammas",
    "GaussianPrior",
    "PriorCollection",
]
