"""Spatial Matern fields via the SPDE approach (Lindgren et al. 2011).

A Matern field with smoothness ``nu = alpha - d/2`` solves
``(kappa^2 - Delta)^{alpha/2} (tau u) = W`` on the domain.  With P1
elements and a *lumped* mass matrix ``C`` the discrete precision for
``alpha = 2`` is::

    Q = tau^2 (kappa^4 C + 2 kappa^2 G + G C^{-1} G)

All powers of the operator ``K = kappa^2 C + G`` stay sparse because
``C^{-1}`` is diagonal.  The helper :func:`spatial_operators` returns the
first three powers ``q1 = K``, ``q2 = K C^{-1} K``, ``q3 = K C^{-1} K
C^{-1} K`` used by the spatio-temporal construction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.meshes.fem import fem_matrices
from repro.meshes.mesh2d import Mesh2D
from repro.sparse.align import canonical_csr as _canon


def spatial_operators(mesh_or_CG, kappa: float) -> tuple:
    """First three powers of ``K = kappa^2 C + G`` (all CSR, symmetric).

    ``mesh_or_CG`` is either a :class:`Mesh2D` or a precomputed
    ``(C_lumped, G)`` pair — passing the pair avoids re-assembling the FEM
    matrices in every objective evaluation.
    """
    if isinstance(mesh_or_CG, Mesh2D):
        C, G = fem_matrices(mesh_or_CG)
    else:
        C, G = mesh_or_CG
    if kappa <= 0:
        raise ValueError(f"kappa must be positive, got {kappa}")
    C = sp.csr_matrix(C)
    cinv = sp.diags(1.0 / C.diagonal())
    q1 = _canon(kappa**2 * C + G)
    q2 = _canon(q1 @ cinv @ q1)
    q3 = _canon(q1 @ cinv @ q2)
    return q1, q2, q3


def spatial_operator_bases(mesh_or_CG) -> tuple:
    """The four *fixed* sparse bases spanning every operator power.

    Because the lumped mass matrix ``C`` is diagonal, ``C C^{-1} = I`` and
    the powers of ``K = kappa^2 C + G`` expand into polynomials in
    ``kappa^2`` over hyperparameter-independent matrices::

        q1 = kappa^2 C +        G
        q2 = kappa^4 C + 2 kappa^2 G +            H2
        q3 = kappa^6 C + 3 kappa^4 G + 3 kappa^2 H2 + H3

    with ``H2 = G C^{-1} G`` and ``H3 = G C^{-1} G C^{-1} G``.  Returns
    ``(C, G, H2, H3)`` in canonical CSR — the symbolic half of the
    assembly split: the bases (and their sparsity) are built once, and
    every re-assembly touches only the scalar coefficients of
    :func:`spatial_operator_coefficients`.
    """
    if isinstance(mesh_or_CG, Mesh2D):
        C, G = fem_matrices(mesh_or_CG)
    else:
        C, G = mesh_or_CG
    C = sp.csr_matrix(C)
    G = sp.csr_matrix(G)
    cinv = sp.diags(1.0 / C.diagonal())
    H2 = _canon(G @ cinv @ G)
    H3 = _canon(G @ cinv @ H2)
    return _canon(C), _canon(G), H2, H3


def spatial_operator_coefficients(kappa: float) -> tuple:
    """Coefficients of ``(q1, q2, q3)`` in the ``(C, G, H2, H3)`` basis.

    The numeric half of :func:`spatial_operator_bases`: three rows of
    four scalars each, exact binomial coefficients of the ``K C^{-1} K``
    expansion.  Raises for the same infeasible ``kappa`` as
    :func:`spatial_operators`.
    """
    if kappa <= 0:
        raise ValueError(f"kappa must be positive, got {kappa}")
    k2 = kappa * kappa
    k4 = k2 * k2
    return (
        (k2, 1.0, 0.0, 0.0),
        (k4, 2.0 * k2, 1.0, 0.0),
        (k4 * k2, 3.0 * k4, 3.0 * k2, 1.0),
    )


def matern_precision(mesh_or_CG, *, range_: float, sigma: float) -> sp.csr_matrix:
    """Precision of an ``alpha = 2`` Matern field with unit-area marginals.

    Interpretable parameterization: ``kappa = sqrt(8 nu) / range`` with
    ``nu = 1`` and ``tau`` chosen so the marginal variance is ``sigma^2``
    (stationary formula ``sigma^2 = 1 / (4 pi kappa^2 tau^2)``).
    """
    if range_ <= 0 or sigma <= 0:
        raise ValueError(f"range and sigma must be positive, got {range_}, {sigma}")
    nu = 1.0
    kappa = np.sqrt(8.0 * nu) / range_
    tau2 = 1.0 / (4.0 * np.pi * kappa**2 * sigma**2)
    if isinstance(mesh_or_CG, Mesh2D):
        C, G = fem_matrices(mesh_or_CG)
    else:
        C, G = mesh_or_CG
    cinv = sp.diags(1.0 / sp.csr_matrix(C).diagonal())
    K = kappa**2 * C + G
    return _canon(tau2 * (K @ cinv @ K))
