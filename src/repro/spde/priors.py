"""Priors over hyperparameters.

INLA needs ``log p(theta)`` (first term of the objective, paper Eq. 8).
Following INLA_DIST's default we place independent Gaussian priors on the
*log-scale* hyperparameters; a :class:`PriorCollection` evaluates the
joint log-density and supplies the starting point for BFGS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GaussianPrior:
    """Univariate Gaussian prior on one (log-scale) hyperparameter."""

    mean: float = 0.0
    precision: float = 0.5

    def __post_init__(self):
        if self.precision <= 0:
            raise ValueError(f"prior precision must be positive, got {self.precision}")

    def logpdf(self, x: float) -> float:
        return 0.5 * (np.log(self.precision) - np.log(2.0 * np.pi)) - 0.5 * self.precision * (
            x - self.mean
        ) ** 2

    def grad_logpdf(self, x: float) -> float:
        return -self.precision * (x - self.mean)


class PriorCollection:
    """Independent Gaussian priors over the full theta vector."""

    def __init__(self, priors: list):
        if not priors:
            raise ValueError("need at least one prior")
        self.priors = list(priors)

    @classmethod
    def default(cls, dim: int, *, mean: float = 0.0, precision: float = 0.5) -> "PriorCollection":
        """Weakly informative iid Gaussian priors for all components."""
        return cls([GaussianPrior(mean=mean, precision=precision) for _ in range(dim)])

    @property
    def dim(self) -> int:
        return len(self.priors)

    def logpdf(self, theta: np.ndarray) -> float:
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape != (self.dim,):
            raise ValueError(f"theta shape {theta.shape} != ({self.dim},)")
        return float(sum(p.logpdf(t) for p, t in zip(self.priors, theta)))

    def logpdf_stack(self, thetas: np.ndarray) -> np.ndarray:
        """Joint log-densities of a ``(t, dim)`` theta stack, vectorized.

        One broadcasted pass over the component means/precisions —
        agrees with per-point :meth:`logpdf` to rounding (the stencil
        batch epilogue's tolerance), not bit-for-bit (summation order).
        """
        thetas = np.asarray(thetas, dtype=np.float64)
        if thetas.ndim != 2 or thetas.shape[1] != self.dim:
            raise ValueError(f"thetas must be (t, {self.dim}), got {thetas.shape}")
        means = np.array([p.mean for p in self.priors])
        precs = np.array([p.precision for p in self.priors])
        const = 0.5 * np.sum(np.log(precs) - np.log(2.0 * np.pi))
        return const - 0.5 * ((thetas - means) ** 2 @ precs)

    def mean_vector(self) -> np.ndarray:
        """Prior means — the default BFGS starting point."""
        return np.array([p.mean for p in self.priors])
