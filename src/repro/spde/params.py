"""Hyperparameter mappings for the DEMF(1,2,1) spatio-temporal model.

The model has interpretable hyperparameters ``(r_s, r_t, sigma)`` — the
spatial correlation range, the temporal correlation range, and the
marginal standard deviation — which map to the internal SPDE coefficients
``(gamma_s, gamma_t, gamma_e)`` (Lindgren et al. 2024, paper ref. [25]).
For ``(alpha_t, alpha_s, alpha_e) = (1, 2, 1)`` on a 2-D spatial domain:

    nu_s    = alpha - d/2 = 1           with  alpha = alpha_e + alpha_s (alpha_t - 1/2) = 2
    gamma_s = sqrt(8 nu_s) / r_s
    gamma_t = (r_t / sqrt(8 (alpha_t - 1/2))) * gamma_s^{alpha_s}
            = r_t gamma_s^2 / 2
    sigma_0^2 = Gamma(alpha_t - 1/2) Gamma(alpha - d/2)
                / (Gamma(alpha_t) Gamma(alpha) (4 pi)^{(d+1)/2}
                   gamma_t gamma_s^{2(alpha-1)} )
    gamma_e = sigma_0 / sigma            so the field has variance sigma^2

The INLA optimizer works in ``theta = (log r_s, log r_t, log sigma)``
space (unconstrained), exactly like R-INLA and INLA_DIST.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gamma as gamma_fn

ALPHA_T = 1
ALPHA_S = 2
ALPHA_E = 1
D_SPACE = 2
ALPHA = ALPHA_E + ALPHA_S * (ALPHA_T - 0.5)  # = 2
NU_S = ALPHA - D_SPACE / 2.0  # = 1
NU_T = ALPHA_T - 0.5  # = 1/2


@dataclass(frozen=True)
class SpatioTemporalParams:
    """Interpretable hyperparameters of one univariate ST process."""

    range_s: float
    range_t: float
    sigma: float

    def __post_init__(self):
        if not all(np.isfinite([self.range_s, self.range_t, self.sigma])):
            raise ValueError(f"all parameters must be finite: {self}")
        if min(self.range_s, self.range_t, self.sigma) <= 0:
            raise ValueError(f"all parameters must be positive: {self}")

    def to_theta(self) -> np.ndarray:
        """Unconstrained optimizer coordinates (log scale)."""
        return np.log([self.range_s, self.range_t, self.sigma])

    @classmethod
    def from_theta(cls, theta: np.ndarray) -> "SpatioTemporalParams":
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape != (3,):
            raise ValueError(f"theta must have 3 entries, got shape {theta.shape}")
        r_s, r_t, sig = np.exp(theta)
        return cls(range_s=float(r_s), range_t=float(r_t), sigma=float(sig))


def _sigma0_squared(gamma_s: float, gamma_t: float) -> float:
    """Marginal variance of the unit-``gamma_e`` DEMF(1,2,1) field."""
    with np.errstate(over="raise", divide="raise"):
        try:
            num = gamma_fn(NU_T) * gamma_fn(NU_S)
            den = (
                gamma_fn(ALPHA_T)
                * gamma_fn(ALPHA)
                * (4.0 * np.pi) ** ((D_SPACE + 1) / 2.0)
                * gamma_t
                * gamma_s ** (2.0 * (ALPHA - 1.0))
            )
            out = num / den
        except FloatingPointError as exc:
            raise ValueError(f"hyperparameters out of range: {exc}") from exc
    if not np.isfinite(out) or out <= 0:
        raise ValueError(f"non-finite marginal variance for gammas ({gamma_s}, {gamma_t})")
    return out


def gammas_from_interpretable(params: SpatioTemporalParams) -> tuple:
    """Map ``(r_s, r_t, sigma)`` to internal ``(gamma_s, gamma_t, gamma_e)``."""
    gamma_s = np.sqrt(8.0 * NU_S) / params.range_s
    gamma_t = params.range_t * gamma_s**ALPHA_S / np.sqrt(8.0 * NU_T)
    sigma0 = np.sqrt(_sigma0_squared(gamma_s, gamma_t))
    gamma_e = sigma0 / params.sigma
    return float(gamma_s), float(gamma_t), float(gamma_e)


def gammas_from_interpretable_stack(
    range_s: np.ndarray, range_t: np.ndarray, sigma: np.ndarray | None = None
) -> tuple:
    """Vectorized :func:`gammas_from_interpretable` with a feasibility mask.

    Operates elementwise on arrays of interpretable parameters (one entry
    per theta of a stencil batch) and returns
    ``(gamma_s, gamma_t, gamma_e, feasible)``.  Instead of raising on an
    out-of-range configuration — the scalar path's behaviour, which a
    batch cannot use because one bad theta would poison the stack —
    overflow/underflow is let through under a suppressed errstate and the
    affected entries are reported as infeasible: exactly the
    configurations for which the scalar path raises ``ValueError``.
    All arithmetic is elementwise, so a length-1 stack is bit-identical
    to any batched evaluation of the same theta.
    """
    range_s = np.asarray(range_s, dtype=np.float64)
    range_t = np.asarray(range_t, dtype=np.float64)
    sig = np.ones_like(range_s) if sigma is None else np.asarray(sigma, dtype=np.float64)
    with np.errstate(all="ignore"):
        gamma_s = np.sqrt(8.0 * NU_S) / range_s
        gamma_t = range_t * gamma_s**ALPHA_S / np.sqrt(8.0 * NU_T)
        sigma0_sq = (gamma_fn(NU_T) * gamma_fn(NU_S)) / (
            gamma_fn(ALPHA_T)
            * gamma_fn(ALPHA)
            * (4.0 * np.pi) ** ((D_SPACE + 1) / 2.0)
            * gamma_t
            * gamma_s ** (2.0 * (ALPHA - 1.0))
        )
        gamma_e = np.sqrt(sigma0_sq) / sig
    # The gamma conditions subsume the input-range ones: a zero, infinite
    # or NaN range/sigma always surfaces as a non-finite or non-positive
    # gamma (e.g. ``range_s = inf -> gamma_s = 0``,
    # ``sigma0^2 <= 0 -> gamma_e`` NaN or 0), so checking the three
    # outputs covers every configuration the scalar path raises for.
    feasible = (
        np.isfinite(gamma_s) & (gamma_s > 0)
        & np.isfinite(gamma_t) & (gamma_t > 0)
        & np.isfinite(gamma_e) & (gamma_e > 0)
    )
    return gamma_s, gamma_t, gamma_e, feasible


def interpretable_from_gammas(
    gamma_s: float, gamma_t: float, gamma_e: float
) -> SpatioTemporalParams:
    """Inverse of :func:`gammas_from_interpretable` (used in tests)."""
    if min(gamma_s, gamma_t, gamma_e) <= 0:
        raise ValueError("gammas must be positive")
    range_s = np.sqrt(8.0 * NU_S) / gamma_s
    range_t = gamma_t * np.sqrt(8.0 * NU_T) / gamma_s**ALPHA_S
    sigma = np.sqrt(_sigma0_squared(gamma_s, gamma_t)) / gamma_e
    return SpatioTemporalParams(range_s=float(range_s), range_t=float(range_t), sigma=float(sigma))
