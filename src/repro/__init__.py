"""DALIA reproduction: accelerated spatio-temporal Bayesian modeling for
multivariate Gaussian processes (Gaedke-Merzhaeuser, Maillou et al., SC 2025).

Public API quick map:

- build a model: :class:`repro.model.CoregionalSTModel` (or
  :func:`repro.model.make_dataset` for synthetic data of any Table IV shape);
- run inference: :class:`repro.inla.DALIA` (``fit`` -> posterior
  marginals of hyperparameters and latent field);
- structured solvers: :mod:`repro.structured` (``pobtaf``/``pobtas``/
  ``pobtasi`` and their distributed ``d_*`` variants);
- baselines: :class:`repro.baselines.RINLAEngine`,
  :class:`repro.baselines.INLADistEngine`;
- scaling predictions: :mod:`repro.perfmodel`.

See README.md for a quickstart and DESIGN.md for the full system map.
"""

__version__ = "1.0.0"

from repro.inla.dalia import DALIA, INLAResult
from repro.model.assembler import CoregionalSTModel, ResponseData
from repro.model.datasets import TABLE_IV, make_dataset

__all__ = [
    "DALIA",
    "INLAResult",
    "CoregionalSTModel",
    "ResponseData",
    "make_dataset",
    "TABLE_IV",
    "__version__",
]
