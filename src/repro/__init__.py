"""DALIA reproduction: accelerated spatio-temporal Bayesian modeling for
multivariate Gaussian processes (Gaedke-Merzhaeuser, Maillou et al., SC 2025).

Public API quick map (everything below is importable from ``repro``
directly — deep module paths stay available but are not needed):

- build a model: :class:`CoregionalSTModel` (or :func:`make_dataset` for
  synthetic data of any Table IV shape);
- run inference: :class:`DALIA` (``fit`` -> posterior marginals of
  hyperparameters and latent field) returning an :class:`INLAResult`;
- query a fitted posterior: :class:`LatentPosterior` (sampling,
  prediction, exceedance — all served from one cached factorization);
- serve many queriers: :mod:`repro.serving` — typed requests
  (:class:`PredictRequest` / :class:`SampleRequest` /
  :class:`ExceedanceRequest`) through a :class:`Server` micro-batcher
  over a byte-budgeted :class:`ModelRegistry`;
- structured solvers: :func:`factorize` -> :class:`BTAFactor` handles,
  with :func:`select_solver` / :class:`SequentialSolver` /
  :class:`DistributedSolver` choosing the execution strategy;
- baselines: :class:`repro.baselines.RINLAEngine`,
  :class:`repro.baselines.INLADistEngine`;
- scaling predictions: :mod:`repro.perfmodel`.

See README.md for a quickstart and DESIGN.md for the full system map.
"""

__version__ = "1.2.0"

from repro import errors, faults, serving
from repro.errors import ReproError, is_transient
from repro.faults import FaultPlan, FaultSpec
from repro.inla.dalia import DALIA, INLAResult
from repro.inla.sampling import LatentPosterior
from repro.inla.solvers import (
    DistributedSolver,
    SequentialSolver,
    StructuredSolver,
    select_solver,
)
from repro.model.assembler import CoregionalSTModel, ResponseData
from repro.model.datasets import TABLE_IV, make_dataset
from repro.serving import (
    ExceedanceRequest,
    ExceedanceResult,
    ModelRegistry,
    PredictRequest,
    PredictResult,
    SampleRequest,
    SampleResult,
    Server,
)
from repro.structured.factor import BTAFactor, DistributedBTAFactor, factorize

__all__ = [
    # modeling + inference
    "DALIA",
    "INLAResult",
    "CoregionalSTModel",
    "ResponseData",
    "make_dataset",
    "TABLE_IV",
    # posterior queries
    "LatentPosterior",
    # serving tier
    "serving",
    "Server",
    "ModelRegistry",
    "PredictRequest",
    "PredictResult",
    "SampleRequest",
    "SampleResult",
    "ExceedanceRequest",
    "ExceedanceResult",
    # structured solver handles + dispatch
    "factorize",
    "BTAFactor",
    "DistributedBTAFactor",
    "StructuredSolver",
    "SequentialSolver",
    "DistributedSolver",
    "select_solver",
    # resilience: unified errors + deterministic fault injection
    "errors",
    "faults",
    "ReproError",
    "is_transient",
    "FaultPlan",
    "FaultSpec",
    "__version__",
]
