"""Thread-based SPMD execution.

:func:`run_spmd` plays the role of ``mpiexec -n P``: it launches one Python
thread per rank, each receiving a :class:`ThreadComm` bound to the shared
group state.  Collectives are implemented with rendezvous barriers and a
shared slot array; point-to-point messages go through per-(source, dest,
tag) queues.  NumPy's BLAS releases the GIL, so the block-dense kernels of
the structured solvers genuinely overlap across ranks — this is the
closest single-node analogue of the paper's MPI+NCCL execution.

Determinism: reductions are evaluated in rank order on every rank, so
``Allreduce`` results are bit-identical across ranks and across runs.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable

import numpy as np

from repro.comm.communicator import Communicator, ReduceOp, _reduce_pair


class _GroupState:
    """Shared state for one communicator group of ``size`` ranks."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("group size must be >= 1")
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list = [None] * size
        self.mailboxes: dict = {}
        self.mailbox_lock = threading.Lock()
        self.split_result: dict = {}

    def mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self.mailbox_lock:
            box = self.mailboxes.get(key)
            if box is None:
                box = self.mailboxes[key] = queue.Queue()
            return box

    def abort(self) -> None:
        self.barrier.abort()


class ThreadComm(Communicator):
    """Communicator over ranks that are threads sharing a :class:`_GroupState`."""

    def __init__(self, group: _GroupState, rank: int):
        self._group = group
        self._rank = rank

    # -- topology ---------------------------------------------------------

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._group.size

    def Split(self, color: int, key: int = 0) -> "Communicator":
        g = self._group
        g.slots[self._rank] = (color, key, self._rank)
        g.barrier.wait()
        if self._rank == 0:
            # Rank 0 groups the (color, key, rank) triples and publishes one
            # fresh _GroupState per color; members then index in by rank.
            by_color: dict = {}
            for triple in g.slots:
                by_color.setdefault(triple[0], []).append(triple)
            result = {}
            for c, members in by_color.items():
                members.sort(key=lambda t: (t[1], t[2]))
                sub = _GroupState(len(members))
                for new_rank, (_, _, old_rank) in enumerate(members):
                    result[old_rank] = (sub, new_rank)
            g.split_result = result
            g.barrier.wait()
        else:
            g.barrier.wait()
        sub, new_rank = g.split_result[self._rank]
        g.barrier.wait()  # keep split_result alive until everyone has read it
        from repro.comm.serial import SerialComm

        if sub.size == 1:
            return SerialComm()
        return ThreadComm(sub, new_rank)

    # -- point to point ---------------------------------------------------

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self._group.size or dest == self._rank:
            raise ValueError(f"invalid destination rank {dest}")
        # Copy on send: the receiver must observe the value at send time
        # even if the sender mutates the buffer afterwards (MPI semantics).
        self._group.mailbox(self._rank, dest, tag).put(np.array(buf, copy=True))

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        if not 0 <= source < self._group.size or source == self._rank:
            raise ValueError(f"invalid source rank {source}")
        msg = self._group.mailbox(source, self._rank, tag).get()
        if msg.shape != buf.shape:
            raise ValueError(f"Recv shape mismatch: got {msg.shape}, want {buf.shape}")
        buf[...] = msg

    # -- collectives ------------------------------------------------------

    def Barrier(self) -> None:
        self._group.barrier.wait()

    def Allreduce(self, sendbuf: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        g = self._group
        g.slots[self._rank] = np.asarray(sendbuf)
        g.barrier.wait()
        # Every rank reduces in rank order => deterministic, identical results.
        acc = np.array(g.slots[0], copy=True)
        for r in range(1, g.size):
            acc = _reduce_pair(acc, g.slots[r], op)
        g.barrier.wait()  # protect slots until all ranks finished reading
        return acc

    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        g = self._group
        if self._rank == root:
            g.slots[root] = np.asarray(buf)
        g.barrier.wait()
        out = np.array(g.slots[root], copy=True) if self._rank != root else buf
        g.barrier.wait()
        if self._rank != root:
            buf = np.asarray(buf)
            if buf.shape == out.shape:
                buf[...] = out
                return buf
        return out

    def Allgather(self, sendbuf: np.ndarray) -> list:
        g = self._group
        g.slots[self._rank] = np.asarray(sendbuf)
        g.barrier.wait()
        out = [np.array(g.slots[r], copy=True) for r in range(g.size)]
        g.barrier.wait()
        return out

    # -- pickled-object variants -------------------------------------------

    def bcast(self, obj, root: int = 0):
        g = self._group
        if self._rank == root:
            g.slots[root] = obj
        g.barrier.wait()
        out = g.slots[root]
        g.barrier.wait()
        return out

    def allgather(self, obj) -> list:
        g = self._group
        g.slots[self._rank] = obj
        g.barrier.wait()
        out = [g.slots[r] for r in range(g.size)]
        g.barrier.wait()
        return out


def run_spmd(nranks: int, fn: Callable, *args, **kwargs) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` thread-ranks.

    Returns the list of per-rank return values, ordered by rank.  If any
    rank raises, the group barrier is aborted (so no rank deadlocks) and
    the first exception is re-raised in the caller.
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if nranks == 1:
        from repro.comm.serial import SerialComm

        return [fn(SerialComm(), *args, **kwargs)]

    group = _GroupState(nranks)
    results: list = [None] * nranks
    errors: list = []
    errors_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = ThreadComm(group, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must not deadlock peers
            with errors_lock:
                errors.append((rank, exc))
            group.abort()

    threads = [threading.Thread(target=worker, args=(r,), daemon=True) for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        if isinstance(exc, threading.BrokenBarrierError):
            # Secondary failure; prefer reporting a primary error if any.
            primaries = [e for e in errors if not isinstance(e[1], threading.BrokenBarrierError)]
            if primaries:
                rank, exc = min(primaries, key=lambda e: e[0])
        raise RuntimeError(f"SPMD rank {rank} failed") from exc
    return results
