"""Thread-based SPMD execution.

:func:`run_spmd` plays the role of ``mpiexec -n P``: it launches one Python
thread per rank, each receiving a :class:`ThreadComm` bound to the shared
group state.  Collectives are implemented with rendezvous barriers and a
shared slot array; point-to-point messages go through per-(source, dest,
tag) queues.  NumPy's BLAS releases the GIL, so the block-dense kernels of
the structured solvers genuinely overlap across ranks — this is the
closest single-node analogue of the paper's MPI+NCCL execution.

Determinism: reductions are evaluated in rank order on every rank, so
``Allreduce`` results are bit-identical across ranks and across runs.

Failure semantics: every blocking wait (mailbox ``Recv``, barrier
rendezvous) carries the ``REPRO_COMM_TIMEOUT`` deadline and an abort
check.  A rank that times out (e.g. on a mismatched ``Recv`` tag) raises
:class:`~repro.comm.errors.CommTimeoutError` and aborts the group; peers
blocked in any collective of the group tree then raise
:class:`~repro.comm.errors.CommAbortError` instead of hanging forever.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable

import numpy as np

from repro.comm.communicator import Communicator, ReduceOp, _reduce_pair
from repro.comm.errors import CommAbortError, CommTimeoutError, comm_timeout

#: Poll interval for abortable blocking waits (seconds).
_POLL_S = 0.02


class _GroupState:
    """Shared state for one communicator group of ``size`` ranks.

    Groups form a tree under :meth:`ThreadComm.Split`; an abort anywhere
    cascades over the whole tree so no rank of any (sub)group stays
    blocked after a failure.
    """

    def __init__(self, size: int, parent: "_GroupState | None" = None):
        if size < 1:
            raise ValueError("group size must be >= 1")
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list = [None] * size
        self.mailboxes: dict = {}
        self.mailbox_lock = threading.Lock()
        self.split_result: dict = {}
        self.parent = parent
        self.children: list = []
        self.abort_event = threading.Event()
        self.failed_rank: int | None = None

    def mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self.mailbox_lock:
            box = self.mailboxes.get(key)
            if box is None:
                box = self.mailboxes[key] = queue.Queue()
            return box

    def register_child(self, child: "_GroupState") -> None:
        with self.mailbox_lock:
            self.children.append(child)
            if self.abort_event.is_set():
                child._abort_down(self.failed_rank)

    def abort(self, rank: int | None = None) -> None:
        """Abort the whole group tree (root-first), recording the failing rank."""
        root = self
        while root.parent is not None:
            root = root.parent
        root._abort_down(rank)

    def _abort_down(self, rank: int | None) -> None:
        if self.failed_rank is None:
            self.failed_rank = rank
        self.abort_event.set()
        self.barrier.abort()
        with self.mailbox_lock:
            children = list(self.children)
        for child in children:
            child._abort_down(rank)


class ThreadComm(Communicator):
    """Communicator over ranks that are threads sharing a :class:`_GroupState`."""

    def __init__(self, group: _GroupState, rank: int):
        self._group = group
        self._rank = rank

    # -- failure handling --------------------------------------------------

    def _abort_error(self) -> CommAbortError:
        failed = self._group.failed_rank
        detail = f" (rank {failed} failed)" if failed is not None else ""
        return CommAbortError(
            f"communicator group aborted{detail}", failed_rank=failed
        )

    def _wait_barrier(self) -> None:
        """Barrier rendezvous with the group timeout and abort translation."""
        g = self._group
        if g.abort_event.is_set():
            raise self._abort_error()
        timeout = comm_timeout()
        start = time.monotonic()
        try:
            g.barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError:
            if g.abort_event.is_set():
                raise self._abort_error() from None
            if time.monotonic() - start >= timeout:
                g.abort(self._rank)
                raise CommTimeoutError(
                    f"rank {self._rank}: barrier timed out after {timeout:g} s"
                ) from None
            # A peer broke the barrier without setting the abort flag yet
            # (its own timeout path is racing us); treat it as an abort.
            raise self._abort_error() from None

    # -- topology ---------------------------------------------------------

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._group.size

    def Split(self, color: int, key: int = 0) -> "Communicator":
        g = self._group
        g.slots[self._rank] = (color, key, self._rank)
        self._wait_barrier()
        if self._rank == 0:
            # Rank 0 groups the (color, key, rank) triples and publishes one
            # fresh _GroupState per color; members then index in by rank.
            by_color: dict = {}
            for triple in g.slots:
                by_color.setdefault(triple[0], []).append(triple)
            result = {}
            for c, members in by_color.items():
                members.sort(key=lambda t: (t[1], t[2]))
                sub = _GroupState(len(members), parent=g)
                g.register_child(sub)
                for new_rank, (_, _, old_rank) in enumerate(members):
                    result[old_rank] = (sub, new_rank)
            g.split_result = result
            self._wait_barrier()
        else:
            self._wait_barrier()
        sub, new_rank = g.split_result[self._rank]
        self._wait_barrier()  # keep split_result alive until everyone has read it
        from repro.comm.serial import SerialComm

        if sub.size == 1:
            return SerialComm()
        return ThreadComm(sub, new_rank)

    # -- point to point ---------------------------------------------------

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self._group.size or dest == self._rank:
            raise ValueError(f"invalid destination rank {dest}")
        # Copy on send: the receiver must observe the value at send time
        # even if the sender mutates the buffer afterwards (MPI semantics).
        self._group.mailbox(self._rank, dest, tag).put(np.array(buf, copy=True))

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        if not 0 <= source < self._group.size or source == self._rank:
            raise ValueError(f"invalid source rank {source}")
        box = self._group.mailbox(source, self._rank, tag)
        timeout = comm_timeout()
        deadline = time.monotonic() + timeout
        while True:
            if self._group.abort_event.is_set():
                raise self._abort_error()
            try:
                msg = box.get(timeout=min(_POLL_S, timeout))
                break
            except queue.Empty:
                if time.monotonic() >= deadline:
                    self._group.abort(self._rank)
                    raise CommTimeoutError(
                        f"rank {self._rank}: Recv(source={source}, tag={tag}) "
                        f"timed out after {timeout:g} s (no matching message)"
                    ) from None
        if msg.shape != buf.shape:
            raise ValueError(f"Recv shape mismatch: got {msg.shape}, want {buf.shape}")
        buf[...] = msg

    # -- collectives ------------------------------------------------------

    def Barrier(self) -> None:
        self._wait_barrier()

    def Allreduce(self, sendbuf: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        g = self._group
        g.slots[self._rank] = np.asarray(sendbuf)
        self._wait_barrier()
        # Every rank reduces in rank order => deterministic, identical results.
        acc = np.array(g.slots[0], copy=True)
        for r in range(1, g.size):
            acc = _reduce_pair(acc, g.slots[r], op)
        self._wait_barrier()  # protect slots until all ranks finished reading
        return acc

    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        g = self._group
        if self._rank == root:
            g.slots[root] = np.asarray(buf)
        self._wait_barrier()
        out = np.array(g.slots[root], copy=True) if self._rank != root else buf
        self._wait_barrier()
        if self._rank != root:
            buf = np.asarray(buf)
            if buf.shape == out.shape:
                buf[...] = out
                return buf
        return out

    def Allgather(self, sendbuf: np.ndarray) -> list:
        g = self._group
        g.slots[self._rank] = np.asarray(sendbuf)
        self._wait_barrier()
        out = [np.array(g.slots[r], copy=True) for r in range(g.size)]
        self._wait_barrier()
        return out

    # -- pickled-object variants -------------------------------------------

    def bcast(self, obj, root: int = 0):
        g = self._group
        if self._rank == root:
            g.slots[root] = obj
        self._wait_barrier()
        out = g.slots[root]
        self._wait_barrier()
        return out

    def allgather(self, obj) -> list:
        g = self._group
        g.slots[self._rank] = obj
        self._wait_barrier()
        out = [g.slots[r] for r in range(g.size)]
        self._wait_barrier()
        return out


def _is_secondary_error(exc: BaseException) -> bool:
    """Errors that are consequences of another rank's failure, not causes."""
    return isinstance(exc, (threading.BrokenBarrierError, CommAbortError))


def run_spmd(nranks: int, fn: Callable, *args, **kwargs) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` thread-ranks.

    Returns the list of per-rank return values, ordered by rank.  If any
    rank raises, the group (and every subgroup split from it) is aborted
    — so no rank deadlocks in a barrier, mailbox wait, or collective —
    and the first *primary* exception is re-raised in the caller
    (secondary :class:`CommAbortError` / broken-barrier failures are
    preferred-away when a real cause exists).
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if nranks == 1:
        from repro.comm.serial import SerialComm

        return [fn(SerialComm(), *args, **kwargs)]

    group = _GroupState(nranks)
    results: list = [None] * nranks
    errors: list = []
    errors_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = ThreadComm(group, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must not deadlock peers
            with errors_lock:
                errors.append((rank, exc))
            group.abort(rank)

    threads = [threading.Thread(target=worker, args=(r,), daemon=True) for r in range(nranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        if _is_secondary_error(exc):
            # Secondary failure; prefer reporting a primary error if any.
            primaries = [e for e in errors if not _is_secondary_error(e[1])]
            if primaries:
                rank, exc = min(primaries, key=lambda e: e[0])
        raise RuntimeError(f"SPMD rank {rank} failed") from exc
    return results
