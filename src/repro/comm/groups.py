"""Nested process groups for the three parallelization layers (paper Fig. 3).

A pool of ``nprocs`` ranks is organized as a dense grid
``s1 x s2 x s3``:

- ``s1`` — number of groups evaluating ``fobj`` at different
  finite-difference stencil points in parallel (strategy S1, saturates at
  ``nfeval = 2 dim(theta) + 1``);
- ``s2`` — factorization parallelism inside one evaluation: ``Qp`` and
  ``Qc`` factorized concurrently for Gaussian likelihoods (S2, saturates
  at 2);
- ``s3`` — time-domain partitions of the distributed structured solver
  (S3, saturates at the number of diagonal blocks).

``plan_process_grid`` implements the paper's resource-assignment policy
(Sec. V-D): prefer S1 until saturated, then S2, then S3 — except that S3 is
raised first when the densified matrix does not fit in device memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.communicator import Communicator


@dataclass(frozen=True)
class ProcessGrid:
    """Sizes of the three nested parallel layers."""

    s1: int
    s2: int
    s3: int

    def __post_init__(self):
        if self.s1 < 1 or self.s2 < 1 or self.s3 < 1:
            raise ValueError(f"all grid sizes must be >= 1, got {self}")
        if self.s2 > 2:
            raise ValueError("S2 parallelizes Qp vs Qc only; s2 <= 2")

    @property
    def nprocs(self) -> int:
        return self.s1 * self.s2 * self.s3

    def coords(self, rank: int) -> tuple:
        """Decompose a world rank into (i1, i2, i3) grid coordinates."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range for grid {self}")
        i3 = rank % self.s3
        i2 = (rank // self.s3) % self.s2
        i1 = rank // (self.s2 * self.s3)
        return i1, i2, i3


def plan_process_grid(
    nprocs: int,
    nfeval: int,
    *,
    gaussian: bool = True,
    min_s3: int = 1,
    max_s3: int = 10**9,
) -> ProcessGrid:
    """Choose (s1, s2, s3) for ``nprocs`` ranks.

    ``min_s3`` is the memory-driven lower bound on the number of
    time-domain partitions (from :func:`repro.backend.memory.min_partitions`);
    ``max_s3`` caps it at the number of diagonal blocks.  Remaining factors
    go to S1 first (embarrassingly parallel), then S2 (x2, Gaussian only),
    then back to S3.
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    if min_s3 > max_s3:
        raise ValueError(f"min_s3={min_s3} exceeds max_s3={max_s3}")
    s3 = max(1, min(min_s3, max_s3))
    remaining = max(1, nprocs // s3)
    s1 = min(remaining, nfeval)
    remaining //= max(s1, 1)
    s2 = 2 if (gaussian and remaining >= 2) else 1
    remaining //= max(s2, 1)
    # Spill leftover ranks into deeper time-domain partitioning.
    if remaining > 1:
        s3 = min(s3 * remaining, max_s3)
    return ProcessGrid(s1=s1, s2=s2, s3=s3)


@dataclass
class GridComms:
    """Communicators carved out of the world for one rank's grid position."""

    world: Communicator
    #: ranks sharing this rank's stencil point: size s2 * s3 (the S2 x S3 block)
    eval_comm: Communicator
    #: ranks sharing this rank's matrix (Qp or Qc): size s3 (the S3 group)
    solver_comm: Communicator
    #: grid coordinates of this rank
    i1: int
    i2: int
    i3: int
    grid: ProcessGrid


def split_process_grid(world: Communicator, grid: ProcessGrid) -> GridComms:
    """Split the world communicator into the nested S1/S2/S3 groups.

    Must be called collectively by all ``grid.nprocs`` world ranks.
    """
    if world.Get_size() != grid.nprocs:
        raise ValueError(
            f"world size {world.Get_size()} does not match grid {grid} "
            f"({grid.nprocs} ranks)"
        )
    rank = world.Get_rank()
    i1, i2, i3 = grid.coords(rank)
    eval_comm = world.Split(color=i1, key=rank)
    solver_comm = eval_comm.Split(color=i2, key=rank)
    return GridComms(
        world=world,
        eval_comm=eval_comm,
        solver_comm=solver_comm,
        i1=i1,
        i2=i2,
        i3=i3,
        grid=grid,
    )
