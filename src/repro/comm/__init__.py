"""SPMD communication substrate.

The paper uses MPI (mpi4py) between function-evaluation groups and NCCL
inside the distributed solver.  This package provides communicators with
mpi4py-compatible semantics across four backends:

- :class:`SerialComm` — single-rank communicator (collectives are no-ops).
- :class:`ThreadComm` — P ranks executed as Python threads with real
  rendezvous collectives (NumPy BLAS releases the GIL, so block kernels do
  overlap).
- :class:`ShmComm` — P ranks executed as OS *processes* whose block
  transfers ride one ``multiprocessing.shared_memory`` segment (slot-based
  collectives, SPSC rings for point-to-point).  Real parallelism, measured
  — not modeled — traffic.
- :class:`MpiComm` — import-guarded mpi4py adapter for hosts that have a
  real MPI runtime.

All are launched through :func:`run_spmd`, which plays ``mpiexec -n P``:
``run_spmd(P, fn, backend="threads"|"proc"|"mpi")`` (default from the
``REPRO_COMM`` env var).  Determinism contract: ``Allreduce`` reduces in
rank order on every rank, so results are bit-identical across ranks,
runs, AND backends.  Every blocking operation honors the
``REPRO_COMM_TIMEOUT`` deadline — failures raise
:class:`CommTimeoutError` / :class:`CommAbortError` instead of hanging,
and a failing rank aborts the whole group.

Communicator method names follow the mpi4py convention from the
hpc-parallel guide: capitalized methods (``Send``, ``Allreduce``) move
NumPy buffers; lowercase methods (``bcast``, ``allgather``) move pickled
Python objects.
"""

from repro.comm.communicator import Communicator, ReduceOp
from repro.comm.errors import CommAbortError, CommTimeoutError, comm_timeout
from repro.comm.groups import GridComms, ProcessGrid, plan_process_grid, split_process_grid
from repro.comm.launcher import SpmdSession, comm_backend, run_spmd, worker_store
from repro.comm.local import ThreadComm
from repro.comm.serial import SerialComm
from repro.comm.shm import ShmComm
from repro.comm.stats import CommStats, TraceComm

__all__ = [
    "Communicator",
    "ReduceOp",
    "SerialComm",
    "ThreadComm",
    "ShmComm",
    "SpmdSession",
    "run_spmd",
    "worker_store",
    "comm_backend",
    "CommAbortError",
    "CommTimeoutError",
    "comm_timeout",
    "TraceComm",
    "CommStats",
    "ProcessGrid",
    "GridComms",
    "plan_process_grid",
    "split_process_grid",
]
