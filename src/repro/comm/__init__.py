"""SPMD communication substrate.

The paper uses MPI (mpi4py) between function-evaluation groups and NCCL
inside the distributed solver.  Neither is available offline, so this
package provides communicators with mpi4py-compatible semantics:

- :class:`SerialComm` — single-rank communicator (collectives are no-ops).
- :class:`ThreadComm` — P ranks executed as Python threads with real
  rendezvous collectives (NumPy BLAS releases the GIL, so block kernels do
  overlap).  Created through :func:`run_spmd`, which launches one SPMD
  function on every rank, exactly like ``mpiexec -n P``.
- :class:`TraceComm` — wrapper that records message counts/bytes for the
  performance model.

Communicator method names follow the mpi4py convention from the
hpc-parallel guide: capitalized methods (``Send``, ``Allreduce``) move
NumPy buffers; lowercase methods (``bcast``, ``allgather``) move pickled
Python objects.
"""

from repro.comm.communicator import Communicator, ReduceOp
from repro.comm.local import ThreadComm, run_spmd
from repro.comm.serial import SerialComm
from repro.comm.stats import CommStats, TraceComm
from repro.comm.groups import GridComms, ProcessGrid, plan_process_grid, split_process_grid

__all__ = [
    "Communicator",
    "ReduceOp",
    "SerialComm",
    "ThreadComm",
    "run_spmd",
    "TraceComm",
    "CommStats",
    "ProcessGrid",
    "GridComms",
    "plan_process_grid",
    "split_process_grid",
]
