"""mpi4py adapter behind the :class:`Communicator` interface.

Import-guarded: the offline container has no MPI, so importing this
module is always safe — only *constructing* :class:`MpiComm` (or calling
:func:`run_spmd_mpi`) requires mpi4py.  Under a real MPI launch::

    mpirun -n 4 python my_script.py      # inside: MpiComm.world()

the same SPMD functions that run under ThreadComm/ShmComm run unchanged.

Determinism: mpi4py's ``Allreduce`` reduction order is implementation-
defined, so :meth:`MpiComm.Allreduce` instead allgathers every rank's
buffer and reduces in rank order locally — bit-identical to ThreadComm
and ShmComm at the cost of a size-P gather (the buffers involved are
small: objective values, boundary blocks).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.comm.communicator import Communicator, ReduceOp, _reduce_pair

try:  # pragma: no cover - exercised only where mpi4py exists
    from mpi4py import MPI as _MPI

    HAVE_MPI = True
except ImportError:
    _MPI = None
    HAVE_MPI = False


def _require_mpi() -> None:
    if not HAVE_MPI:
        raise RuntimeError(
            "mpi4py is not installed; use backend='threads' or 'proc' "
            "(REPRO_COMM) on this host"
        )


class MpiComm(Communicator):
    """Communicator over a real ``mpi4py`` communicator."""

    def __init__(self, comm=None):
        _require_mpi()
        self._comm = comm if comm is not None else _MPI.COMM_WORLD

    @classmethod
    def world(cls) -> "MpiComm":
        return cls()

    # -- topology ---------------------------------------------------------

    def Get_rank(self) -> int:
        return self._comm.Get_rank()

    def Get_size(self) -> int:
        return self._comm.Get_size()

    def Split(self, color: int, key: int = 0) -> "Communicator":
        sub = self._comm.Split(color, key)
        if sub.Get_size() == 1:
            sub.Free()
            from repro.comm.serial import SerialComm

            return SerialComm()
        return MpiComm(sub)

    # -- point to point ---------------------------------------------------

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        self._comm.Send(np.ascontiguousarray(buf), dest=dest, tag=tag)

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        self._comm.Recv(buf, source=source, tag=tag)

    # -- collectives ------------------------------------------------------

    def Barrier(self) -> None:
        self._comm.Barrier()

    def Allreduce(self, sendbuf: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        # Rank-ordered local reduction over an allgather: bit-identical to
        # the thread/shm backends, unlike MPI's implementation-defined tree.
        gathered = self._comm.allgather(np.asarray(sendbuf))
        acc = np.array(gathered[0], copy=True)
        for part in gathered[1:]:
            acc = _reduce_pair(acc, part, op)
        return acc

    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        arr = np.ascontiguousarray(buf)
        self._comm.Bcast(arr, root=root)
        return arr

    def Allgather(self, sendbuf: np.ndarray) -> list:
        return [np.array(a, copy=True) for a in self._comm.allgather(np.asarray(sendbuf))]

    # -- pickled-object variants -------------------------------------------

    def bcast(self, obj, root: int = 0):
        return self._comm.bcast(obj, root=root)

    def allgather(self, obj) -> list:
        return self._comm.allgather(obj)


def run_spmd_mpi(nranks: int, fn: Callable, *args, **kwargs) -> list:
    """Run ``fn`` under an existing MPI launch (``mpirun -n P``).

    Unlike the thread/proc launchers this does not create ranks — the MPI
    runtime already did.  Verifies the world size matches, runs ``fn`` on
    this rank, and allgathers the per-rank results so every rank returns
    the full ordered list.
    """
    _require_mpi()
    comm = MpiComm.world()
    if comm.Get_size() != nranks:
        raise RuntimeError(
            f"MPI world has {comm.Get_size()} ranks but nranks={nranks}; "
            "launch with mpirun -n {nranks}"
        )
    result = fn(comm, *args, **kwargs)
    return comm.allgather(result)
