"""Communication-layer failure types and the shared timeout policy.

A real comm layer must never hang: every blocking operation — mailbox
receives in :class:`~repro.comm.local.ThreadComm`, ring-buffer and slot
waits in :class:`~repro.comm.shm.ShmComm`, barrier rendezvous in both —
carries a deadline and an abort check.  Two failure modes are
distinguished because callers react differently:

- :class:`CommTimeoutError` — *this* rank waited longer than the
  operation timeout (a mismatched tag, a peer stuck in compute, a lost
  message).  The raising rank is the one that diagnosed the problem.
- :class:`CommAbortError` — *another* rank failed (raised, was killed,
  or timed out first) and the group was aborted so nobody deadlocks.
  The error names the failing rank when it is known.

The default timeout comes from ``REPRO_COMM_TIMEOUT`` (seconds); the CI
proc leg runs with a short value so a regression fails in seconds, not
after the 6-hour job limit.
"""

from __future__ import annotations

import os

# Re-homed into the unified hierarchy (repro.errors); this module stays
# the historical import path and keeps the timeout policy.
from repro.errors import (  # noqa: F401 - re-exported API
    CommAbortError,
    CommError,
    CommTimeoutError,
    SpmdRetryExhaustedError,
)

#: Default per-operation timeout (seconds) when ``REPRO_COMM_TIMEOUT`` is unset.
DEFAULT_COMM_TIMEOUT = 120.0


def comm_timeout(override: float | None = None) -> float:
    """Resolve the per-operation timeout in seconds.

    ``override`` wins when given; otherwise ``REPRO_COMM_TIMEOUT`` is
    consulted, falling back to :data:`DEFAULT_COMM_TIMEOUT`.  Values
    must be positive (a zero timeout would make every rendezvous race).
    """
    if override is not None:
        timeout = float(override)
    else:
        raw = os.environ.get("REPRO_COMM_TIMEOUT", "")
        timeout = float(raw) if raw else DEFAULT_COMM_TIMEOUT
    if timeout <= 0:
        raise ValueError(f"communication timeout must be positive, got {timeout}")
    return timeout
