"""Shared-memory SPMD communicator for process-level ranks.

:class:`ShmComm` implements the :class:`~repro.comm.communicator.Communicator`
interface over ONE ``multiprocessing.shared_memory`` segment shared by all
ranks of the world.  The launcher (:mod:`repro.comm.launcher`) creates the
segment and forks the workers; each worker attaches by name and drives its
rank through the same layout:

``[ header | world group block | spare arena ]``

- **header** — segment-wide abort flag + failing-rank cell.  Any failure
  (worker crash, timeout, raised exception) flips the flag; every blocking
  wait in every rank polls it, so the whole group aborts in milliseconds
  instead of deadlocking.
- **group block** — per-group collective state: per-rank generation
  counters (``ready``/``done``), per-rank bounce slots for collective
  payloads, and one SPSC byte ring per ordered rank pair for eager
  point-to-point sends.
- **spare arena** — zero-initialized space from which ``Split`` carves
  child group blocks deterministically (the carve is computed identically
  on every member from the collectively-exchanged colors, so no shared
  allocator is needed).

Collectives run a two-phase generation protocol on the counters:
publish (write slot, bump ``ready[rank]``), consume (wait for all
``ready >= gen``, read every slot, bump ``done[rank]``); the next
generation waits for all ``done >= gen`` before overwriting slots.
Payloads larger than a slot run multiple sub-rounds.  Alignment keeps
every counter on an 8-byte boundary, where CPython's int64 stores are
single instructions and x86-TSO/ARM64 release the data writes before the
counter bump becomes visible.

Determinism matches :class:`~repro.comm.local.ThreadComm` bit for bit:
``Allreduce`` ships every rank's buffer and reduces in rank order on
every rank with the same ``_reduce_pair`` chain.

Point-to-point is *eager*: ``Send`` frames ``(tag, array)`` into the
SPSC ring and returns once the bytes are in flight (blocking only when
the ring is full), and ``Recv`` keeps an out-of-order pending map per
``(source, tag)`` — so tag reordering works exactly as with ThreadComm
mailboxes.  Frames larger than the ring stream through it; two ranks
eagerly sending each other oversized frames simultaneously must use
``Sendrecv`` (parity-ordered), the same discipline real MPI eager/
rendezvous thresholds impose.

Every blocking wait honors ``REPRO_COMM_TIMEOUT`` and the abort flag
(:class:`CommTimeoutError` / :class:`CommAbortError`), and the actual
wire traffic is recorded in :attr:`ShmComm.measured` with the same kind
keys :class:`~repro.comm.stats.TraceComm` uses for modeled traffic, so
model and measurement can be cross-checked.
"""

from __future__ import annotations

import pickle
import time
from multiprocessing import shared_memory

import numpy as np

from repro import faults
from repro.comm.communicator import Communicator, ReduceOp, _reduce_pair
from repro.comm.errors import CommAbortError, CommTimeoutError, comm_timeout
from repro.comm.stats import CommStats

#: Per-rank collective bounce-slot capacity (bytes). Oversized payloads chunk.
SLOT_BYTES = 256 * 1024
#: Per-ordered-pair point-to-point ring capacity (bytes).
RING_BYTES = 256 * 1024
#: Segment header: abort flag (int64) + failing rank + 1 (int64), padded.
HEADER_BYTES = 64

_I8 = np.dtype("<i8")
_SLEEP_S = 0.0002  # back-off sleep between poll spins
_SPIN = 200  # cheap spins before sleeping


def _align8(n: int) -> int:
    return (n + 7) & ~7


def group_block_bytes(size: int) -> int:
    """Bytes of one group block for ``size`` ranks (counters + slots + rings)."""
    counters = 4 * 8 * size  # ready, done, slot_len, slot_total
    slots = size * SLOT_BYTES
    rings = size * size * (16 + RING_BYTES)  # head+tail+data per ordered pair
    return _align8(counters + slots + rings)


def segment_bytes(world_size: int) -> int:
    """Total shared segment size for a world of ``world_size`` ranks.

    The spare arena holds 4x the world block so nested ``Split`` calls
    (e.g. the process-grid row/column communicators) can carve children.
    """
    block = group_block_bytes(world_size)
    return HEADER_BYTES + block + 4 * block


class _GroupLayout:
    """Offsets of one group's state inside the shared segment."""

    def __init__(self, base: int, size: int, spare_base: int, spare_bytes: int):
        self.base = base
        self.size = size
        self.spare_base = spare_base
        self.spare_bytes = spare_bytes
        s = size
        self.ready_off = base
        self.done_off = base + 8 * s
        self.slot_len_off = base + 16 * s
        self.slot_total_off = base + 24 * s
        self.slots_off = base + 32 * s
        self.rings_off = base + 32 * s + s * SLOT_BYTES

    def slot_off(self, rank: int) -> int:
        return self.slots_off + rank * SLOT_BYTES

    def ring_off(self, src: int, dst: int) -> int:
        return self.rings_off + (src * self.size + dst) * (16 + RING_BYTES)


class _Ring:
    """One SPSC byte ring: monotonic head (consumer) / tail (producer)."""

    def __init__(self, buf, off: int):
        self.head = np.ndarray((1,), _I8, buffer=buf, offset=off)
        self.tail = np.ndarray((1,), _I8, buffer=buf, offset=off + 8)
        self.data = np.ndarray((RING_BYTES,), np.uint8, buffer=buf, offset=off + 16)


class ShmComm(Communicator):
    """Communicator over process ranks sharing one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        layout: _GroupLayout,
        rank: int,
        *,
        owns_segment: bool = False,
    ):
        self._shm = shm  # keep the segment alive for the memoryview's lifetime
        self._buf = shm.buf
        self._layout = layout
        self._rank = rank
        self._owns_segment = owns_segment
        s = layout.size
        self._abort_flag = np.ndarray((1,), _I8, buffer=self._buf, offset=0)
        self._abort_rank = np.ndarray((1,), _I8, buffer=self._buf, offset=8)
        self._ready = np.ndarray((s,), _I8, buffer=self._buf, offset=layout.ready_off)
        self._done = np.ndarray((s,), _I8, buffer=self._buf, offset=layout.done_off)
        self._slot_len = np.ndarray((s,), _I8, buffer=self._buf, offset=layout.slot_len_off)
        self._slot_total = np.ndarray((s,), _I8, buffer=self._buf, offset=layout.slot_total_off)
        self._gen = int(self._done[rank])  # resume after reattach
        self._spare_used = 0
        self._rings: dict = {}
        self._pending: dict = {}  # (source, tag) -> list of received arrays
        #: Chaos-schedule index for ``comm.shm.exchange`` fault points; the
        #: launcher sets it to the dispatch sequence number before each job
        #: so injected comm faults stay scheduled across worker respawns
        #: (a fresh process's own hit counter restarts at zero).
        self.fault_index: int | None = None
        #: Measured wire traffic, same kind keys as TraceComm's modeled stats.
        self.measured = CommStats()

    # -- world construction ------------------------------------------------

    @classmethod
    def world_layout(cls, world_size: int) -> _GroupLayout:
        block = group_block_bytes(world_size)
        return _GroupLayout(
            base=HEADER_BYTES,
            size=world_size,
            spare_base=HEADER_BYTES + block,
            spare_bytes=4 * block,
        )

    @classmethod
    def attach(cls, name: str, world_size: int, rank: int) -> "ShmComm":
        """Attach a worker process to the world segment created by the launcher."""
        # The launcher (creator) owns the segment's lifetime; suppress the
        # resource tracker's per-attach registration so worker exits do not
        # fight over unlinking one shared name (Python 3.13 exposes this as
        # ``track=False``; 3.11/3.12 need the register shim).
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        try:
            resource_tracker.register = lambda n, rtype: (
                None if rtype == "shared_memory" else orig_register(n, rtype)
            )
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        return cls(shm, cls.world_layout(world_size), rank)

    # -- failure handling --------------------------------------------------

    def abort(self, failed_rank: int | None = None) -> None:
        """Flip the segment-wide abort flag (idempotent, crash-safe)."""
        if failed_rank is not None and int(self._abort_rank[0]) == 0:
            self._abort_rank[0] = failed_rank + 1
        self._abort_flag[0] = 1

    def _abort_error(self) -> CommAbortError:
        stored = int(self._abort_rank[0])
        failed = stored - 1 if stored > 0 else None
        detail = f" (rank {failed} failed)" if failed is not None else ""
        return CommAbortError(f"communicator group aborted{detail}", failed_rank=failed)

    def _check_abort(self) -> None:
        if self._abort_flag[0] != 0:
            raise self._abort_error()

    def _timeout(self, what: str, deadline_s: float) -> CommTimeoutError:
        self.abort(self._rank)
        return CommTimeoutError(
            f"rank {self._rank}: {what} timed out after {deadline_s:g} s"
        )

    def _poll(self, ok, what: str) -> None:
        """Spin/sleep until ``ok()`` holds, honoring abort flag and deadline."""
        timeout = comm_timeout()
        deadline = time.monotonic() + timeout
        spins = 0
        while True:
            if ok():
                return
            self._check_abort()
            spins += 1
            if spins >= _SPIN:
                if time.monotonic() >= deadline:
                    raise self._timeout(what, timeout)
                time.sleep(_SLEEP_S)

    # -- generation-counter collective exchange ----------------------------

    def _exchange(self, payload: bytes) -> list:
        """All-to-all byte exchange: every rank gets every rank's payload.

        This is the one collective primitive; Barrier/Bcast/Allgather/
        Allreduce and the object variants are all built on it.
        """
        if faults.should_fire(
            f"comm.shm.exchange.r{self._rank}", index=self.fault_index
        ):
            # Behave like a real comm failure: flip the segment-wide abort
            # flag so peers unblock, then fail this rank's collective.
            self.abort(self._rank)
            raise CommTimeoutError(
                f"rank {self._rank}: injected fault at comm.shm.exchange"
            )
        lay, s, me = self._layout, self._layout.size, self._rank
        buf = self._buf
        total = len(payload)
        parts: list = [[] for _ in range(s)]
        nrounds = 1
        rnd = 0
        while rnd < nrounds:
            gen = self._gen + 1 + rnd
            # Phase 0: previous generation's slots must be fully consumed.
            self._poll(
                lambda g=gen: bool(np.all(self._done >= g - 1)),
                f"collective gen {gen} (waiting for peers to consume)",
            )
            chunk = payload[rnd * SLOT_BYTES : (rnd + 1) * SLOT_BYTES]
            if chunk:
                off = lay.slot_off(me)
                buf[off : off + len(chunk)] = chunk
            self._slot_len[me] = len(chunk)
            if rnd == 0:
                self._slot_total[me] = total
            self._ready[me] = gen  # publish: data writes above precede this
            # Phase 1: consume every peer's slot for this generation.
            self._poll(
                lambda g=gen: bool(np.all(self._ready >= g)),
                f"collective gen {gen} (waiting for peers to publish)",
            )
            if rnd == 0:
                totals = [int(t) for t in self._slot_total]
                nrounds = max(1, -(-max(totals) // SLOT_BYTES))
            for r in range(s):
                n = int(self._slot_len[r])
                if n:
                    off = lay.slot_off(r)
                    parts[r].append(bytes(buf[off : off + n]))
            self._done[me] = gen
            rnd += 1
        self._gen += nrounds
        return [b"".join(p) for p in parts]

    # -- topology ---------------------------------------------------------

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._layout.size

    def Split(self, color: int, key: int = 0) -> "Communicator":
        lay, me = self._layout, self._rank
        triples = [
            pickle.loads(p)
            for p in self._exchange(pickle.dumps((color, key, me), protocol=5))
        ]
        by_color: dict = {}
        for c, k, r in triples:
            by_color.setdefault(c, []).append((k, r))
        for members in by_color.values():
            members.sort()
        # Deterministic carve: every member computes the identical allocation
        # for every color (sorted), so no shared allocator is required.
        # Each Split call advances this rank's local spare_used; calls are
        # collective, so the cursor stays consistent across the group.
        child_base = {}
        cursor = lay.spare_base + self._spare_used
        sizes = {c: len(m) for c, m in by_color.items()}
        base_need = sum(group_block_bytes(n) for n in sizes.values())
        available = lay.spare_bytes - self._spare_used
        if base_need > available:
            raise CommAbortError(
                "shared segment spare arena exhausted by nested Split calls "
                f"(need {base_need} bytes, {available} left)"
            )
        # Children share half the surplus (proportionally by ring footprint),
        # keeping the other half for future Splits of THIS group.
        surplus = (available - base_need) // 2
        weight_total = sum(n * n for n in sizes.values()) or 1
        for c in sorted(by_color):
            n = sizes[c]
            child_spare = _align8(surplus * n * n // weight_total)
            block = group_block_bytes(n)
            child_base[c] = (cursor, block, child_spare)
            cursor += block + child_spare
        self._spare_used = cursor - lay.spare_base
        base, block, child_spare = child_base[color]
        members = by_color[color]
        new_rank = members.index((key, me))
        if len(members) == 1:
            from repro.comm.serial import SerialComm

            return SerialComm()
        child = _GroupLayout(
            base=base, size=len(members), spare_base=base + block, spare_bytes=child_spare
        )
        sub = ShmComm(self._shm, child, new_rank)
        sub.measured = self.measured  # one ledger per rank, like TraceComm.Split
        return sub

    # -- point to point ---------------------------------------------------

    def _ring(self, src: int, dst: int) -> _Ring:
        key = (src, dst)
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = _Ring(self._buf, self._layout.ring_off(src, dst))
        return ring

    def _ring_write(self, ring: _Ring, data: bytes) -> None:
        pos = 0
        n = len(data)
        while pos < n:
            tail = int(ring.tail[0])
            self._poll(
                lambda: int(ring.tail[0]) - int(ring.head[0]) < RING_BYTES,
                f"Send ring full ({n} byte frame)",
            )
            free = RING_BYTES - (tail - int(ring.head[0]))
            start = tail % RING_BYTES
            take = min(free, n - pos, RING_BYTES - start)
            ring.data[start : start + take] = np.frombuffer(
                data, np.uint8, count=take, offset=pos
            )
            ring.tail[0] = tail + take  # publish after the bytes land
            pos += take

    def _ring_read(self, ring: _Ring, n: int, what: str) -> bytes:
        out = bytearray(n)
        pos = 0
        while pos < n:
            self._poll(
                lambda: int(ring.tail[0]) > int(ring.head[0]),
                what,
            )
            head = int(ring.head[0])
            avail = int(ring.tail[0]) - head
            start = head % RING_BYTES
            take = min(avail, n - pos, RING_BYTES - start)
            out[pos : pos + take] = ring.data[start : start + take].tobytes()
            ring.head[0] = head + take  # release ring space to the producer
            pos += take
        return bytes(out)

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self._layout.size or dest == self._rank:
            raise ValueError(f"invalid destination rank {dest}")
        arr = np.ascontiguousarray(buf)
        frame = pickle.dumps((tag, arr), protocol=5)
        ring = self._ring(self._rank, dest)
        self._check_abort()
        self._ring_write(ring, len(frame).to_bytes(8, "little") + frame)
        self.measured.record("send", arr.nbytes)

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        if not 0 <= source < self._layout.size or source == self._rank:
            raise ValueError(f"invalid source rank {source}")
        ring = self._ring(source, self._rank)
        key = (source, tag)
        while True:
            stash = self._pending.get(key)
            if stash:
                msg = stash.pop(0)
                break
            what = f"Recv(source={source}, tag={tag})"
            nframe = int.from_bytes(self._ring_read(ring, 8, what), "little")
            got_tag, arr = pickle.loads(self._ring_read(ring, nframe, what))
            if got_tag == tag:
                msg = arr
                break
            self._pending.setdefault((source, got_tag), []).append(arr)
        if msg.shape != buf.shape:
            raise ValueError(f"Recv shape mismatch: got {msg.shape}, want {buf.shape}")
        buf[...] = msg
        self.measured.record("recv", msg.nbytes)

    # -- collectives ------------------------------------------------------

    def Barrier(self) -> None:
        self._exchange(b"")
        self.measured.record("barrier", 0)

    def Allreduce(self, sendbuf: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        arr = np.asarray(sendbuf)
        gathered = self._exchange(pickle.dumps(arr, protocol=5))
        # Rank-ordered reduction on every rank: bit-identical to ThreadComm.
        acc = np.array(pickle.loads(gathered[0]), copy=True)
        for r in range(1, self._layout.size):
            acc = _reduce_pair(acc, pickle.loads(gathered[r]), op)
        self.measured.record("allreduce", arr.nbytes)
        return acc

    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        arr = np.asarray(buf)
        mine = pickle.dumps(arr, protocol=5) if self._rank == root else b""
        out = pickle.loads(self._exchange(mine)[root])
        self.measured.record("bcast", out.nbytes)
        if self._rank == root:
            return buf
        if arr.shape == out.shape:
            arr[...] = out
            return arr
        return out

    def Allgather(self, sendbuf: np.ndarray) -> list:
        arr = np.asarray(sendbuf)
        gathered = self._exchange(pickle.dumps(arr, protocol=5))
        self.measured.record("allgather", arr.nbytes * self._layout.size)
        return [pickle.loads(g) for g in gathered]

    # -- pickled-object variants -------------------------------------------

    def bcast(self, obj, root: int = 0):
        mine = pickle.dumps(obj, protocol=5) if self._rank == root else b""
        wire = self._exchange(mine)[root]
        self.measured.record("bcast_obj", len(wire))
        return pickle.loads(wire)

    def allgather(self, obj) -> list:
        gathered = self._exchange(pickle.dumps(obj, protocol=5))
        self.measured.record("allgather_obj", sum(len(g) for g in gathered))
        return [pickle.loads(g) for g in gathered]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach from the segment (unlink is the launcher's job)."""
        # Drop every numpy view into the mapped buffer before closing it;
        # SharedMemory.close() fails while exported views are alive.
        self._abort_flag = self._abort_rank = None
        self._ready = self._done = self._slot_len = self._slot_total = None
        self._rings = {}
        self._buf = None
        try:
            self._shm.close()
        except BufferError:
            pass
