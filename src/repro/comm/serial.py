"""Single-rank communicator.

Used whenever a parallel section of the paper's Fig. 3 workflow runs with
group size 1 (e.g. S3 with a single partition).  All collectives degenerate
to identity operations; point-to-point is an error because a single rank
has no neighbor to talk to.
"""

from __future__ import annotations

import numpy as np

from repro.comm.communicator import Communicator, ReduceOp


class SerialComm(Communicator):
    """Communicator over exactly one rank."""

    def Get_rank(self) -> int:
        return 0

    def Get_size(self) -> int:
        return 1

    def Split(self, color: int, key: int = 0) -> "SerialComm":
        return SerialComm()

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        raise RuntimeError("SerialComm has no peer ranks to Send to")

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        raise RuntimeError("SerialComm has no peer ranks to Recv from")

    def Barrier(self) -> None:
        return None

    def Allreduce(self, sendbuf: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        return np.array(sendbuf, copy=True)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        return buf

    def Allgather(self, sendbuf: np.ndarray) -> list:
        return [np.array(sendbuf, copy=True)]

    def bcast(self, obj, root: int = 0):
        return obj

    def allgather(self, obj) -> list:
        return [obj]
