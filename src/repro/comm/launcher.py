"""Process-level SPMD launcher.

Plays the role of ``mpiexec -n P`` with real OS processes: creates ONE
shared-memory segment sized for the world, forks ``P`` workers that attach
a :class:`~repro.comm.shm.ShmComm` each, runs the SPMD function on every
rank, and tears the segment down on every exit path.

Two entry points:

- :func:`run_spmd` — backend dispatcher.  ``backend="threads"`` (default,
  or ``REPRO_COMM``) delegates to the thread launcher; ``"proc"`` does a
  one-shot process launch where the SPMD function is baked into the child
  at fork time — so closures work under the default ``fork`` start method
  exactly as they do with threads (under ``spawn`` the function must be
  module-level picklable); ``"mpi"`` uses the mpi4py adapter when the
  package exists.
- :class:`SpmdSession` — persistent workers for epoch reuse: the segment
  and the ``P`` processes stay up across many :meth:`SpmdSession.run`
  calls, and per-worker state survives between calls via
  :func:`worker_store` (this is how ``ProcDistributedBTAFactor`` keeps
  each rank's factor slices resident between factorize/solve epochs).
  Session jobs travel over pipes, so their functions must be module-level
  picklable regardless of start method.

Failure semantics: a worker that raises aborts the segment (peers
unblock with :class:`CommAbortError`) and ships its traceback to the
parent; a worker that *dies* (killed, segfault) is detected by the
parent's liveness poll, which aborts the segment on its behalf and
raises a :class:`CommAbortError` naming the dead rank and exit code —
never a hang.  The creator unlinks the segment in a ``finally``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import secrets
import time
import traceback
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from repro.comm.errors import CommAbortError, comm_timeout
from repro.comm.shm import ShmComm, segment_bytes

#: Module-level per-worker state, preserved across SpmdSession.run calls.
_WORKER_STORE: dict = {}

_SENTINEL = None  # job value that tells a session worker to exit


def worker_store() -> dict:
    """Mutable per-process dict for cross-epoch worker state.

    Inside an SPMD function running under a :class:`SpmdSession`, values
    stored here survive until the session closes (each worker process has
    its own store).  Under threads or one-shot proc runs it is ephemeral.
    """
    return _WORKER_STORE


def default_start_method() -> str:
    """``REPRO_SPMD_START`` if set, else ``fork`` when available (closures
    and test fixtures keep working), else ``spawn``."""
    env = os.environ.get("REPRO_SPMD_START", "")
    if env:
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


class _Segment:
    """Parent-side handle on the world segment (creator: owns unlink)."""

    def __init__(self, world_size: int):
        self.world_size = world_size
        for _ in range(8):
            name = f"repro-spmd-{os.getpid()}-{secrets.token_hex(4)}"
            try:
                self.shm = shared_memory.SharedMemory(
                    name=name, create=True, size=segment_bytes(world_size)
                )
                break
            except FileExistsError:  # pragma: no cover - astronomically unlikely
                continue
        else:  # pragma: no cover
            raise RuntimeError("could not allocate a shared-memory segment name")
        self._flag = np.ndarray((1,), np.dtype("<i8"), buffer=self.shm.buf, offset=0)
        self._rank = np.ndarray((1,), np.dtype("<i8"), buffer=self.shm.buf, offset=8)

    @property
    def name(self) -> str:
        return self.shm.name

    def abort(self, failed_rank: int | None = None) -> None:
        if failed_rank is not None and int(self._rank[0]) == 0:
            self._rank[0] = failed_rank + 1
        self._flag[0] = 1

    def aborted(self) -> bool:
        return int(self._flag[0]) != 0

    def destroy(self) -> None:
        self._flag = self._rank = None
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass


def _run_job(comm: ShmComm, conn, fn: Callable, args: tuple, kwargs: dict) -> None:
    """Execute one SPMD job and report the outcome over the pipe."""
    try:
        result = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - must abort peers, not hang them
        comm.abort(comm.Get_rank())
        tb = traceback.format_exc()
        try:  # ship the real exception when it pickles, else just the text
            import pickle

            pickle.dumps(exc)
        except Exception:
            exc = None
        conn.send(("err", comm.Get_rank(), tb, exc))
    else:
        conn.send(("ok", result))


def _oneshot_main(name: str, size: int, rank: int, conn, fn, args, kwargs) -> None:
    comm = ShmComm.attach(name, size, rank)
    try:
        _run_job(comm, conn, fn, args, kwargs)
    finally:
        comm.close()
        conn.close()


def _session_main(name: str, size: int, rank: int, conn) -> None:
    comm = ShmComm.attach(name, size, rank)
    try:
        while True:
            job = conn.recv()
            if job is _SENTINEL:
                break
            fn, args, kwargs = job
            _run_job(comm, conn, fn, args, kwargs)
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent vanished
        pass
    finally:
        _WORKER_STORE.clear()
        comm.close()
        conn.close()


def _collect(segment: _Segment, procs: list, conns: list) -> list:
    """Gather one reply per rank; diagnose crashes; never hang.

    Returns the list of raw replies.  Raises :class:`CommAbortError` for a
    dead worker and ``RuntimeError from cause`` for a raised exception,
    preferring primary errors over secondary abort fallout.
    """
    size = len(procs)
    replies: list = [None] * size
    pending = set(range(size))
    crashed: list = []
    drain_deadline: float | None = None
    while pending:
        for r in sorted(pending):
            if conns[r].poll(0.02):
                try:
                    replies[r] = conns[r].recv()
                    pending.discard(r)
                except EOFError:
                    segment.abort(r)
                    crashed.append((r, procs[r].exitcode))
                    pending.discard(r)
        for r in sorted(pending):
            if not procs[r].is_alive() and not conns[r].poll(0):
                # Died without a reply (the poll(0) guards against the race
                # where the reply is in flight while the worker exits): abort
                # the group on its behalf so the survivors unblock, then give
                # them one timeout to drain.
                segment.abort(r)
                crashed.append((r, procs[r].exitcode))
                pending.discard(r)
        if crashed and drain_deadline is None:
            drain_deadline = time.monotonic() + comm_timeout() + 5.0
        if drain_deadline is not None and time.monotonic() > drain_deadline:
            break  # caller terminates stragglers
    if crashed:
        rank, code = crashed[0]
        raise CommAbortError(
            f"SPMD worker rank {rank} died without replying (exitcode {code})",
            failed_rank=rank,
        )
    errors = [
        (r, tb, exc)
        for r, reply in enumerate(replies)
        if reply is not None and reply[0] == "err"
        for (_, _, tb, exc) in [reply]
    ]
    if errors:
        primaries = [e for e in errors if not isinstance(e[2], CommAbortError)]
        rank, tb, exc = (primaries or errors)[0]
        if exc is None:
            exc = RuntimeError(f"rank {rank} raised an unpicklable exception")
        raise RuntimeError(
            f"SPMD rank {rank} failed\n--- remote traceback (rank {rank}) ---\n{tb}"
        ) from exc
    return [reply[1] for reply in replies]


class SpmdSession:
    """Persistent ``P``-process SPMD group over one shared segment.

    Use as a context manager; :meth:`run` executes a module-level picklable
    function ``fn(comm, *args, **kwargs)`` on every rank and returns the
    per-rank results ordered by rank.  A failed run poisons the session
    (the shared segment's counters are no longer in a known state), so
    subsequent runs raise immediately.
    """

    def __init__(self, nranks: int, *, start_method: str | None = None):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self._broken = False
        self._closed = False
        ctx = mp.get_context(start_method or default_start_method())
        self._segment = _Segment(nranks)
        self._procs = []
        self._conns = []
        try:
            for r in range(nranks):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                p = ctx.Process(
                    target=_session_main,
                    args=(self._segment.name, nranks, r, child_conn),
                    daemon=True,
                    name=f"repro-spmd-{r}",
                )
                p.start()
                child_conn.close()
                self._procs.append(p)
                self._conns.append(parent_conn)
        except BaseException:
            self.close()
            raise

    def run(self, fn: Callable, *args, **kwargs) -> list:
        if self._closed:
            raise RuntimeError("SpmdSession is closed")
        if self._broken:
            raise RuntimeError(
                "SpmdSession is poisoned by an earlier failure; start a new session"
            )
        for r in range(self.nranks):
            if not self._procs[r].is_alive():
                self._broken = True
                self._segment.abort(r)
                raise CommAbortError(
                    f"SPMD worker rank {r} died between runs "
                    f"(exitcode {self._procs[r].exitcode})",
                    failed_rank=r,
                )
        for conn in self._conns:
            conn.send((fn, args, kwargs))
        try:
            return _collect(self._segment, self._procs, self._conns)
        except BaseException:
            self._broken = True
            raise

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(_SENTINEL)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for p in self._procs:
            p.join(timeout=max(0.1, deadline - time.monotonic()))
        for p in self._procs:
            if p.is_alive():
                self._segment.abort()
                p.terminate()
                p.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._segment.destroy()

    def __enter__(self) -> "SpmdSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _run_spmd_proc(
    nranks: int, fn: Callable, args: tuple, kwargs: dict, start_method: str | None
) -> list:
    """One-shot process launch: fn is baked into each child at fork time."""
    ctx = mp.get_context(start_method or default_start_method())
    segment = _Segment(nranks)
    procs: list = []
    conns: list = []
    try:
        for r in range(nranks):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            p = ctx.Process(
                target=_oneshot_main,
                args=(segment.name, nranks, r, child_conn, fn, args, kwargs),
                daemon=True,
                name=f"repro-spmd-{r}",
            )
            p.start()
            child_conn.close()
            procs.append(p)
            conns.append(parent_conn)
        return _collect(segment, procs, conns)
    finally:
        for p in procs:
            if p.is_alive():
                segment.abort()
                p.join(timeout=2.0)
            if p.is_alive():  # pragma: no cover - terminate stragglers
                p.terminate()
                p.join(timeout=2.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        segment.destroy()


def comm_backend() -> str:
    """The SPMD backend selected by ``REPRO_COMM`` (default ``threads``)."""
    return os.environ.get("REPRO_COMM", "") or "threads"


def run_spmd(
    nranks: int,
    fn: Callable,
    *args,
    backend: str | None = None,
    start_method: str | None = None,
    **kwargs,
) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` SPMD ranks.

    ``backend`` is one of ``"threads"`` (rank = thread, :class:`ThreadComm`),
    ``"proc"`` (rank = process, :class:`ShmComm` over shared memory), or
    ``"mpi"`` (mpi4py, when installed); ``None`` consults ``REPRO_COMM``.
    Returns per-rank results ordered by rank.  ``nranks == 1`` always runs
    inline on a :class:`SerialComm` — no threads or processes involved.
    """
    chosen = backend or comm_backend()
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if nranks == 1:
        from repro.comm.serial import SerialComm

        return [fn(SerialComm(), *args, **kwargs)]
    if chosen in ("threads", "thread", "local"):
        from repro.comm.local import run_spmd as run_threads

        return run_threads(nranks, fn, *args, **kwargs)
    if chosen == "proc":
        return _run_spmd_proc(nranks, fn, args, kwargs, start_method)
    if chosen == "mpi":
        from repro.comm.mpi import run_spmd_mpi

        return run_spmd_mpi(nranks, fn, *args, **kwargs)
    raise ValueError(f"unknown SPMD backend {chosen!r} (threads|proc|mpi)")
