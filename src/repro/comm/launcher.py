"""Process-level SPMD launcher.

Plays the role of ``mpiexec -n P`` with real OS processes: creates ONE
shared-memory segment sized for the world, forks ``P`` workers that attach
a :class:`~repro.comm.shm.ShmComm` each, runs the SPMD function on every
rank, and tears the segment down on every exit path.

Two entry points:

- :func:`run_spmd` — backend dispatcher.  ``backend="threads"`` (default,
  or ``REPRO_COMM``) delegates to the thread launcher; ``"proc"`` does a
  one-shot process launch where the SPMD function is baked into the child
  at fork time — so closures work under the default ``fork`` start method
  exactly as they do with threads (under ``spawn`` the function must be
  module-level picklable); ``"mpi"`` uses the mpi4py adapter when the
  package exists.
- :class:`SpmdSession` — persistent workers for epoch reuse: the segment
  and the ``P`` processes stay up across many :meth:`SpmdSession.run`
  calls, and per-worker state survives between calls via
  :func:`worker_store` (this is how ``ProcDistributedBTAFactor`` keeps
  each rank's factor slices resident between factorize/solve epochs).
  Session jobs travel over pipes, so their functions must be module-level
  picklable regardless of start method.

Failure semantics: a worker that raises aborts the segment (peers
unblock with :class:`CommAbortError`) and ships its traceback to the
parent; a worker that *dies* (killed, segfault) is detected by the
parent's liveness poll, which aborts the segment on its behalf and
raises a :class:`CommAbortError` naming the dead rank and exit code —
never a hang.  The creator unlinks the segment in a ``finally``.

Self-healing (ISSUE 10): a :class:`SpmdSession` run that fails at the
*communication* level — a killed worker, an aborted collective, a comm
timeout, an injected transient fault — no longer poisons the session
permanently.  The session tears the segment down, respawns all workers,
replays every warm-up epoch recorded via ``run(..., warmup=True)`` (so
``worker_store`` state is rebuilt), and retries the failed epoch, up to
``REPRO_SPMD_RETRIES`` times.  Only when the budget is exhausted does it
raise — a :class:`~repro.errors.SpmdRetryExhaustedError` carrying the
full per-attempt failure ``history``.  *Application* errors (a genuine
exception from the SPMD function, e.g. a non-SPD matrix) propagate
immediately without retry; they still mark the session for respawn so
the next ``run`` starts from a clean segment.

Deterministic chaos hooks (see :mod:`repro.faults`): each worker checks
``spmd.worker.bootstrap.r<rank>`` at startup (indexed by spawn
generation) and ``spmd.worker.kill.r<rank>`` before each job (indexed by
dispatch sequence), dying via ``os._exit`` when the plan fires — the
indices are parent-side counters, so schedules hold across respawns.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import secrets
import time
import traceback
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from repro import faults
from repro.comm.errors import (
    CommAbortError,
    CommError,
    SpmdRetryExhaustedError,
    comm_timeout,
)
from repro.comm.shm import ShmComm, segment_bytes
from repro.errors import is_transient

#: Module-level per-worker state, preserved across SpmdSession.run calls.
_WORKER_STORE: dict = {}

_SENTINEL = None  # job value that tells a session worker to exit

#: Exit codes of chaos-killed workers (recognizable in CommAbortError text).
_EXIT_FAULT_KILL = 77
_EXIT_FAULT_BOOTSTRAP = 78

#: Failures pickling an exception payload for the parent.  Anything else
#: escaping ``pickle.dumps`` is a real bug we want to see, not swallow.
_PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError, RecursionError, ValueError)


def worker_store() -> dict:
    """Mutable per-process dict for cross-epoch worker state.

    Inside an SPMD function running under a :class:`SpmdSession`, values
    stored here survive until the session closes (each worker process has
    its own store).  Under threads or one-shot proc runs it is ephemeral.
    Respawned workers start with an empty store; the session rebuilds it
    by replaying warm-up epochs.
    """
    return _WORKER_STORE


def default_start_method() -> str:
    """``REPRO_SPMD_START`` if set, else ``fork`` when available (closures
    and test fixtures keep working), else ``spawn``."""
    env = os.environ.get("REPRO_SPMD_START", "")
    if env:
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def spmd_retries() -> int:
    """Per-epoch comm-failure retry budget (``REPRO_SPMD_RETRIES``, >= 0)."""
    raw = os.environ.get("REPRO_SPMD_RETRIES", "")
    retries = int(raw) if raw else 2
    if retries < 0:
        raise ValueError(f"REPRO_SPMD_RETRIES must be >= 0, got {retries}")
    return retries


def _is_comm_failure(exc: BaseException) -> bool:
    """Retryable? — a comm-layer failure or a transient (injected) fault.

    Worker exceptions arrive wrapped (``RuntimeError from cause``), so the
    ``__cause__`` chain is walked.  Application errors — the SPMD function
    genuinely raising — are NOT retryable: re-running the same epoch on
    the same inputs would fail the same way.
    """
    e: BaseException | None = exc
    while e is not None:
        # Pipe-level failures (a dead worker resets its job pipe) are comm
        # failures too — dispatch hit the corpse before _collect could.
        if isinstance(e, (CommError, ConnectionError, EOFError)):
            return True
        e = e.__cause__
    return is_transient(exc)


class _Segment:
    """Parent-side handle on the world segment (creator: owns unlink)."""

    def __init__(self, world_size: int):
        self.world_size = world_size
        for _ in range(8):
            name = f"repro-spmd-{os.getpid()}-{secrets.token_hex(4)}"
            try:
                self.shm = shared_memory.SharedMemory(
                    name=name, create=True, size=segment_bytes(world_size)
                )
                break
            except FileExistsError:  # pragma: no cover - astronomically unlikely
                continue
        else:  # pragma: no cover
            raise RuntimeError("could not allocate a shared-memory segment name")
        self._flag = np.ndarray((1,), np.dtype("<i8"), buffer=self.shm.buf, offset=0)
        self._rank = np.ndarray((1,), np.dtype("<i8"), buffer=self.shm.buf, offset=8)

    @property
    def name(self) -> str:
        return self.shm.name

    def abort(self, failed_rank: int | None = None) -> None:
        if failed_rank is not None and int(self._rank[0]) == 0:
            self._rank[0] = failed_rank + 1
        self._flag[0] = 1

    def aborted(self) -> bool:
        return int(self._flag[0]) != 0

    def destroy(self) -> None:
        self._flag = self._rank = None
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass


def _run_job(
    comm: ShmComm, conn, fn: Callable, args: tuple, kwargs: dict, epoch: int | None = None
) -> None:
    """Execute one SPMD job and report the outcome over the pipe."""
    rank = comm.Get_rank()
    if epoch is not None:
        # Chaos schedules inside collectives index by dispatch sequence so
        # they survive respawns (a fresh process restarts its own counter).
        comm.fault_index = epoch
    if faults.should_fire(f"spmd.worker.kill.r{rank}", index=epoch):
        os._exit(_EXIT_FAULT_KILL)  # simulate SIGKILL/OOM: no reply, no cleanup
    try:
        result = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - must abort peers, not hang them
        comm.abort(rank)
        tb = traceback.format_exc()
        payload: BaseException = exc
        try:  # ship the real exception when it pickles, else a faithful stand-in
            pickle.dumps(payload)
        except _PICKLE_ERRORS as perr:
            payload = RuntimeError(
                f"rank {rank} raised unpicklable {type(exc).__name__}: {exc}"
            )
            payload.__cause__ = perr  # why the original could not travel
            try:
                pickle.dumps(payload)
            except _PICKLE_ERRORS:  # the pickling error itself does not pickle
                payload.__cause__ = None
        conn.send(("err", rank, tb, payload))
    else:
        conn.send(("ok", result))


def _oneshot_main(name: str, size: int, rank: int, conn, fn, args, kwargs) -> None:
    comm = ShmComm.attach(name, size, rank)
    try:
        _run_job(comm, conn, fn, args, kwargs)
    finally:
        comm.close()
        conn.close()


def _session_main(name: str, size: int, rank: int, conn, generation: int = 0) -> None:
    if faults.should_fire(f"spmd.worker.bootstrap.r{rank}", index=generation):
        os._exit(_EXIT_FAULT_BOOTSTRAP)  # simulate a worker lost at startup
    comm = ShmComm.attach(name, size, rank)
    try:
        while True:
            job = conn.recv()
            if job is _SENTINEL:
                break
            epoch, fn, args, kwargs = job
            _run_job(comm, conn, fn, args, kwargs, epoch)
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent vanished
        pass
    finally:
        _WORKER_STORE.clear()
        comm.close()
        conn.close()


def _collect(segment: _Segment, procs: list, conns: list) -> list:
    """Gather one reply per rank; diagnose crashes; never hang.

    Returns the list of raw replies.  Raises :class:`CommAbortError` for a
    dead worker and ``RuntimeError from cause`` for a raised exception,
    preferring primary errors over secondary abort fallout.
    """
    size = len(procs)
    replies: list = [None] * size
    pending = set(range(size))
    crashed: list = []
    drain_deadline: float | None = None
    while pending:
        for r in sorted(pending):
            if conns[r].poll(0.02):
                try:
                    replies[r] = conns[r].recv()
                    pending.discard(r)
                except EOFError:
                    segment.abort(r)
                    crashed.append((r, procs[r].exitcode))
                    pending.discard(r)
        for r in sorted(pending):
            if not procs[r].is_alive() and not conns[r].poll(0):
                # Died without a reply (the poll(0) guards against the race
                # where the reply is in flight while the worker exits): abort
                # the group on its behalf so the survivors unblock, then give
                # them one timeout to drain.
                segment.abort(r)
                crashed.append((r, procs[r].exitcode))
                pending.discard(r)
        if crashed and drain_deadline is None:
            drain_deadline = time.monotonic() + comm_timeout() + 5.0
        if drain_deadline is not None and time.monotonic() > drain_deadline:
            break  # caller terminates stragglers
    if crashed:
        rank, code = crashed[0]
        raise CommAbortError(
            f"SPMD worker rank {rank} died without replying (exitcode {code})",
            failed_rank=rank,
        )
    errors = [
        (r, tb, exc)
        for r, reply in enumerate(replies)
        if reply is not None and reply[0] == "err"
        for (_, _, tb, exc) in [reply]
    ]
    if errors:
        primaries = [e for e in errors if not isinstance(e[2], CommAbortError)]
        rank, tb, exc = (primaries or errors)[0]
        if exc is None:
            exc = RuntimeError(f"rank {rank} raised an unpicklable exception")
        raise RuntimeError(
            f"SPMD rank {rank} failed\n--- remote traceback (rank {rank}) ---\n{tb}"
        ) from exc
    return [reply[1] for reply in replies]


class SpmdSession:
    """Persistent ``P``-process SPMD group over one shared segment.

    Use as a context manager; :meth:`run` executes a module-level picklable
    function ``fn(comm, *args, **kwargs)`` on every rank and returns the
    per-rank results ordered by rank.

    The session self-heals: a run that fails at the communication level
    (dead worker, aborted/timed-out collective, injected transient fault)
    respawns the worker group — fresh segment, fresh processes, warm-up
    epochs replayed — and retries, up to :func:`spmd_retries` times,
    raising :class:`SpmdRetryExhaustedError` with the full failure
    history only when the budget is spent.  Epochs the session must
    replay after a respawn (state-building factorize epochs) are marked
    ``run(..., warmup=True)``.  Application errors propagate immediately
    but leave the session healable: the next :meth:`run` respawns first.
    """

    def __init__(self, nranks: int, *, start_method: str | None = None):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self._needs_respawn = False
        self._closed = False
        self._ctx = mp.get_context(start_method or default_start_method())
        self._generation = 0  # spawn generation (bumped on every respawn)
        self._epoch = 0  # dispatch sequence (bumped on every dispatch, retries too)
        self._warmups: list = []  # (fn, args, kwargs) to replay after respawn
        self.respawns = 0  # observability: how often the session healed
        self._procs: list = []
        self._conns: list = []
        self._segment = _Segment(nranks)
        try:
            self._spawn()
        except BaseException:
            self.close()
            raise

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self) -> None:
        for r in range(self.nranks):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            p = self._ctx.Process(
                target=_session_main,
                args=(self._segment.name, self.nranks, r, child_conn, self._generation),
                daemon=True,
                name=f"repro-spmd-{r}",
            )
            p.start()
            child_conn.close()
            self._procs.append(p)
            self._conns.append(parent_conn)

    def _teardown(self) -> None:
        """Stop workers and release the segment (session stays usable)."""
        for conn in self._conns:
            try:
                conn.send(_SENTINEL)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for p in self._procs:
            p.join(timeout=max(0.1, deadline - time.monotonic()))
        for p in self._procs:
            if p.is_alive():
                self._segment.abort()
                p.terminate()
                p.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._procs, self._conns = [], []
        self._segment.destroy()

    def _respawn(self) -> None:
        """Heal: fresh segment + workers, then rebuild worker_store state.

        Warm-up replay failures propagate to the caller's retry loop —
        they count against the same budget as the epoch being retried.
        """
        self._teardown()
        self._segment = _Segment(self.nranks)
        self._generation += 1
        self.respawns += 1
        self._spawn()
        self._needs_respawn = False
        for fn, args, kwargs in self._warmups:
            self._dispatch(fn, args, kwargs)

    def _dead_rank(self) -> int | None:
        for r, p in enumerate(self._procs):
            if not p.is_alive():
                return r
        return None

    def _dispatch(self, fn: Callable, args: tuple, kwargs: dict) -> list:
        """One epoch, one attempt: send to every rank, collect every reply."""
        epoch = self._epoch
        self._epoch += 1
        for conn in self._conns:
            conn.send((epoch, fn, args, kwargs))
        return _collect(self._segment, self._procs, self._conns)

    # -- the public epoch API ---------------------------------------------

    def run(self, fn: Callable, *args, warmup: bool = False, **kwargs) -> list:
        """Run one SPMD epoch with comm-failure recovery.

        ``warmup=True`` records this epoch for replay after any future
        respawn (use for epochs that build ``worker_store`` state).
        """
        if self._closed:
            raise RuntimeError("SpmdSession is closed")
        history: list = []
        attempts = spmd_retries() + 1
        for attempt in range(attempts):
            try:
                if self._needs_respawn or self._dead_rank() is not None:
                    self._respawn()
                results = self._dispatch(fn, args, kwargs)
            except BaseException as exc:  # noqa: BLE001 - classified below
                self._needs_respawn = True
                if not _is_comm_failure(exc):
                    raise  # application error: retrying cannot help
                history.append(exc)
                if attempt + 1 >= attempts:
                    failed = getattr(exc, "failed_rank", None)
                    raise SpmdRetryExhaustedError(
                        f"SPMD epoch failed {len(history)} time(s), retry budget "
                        f"({attempts - 1}) exhausted; last failure: {exc}",
                        failed_rank=failed,
                        history=history,
                    ) from exc
            else:
                if warmup:
                    self._warmups.append((fn, args, kwargs))
                return results
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._warmups.clear()
        self._teardown()

    def __enter__(self) -> "SpmdSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _run_spmd_proc(
    nranks: int, fn: Callable, args: tuple, kwargs: dict, start_method: str | None
) -> list:
    """One-shot process launch: fn is baked into each child at fork time."""
    ctx = mp.get_context(start_method or default_start_method())
    segment = _Segment(nranks)
    procs: list = []
    conns: list = []
    try:
        for r in range(nranks):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            p = ctx.Process(
                target=_oneshot_main,
                args=(segment.name, nranks, r, child_conn, fn, args, kwargs),
                daemon=True,
                name=f"repro-spmd-{r}",
            )
            p.start()
            child_conn.close()
            procs.append(p)
            conns.append(parent_conn)
        return _collect(segment, procs, conns)
    finally:
        for p in procs:
            if p.is_alive():
                segment.abort()
                p.join(timeout=2.0)
            if p.is_alive():  # pragma: no cover - terminate stragglers
                p.terminate()
                p.join(timeout=2.0)
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        segment.destroy()


def comm_backend() -> str:
    """The SPMD backend selected by ``REPRO_COMM`` (default ``threads``)."""
    return os.environ.get("REPRO_COMM", "") or "threads"


def run_spmd(
    nranks: int,
    fn: Callable,
    *args,
    backend: str | None = None,
    start_method: str | None = None,
    **kwargs,
) -> list:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` SPMD ranks.

    ``backend`` is one of ``"threads"`` (rank = thread, :class:`ThreadComm`),
    ``"proc"`` (rank = process, :class:`ShmComm` over shared memory), or
    ``"mpi"`` (mpi4py, when installed); ``None`` consults ``REPRO_COMM``.
    Returns per-rank results ordered by rank.  ``nranks == 1`` always runs
    inline on a :class:`SerialComm` — no threads or processes involved.
    """
    chosen = backend or comm_backend()
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    if nranks == 1:
        from repro.comm.serial import SerialComm

        return [fn(SerialComm(), *args, **kwargs)]
    if chosen in ("threads", "thread", "local"):
        from repro.comm.local import run_spmd as run_threads

        return run_threads(nranks, fn, *args, **kwargs)
    if chosen == "proc":
        return _run_spmd_proc(nranks, fn, args, kwargs, start_method)
    if chosen == "mpi":
        from repro.comm.mpi import run_spmd_mpi

        return run_spmd_mpi(nranks, fn, *args, **kwargs)
    raise ValueError(f"unknown SPMD backend {chosen!r} (threads|proc|mpi)")
