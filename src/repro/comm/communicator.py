"""Abstract communicator interface (mpi4py-compatible subset).

Only the operations DALIA actually uses are included: point-to-point
``Send``/``Recv`` between time-domain partition neighbors, ``Allreduce``
for aggregating objective-function values across the S1 group,
``Allgather``/``allgather`` for assembling the nested-dissection reduced
system, ``Bcast``/``bcast`` for distributing hyperparameters, and
``Split`` for carving the three nested process groups out of the world
communicator.
"""

from __future__ import annotations

import abc
import enum

import numpy as np


class ReduceOp(enum.Enum):
    """Reduction operators supported by :meth:`Communicator.Allreduce`."""

    SUM = "sum"
    MAX = "max"
    MIN = "min"


def _reduce_pair(a: np.ndarray, b: np.ndarray, op: ReduceOp) -> np.ndarray:
    if op is ReduceOp.SUM:
        return a + b
    if op is ReduceOp.MAX:
        return np.maximum(a, b)
    if op is ReduceOp.MIN:
        return np.minimum(a, b)
    raise ValueError(f"unsupported reduce op: {op}")


class Communicator(abc.ABC):
    """A group of SPMD ranks.

    Semantics follow MPI: every rank of the group must call collectives in
    the same order; ``Send``/``Recv`` are blocking rendezvous operations.
    """

    # -- topology ---------------------------------------------------------

    @abc.abstractmethod
    def Get_rank(self) -> int:
        """Rank of the calling process within this communicator."""

    @abc.abstractmethod
    def Get_size(self) -> int:
        """Number of ranks in this communicator."""

    @abc.abstractmethod
    def Split(self, color: int, key: int = 0) -> "Communicator":
        """Partition the group into sub-communicators by ``color``.

        Ranks passing the same ``color`` end up in the same sub-group,
        ordered by ``key`` (ties broken by parent rank), exactly like
        ``MPI_Comm_split``.
        """

    # -- point to point ---------------------------------------------------

    @abc.abstractmethod
    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Blocking send of a contiguous NumPy buffer."""

    @abc.abstractmethod
    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        """Blocking receive into a preallocated contiguous NumPy buffer."""

    def Sendrecv(
        self,
        sendbuf: np.ndarray,
        dest: int,
        recvbuf: np.ndarray,
        source: int,
        tag: int = 0,
    ) -> None:
        """Combined send+receive; default implementation orders by rank parity
        to avoid rendezvous deadlock between neighbor pairs."""
        if self.Get_rank() % 2 == 0:
            self.Send(sendbuf, dest, tag)
            self.Recv(recvbuf, source, tag)
        else:
            self.Recv(recvbuf, source, tag)
            self.Send(sendbuf, dest, tag)

    # -- collectives ------------------------------------------------------

    @abc.abstractmethod
    def Barrier(self) -> None:
        """Synchronize all ranks."""

    @abc.abstractmethod
    def Allreduce(self, sendbuf: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        """Reduce ``sendbuf`` across ranks; every rank gets the result."""

    @abc.abstractmethod
    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        """Broadcast ``buf`` from ``root``; returns the (possibly new) buffer."""

    @abc.abstractmethod
    def Allgather(self, sendbuf: np.ndarray) -> list:
        """Gather one buffer per rank on all ranks; returns list indexed by rank."""

    # -- pickled-object variants ------------------------------------------

    @abc.abstractmethod
    def bcast(self, obj, root: int = 0):
        """Broadcast an arbitrary Python object from ``root``."""

    @abc.abstractmethod
    def allgather(self, obj) -> list:
        """Gather one Python object per rank on all ranks."""

    # -- convenience -------------------------------------------------------

    def allreduce_scalar(self, value: float, op: ReduceOp = ReduceOp.SUM) -> float:
        """Allreduce a single float (the paper's ``(+)`` aggregation of fobj)."""
        out = self.Allreduce(np.asarray([value], dtype=np.float64), op)
        return float(out[0])
