"""Communication accounting.

:class:`TraceComm` wraps any communicator and counts messages and bytes per
operation type.  The performance model uses these counts — together with
link latency/bandwidth of the modeled machine — to extrapolate the runtime
of rank counts that cannot be executed on this host (paper runs up to 496
GH200; we execute up to the host's thread capacity and model beyond).
"""

from __future__ import annotations

import dataclasses
import numbers
from dataclasses import dataclass, field

import numpy as np

from repro.comm.communicator import Communicator, ReduceOp


@dataclass
class CommStats:
    """Message/byte counters, by operation kind."""

    counts: dict = field(default_factory=dict)
    bytes: dict = field(default_factory=dict)

    def record(self, kind: str, nbytes: int) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.bytes[kind] = self.bytes.get(kind, 0) + int(nbytes)

    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def total_messages(self) -> int:
        return sum(self.counts.values())

    def merge(self, other: "CommStats") -> "CommStats":
        out = CommStats(dict(self.counts), dict(self.bytes))
        for k, v in other.counts.items():
            out.counts[k] = out.counts.get(k, 0) + v
        for k, v in other.bytes.items():
            out.bytes[k] = out.bytes.get(k, 0) + v
        return out


def _nbytes(obj) -> int:
    """Wire size of a collective payload, in bytes.

    The object collectives (``allgather``/``bcast``) carry more than bare
    ndarrays: the reduced-system assembly gathers dataclasses of block
    arrays, and scalar reductions ship Python floats.  Counting only
    ``np.ndarray`` (as this function historically did) silently dropped
    all of that traffic from the performance-model calibration, so the
    modeled link term underestimated the paper's NCCL volume.  Handles:

    - ndarrays and NumPy scalars: ``.nbytes``
    - Python scalars: ``bool`` 1, ``int``/``float`` 8, ``complex`` 16
      (the fixed-width types MPI would marshal them to)
    - tuples / lists / sets / dicts: recursive sum over the elements
    - dataclasses (e.g. ``BoundaryContribution``): recursive sum over
      the field values
    - anything else (None, strings used as tags, ...): 0
    """
    if isinstance(obj, np.ndarray) or isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, numbers.Integral) or isinstance(obj, numbers.Real):
        return 8
    if isinstance(obj, numbers.Complex):
        return 16
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(_nbytes(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_nbytes(k) + _nbytes(v) for k, v in obj.items())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return sum(
            _nbytes(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        )
    return 0


class TraceComm(Communicator):
    """Communicator decorator that records traffic into a :class:`CommStats`."""

    def __init__(self, inner: Communicator, stats: CommStats | None = None):
        self.inner = inner
        self.stats = stats if stats is not None else CommStats()

    def Get_rank(self) -> int:
        return self.inner.Get_rank()

    def Get_size(self) -> int:
        return self.inner.Get_size()

    def Split(self, color: int, key: int = 0) -> "TraceComm":
        return TraceComm(self.inner.Split(color, key), self.stats)

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        self.stats.record("send", _nbytes(buf))
        self.inner.Send(buf, dest, tag)

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        self.stats.record("recv", _nbytes(buf))
        self.inner.Recv(buf, source, tag)

    def Barrier(self) -> None:
        self.stats.record("barrier", 0)
        self.inner.Barrier()

    def Allreduce(self, sendbuf: np.ndarray, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        self.stats.record("allreduce", _nbytes(np.asarray(sendbuf)))
        return self.inner.Allreduce(sendbuf, op)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> np.ndarray:
        self.stats.record("bcast", _nbytes(np.asarray(buf)))
        return self.inner.Bcast(buf, root)

    def Allgather(self, sendbuf: np.ndarray) -> list:
        self.stats.record("allgather", _nbytes(np.asarray(sendbuf)) * self.Get_size())
        return self.inner.Allgather(sendbuf)

    def bcast(self, obj, root: int = 0):
        self.stats.record("bcast_obj", _nbytes(obj))
        return self.inner.bcast(obj, root)

    def allgather(self, obj) -> list:
        self.stats.record("allgather_obj", _nbytes(obj) * self.Get_size())
        return self.inner.allgather(obj)
