"""The unified ``repro`` error hierarchy.

Every failure the framework can diagnose is a :class:`ReproError`, so a
caller embedding the pipeline can write ONE ``except ReproError`` guard
instead of hunting subsystem-specific types across modules.  The concrete
types stay importable from their historical homes
(:mod:`repro.structured.kernels`, :mod:`repro.comm.errors`,
:mod:`repro.backend.memory`, :mod:`repro.serving.server`) — those modules
now alias this one — and each also keeps its historical base class
(``LinAlgError``, ``RuntimeError``, ``TimeoutError``) so existing
``except`` clauses are unaffected.

Two orthogonal facets matter to recovery code:

- **where** the failure came from (the subclass tree below);
- **whether retrying can help** — the :class:`TransientError` mixin marks
  failures that are plausibly one-off (an injected chaos fault, an
  overloaded dependency).  :func:`is_transient` is the single predicate
  the serving tier's bounded-retry loop consults; deterministic failures
  (``NotPositiveDefiniteError`` from a genuinely infeasible theta, a
  validation ``ValueError``) are *not* transient and are never retried.
"""

from __future__ import annotations

from scipy.linalg import LinAlgError

__all__ = [
    "ReproError",
    "TransientError",
    "is_transient",
    "NotPositiveDefiniteError",
    "NPDJitterWarning",
    "CommError",
    "CommTimeoutError",
    "CommAbortError",
    "SpmdRetryExhaustedError",
    "MemoryBudgetError",
    "ServerClosedError",
    "ServerOverloadedError",
    "RequestTimeoutError",
    "CircuitOpenError",
    "InjectedFaultError",
]


class ReproError(Exception):
    """Base class of every failure the framework diagnoses itself."""


class TransientError:
    """Mixin marking a failure as plausibly one-off.

    The serving tier's bounded-retry loop retries a failed group only
    when :func:`is_transient` holds for the raised exception — retrying a
    deterministic failure (bad theta, malformed request) would just burn
    the budget reproducing it.
    """


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` (or anything in its cause chain) is retryable."""
    seen: BaseException | None = exc
    while seen is not None:
        if isinstance(seen, TransientError) or getattr(seen, "transient", False):
            return True
        seen = seen.__cause__
    return False


# ---------------------------------------------------------------------------
# numerics
# ---------------------------------------------------------------------------


class NotPositiveDefiniteError(ReproError, LinAlgError):
    """A diagonal (or Schur-complemented) block failed its Cholesky.

    In DALIA this signals an invalid hyperparameter configuration; the
    objective function treats it as ``+inf`` so BFGS backtracks.  Still a
    ``LinAlgError`` (its historical base) for external callers.
    """


class NPDJitterWarning(UserWarning):
    """A factorization only succeeded after audited diagonal jitter.

    Emitted by the opt-in ``jitter=`` recovery chain of
    :func:`repro.structured.factor.factorize` — graceful degradation is
    never silent: the warning (and the handle's ``applied_jitter``
    attribute) records exactly how much was added to the diagonal.
    """


# ---------------------------------------------------------------------------
# communication / SPMD
# ---------------------------------------------------------------------------


class CommError(ReproError, RuntimeError):
    """Base of the communication-layer failures."""


class CommTimeoutError(CommError):
    """A blocking communication operation exceeded its timeout."""


class CommAbortError(CommError):
    """The communicator group was aborted (peer failure or teardown)."""

    def __init__(self, message: str, *, failed_rank: int | None = None):
        super().__init__(message)
        #: Rank whose failure triggered the abort, when known.
        self.failed_rank = failed_rank


class SpmdRetryExhaustedError(CommAbortError):
    """An SPMD epoch kept failing after every respawn-and-retry attempt.

    Raised by :class:`~repro.comm.launcher.SpmdSession` (and the one-shot
    proc launcher) once the ``REPRO_SPMD_RETRIES`` budget is spent.  The
    complete per-attempt failure history is attached, newest last, so the
    operator sees every underlying cause, not just the final one.
    """

    def __init__(
        self,
        message: str,
        *,
        failed_rank: int | None = None,
        history: list | None = None,
    ):
        super().__init__(message, failed_rank=failed_rank)
        #: One exception per failed attempt (epoch runs and respawns alike).
        self.history: list = list(history or [])


# ---------------------------------------------------------------------------
# memory accounting
# ---------------------------------------------------------------------------


class MemoryBudgetError(ReproError, RuntimeError):
    """Raised when an allocation plan exceeds the device memory budget."""


# ---------------------------------------------------------------------------
# serving tier
# ---------------------------------------------------------------------------


class ServerClosedError(ReproError, RuntimeError):
    """Raised by ``Server.submit`` after ``Server.close`` (or after the
    batcher died on an unrecoverable tick failure)."""


class ServerOverloadedError(ReproError, RuntimeError):
    """Admission was shed: the server's pending queue is at ``max_pending``.

    Raised synchronously in the submitting caller — the request never
    enters the queue, so an overloaded server keeps bounded memory and
    bounded worst-case latency instead of an ever-growing backlog.
    """


class RequestTimeoutError(ReproError, TimeoutError):
    """A request's ``deadline_s`` expired before its batch executed."""


class CircuitOpenError(ReproError, RuntimeError):
    """The per-model circuit breaker is open after repeated refit failures.

    Requests for the affected ``(model, theta)`` fail fast until the
    breaker's reset window elapses and a half-open probe succeeds; other
    models are unaffected.
    """


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------


class InjectedFaultError(TransientError, ReproError, RuntimeError):
    """The default exception of a fired :mod:`repro.faults` fault point.

    Transient by construction — an injected fault models a one-off
    infrastructure hiccup, exactly the class of failure the retry and
    self-healing paths exist for.
    """
