"""Array backend abstraction.

DALIA runs the same code on NumPy (CPU) and CuPy (GPU).  The formal seam
is the :class:`Backend` protocol (:mod:`repro.backend.protocol`): the
array module ``xp``, capability flags the batched kernel layer consults
(``has_lapack``/``has_batched_trsm``/...), and allocator hooks.
:data:`NUMPY_BACKEND` is the default instance; :func:`register_backend`
is where the ROADMAP CuPy backend drops in without touching solver code.
:func:`get_array_module` mirrors ``cupy.get_array_module`` semantics on
top of the registry for legacy call sites.

The package also exposes a :class:`Device` abstraction with a memory
budget (which is what forces the S3 time-domain partitioning in the paper
once the block-dense matrix no longer fits on one accelerator) and a
:class:`MemoryTracker` used to decide when a model must be distributed.
"""

from repro.backend.array_module import (
    asarray,
    empty_blocks,
    get_array_module,
    zeros_blocks,
)
from repro.backend.cupy import cupy_available
from repro.backend.device import Device, DeviceKind, default_device
from repro.backend.memory import MemoryBudgetError, MemoryTracker, bta_memory_bytes
from repro.backend.mock import MOCK_DEVICE_BACKEND, MockDeviceArray, MockDeviceBackend
from repro.backend.protocol import (
    NUMPY_BACKEND,
    Backend,
    NumpyBackend,
    available_backends,
    backend_for,
    get_backend,
    register_backend,
)

# The mock device is always available (it is plain host memory), so CI
# legs can flip the whole run onto the device code path with
# ``REPRO_BACKEND=mock_device``.  The CuPy backend registers only where a
# CUDA device actually answers.
register_backend(MOCK_DEVICE_BACKEND)
if cupy_available():  # pragma: no cover - requires a GPU
    from repro.backend.cupy import CupyBackend

    register_backend(CupyBackend())

__all__ = [
    "Backend",
    "NumpyBackend",
    "NUMPY_BACKEND",
    "MockDeviceArray",
    "MockDeviceBackend",
    "MOCK_DEVICE_BACKEND",
    "cupy_available",
    "available_backends",
    "backend_for",
    "get_backend",
    "register_backend",
    "get_array_module",
    "asarray",
    "empty_blocks",
    "zeros_blocks",
    "Device",
    "DeviceKind",
    "default_device",
    "MemoryTracker",
    "MemoryBudgetError",
    "bta_memory_bytes",
]
