"""Array backend abstraction.

DALIA runs the same code on NumPy (CPU) and CuPy (GPU).  CuPy is not
available in this environment, so the backend exposes a single entry point,
:func:`get_array_module`, mirroring ``cupy.get_array_module`` semantics, a
:class:`Device` abstraction with a memory budget (which is what forces the
S3 time-domain partitioning in the paper once the block-dense matrix no
longer fits on one accelerator), and a :class:`MemoryTracker` used to decide
when a model must be distributed.
"""

from repro.backend.array_module import (
    asarray,
    empty_blocks,
    get_array_module,
    zeros_blocks,
)
from repro.backend.device import Device, DeviceKind, default_device
from repro.backend.memory import MemoryBudgetError, MemoryTracker, bta_memory_bytes

__all__ = [
    "get_array_module",
    "asarray",
    "empty_blocks",
    "zeros_blocks",
    "Device",
    "DeviceKind",
    "default_device",
    "MemoryTracker",
    "MemoryBudgetError",
    "bta_memory_bytes",
]
