"""The ``Backend`` protocol — the formal seam between solvers and runtimes.

DALIA runs the same solver source on NumPy (host) and CuPy (device).  The
historical shim (:func:`repro.backend.array_module.get_array_module`) only
answered "which array module?"; the structured kernels additionally need
to know *what the runtime can do* (is there a direct LAPACK path?  a
batched TRSM?  how should block stacks be allocated?).  This module
formalizes that contract:

- :class:`Backend` — the protocol every runtime implements: the array
  module ``xp``, capability flags consulted by
  :mod:`repro.structured.batched` when choosing between the looped-LAPACK
  host path and the vectorized-substitution device path, and allocator
  hooks for block stacks;
- :class:`NumpyBackend` — the default host instance (:data:`NUMPY_BACKEND`);
- :func:`register_backend` / :func:`get_backend` / :func:`backend_for` —
  the registration point where the ROADMAP CuPy backend drops in without
  touching solver code: register an instance whose ``owns()`` recognizes
  ``cupy.ndarray`` and every factor built from device arrays routes its
  sweeps through it.

Factors (:class:`repro.structured.factor.BTAFactor`) carry their backend
explicitly, so the sweeps never have to re-infer it per call.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

import numpy as np

_DEFAULT_DTYPE = np.float64


@runtime_checkable
class Backend(Protocol):
    """Runtime contract consumed by the structured solvers.

    Attributes
    ----------
    name:
        Registry key (``"numpy"``, ``"cupy"``, ...).
    is_host:
        True when arrays live in host memory (enables SciPy interop).
    has_lapack:
        Direct LAPACK block kernels (``dpotrf``/``dtrtri``/``dtrtrs``)
        are available for this backend's arrays.  When False the batched
        layer uses the vectorized-substitution fallback everywhere.
    has_batched_trsm:
        A genuinely batched triangular solve exists (``trsmBatched``):
        stacked solves should always take the batched kernel rather than
        the per-block loop.
    has_batched_potrf:
        A genuinely batched Cholesky exists (``potrfBatched``).
    """

    name: str
    is_host: bool
    has_lapack: bool
    has_batched_trsm: bool
    has_batched_potrf: bool

    @property
    def xp(self):
        """The array module (``numpy``-compatible API)."""
        ...

    def owns(self, array) -> bool:
        """True when ``array`` belongs to this backend's runtime."""
        ...

    def asarray(self, a, dtype=None):
        """Convert to a backend array without copying when possible."""
        ...

    def empty_blocks(self, n: int, b: int, *, dtype=None):
        """Uninitialized C-contiguous ``(n, b, b)`` block stack."""
        ...

    def zeros_blocks(self, n: int, b: int, *, dtype=None):
        """Zeroed C-contiguous ``(n, b, b)`` block stack."""
        ...

    def empty(self, shape, *, dtype=None, order: str = "C"):
        """Uninitialized backend array of arbitrary shape.

        The general-purpose sibling of :meth:`empty_blocks` — sweep
        workspaces, RHS panels and assembly scratch route through it so
        no layer above the kernels allocates with bare ``np.empty``.
        """
        ...

    def zeros(self, shape, *, dtype=None, order: str = "C"):
        """Zeroed backend array of arbitrary shape."""
        ...

    def to_host(self, a) -> np.ndarray:
        """Copy an array to host memory (no-op for host backends)."""
        ...


class NumpyBackend:
    """The default host backend (NumPy + SciPy LAPACK fast paths)."""

    name = "numpy"
    is_host = True
    has_lapack = True
    # No cublas-style batched TRSM/POTRF on the host: tall stacks use the
    # vectorized substitution, short stacks the looped LAPACK path (see
    # repro.structured.batched._use_substitution).
    has_batched_trsm = False
    has_batched_potrf = False

    @property
    def xp(self):
        return np

    def owns(self, array) -> bool:
        return isinstance(array, np.ndarray)

    def asarray(self, a, dtype=None):
        return np.asarray(a, dtype=dtype or _DEFAULT_DTYPE)

    def empty_blocks(self, n: int, b: int, *, dtype=None) -> np.ndarray:
        if n < 0 or b < 0:
            raise ValueError(f"negative block-stack shape: n={n}, b={b}")
        return np.empty((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")

    def zeros_blocks(self, n: int, b: int, *, dtype=None) -> np.ndarray:
        if n < 0 or b < 0:
            raise ValueError(f"negative block-stack shape: n={n}, b={b}")
        return np.zeros((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")

    def empty(self, shape, *, dtype=None, order: str = "C") -> np.ndarray:
        return np.empty(shape, dtype=dtype or _DEFAULT_DTYPE, order=order)

    def zeros(self, shape, *, dtype=None, order: str = "C") -> np.ndarray:
        return np.zeros(shape, dtype=dtype or _DEFAULT_DTYPE, order=order)

    def to_host(self, a) -> np.ndarray:
        return np.asarray(a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NumpyBackend host lapack={self.has_lapack}>"


#: The process-wide default backend instance.
NUMPY_BACKEND = NumpyBackend()

_REGISTRY: dict = {NUMPY_BACKEND.name: NUMPY_BACKEND}


def register_backend(backend: Backend) -> Backend:
    """Register a backend instance under ``backend.name``.

    This is the CuPy drop-in point: registering an instance whose
    ``owns()`` recognizes device arrays makes :func:`backend_for` (and
    therefore every structured kernel) route device factors through it —
    no solver code changes.  Re-registering a name replaces the instance.
    """
    if not isinstance(backend, Backend):
        raise TypeError(f"not a Backend: {backend!r}")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple:
    """Registered backend names (``"numpy"`` is always present)."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str | None = None) -> Backend:
    """Resolve a backend by name.

    ``None`` consults the ``REPRO_BACKEND`` environment variable and
    falls back to ``"numpy"`` — the hook batch jobs use to flip a whole
    run onto a registered device backend without touching call sites.
    """
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "").strip() or NUMPY_BACKEND.name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {', '.join(available_backends())}"
        ) from None


def backend_for(*arrays) -> Backend:
    """The backend owning the given arrays (mirrors ``cupy.get_array_module``).

    Non-default backends are consulted first so a device array wins over
    host scalars in mixed argument lists; with no match (or no arguments)
    the default host backend is returned.
    """
    for backend in _REGISTRY.values():
        if backend is NUMPY_BACKEND:
            continue
        if any(backend.owns(a) for a in arrays):
            return backend
    return NUMPY_BACKEND
