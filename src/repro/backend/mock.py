"""A CPU-side mock device backend — the GPU code path without a GPU.

The batched kernel layer has two execution strategies per primitive: the
looped-LAPACK host path and the vectorized-substitution / batched-kernel
device path.  Only the former runs in CI unless a device backend exists,
so the device path would rot silently.  :class:`MockDeviceBackend` keeps
it tier-1-testable:

- arrays are :class:`MockDeviceArray` — plain host memory *viewed*
  through an ``np.ndarray`` subclass, so ufuncs, ``matmul``, slicing and
  ``empty_like`` all work (and preserve the tag) while the backend
  reports ``is_host=False`` / ``has_lapack=False``: the batched layer
  must take the device branches (``batched_chol_lower`` +
  ``batched_tri_inverse_lower`` + vectorized substitution) everywhere;
- the array module :attr:`MockDeviceBackend.xp` is a wrapping proxy over
  NumPy whose functions are **pre-bound at import time** and whose array
  results are re-tagged as device arrays.  Pre-binding is what makes the
  no-escape contract testable: a test can monkeypatch ``np.empty`` /
  ``np.zeros`` / ``np.empty_like`` to raise, and any hot-path allocation
  that still goes through the *global* NumPy namespace — instead of the
  owning backend's ``xp`` — blows up, while backend-routed allocations
  keep working (the proxy holds the originals);
- every host<->device boundary crossing is counted
  (:attr:`MockDeviceBackend.transfers`): ``asarray`` of a foreign array
  is an H2D copy, ``to_host`` is a D2H copy.  The measured counts feed
  :mod:`repro.perfmodel.transfer`, which models when device execution
  pays for real hardware.

The real-GPU sibling is :class:`repro.backend.cupy.CupyBackend`; the two
share the capability-flag contract, so code proven under the mock runs
unchanged on CuPy.
"""

from __future__ import annotations

import types
import warnings
from dataclasses import dataclass, field

import numpy as np

_DEFAULT_DTYPE = np.float64


class MockDeviceArray(np.ndarray):
    """Host memory tagged as device-resident.

    Created by viewing an ``np.ndarray``; no data is copied.  NumPy
    preserves the subclass through ufuncs, ``@``, slicing, ``diagonal``,
    ``reshape`` and ``np.empty_like`` — exactly the operations the
    device kernels use — so the tag survives the whole pipeline unless
    some layer strips it with a bare ``np.asarray``/``np.array`` (which
    the backend-threading refactor removed from the hot path).
    """

    __slots__ = ()


def _to_device(x):
    if isinstance(x, np.ndarray) and not isinstance(x, MockDeviceArray):
        return x.view(MockDeviceArray)
    return x


def _prebind(module) -> dict:
    """Snapshot a module's public callables before any monkeypatching."""
    bound = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name in dir(module):
            if name.startswith("_"):
                continue
            try:
                bound[name] = getattr(module, name)
            except AttributeError:  # pragma: no cover - removed aliases
                continue
    return bound


_PREBOUND_NP = _prebind(np)
_PREBOUND_LINALG = _prebind(np.linalg)


class _WrappingModule:
    """NumPy-compatible module proxy: pre-bound functions, device results.

    Attribute lookups resolve against the import-time snapshot (falling
    back to live ``getattr`` only for names that did not exist then),
    wrap callables so ``np.ndarray`` results come back tagged as
    :class:`MockDeviceArray`, and cache the wrapper.  Submodules
    (``linalg``) get their own proxy.
    """

    def __init__(self, module, prebound: dict, submodules: dict | None = None):
        self._module = module
        self._prebound = prebound
        self._submodules = submodules or {}

    def __getattr__(self, name: str):
        sub = self._submodules.get(name)
        if sub is not None:
            self.__dict__[name] = sub
            return sub
        try:
            attr = self._prebound[name]
        except KeyError:
            attr = getattr(self._module, name)
        if isinstance(attr, types.ModuleType) or isinstance(attr, type):
            out = attr  # submodule without proxy / scalar types pass through
        elif callable(attr):
            out = self._wrap(attr)
        else:
            out = attr  # constants (pi, newaxis, ...)
        self.__dict__[name] = out
        return out

    @staticmethod
    def _wrap(fn):
        def call(*args, **kwargs):
            out = fn(*args, **kwargs)
            if isinstance(out, tuple):
                return tuple(_to_device(o) for o in out)
            return _to_device(out)

        call.__name__ = getattr(fn, "__name__", "wrapped")
        call.__doc__ = getattr(fn, "__doc__", None)
        return call

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<mock-device proxy of {self._module.__name__}>"


@dataclass
class TransferStats:
    """Host<->device crossing counters (calls and bytes, per direction)."""

    h2d_calls: int = 0
    h2d_bytes: int = 0
    d2h_calls: int = 0
    d2h_bytes: int = 0
    _log: list = field(default_factory=list, repr=False)

    def record_h2d(self, nbytes: int, what: str = "") -> None:
        self.h2d_calls += 1
        self.h2d_bytes += int(nbytes)
        self._log.append(("h2d", int(nbytes), what))

    def record_d2h(self, nbytes: int, what: str = "") -> None:
        self.d2h_calls += 1
        self.d2h_bytes += int(nbytes)
        self._log.append(("d2h", int(nbytes), what))

    @property
    def crossings(self) -> int:
        return self.h2d_calls + self.d2h_calls

    @property
    def bytes_moved(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    def reset(self) -> None:
        self.h2d_calls = self.h2d_bytes = self.d2h_calls = self.d2h_bytes = 0
        self._log.clear()


class MockDeviceBackend:
    """Device-capability backend over host memory (see module docstring).

    Capability flags mirror a cuSOLVER/cuBLAS runtime: no direct LAPACK
    block kernels, genuinely batched TRSM and POTRF.  The batched layer
    therefore takes the same branches it would on CuPy.
    """

    name = "mock_device"
    is_host = False
    has_lapack = False
    has_batched_trsm = True
    has_batched_potrf = True

    def __init__(self):
        self.transfers = TransferStats()
        self._xp = _WrappingModule(
            np,
            _PREBOUND_NP,
            submodules={"linalg": _WrappingModule(np.linalg, _PREBOUND_LINALG)},
        )

    @property
    def xp(self):
        return self._xp

    def owns(self, array) -> bool:
        return isinstance(array, MockDeviceArray)

    def asarray(self, a, dtype=None):
        """Move onto the device; counts one H2D crossing for foreign data."""
        out = _PREBOUND_NP["asarray"](a, dtype=dtype or _DEFAULT_DTYPE)
        if not isinstance(a, MockDeviceArray):
            self.transfers.record_h2d(out.nbytes, "asarray")
        return _to_device(out)

    def empty_blocks(self, n: int, b: int, *, dtype=None) -> MockDeviceArray:
        if n < 0 or b < 0:
            raise ValueError(f"negative block-stack shape: n={n}, b={b}")
        return _to_device(
            _PREBOUND_NP["empty"]((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")
        )

    def zeros_blocks(self, n: int, b: int, *, dtype=None) -> MockDeviceArray:
        if n < 0 or b < 0:
            raise ValueError(f"negative block-stack shape: n={n}, b={b}")
        return _to_device(
            _PREBOUND_NP["zeros"]((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")
        )

    def empty(self, shape, *, dtype=None, order: str = "C") -> MockDeviceArray:
        return _to_device(
            _PREBOUND_NP["empty"](shape, dtype=dtype or _DEFAULT_DTYPE, order=order)
        )

    def zeros(self, shape, *, dtype=None, order: str = "C") -> MockDeviceArray:
        return _to_device(
            _PREBOUND_NP["zeros"](shape, dtype=dtype or _DEFAULT_DTYPE, order=order)
        )

    def to_host(self, a) -> np.ndarray:
        """Copy back to host; counts one D2H crossing for device data."""
        if isinstance(a, MockDeviceArray):
            self.transfers.record_d2h(a.nbytes, "to_host")
            return _PREBOUND_NP["array"](a, subok=False)
        return np.asarray(a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t = self.transfers
        return (
            f"<MockDeviceBackend h2d={t.h2d_calls}x/{t.h2d_bytes}B "
            f"d2h={t.d2h_calls}x/{t.d2h_bytes}B>"
        )


#: The process-wide mock device instance (registered by ``repro.backend``).
MOCK_DEVICE_BACKEND = MockDeviceBackend()
