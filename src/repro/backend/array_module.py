"""NumPy/CuPy array-module shim.

The DALIA paper implements every dense block kernel through the CuPy/NumPy
compatible API so the same code drives both host and device execution.  In
this reproduction only NumPy is available; we keep the indirection so all
block kernels are written backend-agnostically, and so flop accounting can
be layered on top (see :mod:`repro.perfmodel`).
"""

from __future__ import annotations

import numpy as np

_DEFAULT_DTYPE = np.float64


def get_array_module(*arrays) -> "module":
    """Return the array module (always NumPy here).

    Mirrors ``cupy.get_array_module``: inspects the arguments and returns
    the module that created them.  Kept for source compatibility with the
    GPU code path described in the paper.
    """
    return np


def asarray(a, dtype=None):
    """Convert ``a`` to a backend array without copying when possible."""
    return np.asarray(a, dtype=dtype or _DEFAULT_DTYPE)


def empty_blocks(n: int, b: int, *, dtype=None) -> np.ndarray:
    """Allocate an uninitialized C-contiguous stack of ``n`` ``b x b`` blocks.

    The structured solvers store block diagonals as ``(n, b, b)`` stacks so
    per-block LAPACK calls hit contiguous memory (guide: beware of cache
    effects; smaller strides are faster).
    """
    if n < 0 or b < 0:
        raise ValueError(f"negative block-stack shape: n={n}, b={b}")
    return np.empty((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")


def zeros_blocks(n: int, b: int, *, dtype=None) -> np.ndarray:
    """Allocate a zeroed C-contiguous stack of ``n`` ``b x b`` blocks."""
    if n < 0 or b < 0:
        raise ValueError(f"negative block-stack shape: n={n}, b={b}")
    return np.zeros((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")
