"""NumPy/CuPy array-module shim.

The DALIA paper implements every dense block kernel through the CuPy/NumPy
compatible API so the same code drives both host and device execution.  In
this reproduction only NumPy is available; we keep the indirection so all
block kernels are written backend-agnostically, and so flop accounting can
be layered on top (see :mod:`repro.perfmodel`).

The shim also owns the ``REPRO_BATCHED`` execution-policy switch consulted
by the structured solvers: ``1`` (default) routes them through the stacked
kernels of :mod:`repro.structured.batched`, ``0`` forces the per-block
reference kernels of :mod:`repro.structured.kernels`.
"""

from __future__ import annotations

import os

import numpy as np

_DEFAULT_DTYPE = np.float64

_FALSY = frozenset({"0", "false", "off", "no"})


def batched_enabled(override: bool | None = None) -> bool:
    """Resolve the batched-kernel switch.

    ``override`` (a solver's explicit ``batched=`` argument) wins when not
    None; otherwise the ``REPRO_BATCHED`` environment variable decides,
    defaulting to enabled.  Read per call so tests and A/B benchmarks can
    flip the path without re-importing modules.
    """
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_BATCHED", "1").strip().lower() not in _FALSY


def is_host_module(xp) -> bool:
    """True when ``xp`` is NumPy (enables the SciPy/LAPACK fast paths)."""
    return xp is np


def get_array_module(*arrays) -> "module":
    """Return the array module (always NumPy here).

    Mirrors ``cupy.get_array_module``: inspects the arguments and returns
    the module that created them.  Kept for source compatibility with the
    GPU code path described in the paper.
    """
    return np


def asarray(a, dtype=None):
    """Convert ``a`` to a backend array without copying when possible."""
    return np.asarray(a, dtype=dtype or _DEFAULT_DTYPE)


def empty_blocks(n: int, b: int, *, dtype=None) -> np.ndarray:
    """Allocate an uninitialized C-contiguous stack of ``n`` ``b x b`` blocks.

    The structured solvers store block diagonals as ``(n, b, b)`` stacks so
    per-block LAPACK calls hit contiguous memory (guide: beware of cache
    effects; smaller strides are faster).
    """
    if n < 0 or b < 0:
        raise ValueError(f"negative block-stack shape: n={n}, b={b}")
    return np.empty((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")


def zeros_blocks(n: int, b: int, *, dtype=None) -> np.ndarray:
    """Allocate a zeroed C-contiguous stack of ``n`` ``b x b`` blocks."""
    if n < 0 or b < 0:
        raise ValueError(f"negative block-stack shape: n={n}, b={b}")
    return np.zeros((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")
