"""NumPy/CuPy array-module shim (thin veneer over :mod:`repro.backend.protocol`).

The DALIA paper implements every dense block kernel through the CuPy/NumPy
compatible API so the same code drives both host and device execution.
The formal contract now lives in :mod:`repro.backend.protocol` (the
:class:`~repro.backend.protocol.Backend` protocol with capability flags
and allocator hooks); this module keeps the historical free-function
entry points as delegating wrappers so existing call sites — and the
flop accounting layered on top (see :mod:`repro.perfmodel`) — keep
working unchanged.

The shim also owns the ``REPRO_BATCHED`` execution-policy switch consulted
by the structured solvers: ``1`` (default) routes them through the stacked
kernels of :mod:`repro.structured.batched`, ``0`` forces the per-block
reference kernels of :mod:`repro.structured.kernels`.
"""

from __future__ import annotations

import os

import numpy as np

from repro.backend.protocol import NUMPY_BACKEND, backend_for, get_backend

_DEFAULT_DTYPE = np.float64

_FALSY = frozenset({"0", "false", "off", "no"})


def batched_enabled(override: bool | None = None, backend=None) -> bool:
    """Resolve the batched-kernel switch.

    A ``backend`` without host LAPACK comes first and wins
    unconditionally: the per-block reference path is direct SciPy/LAPACK
    dispatch, which is unreachable on a device backend (mock or CuPy) —
    ``REPRO_BATCHED=0`` and explicit ``batched=False`` select the
    reference kernels only where they can actually run.  Otherwise
    ``override`` (a solver's explicit ``batched=`` argument) wins when
    not None, and the ``REPRO_BATCHED`` environment variable decides the
    rest, defaulting to enabled.  Read per call so tests and A/B
    benchmarks can flip the path without re-importing modules.
    """
    if backend is not None and not (backend.is_host and backend.has_lapack):
        return True
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_BATCHED", "1").strip().lower() not in _FALSY


def is_host_module(xp) -> bool:
    """True when ``xp`` is NumPy (enables the SciPy/LAPACK fast paths)."""
    return xp is np


def get_array_module(*arrays) -> "module":
    """Return the array module that owns the given arrays.

    Mirrors ``cupy.get_array_module``: inspects the arguments and returns
    the module that created them.  Resolution goes through the backend
    registry (:func:`repro.backend.protocol.backend_for`), so registering
    a device backend makes device arrays route here without code changes.
    """
    return backend_for(*arrays).xp


def asarray(a, dtype=None):
    """Convert ``a`` to a default-backend array without copying when possible."""
    return get_backend().asarray(a, dtype=dtype)


def empty_blocks(n: int, b: int, *, dtype=None) -> np.ndarray:
    """Allocate an uninitialized C-contiguous stack of ``n`` ``b x b`` blocks.

    The structured solvers store block diagonals as ``(n, b, b)`` stacks so
    per-block LAPACK calls hit contiguous memory (guide: beware of cache
    effects; smaller strides are faster).
    """
    return NUMPY_BACKEND.empty_blocks(n, b, dtype=dtype)


def zeros_blocks(n: int, b: int, *, dtype=None) -> np.ndarray:
    """Allocate a zeroed C-contiguous stack of ``n`` ``b x b`` blocks."""
    return NUMPY_BACKEND.zeros_blocks(n, b, dtype=dtype)
