"""The CuPy device backend (import-guarded; the real-GPU payoff).

Registers only where ``cupy`` imports *and* a device is reachable, so
hosts without a GPU skip it cleanly — the capability-identical
:class:`repro.backend.mock.MockDeviceBackend` keeps the exact same code
path tier-1-tested there.

Kernel mapping (why the capability flags are what they are):

- ``has_batched_potrf=True`` — ``cupy.linalg.cholesky`` on a stacked
  ``(m, b, b)`` input dispatches to cuSOLVER ``potrfBatched``: one
  launch factors the whole stack, which is the regime where the device
  beats the host's looped OpenBLAS POTRF (the ``b > 32`` ceiling the
  evaluator lifts for such backends);
- ``has_batched_trsm=True`` — stacked triangular solves run as the
  batched layer's blocked vectorized substitution (broadcast GEMMs —
  cuBLAS-batched under CuPy); ``cupyx.lapack.trsm`` covers the
  single-block tall-RHS case.  Either way there is no per-block host
  loop;
- ``has_lapack=False`` — the SciPy LAPACK wrappers in
  ``repro.structured.batched`` cannot touch device memory, so the host
  fast path must be unreachable; the flag guarantees the batched layer
  never routes there.

Everything above the kernels (BTA containers, sweeps, handles, assembly
workspaces) allocates through this backend's ``xp``/``empty``/``zeros``
hooks, so no further code changes are needed to run the pipeline on
device — that end-to-end property is what the mock backend asserts in
CI.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_DTYPE = np.float64

try:  # pragma: no cover - exercised only on GPU hosts
    import cupy as _cupy

    _cupy.cuda.runtime.getDeviceCount()  # raises when no device is present
    _CUPY_OK = True
except Exception:  # pragma: no cover - the GPU-free default
    _cupy = None
    _CUPY_OK = False


def cupy_available() -> bool:
    """True when CuPy imports and at least one CUDA device answers."""
    return _CUPY_OK


class CupyBackend:  # pragma: no cover - requires a GPU
    """CUDA execution through CuPy (cuSOLVER/cuBLAS batched kernels)."""

    name = "cupy"
    is_host = False
    has_lapack = False
    has_batched_trsm = True
    has_batched_potrf = True

    def __init__(self):
        if not _CUPY_OK:
            raise RuntimeError("cupy is not importable or no CUDA device is present")

    @property
    def xp(self):
        return _cupy

    def owns(self, array) -> bool:
        return isinstance(array, _cupy.ndarray)

    def asarray(self, a, dtype=None):
        return _cupy.asarray(a, dtype=dtype or _DEFAULT_DTYPE)

    def empty_blocks(self, n: int, b: int, *, dtype=None):
        if n < 0 or b < 0:
            raise ValueError(f"negative block-stack shape: n={n}, b={b}")
        return _cupy.empty((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")

    def zeros_blocks(self, n: int, b: int, *, dtype=None):
        if n < 0 or b < 0:
            raise ValueError(f"negative block-stack shape: n={n}, b={b}")
        return _cupy.zeros((n, b, b), dtype=dtype or _DEFAULT_DTYPE, order="C")

    def empty(self, shape, *, dtype=None, order: str = "C"):
        return _cupy.empty(shape, dtype=dtype or _DEFAULT_DTYPE, order=order)

    def zeros(self, shape, *, dtype=None, order: str = "C"):
        return _cupy.zeros(shape, dtype=dtype or _DEFAULT_DTYPE, order=order)

    def to_host(self, a) -> np.ndarray:
        return _cupy.asnumpy(a)

    def __repr__(self) -> str:
        return "<CupyBackend cuda>"
