"""Device abstraction.

A :class:`Device` models one accelerator (in the paper: one GH200 superchip
with 96 GB of HBM3 and one Grace CPU).  Because each model must fit on a
single accelerator in its densified BT/BTA form (paper Sec. IV-C), the
device's memory capacity is the quantity that triggers the S3 time-domain
partitioning.  The reproduction runs all math on the host CPU, but carries
the device descriptor through the stack so memory-feasibility decisions and
the performance model behave exactly like the paper's.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DeviceKind(enum.Enum):
    """Kind of execution device."""

    CPU = "cpu"
    GPU = "gpu"  # simulated: math runs on host, costs modeled as GH200


@dataclass(frozen=True)
class Device:
    """Descriptor of one execution device.

    Attributes
    ----------
    kind:
        CPU or (simulated) GPU.
    name:
        Human-readable name, e.g. ``"GH200"``.
    memory_bytes:
        Usable device memory.  Structured matrices whose densified storage
        exceeds this must be partitioned across several devices (S3).
    gemm_tflops:
        Sustained double-precision throughput for large GEMM, used by the
        performance model.
    bandwidth_gbs:
        Sustained memory bandwidth in GB/s, used for bandwidth-bound
        kernels (the sparse-to-dense mapping, vector updates).
    """

    kind: DeviceKind
    name: str
    memory_bytes: int
    gemm_tflops: float
    bandwidth_gbs: float

    def fits(self, nbytes: int, *, headroom: float = 0.85) -> bool:
        """Whether an allocation of ``nbytes`` fits within ``headroom`` of memory."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes <= headroom * self.memory_bytes


#: GH200 superchip as used on CSCS Alps (paper Sec. V-A).
GH200 = Device(
    kind=DeviceKind.GPU,
    name="GH200",
    memory_bytes=96 * 2**30,
    gemm_tflops=34.0,  # FP64 with tensor cores, sustained for large blocks
    bandwidth_gbs=4000.0,
)

#: Sapphire Rapids node of the Fritz supercomputer (R-INLA baseline host).
SAPPHIRE_RAPIDS = Device(
    kind=DeviceKind.CPU,
    name="Xeon-8470",
    memory_bytes=2 * 2**40,
    gemm_tflops=2.4,
    bandwidth_gbs=300.0,
)

#: The host actually executing this reproduction.
HOST = Device(
    kind=DeviceKind.CPU,
    name="host",
    memory_bytes=16 * 2**30,
    gemm_tflops=0.05,
    bandwidth_gbs=20.0,
)


def default_device() -> Device:
    """The device used when none is specified (the simulated GH200)."""
    return GH200
