"""Device-memory accounting for structured matrices.

The paper's block-dense approach raises the memory footprint of a precision
matrix from ``O(nnz)`` (general sparse) to ``O(n * b^2)`` (densified BT/BTA,
Sec. IV-C).  The framework must therefore decide, per model, how many
time-domain partitions ``P`` are needed so each partition's slice fits on
one device.  This module provides the byte-counting helpers and a
:class:`MemoryTracker` that the solver dispatch layer consults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend.device import Device

# Re-homed into the unified hierarchy (repro.errors); this module stays
# the historical import path.
from repro.errors import MemoryBudgetError  # noqa: F401 - re-exported API

_F64 = 8  # bytes per float64


def bta_memory_bytes(n: int, b: int, a: int, *, factors: float = 2) -> int:
    """Bytes to store a densified BTA matrix (and, by default, its factor).

    Storage: ``n`` diagonal blocks ``b x b``, ``n - 1`` off-diagonal blocks,
    ``n`` arrow blocks ``a x b``, and one ``a x a`` tip.  ``factors = 2``
    accounts for the matrix plus one workspace copy, matching the solver's
    in-place-factorization-plus-original layout used during selected
    inversion.  Fractional factors express partial side allocations such
    as the batched path's cached ``L[i,i]^{-1}`` stack (~0.5x, see
    :data:`repro.inla.solvers.WORKLOAD_FACTORS`).
    """
    if n <= 0 or b <= 0 or a < 0:
        raise ValueError(f"invalid BTA dims n={n}, b={b}, a={a}")
    blocks = n * b * b + max(n - 1, 0) * b * b + n * a * b + a * a
    return int(factors * blocks * _F64)


def bt_memory_bytes(n: int, b: int, *, factors: float = 2) -> int:
    """Bytes to store a densified BT matrix (no arrowhead)."""
    return bta_memory_bytes(n, b, 0, factors=factors)


def posterior_memory_bytes(
    n: int, b: int, a: int, *, factors: float = 2.5, vectors: int = 3
) -> int:
    """Bytes a resident fitted-posterior handle occupies.

    The dominant term is the BTA factor with the side allocations the
    full query mix needs — the cached ``L[i,i]^{-1}`` stack, the flat
    arrow row, and the selected-inversion workspace — which is the
    ``marginals`` workload footprint (``factors = 2.5``, see
    :data:`repro.inla.solvers.WORKLOAD_FACTORS`).  ``vectors`` counts the
    length-``N`` side vectors a handle retains (permuted mean, cached
    selected-inverse diagonal, unpermuted mean).  The serving tier's
    model registry budgets its residency set with this number.
    """
    if vectors < 0:
        raise ValueError(f"vectors must be >= 0, got {vectors}")
    N = n * b + a
    return bta_memory_bytes(n, b, a, factors=factors) + vectors * N * _F64


def min_partitions(
    n: int, b: int, a: int, device: Device, *, factors: float = 2, headroom: float = 0.85
) -> int:
    """Smallest ``P`` such that an even time-domain slice fits on ``device``.

    This is the decision rule of paper Sec. V-D: parallelize through S1
    first and only spill into S3 when the block-dense precision matrices do
    not fit on a single accelerator anymore.

    ``P`` is computed in closed form from the byte formula rather than by
    scanning ``P = 1, 2, ...`` (the historical implementation was ``O(n)``
    per dispatch, which the solver-selection layer pays on every model
    evaluation).  A slice of ``n_local`` block rows occupies

        factors * 8 * (n_local * (2 b^2 + a b) - b^2 + a^2)

    bytes, so the largest feasible slice is obtained by inverting the
    linear-in-``n_local`` expression against the headroom budget.

    ``factors`` distinguishes workloads: a factorize-only ``logdet`` sweep
    factors in place (``factors=1``), while selected inversion keeps the
    factor plus a workspace copy (``factors=2``, the default) — the two
    genuinely need different partition counts, which the old signature
    could not express.
    """
    if n <= 0 or b <= 0 or a < 0:
        raise ValueError(f"invalid BTA dims n={n}, b={b}, a={a}")
    if factors < 1:
        raise ValueError(f"factors must be >= 1, got {factors}")
    budget_doubles = int(headroom * device.memory_bytes / (factors * _F64))
    per_row = 2 * b * b + a * b
    n_local_max = (budget_doubles + b * b - a * a) // per_row
    if n_local_max < 1:
        raise MemoryBudgetError(
            f"a single {b}x{b} block row does not fit on {device.name}; "
            "spatial-domain parallelism (future work in the paper) would be required"
        )
    return max(1, -(-n // n_local_max))  # ceil(n / n_local_max)


@dataclass
class MemoryTracker:
    """Tracks live simulated-device allocations against a budget.

    Used by the structured solvers to assert that no dense ``N x N``
    transient is ever materialized (the core promise of selected inversion,
    paper Sec. III-A2).
    """

    device: Device
    live_bytes: int = 0
    peak_bytes: int = 0
    _tags: dict = field(default_factory=dict)

    def allocate(self, nbytes: int, tag: str = "") -> None:
        """Record an allocation; raise if the budget is exceeded."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if not self.device.fits(self.live_bytes + nbytes):
            raise MemoryBudgetError(
                f"allocating {nbytes} bytes ({tag!r}) exceeds {self.device.name} "
                f"budget with {self.live_bytes} bytes live"
            )
        self.live_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        if tag:
            self._tags[tag] = self._tags.get(tag, 0) + nbytes

    def free(self, nbytes: int, tag: str = "") -> None:
        """Record a deallocation."""
        if nbytes < 0 or nbytes > self.live_bytes:
            raise ValueError(f"cannot free {nbytes} bytes with {self.live_bytes} live")
        self.live_bytes -= nbytes
        if tag and tag in self._tags:
            self._tags[tag] -= nbytes

    def breakdown(self) -> dict:
        """Live bytes per tag (diagnostics)."""
        return dict(self._tags)
