"""Lightweight timers and table formatting for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Timer:
    """Context-manager wall-clock timer.

    >>> with Timer() as t:
    ...     work()
    >>> t.elapsed
    """

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        self.elapsed = float("nan")
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass
class TimingRecords:
    """Named timing accumulator (min/mean over repeats)."""

    records: dict = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.records.setdefault(name, []).append(float(seconds))

    def best(self, name: str) -> float:
        return min(self.records[name])

    def mean(self, name: str) -> float:
        xs = self.records[name]
        return sum(xs) / len(xs)

    def time(self, name: str, fn, *args, repeats: int = 1, **kwargs):
        """Time ``fn`` ``repeats`` times; returns the last result."""
        result = None
        for _ in range(max(repeats, 1)):
            with Timer() as t:
                result = fn(*args, **kwargs)
            self.add(name, t.elapsed)
        return result


def format_table(headers: list, rows: list, *, title: str = "") -> str:
    """Plain-text table, right-aligned numerics (benchmark reports)."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[j]) for r in cells) for j in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
