"""Timing and reporting utilities used by the benchmark harness."""

from repro.diagnostics.timers import Timer, TimingRecords, format_table

__all__ = ["Timer", "TimingRecords", "format_table"]
