"""Request micro-batcher: concurrent queries, one sweep per tick.

The throughput curve of the batched stack is the k-scaling curve of the
stacked-RHS sweeps (`benchmarks/results/multirhs.txt`: ~40x at k = 64) —
but only if concurrent callers' right-hand sides actually share a sweep.
:class:`Server` is the layer that makes that happen: callers
:meth:`~Server.submit` typed requests (:mod:`repro.serving.api`) and get
futures; a background batcher thread drains the queue each tick, groups
the drained requests per ``(model, theta)``, resolves each group's fitted
handle through the :class:`~repro.serving.registry.ModelRegistry`, and
executes the whole group through ONE call to
:func:`~repro.serving.api.execute_batch` — at most one ``solve_stack``
sweep group, one ``solve_lt_stack`` sweep group, and one (cached)
``selected_inverse_diagonal`` per model per tick — then scatters results
into the futures.

Failure semantics (the resilience layer, ISSUE 10):

- **deadlines** — ``submit(..., deadline_s=...)`` bounds how long a
  request may wait; an expired request fails with
  :class:`~repro.errors.RequestTimeoutError` instead of occupying a
  sweep its caller has already abandoned.
- **load shedding** — ``max_pending`` bounds the queue; admission
  beyond it raises :class:`~repro.errors.ServerOverloadedError`
  synchronously in the submitter, keeping backlog (and worst-case
  latency) bounded under overload.
- **bounded retry** — a group that fails with a *transient* error
  (:func:`repro.errors.is_transient`; injected chaos faults qualify) is
  retried up to ``max_retries`` times with exponential backoff plus
  deterministic jitter.  ``execute_batch`` is pure, and any per-request
  ``rng`` state is snapshotted before the first attempt and restored
  before each retry — so a retried response is bit-identical to a
  first-try response.
- **circuit breaker** — repeated refit failures for one ``ModelKey``
  trip a per-key breaker: requests for that key fail fast with
  :class:`~repro.errors.CircuitOpenError` until the reset window
  elapses and a half-open probe succeeds.  Other models are unaffected.
- **no silent batcher death** — any exception escaping the tick loop
  itself (queue draining, grouping, an injected ``serving.tick`` fault)
  fails every pending future with the cause, transitions the server to
  a closed/failed state (visible in :meth:`~Server.health`), and stops
  admissions — never a stranded future.

Concurrency safety comes from the layers below: the factor's
``SweepWorkspacePool`` leases per-thread buffers, and the lane-quantized
execution core guarantees every response is bit-identical to a direct
``LatentPosterior`` call regardless of batch composition.

Shutdown drains: :meth:`~Server.close` stops admissions, then the batcher
finishes every queued request before the thread exits — no request is
ever dropped with its future unresolved.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from repro import faults
from repro.errors import (
    CircuitOpenError,
    RequestTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
    is_transient,
)
from repro.serving.api import execute_batch
from repro.serving.registry import ModelKey, ModelRegistry

__all__ = [
    "Server",
    "ServerStats",
    "ServerClosedError",
    "ServerOverloadedError",
    "RequestTimeoutError",
    "CircuitOpenError",
]


@dataclass
class ServerStats:
    """Monotonic counters over the server's lifetime."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    ticks: int = 0
    batches: int = 0
    max_batch: int = 0
    shed: int = 0
    timed_out: int = 0
    retries: int = 0
    breaker_trips: int = 0
    breaker_fast_fails: int = 0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "ticks": self.ticks,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "retries": self.retries,
            "breaker_trips": self.breaker_trips,
            "breaker_fast_fails": self.breaker_fast_fails,
        }


@dataclass
class _Pending:
    key: ModelKey
    model: object
    theta: object
    request: object
    future: Future
    deadline: float | None = None  # absolute time.monotonic() deadline


@dataclass
class _Breaker:
    """Per-``ModelKey`` refit circuit breaker (batcher-thread state)."""

    threshold: int
    reset_s: float
    failures: int = 0
    opened_at: float | None = None

    @property
    def open(self) -> bool:
        return self.opened_at is not None

    def allow(self, now: float) -> bool:
        """Whether a fit attempt may proceed (closed, or half-open probe)."""
        if self.opened_at is None:
            return True
        if now - self.opened_at >= self.reset_s:
            # Half-open: let exactly one probe through; a failure below
            # re-opens with a fresh window, a success closes.
            self.opened_at = now
            return True
        return False

    def record_failure(self, now: float) -> bool:
        """Count one refit failure; True when this one trips the breaker."""
        self.failures += 1
        if self.open:
            self.opened_at = now  # failed half-open probe: restart window
            return False
        if self.failures >= self.threshold:
            self.opened_at = now
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None

    def state(self, now: float) -> str:
        if self.opened_at is None:
            return "closed"
        return "half_open" if now - self.opened_at >= self.reset_s else "open"


def _snapshot_rngs(group: list) -> list:
    """Capture every request rng's bit-generator state (for exact retry)."""
    saved = []
    for p in group:
        rng = getattr(p.request, "rng", None)
        if rng is not None:
            saved.append((rng, rng.bit_generator.state))
    return saved


def _restore_rngs(saved: list) -> None:
    for rng, state in saved:
        rng.bit_generator.state = state


class Server:
    """Micro-batching frontend over a :class:`ModelRegistry`.

    ``max_batch`` caps how many requests one tick drains (the widest
    sweep group a single tick can build); ``max_batch = 1`` degenerates
    to per-request serving, which is exactly the A/B baseline
    ``benchmarks/bench_serving.py`` pairs against.  The batcher sleeps on
    a condition variable between ticks — an idle server burns no CPU.

    Resilience knobs (all optional; defaults preserve the pre-hardening
    behavior except for bounded retry, which is on):

    - ``max_pending`` — queue bound for load shedding (None = unbounded);
    - ``default_deadline_s`` — deadline applied when ``submit`` gives none;
    - ``max_retries`` / ``retry_backoff_s`` — transient-failure retry
      budget and base backoff (exponential, deterministic jitter);
    - ``breaker_threshold`` / ``breaker_reset_s`` — consecutive refit
      failures that trip a per-model circuit breaker, and how long it
      stays open before a half-open probe.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        *,
        max_batch: int = 128,
        max_pending: int | None = None,
        default_deadline_s: float | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.005,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 30.0,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None, got {max_pending}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
        self.registry = registry if registry is not None else ModelRegistry()
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.stats = ServerStats()
        self._queue: list[_Pending] = []
        self._cond = threading.Condition()
        self._closed = False
        self._failure: BaseException | None = None
        self._breakers: dict[ModelKey, _Breaker] = {}
        self._retry_salt = 0  # deterministic jitter counter
        self._thread = threading.Thread(
            target=self._run, name="repro-serving-batcher", daemon=True
        )
        self._thread.start()

    # -- client side -------------------------------------------------------

    def submit(self, model, theta, request, *, deadline_s: float | None = None) -> Future:
        """Enqueue one typed request; returns a future for its result.

        Validation runs here, synchronously — a malformed request raises
        in the caller and never reaches the batcher, so it cannot fail a
        tick it would otherwise share.  So does admission control: a full
        queue raises :class:`ServerOverloadedError` (the request is shed,
        nothing is enqueued).  ``deadline_s`` (or the server default)
        starts counting now; a request still queued when it expires fails
        with :class:`RequestTimeoutError`.
        """
        request.validate(model)
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        pending = _Pending(
            key=ModelKey.of(model, theta),
            model=model,
            theta=theta,
            request=request,
            future=Future(),
            deadline=None if deadline_s is None else time.monotonic() + deadline_s,
        )
        with self._cond:
            if self._closed:
                raise self._closed_error()
            if self.max_pending is not None and len(self._queue) >= self.max_pending:
                self.stats.shed += 1
                raise ServerOverloadedError(
                    f"server queue is full ({self.max_pending} pending); request shed"
                )
            self._queue.append(pending)
            self.stats.submitted += 1
            self._cond.notify()
        return pending.future

    def query(self, model, theta, request, *, deadline_s: float | None = None):
        """Submit and wait: the blocking convenience wrapper."""
        return self.submit(model, theta, request, deadline_s=deadline_s).result()

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: float | None = None) -> None:
        """Stop admissions, drain every queued request, join the batcher."""
        with self._cond:
            self._closed = True
            self._cond.notify()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("serving batcher did not drain in time")

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def failure(self) -> BaseException | None:
        """The exception that killed the batcher, when it died (else None)."""
        return self._failure

    def health(self) -> dict:
        """Operational snapshot: queue depth, breaker states, counters."""
        now = time.monotonic()
        with self._cond:
            depth = len(self._queue)
            breakers = {
                repr(tuple(key.theta)): {
                    "state": br.state(now),
                    "consecutive_failures": br.failures,
                }
                for key, br in self._breakers.items()
            }
        return {
            "closed": self._closed,
            "failure": repr(self._failure) if self._failure is not None else None,
            "queue_depth": depth,
            "max_pending": self.max_pending,
            "max_batch": self.max_batch,
            "breakers": breakers,
            "stats": self.stats.snapshot(),
        }

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- batcher side ------------------------------------------------------

    def _closed_error(self) -> ServerClosedError:
        if self._failure is not None:
            err = ServerClosedError(
                f"server failed and is closed to new requests: {self._failure!r}"
            )
            err.__cause__ = self._failure
            return err
        return ServerClosedError("server is closed to new requests")

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                tick = self._queue[: self.max_batch]
                del self._queue[: self.max_batch]
            try:
                self._serve_tick(tick)
            except BaseException as exc:  # noqa: BLE001 - batcher must not die silently
                self._die(exc, tick)
                return

    def _die(self, exc: BaseException, tick: list) -> None:
        """Unrecoverable batcher failure: fail every pending future, close.

        Reached only by exceptions escaping the tick machinery itself
        (drain, deadline scan, grouping) — per-group failures are isolated
        inside :meth:`_serve_group`.  The contract the satellite fix
        establishes: the daemon thread never dies leaving futures
        unresolved and the server still accepting work.
        """
        with self._cond:
            self._closed = True
            self._failure = exc
            stranded = self._queue[:]
            self._queue.clear()
        for p in tick + stranded:
            if not p.future.done():
                p.future.set_exception(exc)
                self.stats.failed += 1

    def _serve_tick(self, tick: list) -> None:
        self.stats.ticks += 1
        self.stats.max_batch = max(self.stats.max_batch, len(tick))
        # Chaos hook for the tick machinery itself — exercises _die().
        faults.fault_point("serving.tick", lambda: RuntimeError("injected tick fault"))
        live = self._expire(tick)
        groups: dict[ModelKey, list[_Pending]] = {}
        for p in live:
            groups.setdefault(p.key, []).append(p)
        for key, group in groups.items():
            self.stats.batches += 1
            self._serve_group(key, group)

    def _expire(self, pendings: list) -> list:
        """Fail requests whose deadline has passed; return the live rest."""
        now = time.monotonic()
        live = []
        for p in pendings:
            if p.deadline is not None and now > p.deadline:
                if not p.future.done():
                    p.future.set_exception(
                        RequestTimeoutError("request deadline expired before execution")
                    )
                    self.stats.timed_out += 1
                    self.stats.failed += 1
            else:
                live.append(p)
        return live

    def _breaker(self, key: ModelKey) -> _Breaker:
        br = self._breakers.get(key)
        if br is None:
            br = self._breakers[key] = _Breaker(
                threshold=self.breaker_threshold, reset_s=self.breaker_reset_s
            )
        return br

    def _resolve_posterior(self, key: ModelKey, lead: _Pending):
        """Registry lookup guarded by the per-key circuit breaker."""
        br = self._breaker(key)
        now = time.monotonic()
        if not br.allow(now):
            self.stats.breaker_fast_fails += 1
            raise CircuitOpenError(
                f"circuit breaker open for theta {tuple(key.theta)} after "
                f"{br.failures} consecutive refit failures"
            )
        try:
            posterior = self.registry.posterior(lead.model, lead.theta)
        except BaseException:
            if br.record_failure(time.monotonic()):
                self.stats.breaker_trips += 1
            raise
        br.record_success()
        return posterior

    def _fail_group(self, group: list, exc: BaseException) -> None:
        for p in group:
            if not p.future.done():
                p.future.set_exception(exc)
                self.stats.failed += 1

    def _serve_group(self, key: ModelKey, group: list) -> None:
        """Execute one per-model group, with bounded transient retry.

        Safe to retry because ``execute_batch`` is pure given the request
        payloads: per-request rng states are snapshotted before the first
        attempt and restored before every retry, so a retried response is
        bit-identical to what the first attempt would have produced.
        """
        rng_states = _snapshot_rngs(group)
        attempt = 0
        while True:
            group = self._expire(group)  # deadlines keep counting across retries
            if not group:
                return
            try:
                posterior = self._resolve_posterior(key, group[0])
                faults.fault_point("serving.group")
                results = execute_batch(posterior, [p.request for p in group])
            except BaseException as exc:  # noqa: BLE001 - forwarded to callers
                if is_transient(exc) and attempt < self.max_retries:
                    attempt += 1
                    self.stats.retries += 1
                    _restore_rngs(rng_states)
                    self._backoff(attempt)
                    continue
                self._fail_group(group, exc)
                return
            else:
                for p, result in zip(group, results):
                    if not p.future.done():
                        p.future.set_result(result)
                        self.stats.completed += 1
                return

    def _backoff(self, attempt: int) -> None:
        """Exponential backoff with deterministic jitter (no live RNG: the
        sleep schedule, like everything else here, is reproducible)."""
        self._retry_salt += 1
        jitter = 0.5 + (self._retry_salt * 0x9E3779B9 % 1024) / 1024.0
        time.sleep(self.retry_backoff_s * (2.0 ** (attempt - 1)) * jitter)
