"""Request micro-batcher: concurrent queries, one sweep per tick.

The throughput curve of the batched stack is the k-scaling curve of the
stacked-RHS sweeps (`benchmarks/results/multirhs.txt`: ~40x at k = 64) —
but only if concurrent callers' right-hand sides actually share a sweep.
:class:`Server` is the layer that makes that happen: callers
:meth:`~Server.submit` typed requests (:mod:`repro.serving.api`) and get
futures; a background batcher thread drains the queue each tick, groups
the drained requests per ``(model, theta)``, resolves each group's fitted
handle through the :class:`~repro.serving.registry.ModelRegistry`, and
executes the whole group through ONE call to
:func:`~repro.serving.api.execute_batch` — at most one ``solve_stack``
sweep group, one ``solve_lt_stack`` sweep group, and one (cached)
``selected_inverse_diagonal`` per model per tick — then scatters results
into the futures.

Concurrency safety comes from the layers below: the factor's
``SweepWorkspacePool`` leases per-thread buffers, and the lane-quantized
execution core guarantees every response is bit-identical to a direct
``LatentPosterior`` call regardless of batch composition.

Shutdown drains: :meth:`~Server.close` stops admissions, then the batcher
finishes every queued request before the thread exits — no request is
ever dropped with its future unresolved.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.serving.api import execute_batch
from repro.serving.registry import ModelKey, ModelRegistry

__all__ = ["Server", "ServerStats", "ServerClosedError"]


class ServerClosedError(RuntimeError):
    """Raised by :meth:`Server.submit` after :meth:`Server.close`."""


@dataclass
class ServerStats:
    """Monotonic counters over the server's lifetime."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    ticks: int = 0
    batches: int = 0
    max_batch: int = 0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "ticks": self.ticks,
            "batches": self.batches,
            "max_batch": self.max_batch,
        }


@dataclass
class _Pending:
    key: ModelKey
    model: object
    theta: object
    request: object
    future: Future


class Server:
    """Micro-batching frontend over a :class:`ModelRegistry`.

    ``max_batch`` caps how many requests one tick drains (the widest
    sweep group a single tick can build); ``max_batch = 1`` degenerates
    to per-request serving, which is exactly the A/B baseline
    ``benchmarks/bench_serving.py`` pairs against.  The batcher sleeps on
    a condition variable between ticks — an idle server burns no CPU.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        *,
        max_batch: int = 128,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.registry = registry if registry is not None else ModelRegistry()
        self.max_batch = max_batch
        self.stats = ServerStats()
        self._queue: list[_Pending] = []
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serving-batcher", daemon=True
        )
        self._thread.start()

    # -- client side -------------------------------------------------------

    def submit(self, model, theta, request) -> Future:
        """Enqueue one typed request; returns a future for its result.

        Validation runs here, synchronously — a malformed request raises
        in the caller and never reaches the batcher, so it cannot fail a
        tick it would otherwise share.
        """
        request.validate(model)
        pending = _Pending(
            key=ModelKey.of(model, theta),
            model=model,
            theta=theta,
            request=request,
            future=Future(),
        )
        with self._cond:
            if self._closed:
                raise ServerClosedError("server is closed to new requests")
            self._queue.append(pending)
            self.stats.submitted += 1
            self._cond.notify()
        return pending.future

    def query(self, model, theta, request):
        """Submit and wait: the blocking convenience wrapper."""
        return self.submit(model, theta, request).result()

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: float | None = None) -> None:
        """Stop admissions, drain every queued request, join the batcher."""
        with self._cond:
            self._closed = True
            self._cond.notify()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("serving batcher did not drain in time")

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- batcher side ------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                tick = self._queue[: self.max_batch]
                del self._queue[: self.max_batch]
            self._serve_tick(tick)

    def _serve_tick(self, tick: list) -> None:
        self.stats.ticks += 1
        self.stats.max_batch = max(self.stats.max_batch, len(tick))
        groups: dict[ModelKey, list[_Pending]] = {}
        for p in tick:
            groups.setdefault(p.key, []).append(p)
        for group in groups.values():
            self.stats.batches += 1
            try:
                posterior = self.registry.posterior(group[0].model, group[0].theta)
                results = execute_batch(posterior, [p.request for p in group])
            except BaseException as exc:  # noqa: BLE001 - forwarded to callers
                for p in group:
                    p.future.set_exception(exc)
                self.stats.failed += len(group)
            else:
                for p, result in zip(group, results):
                    p.future.set_result(result)
                self.stats.completed += len(group)
