"""Model registry: a byte-budgeted LRU of fitted posterior handles.

Fitting a model at a hyperparameter point is the expensive step of the
serving tier — one assembly plus one BTA factorization — while answering
queries against the resulting :class:`~repro.inla.sampling.LatentPosterior`
costs only sweeps.  The registry therefore keeps fitted handles resident,
keyed by ``(model, theta)``, and bounds their memory with the same
byte-accounting the solver dispatch layer uses
(:func:`repro.backend.memory.posterior_memory_bytes`): when admitting a
handle would exceed the budget, least-recently-used handles are dropped
first.  An evicted entry is not an error — the next query for it refits
transparently (and bit-identically: the fit is deterministic in
``(model, theta)``).

All operations are thread-safe behind one lock, including the fit itself:
two callers racing on the same cold key would otherwise both pay the
factorization.  Hit/miss/eviction counters are exposed via
:attr:`ModelRegistry.stats` so the serving benchmark (and operators) can
see residency behavior.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import faults
from repro.backend.memory import posterior_memory_bytes

__all__ = ["ModelKey", "RegistryStats", "ModelRegistry"]


@dataclass(frozen=True)
class ModelKey:
    """Identity of a fitted posterior: which model object, at which theta.

    Models are identified by object identity — the registry serves
    in-process model instances, it does not deserialize them — and theta
    by exact float values, matching the theta-keyed caches elsewhere in
    the stack (a nudged theta is a different posterior).
    """

    model_id: int
    theta: tuple

    @classmethod
    def of(cls, model, theta) -> "ModelKey":
        return cls(model_id=id(model), theta=tuple(np.asarray(theta, float).tolist()))


@dataclass
class RegistryStats:
    """Monotonic counters over the registry's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def snapshot(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


@dataclass
class _Entry:
    posterior: object
    nbytes: int


def _model_bta_dims(model) -> tuple:
    """BTA dims ``(n, b, a)`` of a model's conditional precision.

    The variable-major joint layout has ``nt`` time blocks of width
    ``nv * ns`` plus the fixed-effects arrow tip.
    """
    n = model.nt
    b = model.nv * model.ns
    a = model.N - n * b
    return n, b, a


def model_bytes(model, *, factors: float = 2.5) -> int:
    """Resident bytes one fitted handle of ``model`` will occupy."""
    n, b, a = _model_bta_dims(model)
    return posterior_memory_bytes(n, b, a, factors=factors)


@dataclass
class ModelRegistry:
    """LRU cache of fitted :class:`LatentPosterior` handles under a byte budget.

    ``budget_bytes = None`` means unbounded (every fit stays resident).
    A budget smaller than a single handle still admits that one handle —
    the registry never refuses to serve, it only bounds how much stays
    warm beyond the entry being used.
    """

    budget_bytes: int | None = None
    solver: object | None = None
    stats: RegistryStats = field(default_factory=RegistryStats)

    def __post_init__(self) -> None:
        if self.budget_bytes is not None and self.budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {self.budget_bytes}")
        self._entries: OrderedDict[ModelKey, _Entry] = OrderedDict()
        self._lock = threading.RLock()

    # -- residency ---------------------------------------------------------

    @property
    def live_bytes(self) -> int:
        """Bytes currently resident across all cached handles."""
        with self._lock:
            return sum(e.nbytes for e in self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ModelKey) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list:
        """Resident keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every resident handle (not counted as evictions)."""
        with self._lock:
            self._entries.clear()

    # -- lookup ------------------------------------------------------------

    def posterior(self, model, theta):
        """The fitted handle for ``(model, theta)`` — cached, or fit now.

        A hit refreshes the entry's recency; a miss fits under the lock
        (so concurrent cold callers pay one factorization, not two),
        admits the handle, then evicts LRU entries until the budget
        holds again.  The entry just admitted is never evicted on its
        own admission.
        """
        from repro.inla.sampling import LatentPosterior

        key = ModelKey.of(model, theta)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry.posterior
            self.stats.misses += 1
            # Chaos hook: a fault here models a refit failure (bad theta,
            # OOM, device loss).  It fires BEFORE any mutation, so a failed
            # fit leaves no half-inserted entry and releases the lock.
            faults.fault_point("serving.refit")
            posterior = LatentPosterior.at(model, theta, solver=self.solver)
            self._entries[key] = _Entry(posterior=posterior, nbytes=model_bytes(model))
            self._evict_over_budget(keep=key)
            return posterior

    def _evict_over_budget(self, *, keep: ModelKey) -> None:
        if self.budget_bytes is None:
            return
        total = sum(e.nbytes for e in self._entries.values())
        while total > self.budget_bytes and len(self._entries) > 1:
            victim = next(iter(self._entries))
            if victim == keep:
                # The protected entry is LRU only when it is alone with
                # one other; rotate it to the back and evict the next.
                self._entries.move_to_end(victim)
                victim = next(iter(self._entries))
            total -= self._entries.pop(victim).nbytes
            self.stats.evictions += 1
