"""Typed query API of the posterior serving tier.

This module is the single query surface over a fitted
:class:`~repro.inla.sampling.LatentPosterior`:

- **requests** — :class:`PredictRequest`, :class:`SampleRequest`,
  :class:`ExceedanceRequest` — are plain validated dataclasses, the shape
  an RPC frontend would deserialize into;
- **results** — :class:`PredictResult`, :class:`SampleResult`,
  :class:`ExceedanceResult` — carry exactly the arrays the historical
  ``LatentPosterior`` methods returned;
- :func:`execute_batch` is the one execution core.  Direct
  ``LatentPosterior.predict/sample/exceedance_probability`` calls are
  thin adapters over a batch of one, and the serving tier's
  micro-batcher (:class:`repro.serving.server.Server`) feeds it whole
  coalesced ticks — so the two paths cannot drift.

Bit-identity contract
---------------------
A request's response is **bit-identical no matter what else rides the
same batch**.  The stacked sweeps make this non-trivial: a ``(k, N)``
panel pass GEMMs against ``(b, k)`` panels, and BLAS accumulation order
depends on the panel width ``k`` — so naively coalescing three 4-row
requests into one 12-wide sweep would produce (1e-16-level) different
bits than serving each alone.  The core therefore quantizes sweep
widths:

- requests narrower than :func:`sweep_lanes` rows share **fixed-width
  lanes**: their rows are concatenated, zero-padded to an exact multiple
  of the lane width, and swept one lane at a time.  For a fixed GEMM
  shape each output column depends only on its own input column, so a
  row's bits are invariant to its lane-mates (and to padding);
- requests at least one lane wide run **solo at exact width** — they are
  never merged with other requests, so a coalesced execution and a
  direct call run the identical sweep (this also keeps wide direct
  calls, e.g. ``sample(6000)``, on today's single-sweep fast path);
- on the reference kernel path (``REPRO_BATCHED=0``) the stacked solvers
  loop per right-hand side, which is row-stable by construction — no
  padding is needed.

Everything outside the factor sweeps (RHS construction, scatters,
per-request epilogues) operates only on a request's own arrays, so it is
composition-invariant trivially.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.backend.array_module import batched_enabled
from repro.backend.protocol import NUMPY_BACKEND

__all__ = [
    "PredictRequest",
    "PredictResult",
    "SampleRequest",
    "SampleResult",
    "ExceedanceRequest",
    "ExceedanceResult",
    "Request",
    "execute_batch",
    "sweep_lanes",
]

#: Default fixed lane width of coalesced sweeps (see module docstring).
#: 32 sits on the flat part of this host's sweep-cost curve: one 32-wide
#: panel pass costs ~2.5x a 1-wide pass while serving up to 32 queries.
DEFAULT_SWEEP_LANES = 32


def sweep_lanes() -> int:
    """Fixed lane width for coalesced sweeps (``REPRO_SERVING_LANES``)."""
    lanes = int(os.environ.get("REPRO_SERVING_LANES", DEFAULT_SWEEP_LANES))
    if lanes < 1:
        raise ValueError(f"REPRO_SERVING_LANES must be >= 1, got {lanes}")
    return lanes


def _resolve_rng(rng, seed):
    return rng if rng is not None else np.random.default_rng(seed)


def _check_rng_seed(rng, seed, *, needed: bool, what: str) -> None:
    if rng is not None and seed is not None:
        raise ValueError(f"pass either rng or seed for {what}, not both")
    if needed and rng is None and seed is None:
        raise ValueError("pass rng when requesting samples")


@dataclass(frozen=True, eq=False)
class SampleRequest:
    """``n_samples`` exact joint draws from ``N(mu, Qc^{-1})``.

    The noise source is per-request (``rng`` for in-process callers,
    ``seed`` for serialized ones), so a draw's bits never depend on which
    other requests share a batch.
    """

    n_samples: int
    rng: np.random.Generator | None = None
    seed: int | None = None

    def validate(self, model) -> None:
        if self.n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        _check_rng_seed(self.rng, self.seed, needed=True, what="a SampleRequest")


@dataclass(frozen=True, eq=False)
class SampleResult:
    """Joint posterior draws, variable-major, shape ``(n_samples, N)``."""

    samples: np.ndarray


@dataclass(frozen=True, eq=False)
class PredictRequest:
    """Posterior-mean prediction of response ``v``'s space-time effect at
    new points, with exact predictive standard deviations (and optional
    joint predictive draws when ``n_samples > 0``)."""

    coords: np.ndarray
    time_idx: np.ndarray
    v: int = 0
    n_samples: int = 0
    rng: np.random.Generator | None = None
    seed: int | None = None

    def validate(self, model) -> None:
        coords = np.asarray(self.coords, dtype=np.float64)
        tidx = np.asarray(self.time_idx)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ValueError(f"coords must be (m, 2), got {coords.shape}")
        if tidx.ndim != 1 or tidx.shape[0] != coords.shape[0]:
            raise ValueError(
                f"time_idx must be ({coords.shape[0]},), got {tidx.shape}"
            )
        if coords.shape[0] < 1:
            raise ValueError("need at least one prediction point")
        if not np.issubdtype(tidx.dtype, np.integer):
            raise ValueError(f"time_idx must be integer, got dtype {tidx.dtype}")
        if tidx.min() < 0 or tidx.max() >= model.nt:
            raise ValueError(
                f"time_idx out of range [0, {model.nt}): "
                f"[{tidx.min()}, {tidx.max()}]"
            )
        if not 0 <= self.v < model.nv:
            raise ValueError(f"response index v={self.v} out of range [0, {model.nv})")
        if self.n_samples < 0:
            raise ValueError("n_samples must be >= 0")
        _check_rng_seed(
            self.rng, self.seed, needed=self.n_samples > 0, what="a PredictRequest"
        )


@dataclass(frozen=True, eq=False)
class PredictResult:
    """Predictive mean and exact sd per point; optional ``(n_samples, m)``
    draws of the predicted functionals."""

    mean: np.ndarray
    sd: np.ndarray
    samples: np.ndarray | None = None

    def as_dict(self) -> dict:
        """The historical ``LatentPosterior.predict`` dict shape."""
        out = {"mean": self.mean, "sd": self.sd}
        if self.samples is not None:
            out["samples"] = self.samples
        return out


@dataclass(frozen=True, eq=False)
class ExceedanceRequest:
    """Marginal ``P(x_j > threshold | y, theta)`` for every latent
    variable.  ``sd`` overrides the selected-inversion marginal standard
    deviations (which are otherwise computed once per factor and cached)."""

    threshold: float
    sd: np.ndarray | None = None

    def validate(self, model) -> None:
        if not np.isfinite(self.threshold):
            raise ValueError(f"threshold must be finite, got {self.threshold}")
        if self.sd is not None:
            sd = np.asarray(self.sd)
            if sd.shape != (model.N,):
                raise ValueError(f"sd must have shape ({model.N},), got {sd.shape}")


@dataclass(frozen=True, eq=False)
class ExceedanceResult:
    """Exceedance probability per latent variable, variable-major ``(N,)``."""

    probability: np.ndarray


#: Union of the request types the execution core accepts.
Request = PredictRequest | SampleRequest | ExceedanceRequest


def _sweep_grouped(factor, stacks: list, sweep, lanes_fn=None) -> list:
    """Run per-request ``(k_i, N)`` stacks through ``sweep`` with
    composition-invariant bits; returns the solved stacks in order.

    ``sweep`` is ``factor.solve_stack`` or ``factor.solve_lt_stack``;
    ``lanes_fn`` optionally the matching ``solve_stack_lanes`` sibling.
    Lane mechanics per the module docstring: solo exact-width sweeps for
    wide stacks, shared zero-padded fixed-width lanes for narrow ones.
    When ``lanes_fn`` is given, every job of the group — the solo wide
    stacks AND the padded narrow chunks, each at the exact width it would
    run solo — goes through ONE lanes call, so a distributed factor pays
    a single collective round for the whole group instead of one per job
    (the bits are unchanged: the lanes contract is per-lane identity).
    """
    if not stacks:
        return []
    ks = [s.shape[0] for s in stacks]
    backend = getattr(factor, "backend", NUMPY_BACKEND)
    if not batched_enabled(factor.batched, backend):
        # Reference path: the stacked solvers loop per RHS (row-stable),
        # so one exact-width call serves the whole group.
        solved = sweep(np.concatenate(stacks, axis=0) if len(stacks) > 1 else stacks[0])
        out, off = [], 0
        for k in ks:
            out.append(solved[off : off + k])
            off += k
        return out
    lanes = sweep_lanes()
    out = [None] * len(stacks)
    narrow = [i for i, k in enumerate(ks) if k < lanes]
    wide = [i for i, k in enumerate(ks) if k >= lanes]
    jobs = [stacks[i] for i in wide]
    chunked = []  # padded fixed-width chunks carrying the narrow rows
    if narrow:
        rows = np.concatenate([stacks[i] for i in narrow], axis=0)
        total = rows.shape[0]
        n_lanes = -(-total // lanes)
        padded = np.zeros((n_lanes * lanes, rows.shape[1]))
        padded[:total] = rows
        chunked = [padded[j * lanes : (j + 1) * lanes] for j in range(n_lanes)]
    if lanes_fn is not None and len(jobs) + len(chunked) > 1:
        solved_jobs = lanes_fn(jobs + chunked)
    else:
        solved_jobs = [sweep(s) for s in jobs + chunked]
    for pos, i in enumerate(wide):
        out[i] = solved_jobs[pos]
    if narrow:
        chunks = solved_jobs[len(wide) :]
        xp = backend.xp
        solved = (chunks[0] if len(chunks) == 1 else xp.concatenate(chunks, axis=0))[:total]
        off = 0
        for i in narrow:
            out[i] = solved[off : off + ks[i]]
            off += ks[i]
    return out


def _draws_from_solved(posterior, solved_z) -> np.ndarray:
    """Variable-major joint draws from solved ``L^{-T} z`` rows.

    The same epilogue ``BTAFactor.sample`` + ``LatentPosterior.sample``
    ran historically: add the permuted mean, unpermute the stack.
    """
    backend = getattr(posterior.factor, "backend", NUMPY_BACKEND)
    x_perm = solved_z + backend.asarray(posterior.mu_perm)[None, :]
    return posterior.model.permutation.unpermute_stack(x_perm)


def execute_batch(posterior, requests: list) -> list:
    """Execute a batch of typed requests against one posterior.

    Coalesces the batch into at most one ``solve_stack`` sweep group
    (predictive variances), one ``solve_lt_stack`` sweep group (all
    sampling noise — joint draws and predictive draws), and one
    ``selected_inverse_diagonal`` (cached on the factor) — then scatters
    per-request results, in request order.  Every response is
    bit-identical to the same request executed alone (see the module
    docstring), which is what lets ``LatentPosterior``'s direct methods
    and the micro-batcher share this core.
    """
    model = posterior.model
    for req in requests:
        if not isinstance(req, (PredictRequest, SampleRequest, ExceedanceRequest)):
            raise TypeError(f"not a serving request: {req!r}")
        req.validate(model)

    factor = posterior.factor
    # -- gather sweep jobs -------------------------------------------------
    # Noise rows (backward L^T sweep): joint-sample requests and the
    # predictive-draw epilogue of predict requests.
    lt_stacks, lt_owner = [], []
    # RHS rows (full solve sweep): predictive-variance stacks.
    solve_stacks, solve_owner = [], []
    designs = {}
    for i, req in enumerate(requests):
        if isinstance(req, SampleRequest):
            z = _resolve_rng(req.rng, req.seed).standard_normal((req.n_samples, factor.N))
            lt_stacks.append(z)
            lt_owner.append(i)
        elif isinstance(req, PredictRequest):
            A = posterior.predictive_design(
                np.asarray(req.coords, dtype=np.float64), np.asarray(req.time_idx), req.v
            )
            designs[i] = A
            # Rows of A* P^T form the (m, N) RHS stack of Qc^{-1} A*^T.
            Ap = A[:, model.permutation.perm.perm]
            solve_stacks.append(np.asarray(Ap.todense()))
            solve_owner.append(i)
            if req.n_samples > 0:
                z = _resolve_rng(req.rng, req.seed).standard_normal(
                    (req.n_samples, factor.N)
                )
                lt_stacks.append(z)
                lt_owner.append(i)

    solved_rhs = dict(
        zip(
            solve_owner,
            _sweep_grouped(
                factor,
                solve_stacks,
                factor.solve_stack,
                getattr(factor, "solve_stack_lanes", None),
            ),
        )
    )
    solved_z = dict(
        zip(
            lt_owner,
            _sweep_grouped(
                factor,
                lt_stacks,
                factor.solve_lt_stack,
                getattr(factor, "solve_lt_stack_lanes", None),
            ),
        )
    )

    # -- scatter per-request epilogues -------------------------------------
    results: list = [None] * len(requests)
    mean = None  # variable-major posterior mean, shared by the epilogues
    marginal_sd = None  # cached-diagonal sd, shared by exceedance requests

    def _mean():
        nonlocal mean
        if mean is None:
            mean = posterior.mean()
        return mean

    for i, req in enumerate(requests):
        if isinstance(req, SampleRequest):
            results[i] = SampleResult(samples=_draws_from_solved(posterior, solved_z[i]))
        elif isinstance(req, PredictRequest):
            A = designs[i]
            pred_mean = np.asarray(A @ _mean()).ravel()
            stack = solve_stacks[solve_owner.index(i)]
            var = np.einsum("mn,mn->m", stack, solved_rhs[i])
            samples = None
            if req.n_samples > 0:
                draws = _draws_from_solved(posterior, solved_z[i])
                samples = draws @ np.asarray(A.todense()).T
            results[i] = PredictResult(
                mean=pred_mean, sd=np.sqrt(np.maximum(var, 0.0)), samples=samples
            )
        else:  # ExceedanceRequest
            sd = req.sd
            if sd is None:
                if marginal_sd is None:
                    var_perm = factor.selected_inverse_diagonal()
                    marginal_sd = np.sqrt(
                        model.permutation.unpermute_vector(var_perm)
                    )
                sd = marginal_sd
            results[i] = ExceedanceResult(
                probability=norm.sf(
                    req.threshold, loc=_mean(), scale=np.maximum(sd, 1e-300)
                )
            )
    return results
