"""Posterior serving tier: fit once, answer millions.

Three layers turn a fitted :class:`~repro.inla.sampling.LatentPosterior`
into served throughput:

- :mod:`repro.serving.api` — the typed query surface
  (:class:`PredictRequest` / :class:`SampleRequest` /
  :class:`ExceedanceRequest` and result dataclasses) plus the one
  batch-execution core both direct calls and the batcher share;
- :mod:`repro.serving.registry` — a byte-budgeted LRU of fitted handles
  (:class:`ModelRegistry`), refitting evicted models transparently;
- :mod:`repro.serving.server` — the request micro-batcher
  (:class:`Server`) that coalesces concurrent queries into one sweep
  group per model per tick.

See the README "Serving" section for usage and measured throughput.
"""

from repro.serving.api import (
    ExceedanceRequest,
    ExceedanceResult,
    PredictRequest,
    PredictResult,
    Request,
    SampleRequest,
    SampleResult,
    execute_batch,
)
from repro.serving.registry import ModelKey, ModelRegistry, RegistryStats
from repro.serving.server import (
    CircuitOpenError,
    RequestTimeoutError,
    Server,
    ServerClosedError,
    ServerOverloadedError,
    ServerStats,
)

__all__ = [
    "PredictRequest",
    "PredictResult",
    "SampleRequest",
    "SampleResult",
    "ExceedanceRequest",
    "ExceedanceResult",
    "Request",
    "execute_batch",
    "ModelKey",
    "ModelRegistry",
    "RegistryStats",
    "Server",
    "ServerClosedError",
    "ServerOverloadedError",
    "RequestTimeoutError",
    "CircuitOpenError",
    "ServerStats",
]
