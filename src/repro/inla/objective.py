"""The INLA objective function (paper Eq. 8).

For a latent Gaussian model with Gaussian observations the objective is
available in closed form at the conditional mean ``mu``::

    fobj(theta) = log p(theta)                         (hyperprior)
                + log l(y | theta, mu)                 (likelihood)
                + 1/2 log|Qp| - 1/2 mu^T Qp mu         (GMRF prior at mu)
                - 1/2 log|Qc|                          (Gaussian approx at
                                                        its own mean)

(the ``n/2 log 2 pi`` constants of the two Gaussian densities cancel).
Each evaluation requires two factorizations (``Qp``, ``Qc``) and one
triangular solve — the quantities strategies S2/S3 parallelize.

Hyperparameter configurations for which a precision matrix is not
positive definite yield ``fobj = -inf`` so the optimizer backtracks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.inla.solvers import SequentialSolver, StructuredSolver
from repro.model.assembler import CoregionalSTModel
from repro.structured.kernels import NotPositiveDefiniteError


@dataclass
class FobjResult:
    """One objective evaluation, with its decomposition (paper Eq. 8 terms)."""

    theta: np.ndarray
    value: float
    log_prior_theta: float = np.nan
    log_likelihood: float = np.nan
    logdet_qp: float = np.nan
    logdet_qc: float = np.nan
    quad_qp: float = np.nan
    mu_perm: np.ndarray | None = None

    @property
    def ok(self) -> bool:
        return np.isfinite(self.value)


def evaluate_fobj(
    model: CoregionalSTModel,
    theta: np.ndarray,
    *,
    solver: StructuredSolver | None = None,
    s2_parallel: bool = False,
    keep_mu: bool = False,
) -> FobjResult:
    """Evaluate ``fobj(theta)`` (one stencil point of strategy S1).

    ``s2_parallel=True`` factorizes ``Qp`` and ``Qc`` concurrently in two
    threads (paper strategy S2 — valid because the Gaussian likelihood
    makes the two matrices independent).
    """
    theta = np.asarray(theta, dtype=np.float64)
    solver = solver or SequentialSolver()
    try:
        sys = model.assemble(theta)
    except (ValueError, FloatingPointError, OverflowError):
        # Line-search probes can wander into exp-overflow territory; treat
        # such configurations as infeasible so BFGS backtracks.
        return FobjResult(theta=theta, value=-np.inf)

    try:
        if s2_parallel:
            with ThreadPoolExecutor(max_workers=2) as pool:
                fut_p = pool.submit(solver.logdet, sys.qp)
                fut_c = pool.submit(solver.logdet_and_solve, sys.qc, sys.rhs)
                logdet_p = fut_p.result()
                logdet_c, mu_perm = fut_c.result()
        else:
            logdet_p = solver.logdet(sys.qp)
            logdet_c, mu_perm = solver.logdet_and_solve(sys.qc, sys.rhs)
    except NotPositiveDefiniteError:
        return FobjResult(theta=theta, value=-np.inf)

    eta = model.linear_predictor(mu_perm)
    log_lik = model.likelihood.logpdf(eta, sys.taus)
    quad = float(mu_perm @ (sys.qp_csr @ mu_perm))
    log_prior_theta = model.priors.logpdf(theta)
    value = log_prior_theta + log_lik + 0.5 * logdet_p - 0.5 * quad - 0.5 * logdet_c
    return FobjResult(
        theta=theta,
        value=float(value),
        log_prior_theta=log_prior_theta,
        log_likelihood=log_lik,
        logdet_qp=logdet_p,
        logdet_qc=logdet_c,
        quad_qp=quad,
        mu_perm=mu_perm if keep_mu else None,
    )
