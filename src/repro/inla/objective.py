"""The INLA objective function (paper Eq. 8).

For a latent Gaussian model with Gaussian observations the objective is
available in closed form at the conditional mean ``mu``::

    fobj(theta) = log p(theta)                         (hyperprior)
                + log l(y | theta, mu)                 (likelihood)
                + 1/2 log|Qp| - 1/2 mu^T Qp mu         (GMRF prior at mu)
                - 1/2 log|Qc|                          (Gaussian approx at
                                                        its own mean)

(the ``n/2 log 2 pi`` constants of the two Gaussian densities cancel).
Each evaluation requires exactly two factorizations — one per precision
matrix (``Qp``, ``Qc``), obtained as handles via ``solver.factorize`` —
and one triangular solve against the ``Qc`` handle; the quantities
strategies S2/S3 parallelize.  The handle keeps ``logdet`` and the
conditional-mean solve on one ``pobtaf`` (asserted by the
factorization-count test in ``tests/inla/test_objective.py``).

Hyperparameter configurations for which a precision matrix is not
positive definite yield ``fobj = -inf`` so the optimizer backtracks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.backend.protocol import backend_for
from repro.inla.solvers import SequentialSolver, StructuredSolver
from repro.model.assembler import (
    AssembledSystem,
    BatchAssembledSystem,
    CoregionalSTModel,
)
from repro.structured.kernels import NotPositiveDefiniteError


@dataclass
class FobjResult:
    """One objective evaluation, with its decomposition (paper Eq. 8 terms)."""

    theta: np.ndarray
    value: float
    log_prior_theta: float = np.nan
    log_likelihood: float = np.nan
    logdet_qp: float = np.nan
    logdet_qc: float = np.nan
    quad_qp: float = np.nan
    mu_perm: np.ndarray | None = None
    #: The Qc factorization handle behind this evaluation, retained only
    #: when requested (``keep_factor=True``) — the evaluator's theta-keyed
    #: LRU keeps it on recent entries so revisits reuse the factor.
    qc_factor: object | None = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return np.isfinite(self.value)


def finish_fobj_result(
    model: CoregionalSTModel,
    theta: np.ndarray,
    sys: AssembledSystem,
    logdet_p: float,
    logdet_c: float,
    mu_perm: np.ndarray,
    *,
    keep_mu: bool = False,
    qc_factor=None,
) -> FobjResult:
    """Assemble Eq. 8 from the solver outputs of one stencil point.

    Shared by the per-theta path below and the theta-batched stencil
    sweep (:meth:`repro.inla.evaluator.FobjEvaluator.eval_batch`): given
    the two log-determinants and the conditional mean, the remaining
    terms — likelihood, prior, and the ``mu^T Qp mu`` quadrature via the
    sparse matvec — are cheap per-theta vector work.
    """
    eta = model.linear_predictor(mu_perm)
    log_lik = model.likelihood.logpdf(eta, sys.taus)
    quad = float(mu_perm @ (sys.qp_csr @ mu_perm))
    log_prior_theta = model.priors.logpdf(theta)
    value = log_prior_theta + log_lik + 0.5 * logdet_p - 0.5 * quad - 0.5 * logdet_c
    return FobjResult(
        theta=theta,
        value=float(value),
        log_prior_theta=log_prior_theta,
        log_likelihood=log_lik,
        logdet_qp=logdet_p,
        logdet_qc=logdet_c,
        quad_qp=quad,
        mu_perm=mu_perm if keep_mu else None,
        qc_factor=qc_factor,
    )


def finish_fobj_results_batch(
    model: CoregionalSTModel,
    thetas: list,
    batch: BatchAssembledSystem,
    logdets_p: np.ndarray,
    logdets_c: np.ndarray,
    mu_stack: np.ndarray,
) -> list:
    """Eq. 8 epilogue for a whole feasible stencil batch, vectorized.

    ``thetas`` are the live-row hyperparameter vectors, the log-determinant
    stacks and ``mu_stack`` the outputs of the two theta-batched sweeps.
    All per-theta vector work — linear predictors, likelihoods,
    ``mu^T Qp mu`` quadratures, hyperpriors — runs as one broadcasted pass
    each, so the batch sweep has no per-theta Python loop left.  On a
    device backend the conditional means and log-determinants cross D2H
    exactly once here (the crossings the transfer model charges per
    stencil batch); values agree with per-point
    :func:`finish_fobj_result` to rounding, not bit-for-bit.
    """
    be = backend_for(mu_stack, logdets_p, logdets_c)
    mu_host = be.to_host(mu_stack)
    ld_p = np.asarray(be.to_host(logdets_p), dtype=np.float64)
    ld_c = np.asarray(be.to_host(logdets_c), dtype=np.float64)

    etas = model.linear_predictor_stack(mu_host)
    log_liks = np.asarray(model.likelihood.logpdf_stack(etas, batch.taus))
    quads = np.asarray(batch.quad_stack(mu_host), dtype=np.float64)
    theta_stack = np.stack([np.asarray(t, dtype=np.float64) for t in thetas])
    log_priors = model.priors.logpdf_stack(theta_stack)
    values = log_priors + log_liks + 0.5 * ld_p - 0.5 * quads - 0.5 * ld_c
    return [
        FobjResult(
            theta=thetas[i],
            value=float(values[i]),
            log_prior_theta=float(log_priors[i]),
            log_likelihood=float(log_liks[i]),
            logdet_qp=float(ld_p[i]),
            logdet_qc=float(ld_c[i]),
            quad_qp=float(quads[i]),
        )
        for i in range(len(thetas))
    ]


def evaluate_fobj(
    model: CoregionalSTModel,
    theta: np.ndarray,
    *,
    solver: StructuredSolver | None = None,
    s2_parallel: bool = False,
    keep_mu: bool = False,
    keep_factor: bool = False,
) -> FobjResult:
    """Evaluate ``fobj(theta)`` (one stencil point of strategy S1).

    ``s2_parallel=True`` factorizes ``Qp`` and ``Qc`` concurrently in two
    threads (paper strategy S2 — valid because the Gaussian likelihood
    makes the two matrices independent).  ``keep_factor=True`` attaches
    the ``Qc`` factorization handle to the result so a caching caller
    (the evaluator's theta-keyed LRU) can serve later consumers at this
    theta without refactorizing.
    """
    theta = np.asarray(theta, dtype=np.float64)
    solver = solver or SequentialSolver()
    try:
        sys = model.assemble(theta)
    except (ValueError, FloatingPointError, OverflowError):
        # Line-search probes can wander into exp-overflow territory; treat
        # such configurations as infeasible so BFGS backtracks.
        return FobjResult(theta=theta, value=-np.inf)

    # One factorization handle per precision matrix: Qp serves only the
    # logdet, but the Qc handle is shared by the logdet *and* the
    # conditional-mean solve (and stays reusable for any further
    # consumer at this theta).  `overwrite=True` reuses the assembled
    # block storage — Qp/Qc are rebuilt every evaluation anyway.
    def factor_qp():
        return solver.factorize(sys.qp, overwrite=True).logdet()

    def factor_qc():
        f = solver.factorize(sys.qc, overwrite=True)
        return f, f.logdet(), f.solve(sys.rhs)

    try:
        if s2_parallel:
            with ThreadPoolExecutor(max_workers=2) as pool:
                fut_p = pool.submit(factor_qp)
                fut_c = pool.submit(factor_qc)
                logdet_p = fut_p.result()
                fc, logdet_c, mu_perm = fut_c.result()
        else:
            logdet_p = factor_qp()
            fc, logdet_c, mu_perm = factor_qc()
    except NotPositiveDefiniteError:
        return FobjResult(theta=theta, value=-np.inf)

    return finish_fobj_result(
        model,
        theta,
        sys,
        logdet_p,
        logdet_c,
        mu_perm,
        keep_mu=keep_mu,
        qc_factor=fc if keep_factor else None,
    )
