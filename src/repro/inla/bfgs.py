"""BFGS optimization of the (negated) INLA objective (paper Eq. 9).

A quasi-Newton method with inverse-Hessian updates and Armijo
backtracking.  Gradients come from the parallel central-difference
stencil (strategy S1); line-search probes are sequential single
evaluations, exactly as in R-INLA / INLA_DIST.  The optimizer *minimizes*
``g(theta) = -fobj(theta)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.inla.evaluator import FobjEvaluator


@dataclass(frozen=True)
class BFGSOptions:
    """Stopping and line-search controls."""

    max_iter: int = 60
    grad_tol: float = 5e-3  # ||grad||_inf below this => converged
    f_rel_tol: float = 1e-9  # relative objective change below this => converged
    fd_step: float = 1e-4  # central-difference step h (paper Eq. 10)
    armijo_c1: float = 1e-4
    backtrack_factor: float = 0.5
    max_backtracks: int = 20
    initial_step: float = 1.0

    def __post_init__(self):
        if self.max_iter < 1 or self.max_backtracks < 1:
            raise ValueError("iteration counts must be positive")
        if not 0 < self.backtrack_factor < 1:
            raise ValueError("backtrack factor must be in (0, 1)")


@dataclass
class BFGSResult:
    """Optimization outcome."""

    theta: np.ndarray
    fobj: float  # value of fobj (not the negated objective) at the optimum
    n_iterations: int
    converged: bool
    message: str
    trace: list = field(default_factory=list)  # (iter, fobj, ||grad||_inf)


def bfgs_minimize(
    evaluator: FobjEvaluator,
    theta0: np.ndarray,
    options: BFGSOptions | None = None,
) -> BFGSResult:
    """Find the mode of ``fobj`` starting from ``theta0``."""
    opts = options or BFGSOptions()
    theta = np.array(theta0, dtype=np.float64)
    d = theta.size

    f0, grad_f, _ = evaluator.value_and_gradient(theta, h=opts.fd_step)
    if not np.isfinite(f0):
        raise ValueError("objective is not finite at the starting point")
    g = -f0
    grad = -grad_f
    H = np.eye(d)  # inverse-Hessian approximation
    trace = [(0, f0, float(np.abs(grad).max()))]

    for it in range(1, opts.max_iter + 1):
        gnorm = float(np.abs(grad).max())
        if gnorm < opts.grad_tol:
            return BFGSResult(
                theta, -g, it - 1, True, f"gradient below tolerance ({gnorm:.2e})", trace
            )

        p = -H @ grad
        slope = float(grad @ p)
        if slope >= 0:
            # Reset a corrupted curvature estimate (can happen with noisy
            # FD gradients); fall back to steepest descent.
            H = np.eye(d)
            p = -grad
            slope = float(grad @ p)

        # -- Armijo backtracking ------------------------------------------
        def line_search(direction, slope_d):
            step = opts.initial_step
            for _ in range(opts.max_backtracks):
                cand = theta + step * direction
                res = evaluator(cand)
                if np.isfinite(res.value) and -res.value <= g + opts.armijo_c1 * step * slope_d:
                    return cand, -res.value
                step *= opts.backtrack_factor
            return None, None

        theta_new, g_new = line_search(p, slope)
        if theta_new is None and not np.allclose(p, -grad):
            # The quasi-Newton direction can be poisoned by finite-difference
            # noise; reset the curvature estimate and retry along the
            # steepest descent direction before giving up.
            H = np.eye(d)
            p = -grad
            slope = float(grad @ p)
            theta_new, g_new = line_search(p, slope)
        if theta_new is None:
            return BFGSResult(theta, -g, it, False, "line search failed", trace)

        f_new, grad_f_new, _ = evaluator.value_and_gradient(theta_new, h=opts.fd_step)
        grad_new = -grad_f_new

        # -- BFGS inverse-Hessian update ------------------------------------
        s = theta_new - theta
        yv = grad_new - grad
        sy = float(s @ yv)
        if sy > 1e-12 * float(np.linalg.norm(s) * np.linalg.norm(yv) + 1e-300):
            rho = 1.0 / sy
            I = np.eye(d)
            V = I - rho * np.outer(s, yv)
            H = V @ H @ V.T + rho * np.outer(s, s)

        rel_impr = abs(g - g_new) / max(abs(g), 1.0)
        theta, g, grad = theta_new, g_new, grad_new
        trace.append((it, -g, float(np.abs(grad).max())))
        if rel_impr < opts.f_rel_tol:
            return BFGSResult(theta, -g, it, True, f"objective stalled (rel {rel_impr:.2e})", trace)

    return BFGSResult(theta, -g, opts.max_iter, False, "iteration limit reached", trace)
