"""Structured-solver dispatch (sequential vs. distributed S3 path).

A :class:`StructuredSolver` performs the three bottleneck operations on a
BTA matrix.  :class:`SequentialSolver` calls the single-device kernels;
:class:`DistributedSolver` executes the full nested-dissection pipeline
over ``P`` SPMD thread-ranks (paper strategy S3), exactly as the MPI+NCCL
version would, including the reduced-system collectives.

``select_solver`` applies the paper's dispatch rule (Sec. V-D): stay
sequential while the densified matrix fits on one device, otherwise use
the smallest ``P`` that makes each partition fit.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.backend.device import Device, default_device
from repro.backend.memory import bta_memory_bytes, min_partitions
from repro.comm import run_spmd
from repro.structured.bta import BTAMatrix
from repro.structured.d_pobtaf import d_pobtaf, partition_matrix
from repro.structured.d_pobtas import d_pobtas
from repro.structured.d_pobtasi import d_pobtasi
from repro.structured.kernels import NotPositiveDefiniteError
from repro.structured.multirhs import as_rhs_stack, d_pobtas_stack, pobtas_stack
from repro.structured.pobtaf import pobtaf
from repro.structured.pobtas import pobtas
from repro.structured.pobtasi import pobtasi, pobtasi_with_solve


def _run_spmd_spd(P, fn):
    """``run_spmd`` that surfaces per-rank positive-definiteness failures.

    An infeasible hyperparameter configuration makes a rank's Cholesky
    fail; the objective layer must see ``NotPositiveDefiniteError`` (so
    the optimizer backtracks) rather than a generic SPMD error.
    """
    try:
        return run_spmd(P, fn)
    except RuntimeError as exc:
        cause = exc.__cause__
        while cause is not None:
            if isinstance(cause, NotPositiveDefiniteError):
                raise NotPositiveDefiniteError(str(cause)) from exc
            cause = cause.__cause__
        raise


class StructuredSolver(abc.ABC):
    """The three INLA bottleneck operations on one BTA matrix."""

    @abc.abstractmethod
    def logdet(self, A: BTAMatrix) -> float:
        """Cholesky factorization, returning ``log det A``."""

    @abc.abstractmethod
    def logdet_and_solve(self, A: BTAMatrix, rhs: np.ndarray) -> tuple:
        """Factorize and solve ``A x = rhs``; returns ``(logdet, x)``."""

    @abc.abstractmethod
    def selected_inverse_diagonal(self, A: BTAMatrix) -> np.ndarray:
        """Diagonal of ``A^{-1}`` via selected inversion."""

    # -- stacked multi-RHS operations --------------------------------------
    #
    # Concrete (not abstract) so exotic solver implementations keep working;
    # subclasses override where a fused / stacked kernel exists.

    def solve_stack(self, A: BTAMatrix, rhs_stack: np.ndarray) -> tuple:
        """Factorize once and solve a row-major ``(k, N)`` RHS stack.

        Returns ``(logdet, x_stack)`` with ``x_stack`` row-major like the
        input — all ``k`` right-hand sides ride one loop-carried pass.
        """
        rhs_stack = np.asarray(rhs_stack, dtype=np.float64)
        ld, x = self.logdet_and_solve(A, np.ascontiguousarray(rhs_stack.T))
        return ld, np.ascontiguousarray(x.T)

    def solve_and_selected_inverse_diagonal(self, A: BTAMatrix, rhs: np.ndarray) -> tuple:
        """Solve *and* marginal variances from one pipeline.

        Returns ``(logdet, x, var)``.  The generic fallback runs the two
        operations separately (two factorizations); the sequential and
        distributed solvers override it to factorize exactly once.
        """
        ld, x = self.logdet_and_solve(A.copy(), rhs)
        var = self.selected_inverse_diagonal(A)
        return ld, x, var


class SequentialSolver(StructuredSolver):
    """Single-device BTA kernels (the INLA_DIST-style solver).

    ``batched=None`` (default) follows the ``REPRO_BATCHED`` environment
    switch; True/False pin the stacked or per-block kernel path.
    """

    def __init__(self, *, batched: bool | None = None):
        self.batched = batched

    def logdet(self, A: BTAMatrix) -> float:
        return pobtaf(A, overwrite=True, batched=self.batched).logdet(
            batched=self.batched
        )

    def logdet_and_solve(self, A: BTAMatrix, rhs: np.ndarray) -> tuple:
        chol = pobtaf(A, overwrite=True, batched=self.batched)
        return chol.logdet(batched=self.batched), pobtas(
            chol, rhs, batched=self.batched
        )

    def selected_inverse_diagonal(self, A: BTAMatrix) -> np.ndarray:
        chol = pobtaf(A, overwrite=True, batched=self.batched)
        return pobtasi(chol, batched=self.batched).diagonal()

    def solve_stack(self, A: BTAMatrix, rhs_stack: np.ndarray) -> tuple:
        chol = pobtaf(A, overwrite=True, batched=self.batched)
        return chol.logdet(batched=self.batched), pobtas_stack(
            chol, rhs_stack, batched=self.batched
        )

    def solve_and_selected_inverse_diagonal(self, A: BTAMatrix, rhs: np.ndarray) -> tuple:
        """One factorization for mean *and* variances (fused backward pass)."""
        chol = pobtaf(A, overwrite=True, batched=self.batched)
        ld = chol.logdet(batched=self.batched)
        X, x = pobtasi_with_solve(chol, rhs, batched=self.batched)
        return ld, x, X.diagonal()


class DistributedSolver(StructuredSolver):
    """Time-domain distributed solver over ``P`` SPMD ranks (strategy S3).

    Each public call launches the collective pipeline on ``P``
    thread-ranks: slice -> ``d_pobtaf`` -> (``d_pobtas`` | ``d_pobtasi``)
    -> gather.  The load-balancing factor ``lb`` gives partition 0 extra
    blocks (paper Fig. 5 uses 1.6).
    """

    def __init__(self, P: int, *, lb: float = 1.6, batched: bool | None = None):
        if P < 1:
            raise ValueError(f"P must be >= 1, got {P}")
        self.P = P
        self.lb = lb
        self.batched = batched

    def _nparts(self, A: BTAMatrix) -> int:
        # Cannot split n blocks into more than floor(n / 2) + 1 partitions
        # (later partitions need two boundary blocks).
        return max(1, min(self.P, (A.n - 1) // 2 + 1 if A.n > 1 else 1))

    def logdet(self, A: BTAMatrix) -> float:
        P = self._nparts(A)
        if P == 1:
            return SequentialSolver(batched=self.batched).logdet(A)
        slices = partition_matrix(A, P, lb=self.lb)

        def rank_fn(comm):
            f = d_pobtaf(slices[comm.Get_rank()], comm, batched=self.batched)
            return f.logdet(comm, batched=self.batched)

        return _run_spmd_spd(P, rank_fn)[0]

    def logdet_and_solve(self, A: BTAMatrix, rhs: np.ndarray) -> tuple:
        P = self._nparts(A)
        if P == 1:
            return SequentialSolver(batched=self.batched).logdet_and_solve(A, rhs)
        slices = partition_matrix(A, P, lb=self.lb)
        rhs = np.asarray(rhs, dtype=np.float64)
        b, n = A.b, A.n

        def rank_fn(comm):
            sl = slices[comm.Get_rank()]
            f = d_pobtaf(sl, comm, batched=self.batched)
            ld = f.logdet(comm, batched=self.batched)
            xl, xt = d_pobtas(
                f,
                rhs[sl.part.start * b : sl.part.stop * b],
                rhs[n * b :],
                comm,
                batched=self.batched,
            )
            return ld, xl, xt

        out = _run_spmd_spd(P, rank_fn)
        x = np.concatenate([o[1] for o in out] + [out[0][2]])
        return out[0][0], x

    def selected_inverse_diagonal(self, A: BTAMatrix) -> np.ndarray:
        P = self._nparts(A)
        if P == 1:
            return SequentialSolver(batched=self.batched).selected_inverse_diagonal(A)
        slices = partition_matrix(A, P, lb=self.lb)

        def rank_fn(comm):
            f = d_pobtaf(slices[comm.Get_rank()], comm, batched=self.batched)
            xi = d_pobtasi(f, batched=self.batched)
            return np.diagonal(xi.diag, axis1=1, axis2=2).ravel(), np.diagonal(xi.tip)

        out = _run_spmd_spd(P, rank_fn)
        return np.concatenate([o[0] for o in out] + [out[0][1]])

    def solve_stack(self, A: BTAMatrix, rhs_stack: np.ndarray) -> tuple:
        """Distributed stacked solve: one nested-dissection pipeline — and
        one Allreduce/Allgather round — for the whole ``(k, N)`` stack."""
        P = self._nparts(A)
        if P == 1:
            return SequentialSolver(batched=self.batched).solve_stack(A, rhs_stack)
        slices = partition_matrix(A, P, lb=self.lb)
        # Same normalization contract as the sequential path: a 1-D rhs is
        # a k=1 stack, squeezed back on return.
        stack, squeeze = as_rhs_stack(rhs_stack, A.N)
        b, n = A.b, A.n

        def rank_fn(comm):
            sl = slices[comm.Get_rank()]
            f = d_pobtaf(sl, comm, batched=self.batched)
            ld = f.logdet(comm, batched=self.batched)
            xl, xt = d_pobtas_stack(
                f,
                stack[:, sl.part.start * b : sl.part.stop * b],
                stack[:, n * b :],
                comm,
                batched=self.batched,
            )
            return ld, xl, xt

        out = _run_spmd_spd(P, rank_fn)
        x = np.concatenate([o[1] for o in out] + [out[0][2]], axis=1)
        return out[0][0], (x[0] if squeeze else x)

    def solve_and_selected_inverse_diagonal(self, A: BTAMatrix, rhs: np.ndarray) -> tuple:
        """One distributed factorization feeding both the solve and the
        selected inversion (historically two full pipelines)."""
        P = self._nparts(A)
        if P == 1:
            return SequentialSolver(batched=self.batched).solve_and_selected_inverse_diagonal(
                A, rhs
            )
        slices = partition_matrix(A, P, lb=self.lb)
        rhs = np.asarray(rhs, dtype=np.float64)
        b, n = A.b, A.n

        def rank_fn(comm):
            sl = slices[comm.Get_rank()]
            f = d_pobtaf(sl, comm, batched=self.batched)
            ld = f.logdet(comm, batched=self.batched)
            xl, xt = d_pobtas(
                f,
                rhs[sl.part.start * b : sl.part.stop * b],
                rhs[n * b :],
                comm,
                batched=self.batched,
            )
            xi = d_pobtasi(f, batched=self.batched)
            return ld, xl, xt, np.diagonal(xi.diag, axis1=1, axis2=2).ravel(), np.diagonal(xi.tip)

        out = _run_spmd_spd(P, rank_fn)
        x = np.concatenate([o[1] for o in out] + [out[0][2]])
        var = np.concatenate([o[3] for o in out] + [out[0][4]])
        return out[0][0], x, var


#: Storage multiplier per INLA workload type (see
#: :func:`repro.backend.memory.min_partitions`).  Factorize-only sweeps run
#: in place, but the default batched path additionally caches the stacked
#: triangular inverses ``L[i,i]^{-1}`` (``n b^2`` doubles, ~0.5x of the
#: BTA bytes) that the sweeps GEMM against — hence the extra 0.5 on every
#: workload.  The objective's logdet+solve adds only O(N k) RHS storage on
#: top; selected inversion (and the fused mean+variances pass behind the
#: marginals) further keeps a full BTA workspace for the inverse blocks.
WORKLOAD_FACTORS = {
    "logdet": 1.5,
    "objective": 1.5,
    "solve": 1.5,
    "sampling": 1.5,
    "selected_inversion": 2.5,
    "marginals": 2.5,
}


def select_solver(
    A_shape,
    *,
    device: Device | None = None,
    max_ranks: int = 16,
    lb: float = 1.6,
    factors: int | None = None,
    workload: str | None = None,
    batched: bool | None = None,
) -> StructuredSolver:
    """Paper Sec. V-D dispatch: sequential while the block-dense matrix
    fits on one device, otherwise the smallest feasible S3 partitioning.

    ``workload`` names the INLA operation the solver is selected for (a
    key of :data:`WORKLOAD_FACTORS`); it resolves the storage multiplier
    ``factors`` (see :func:`repro.backend.memory.min_partitions`) from the
    workload's actual peak footprint: the objective's factorize-in-place
    logdet/solve sweeps need ``factors=1.5`` (in-place factor + cached
    inverse stack), selected inversion additionally keeps a full BTA
    workspace (``factors=2.5``) — the same shape can be sequential for
    the former and partitioned for the latter.  An explicit ``factors``
    overrides; with neither given, the conservative ``factors=2`` is
    assumed.
    """
    if factors is None:
        if workload is not None:
            try:
                factors = WORKLOAD_FACTORS[workload]
            except KeyError:
                raise ValueError(
                    f"unknown workload {workload!r}; expected one of "
                    f"{sorted(WORKLOAD_FACTORS)}"
                ) from None
        else:
            factors = 2
    device = device or default_device()
    n, b, a = A_shape.n, A_shape.b, A_shape.a
    if device.fits(bta_memory_bytes(n, b, a, factors=factors)):
        return SequentialSolver(batched=batched)
    P = min(min_partitions(n, b, a, device, factors=factors), max_ranks)
    return DistributedSolver(P, lb=lb, batched=batched)
