"""Structured-solver dispatch (sequential vs. distributed S3 path).

A :class:`StructuredSolver` produces **factorization handles**: the
primary entry point is :meth:`StructuredSolver.factorize`, which runs one
``pobtaf`` (or one collective ``d_pobtaf`` pipeline) and returns a
:class:`~repro.structured.factor.BTAFactor` /
:class:`~repro.structured.factor.DistributedBTAFactor` whose methods —
``logdet``, ``solve``, ``solve_stack``, ``solve_lt_stack``,
``selected_inverse_diagonal``, ``sample`` — all reuse that single
factorization.  This is the paper's amortization pattern: DALIA computes
the objective, the conditional mean, the Takahashi variances *and*
posterior draws from one Cholesky per precision matrix.

The historical one-shot methods (``logdet``, ``logdet_and_solve``,
``selected_inverse_diagonal``, ``solve_stack``, ``solve_lt_stack``,
``solve_and_selected_inverse_diagonal``) remain as thin
factorize-then-call wrappers with bit-identical results, but each call
now emits :class:`OneShotDeprecationWarning`: every call factorizes from
scratch, which is exactly the redundancy the handle API removes — see
the migration notes in ``structured/README.md``.  The repo's own test
configuration escalates the warning to an error, so no in-repo hot path
can regress onto the one-shot surface.

:class:`SequentialSolver` calls the single-device kernels;
:class:`DistributedSolver` executes the full nested-dissection pipeline
over ``P`` SPMD thread-ranks (paper strategy S3), exactly as the MPI+NCCL
version would, including the reduced-system collectives.

``select_solver`` applies the paper's dispatch rule (Sec. V-D): stay
sequential while the densified matrix fits on one device, otherwise use
the smallest ``P`` that makes each partition fit.
"""

from __future__ import annotations

import abc
import warnings

import numpy as np

from repro.backend.device import Device, default_device
from repro.backend.memory import bta_memory_bytes, min_partitions
from repro.structured.bta import BTAMatrix
from repro.structured.factor import (
    BTAFactor,
    DistributedBTAFactor,
    _run_spmd_spd,
    d_factorize,
    factorize,
)

__all__ = [
    "StructuredSolver",
    "SequentialSolver",
    "DistributedSolver",
    "OneShotDeprecationWarning",
    "WORKLOAD_FACTORS",
    "select_solver",
]


class OneShotDeprecationWarning(DeprecationWarning):
    """A legacy one-shot :class:`StructuredSolver` wrapper was called.

    Dedicated subclass so the test suite can escalate exactly these
    warnings to errors (``filterwarnings`` in ``pyproject.toml``) without
    touching unrelated ``DeprecationWarning`` traffic from dependencies.
    """


def _warn_one_shot(name: str, replacement: str) -> None:
    warnings.warn(
        f"StructuredSolver.{name} is deprecated: it factorizes from scratch "
        f"on every call; use {replacement} on a factorization handle instead",
        OneShotDeprecationWarning,
        stacklevel=3,
    )

# Re-exported for the historical import path (the helper moved next to
# the handles it guards).
_run_spmd_spd = _run_spmd_spd


class StructuredSolver(abc.ABC):
    """Factory of factorization handles for one BTA matrix.

    Subclasses implement :meth:`factorize`; every other operation is
    derived from the handle.  The one-shot wrappers below keep the
    legacy stateless surface alive (bit-identical results) but pay one
    full factorization per call — prefer holding the handle.
    """

    @abc.abstractmethod
    def factorize(self, A: BTAMatrix, *, overwrite: bool = False):
        """Factorize ``A`` once, returning a reusable handle.

        ``overwrite=True`` lets the sequential path reuse ``A``'s storage
        for the factor (the caller's matrix is destroyed) — the
        memory-lean mode of the INLA objective.
        """

    # -- legacy one-shot surface (deprecated thin wrappers) -----------------

    def logdet(self, A: BTAMatrix) -> float:
        """``log det A``.  Deprecated: ``factorize(A).logdet()``.

        Note the factor reuses ``A``'s storage (the historical in-place
        contract of the one-shot calls): ``A`` is destroyed.
        """
        _warn_one_shot("logdet", "factorize(A).logdet()")
        return self.factorize(A, overwrite=True).logdet()

    def logdet_and_solve(self, A: BTAMatrix, rhs: np.ndarray) -> tuple:
        """``(logdet, x)``.  Deprecated: hold the handle instead."""
        _warn_one_shot("logdet_and_solve", "logdet() and solve(rhs)")
        f = self.factorize(A, overwrite=True)
        return f.logdet(), f.solve(rhs)

    def selected_inverse_diagonal(self, A: BTAMatrix) -> np.ndarray:
        """Diagonal of ``A^{-1}``.  Deprecated: use the handle."""
        _warn_one_shot("selected_inverse_diagonal", "selected_inverse_diagonal()")
        return self.factorize(A, overwrite=True).selected_inverse_diagonal()

    def solve_stack(self, A: BTAMatrix, rhs_stack: np.ndarray) -> tuple:
        """``(logdet, x_stack)`` for a row-major ``(k, N)`` RHS stack.

        Deprecated: ``f = factorize(A)`` then ``f.solve_stack(...)`` —
        the handle amortizes the factorization over further stacks.
        """
        _warn_one_shot("solve_stack", "logdet() and solve_stack(rhs_stack)")
        f = self.factorize(A, overwrite=True)
        return f.logdet(), f.solve_stack(rhs_stack)

    def solve_lt_stack(self, A: BTAMatrix, rhs_stack: np.ndarray) -> np.ndarray:
        """Backward-only ``L^T`` solve of a ``(k, N)`` stack (sampling).

        Deprecated: use the handle; repeated sampling from one
        factorization is the whole point of ``BTAFactor.sample``.
        """
        _warn_one_shot("solve_lt_stack", "solve_lt_stack(rhs_stack)")
        return self.factorize(A, overwrite=True).solve_lt_stack(rhs_stack)

    def solve_and_selected_inverse_diagonal(self, A: BTAMatrix, rhs: np.ndarray) -> tuple:
        """``(logdet, x, var)`` from one factorization (fused backward pass).

        Deprecated: ``f.solve_and_selected_inverse_diagonal(rhs)`` on the
        handle.
        """
        _warn_one_shot(
            "solve_and_selected_inverse_diagonal",
            "solve_and_selected_inverse_diagonal(rhs)",
        )
        f = self.factorize(A, overwrite=True)
        ld = f.logdet()
        x, var = f.solve_and_selected_inverse_diagonal(rhs)
        return ld, x, var


class SequentialSolver(StructuredSolver):
    """Single-device BTA kernels (the INLA_DIST-style solver).

    ``batched=None`` (default) follows the ``REPRO_BATCHED`` environment
    switch; True/False pin the stacked or per-block kernel path.
    """

    def __init__(self, *, batched: bool | None = None):
        self.batched = batched

    def factorize(self, A: BTAMatrix, *, overwrite: bool = False) -> BTAFactor:
        return factorize(A, overwrite=overwrite, batched=self.batched)


class DistributedSolver(StructuredSolver):
    """Time-domain distributed solver over ``P`` SPMD ranks (strategy S3).

    ``factorize`` launches the collective pipeline on ``P`` thread-ranks
    (slice -> ``d_pobtaf`` -> gather) and returns a
    :class:`DistributedBTAFactor` retaining every rank's factors; each
    handle method then costs one collective round.  The load-balancing
    factor ``lb`` gives partition 0 extra blocks (paper Fig. 5 uses 1.6).
    """

    def __init__(self, P: int, *, lb: float = 1.6, batched: bool | None = None):
        if P < 1:
            raise ValueError(f"P must be >= 1, got {P}")
        self.P = P
        self.lb = lb
        self.batched = batched

    def _nparts(self, A: BTAMatrix) -> int:
        # Cannot split n blocks into more than floor(n / 2) + 1 partitions
        # (later partitions need two boundary blocks).
        return max(1, min(self.P, (A.n - 1) // 2 + 1 if A.n > 1 else 1))

    def factorize(
        self, A: BTAMatrix, *, overwrite: bool = False
    ) -> BTAFactor | DistributedBTAFactor:
        """One ``d_pobtaf`` collective; falls back to the sequential
        handle when the matrix is too small to split (``P`` clamps to 1).

        ``overwrite`` is accepted for interface compatibility; the
        distributed path always slices a copy.
        """
        P = self._nparts(A)
        if P == 1:
            return factorize(A, overwrite=overwrite, batched=self.batched)
        return d_factorize(A, P, lb=self.lb, batched=self.batched)


#: Storage multiplier per INLA workload type (see
#: :func:`repro.backend.memory.min_partitions`).  Factorize-only sweeps run
#: in place, but the default batched path additionally caches the stacked
#: triangular inverses ``L[i,i]^{-1}`` (``n b^2`` doubles, ~0.5x of the
#: BTA bytes) that the sweeps GEMM against — hence the extra 0.5 on every
#: workload.  The objective's logdet+solve adds only O(N k) RHS storage on
#: top; selected inversion (and the fused mean+variances pass behind the
#: marginals) further keeps a full BTA workspace for the inverse blocks.
WORKLOAD_FACTORS = {
    "logdet": 1.5,
    "objective": 1.5,
    "solve": 1.5,
    "sampling": 1.5,
    "selected_inversion": 2.5,
    "marginals": 2.5,
}


def select_solver(
    A_shape,
    *,
    device: Device | None = None,
    max_ranks: int = 16,
    lb: float = 1.6,
    factors: int | None = None,
    workload: str | None = None,
    batched: bool | None = None,
) -> StructuredSolver:
    """Paper Sec. V-D dispatch: sequential while the block-dense matrix
    fits on one device, otherwise the smallest feasible S3 partitioning.

    ``workload`` names the INLA operation the solver is selected for (a
    key of :data:`WORKLOAD_FACTORS`); it resolves the storage multiplier
    ``factors`` (see :func:`repro.backend.memory.min_partitions`) from the
    workload's actual peak footprint: the objective's factorize-in-place
    logdet/solve sweeps need ``factors=1.5`` (in-place factor + cached
    inverse stack), selected inversion additionally keeps a full BTA
    workspace (``factors=2.5``) — the same shape can be sequential for
    the former and partitioned for the latter.  An explicit ``factors``
    overrides; with neither given, the conservative ``factors=2`` is
    assumed.
    """
    if factors is None:
        if workload is not None:
            try:
                factors = WORKLOAD_FACTORS[workload]
            except KeyError:
                raise ValueError(
                    f"unknown workload {workload!r}; expected one of "
                    f"{sorted(WORKLOAD_FACTORS)}"
                ) from None
        else:
            factors = 2
    device = device or default_device()
    n, b, a = A_shape.n, A_shape.b, A_shape.a
    if device.fits(bta_memory_bytes(n, b, a, factors=factors)):
        return SequentialSolver(batched=batched)
    P = min(min_partitions(n, b, a, device, factors=factors), max_ranks)
    return DistributedSolver(P, lb=lb, batched=batched)
