"""Scenario-grid runner: many model x likelihood cells in shared sweeps.

A calibration or sensitivity study evaluates a *grid* of small scenarios
— different meshes, different observation models, different fixed
hyperparameters.  Each cell alone is too small to saturate the batched
kernels, but cells whose models share a BTA block shape are, to the
solver, indistinguishable from many thetas of one model: the lockstep
Newton engine of :mod:`repro.inla.nongaussian` only ever sees per-lane
value vectors scattered into rows of one :class:`~repro.structured.bta.BTAStack`.

This module exploits that: scenarios are grouped by
``model.permutation.bta_shape``, each group runs its inner Newton loops
in lockstep — per-lane curvature/gather phases (cheap, heterogeneous)
feeding ONE ``factorize_batch`` + ``solve_each`` sweep per iteration
(expensive, homogeneous) — with the same convergence-mask / serial-NPD
-fallback discipline as the single-model engine.  Groups of one, and all
groups under ``REPRO_BATCHED=0``, take the serial per-cell path, which
is also the reference the grid results are tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.backend.protocol import get_backend
from repro.inla.nongaussian import (
    _line_search,
    _NewtonKernel,
    _prior_values_single,
    _serial_newton,
)
from repro.inla.objective import FobjResult
from repro.model.assembler import AssemblyWorkspace, CoregionalSTModel
from repro.structured.bta import BTAStack
from repro.structured.factor import factorize
from repro.structured.kernels import NotPositiveDefiniteError
from repro.structured.multifactor import factorize_batch


@dataclass(frozen=True)
class Scenario:
    """One (model, likelihood, theta) cell of a scenario grid."""

    name: str
    model: CoregionalSTModel
    likelihood: object
    theta: np.ndarray


@dataclass
class ScenarioResult:
    """Per-cell output: the objective plus the inner-loop diagnostics."""

    name: str
    result: FobjResult
    x_mode: np.ndarray | None  # variable-major conditional mode
    n_newton: int
    converged: bool

    @property
    def ok(self) -> bool:
        return np.isfinite(self.result.value)


@dataclass
class _Lane:
    index: int  # position in the caller's scenario list
    kern: _NewtonKernel
    qp: np.ndarray  # (1, nnz_p) prior values
    theta: np.ndarray
    eta: np.ndarray = field(default=None)  # (1, m) current predictor


def _scatter_row(scatter, data: np.ndarray, stack: BTAStack, row: int) -> None:
    """Scatter one lane's ``(1, nnz)`` values into row ``row`` of a stack.

    Contiguous row views keep the write zero-copy on every backend (the
    mock/CuPy arrays slice like NumPy); ``scatter_stacks`` zero-fills the
    row first, so heterogeneous patterns cannot leak between lanes.
    """
    s = slice(row, row + 1)
    scatter.scatter_stacks(data, stack.diag[s], stack.lower[s], stack.arrow[s], stack.tip[s])


def _epilogue(model, lik, theta, qp_values, x_perm, logdet_p, logdet_qc, factor) -> FobjResult:
    """Assemble ``fobj`` from a finished lane (the t=1 epilogue)."""
    x_stack = x_perm[None, :]
    eta = model.linear_predictor_stack(x_stack)
    log_lik = float(lik.logpdf_stack(eta)[0])
    quad = float(model.plan.qp_quad_stack(qp_values, x_stack)[0])
    lpt = float(model.priors.logpdf_stack(theta[None, :])[0])
    value = lpt + log_lik + 0.5 * logdet_p - 0.5 * quad - 0.5 * logdet_qc
    return FobjResult(
        theta=theta,
        value=float(value),
        log_prior_theta=lpt,
        log_likelihood=log_lik,
        logdet_qp=float(logdet_p),
        logdet_qc=float(logdet_qc),
        quad_qp=quad,
        mu_perm=x_perm,
        qc_factor=factor,
    )


def _run_serial(sc: Scenario, max_newton: int, tol: float) -> ScenarioResult:
    """Reference per-cell path (also the ``REPRO_BATCHED=0`` route)."""
    model, lik = sc.model, sc.likelihood
    theta = np.asarray(sc.theta, dtype=np.float64)
    try:
        qp_values = _prior_values_single(model, theta)
    except (ValueError, FloatingPointError, OverflowError):
        return ScenarioResult(sc.name, FobjResult(theta=theta, value=-np.inf), None, 0, False)
    try:
        logdet_p = float(
            factorize(model.plan.scatter_p.scatter(qp_values[0]), overwrite=True).logdet()
        )
        x_perm, logdet_qc, n_it, conv, factor = _serial_newton(
            model, lik, qp_values, max_newton=max_newton, tol=tol
        )
    except (NotPositiveDefiniteError, OverflowError, FloatingPointError):
        return ScenarioResult(sc.name, FobjResult(theta=theta, value=-np.inf), None, 0, False)
    res = _epilogue(model, lik, theta, qp_values, x_perm, logdet_p, logdet_qc, factor)
    return ScenarioResult(
        sc.name, res, model.permutation.unpermute_vector(x_perm), n_it, conv
    )


def _run_group(scenarios, idxs, shape, out, be, max_newton: int, tol: float) -> None:
    """Lockstep Newton across one shape-group of heterogeneous scenarios.

    The value phase is a cheap per-lane loop (each lane has its own
    curvature plan, observation count and pattern); the factorization
    phase is ONE batched sweep over the shared stack per iteration —
    exactly the single-model lockstep with the homogeneous vector math
    unrolled per lane, so each lane remains bit-identical to its own
    serial run.
    """
    lanes: list[_Lane] = []
    for i in idxs:
        sc = scenarios[i]
        theta = np.asarray(sc.theta, dtype=np.float64)
        try:
            qp = _prior_values_single(sc.model, theta)
        except (ValueError, FloatingPointError, OverflowError):
            out[i] = ScenarioResult(
                sc.name, FobjResult(theta=theta, value=-np.inf), None, 0, False
            )
            continue
        kern = _NewtonKernel(sc.model, sc.likelihood, backend=be)
        lanes.append(_Lane(index=i, kern=kern, qp=qp, theta=theta))
    if not lanes:
        return
    t = len(lanes)
    ws = AssemblyWorkspace(backend=be)

    # -- log|Qp|: one shared batched factorization across the group ------
    qp_stack = ws.stacks(shape, t)[0]
    for j, ln in enumerate(lanes):
        _scatter_row(ln.kern.plan.scatter_p, ln.qp, qp_stack, j)
    try:
        logdet_p = np.asarray(
            be.to_host(factorize_batch(qp_stack, overwrite=True).logdets()), dtype=np.float64
        )
    except NotPositiveDefiniteError:
        logdet_p = np.full(t, np.nan)
        for j, ln in enumerate(lanes):
            try:
                logdet_p[j] = factorize(
                    ln.kern.plan.scatter_p.scatter(ln.qp[0]), overwrite=True
                ).logdet()
            except NotPositiveDefiniteError:
                pass  # lane stays nan -> reported -inf below

    # -- lockstep Newton -------------------------------------------------
    n = lanes[0].kern.model.N
    x = np.zeros((t, n))
    for j, ln in enumerate(lanes):
        ln.eta = ln.kern.eta_of(x[j][None, :])
    obj = np.full(t, -np.inf)
    n_newton = np.zeros(t, dtype=np.int64)
    converged = np.zeros(t, dtype=bool)
    failed = np.zeros(t, dtype=bool)
    logdet_qc = np.full(t, np.nan)
    factors: list = [None] * t
    d_cur: list = [None] * t
    active = list(range(t))
    fallback: list | None = None
    for _ in range(max_newton):
        if not active:
            break
        still = []
        for j in active:
            d, bad = lanes[j].kern.curvature_diag(lanes[j].eta)
            if bad[0]:
                failed[j] = True
                continue
            d_cur[j] = d
            still.append(j)
        active = still
        if not active:
            break
        stack = ws.stacks(shape, len(active))[1]
        rhs = np.empty((len(active), n))
        for row, j in enumerate(active):
            ln = lanes[j]
            _scatter_row(ln.kern.plan.scatter_c, ln.kern.qc_values(ln.qp, d_cur[j]), stack, row)
            rhs[row] = ln.kern.rhs(d_cur[j], ln.eta)[0]
            n_newton[j] += 1
        try:
            fb = factorize_batch(stack, overwrite=True)
        except NotPositiveDefiniteError:
            # The batched Cholesky cannot name the failing lane: every
            # still-active cell restarts on the serial path, which can.
            fallback = active
            active = []
            break
        x_new = np.asarray(be.to_host(fb.solve_each(rhs)))
        keep = []
        for row, j in enumerate(active):
            ln = lanes[j]
            x_j, eta_j, obj_j = _line_search(
                ln.kern, ln.qp, x[j][None, :], ln.eta, obj[j : j + 1], x_new[row][None, :]
            )
            delta = abs(float(obj_j[0]) - float(obj[j]))
            x[j], ln.eta, obj[j] = x_j[0], eta_j, float(obj_j[0])
            if delta < tol * (1.0 + abs(obj[j])):
                converged[j] = True
            else:
                keep.append(j)
        active = keep
    if fallback:
        for j in fallback:
            ln = lanes[j]
            try:
                x_j, ld, it_j, conv, f_j = _serial_newton(
                    ln.kern.model, ln.kern.lik, ln.qp,
                    max_newton=max_newton, tol=tol, x0_perm=x[j],
                )
            except NotPositiveDefiniteError:
                failed[j] = True
                continue
            x[j] = x_j
            ln.eta = ln.kern.eta_of(x_j[None, :])
            logdet_qc[j] = ld
            n_newton[j] += it_j
            converged[j] = conv
            factors[j] = f_j

    # -- final re-linearization: one batched sweep, per-lane handles -----
    finish = []
    for j in range(t):
        if failed[j] or factors[j] is not None:
            continue
        d, bad = lanes[j].kern.curvature_diag(lanes[j].eta)
        if bad[0]:
            failed[j] = True
            continue
        d_cur[j] = d
        finish.append(j)
    if finish:
        final = BTAStack.zeros(shape, len(finish), backend=be)
        for row, j in enumerate(finish):
            ln = lanes[j]
            _scatter_row(ln.kern.plan.scatter_c, ln.kern.qc_values(ln.qp, d_cur[j]), final, row)
        try:
            fb = factorize_batch(final, overwrite=True)
        except NotPositiveDefiniteError:
            for j in finish:  # resolve lane by lane on the serial path
                ln = lanes[j]
                try:
                    qc = ln.kern.qc_values(ln.qp, d_cur[j])
                    f_j = factorize(ln.kern.plan.scatter_c.scatter(qc[0]), overwrite=True)
                except NotPositiveDefiniteError:
                    failed[j] = True
                    continue
                factors[j] = f_j
                logdet_qc[j] = float(f_j.logdet())
        else:
            lds = np.asarray(be.to_host(fb.logdets()), dtype=np.float64)
            for row, j in enumerate(finish):
                logdet_qc[j] = float(lds[row])
                factors[j] = fb.factor(row)

    for j, ln in enumerate(lanes):
        sc = scenarios[ln.index]
        if failed[j] or not np.isfinite(logdet_p[j]):
            out[ln.index] = ScenarioResult(
                sc.name, FobjResult(theta=ln.theta, value=-np.inf), None, int(n_newton[j]), False
            )
            continue
        res = _epilogue(
            ln.kern.model, ln.kern.lik, ln.theta, ln.qp,
            x[j], float(logdet_p[j]), float(logdet_qc[j]), factors[j],
        )
        out[ln.index] = ScenarioResult(
            sc.name,
            res,
            ln.kern.model.permutation.unpermute_vector(x[j]),
            int(n_newton[j]),
            bool(converged[j]),
        )


def evaluate_scenario_grid(
    scenarios,
    *,
    max_newton: int = 40,
    tol: float = 1e-9,
    backend=None,
) -> list[ScenarioResult]:
    """Evaluate a grid of scenarios, sharing sweeps within shape groups.

    Returns one :class:`ScenarioResult` per input scenario, in order.
    Cells whose models share ``permutation.bta_shape`` ride the same
    lockstep batched sweeps; singleton groups — and everything under
    ``REPRO_BATCHED=0`` — run the serial per-cell reference path, which
    each grouped cell matches to rounding (bit-identical per the
    ``factorize_batch`` per-lane contract).
    """
    be = backend if backend is not None else get_backend()
    out: list = [None] * len(scenarios)
    groups: dict = {}
    for i, sc in enumerate(scenarios):
        groups.setdefault(sc.model.permutation.bta_shape, []).append(i)
    for shape, idxs in groups.items():
        if len(idxs) >= 2 and batched_enabled(None, be):
            _run_group(scenarios, idxs, shape, out, be, max_newton, tol)
        else:
            for i in idxs:
                out[i] = _run_serial(scenarios[i], max_newton, tol)
    return out
