"""Skewness-corrected hyperparameter marginals (paper Sec. III-3).

The default Gaussian approximation of ``p(theta | y)`` is symmetric; the
paper notes R-INLA's more accurate alternative: reparametrize along the
eigenvectors of the Hessian at the mode and correct each principal
direction for skewness using extra objective evaluations.  We implement
the standard third-order variant: for each eigendirection ``v_k`` with
curvature scale ``s_k``, evaluate ``fobj`` at ``theta* +/- delta s_k v_k``
and fit separate left/right Gaussian scales (the "skew-normal by halves"
used by INLA's simplified Laplace), yielding asymmetric marginal
intervals.

All extra evaluations form one S1-parallel batch (2 per dimension).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inla.evaluator import FobjEvaluator


@dataclass
class SkewMarginal:
    """Asymmetric marginal of one principal direction."""

    direction: np.ndarray  # eigenvector in theta space
    scale_left: float
    scale_right: float

    @property
    def asymmetry(self) -> float:
        """``s_right / s_left`` — 1 means symmetric."""
        return self.scale_right / self.scale_left


@dataclass
class SkewCorrectedMarginals:
    """Skew-corrected approximation of ``p(theta | y)`` at the mode."""

    mode: np.ndarray
    marginals: list  # one SkewMarginal per eigendirection

    def interval(self, coverage: float = 0.95) -> np.ndarray:
        """Componentwise credible intervals, shape ``(dim, 2)``.

        Combines the per-direction asymmetric scales through the
        eigenbasis (conservative componentwise projection).
        """
        from scipy.stats import norm

        z = norm.ppf(0.5 + coverage / 2.0)
        d = self.mode.size
        lo = np.zeros(d)
        hi = np.zeros(d)
        for m in self.marginals:
            lo += (np.abs(m.direction) * z * m.scale_left) ** 2
            hi += (np.abs(m.direction) * z * m.scale_right) ** 2
        return np.column_stack([self.mode - np.sqrt(lo), self.mode + np.sqrt(hi)])


def skew_corrected_marginals(
    evaluator: FobjEvaluator,
    theta_mode: np.ndarray,
    hessian: np.ndarray,
    *,
    f_mode: float | None = None,
    delta: float = 1.5,
) -> SkewCorrectedMarginals:
    """Fit asymmetric scales along the Hessian eigendirections.

    ``hessian`` is the FD Hessian of ``fobj`` at the mode (negative
    definite).  For each eigenpair ``(w_k, v_k)`` the Gaussian predicts
    ``fobj(theta* + t v_k) - fobj(theta*) = -t^2 / (2 s_k^2)`` with
    ``s_k = 1/sqrt(-w_k)``; evaluating at ``t = +/- delta s_k`` and
    inverting gives direction-specific left/right scales.
    """
    theta_mode = np.asarray(theta_mode, dtype=np.float64)
    H = 0.5 * (np.asarray(hessian) + np.asarray(hessian).T)
    w, V = np.linalg.eigh(H)
    if np.any(w >= 0):
        w = np.minimum(w, -1e-8)
    scales = 1.0 / np.sqrt(-w)

    points = []
    for k in range(theta_mode.size):
        step = delta * scales[k] * V[:, k]
        points.append(theta_mode + step)
        points.append(theta_mode - step)
    if f_mode is None:
        points.append(theta_mode.copy())
    results = evaluator.eval_batch(points)
    if f_mode is None:
        f0 = results[-1].value
    else:
        f0 = float(f_mode)

    marginals = []
    for k in range(theta_mode.size):
        fp = results[2 * k].value
        fm = results[2 * k + 1].value
        s_right = _scale_from_drop(f0, fp, delta * scales[k], fallback=scales[k])
        s_left = _scale_from_drop(f0, fm, delta * scales[k], fallback=scales[k])
        marginals.append(
            SkewMarginal(direction=V[:, k].copy(), scale_left=s_left, scale_right=s_right)
        )
    return SkewCorrectedMarginals(mode=theta_mode.copy(), marginals=marginals)


def _scale_from_drop(f0: float, f: float, t: float, *, fallback: float) -> float:
    """Solve ``f0 - f = t^2 / (2 s^2)`` for ``s``; fall back to the
    Gaussian scale when the probe is infeasible or the drop is tiny."""
    drop = f0 - f
    if not np.isfinite(drop) or drop <= 1e-12:
        return float(fallback)
    return float(t / np.sqrt(2.0 * drop))
