"""Smart Gradient (Fattah, van Niekerk & Rue, 2022 — paper ref. [41]).

R-INLA's adaptive gradient technique: instead of differencing along the
canonical axes, difference along an orthonormalized basis aligned with
the optimizer's recent descent directions.  Near ridges of ``fobj`` this
reduces the finite-difference truncation error substantially at the same
cost of ``2 dim(theta)`` evaluations, and keeps the embarrassing
parallelism of strategy S1 intact (the stencil is still a batch).

The implementation keeps a sliding window of BFGS steps, builds the
orthonormal frame ``G`` by modified Gram-Schmidt (newest direction
first, completed with canonical axes), evaluates the central-difference
directional derivatives along ``G``'s columns, and maps them back with
``grad = G d``.  The stencil goes through the evaluator's batch path —
on the sequential host path that is one theta-batched ``pobtaf`` sweep
per precision matrix for the whole frame
(:func:`repro.structured.multifactor.factorize_batch`); the frame
changes the *directions*, not the sweep count.
"""

from __future__ import annotations

import numpy as np

from repro.inla.evaluator import FobjEvaluator, central_difference_directions


def orthonormal_frame(directions: list, dim: int) -> np.ndarray:
    """Orthonormal basis whose leading columns span ``directions``.

    Modified Gram-Schmidt over the given directions (newest first), then
    completed to a full basis with the canonical axes.  Degenerate inputs
    are skipped, so the result is always a ``dim x dim`` orthogonal matrix.
    """
    basis = []
    candidates = [np.asarray(d, dtype=np.float64) for d in directions]
    candidates += [e for e in np.eye(dim)]
    for v in candidates:
        w = v.copy()
        for b in basis:
            w -= (b @ w) * b
        n = np.linalg.norm(w)
        if n > 1e-10:
            basis.append(w / n)
        if len(basis) == dim:
            break
    G = np.column_stack(basis)
    assert G.shape == (dim, dim)
    return G


class SmartGradient:
    """Stateful smart-gradient estimator wrapping a :class:`FobjEvaluator`."""

    def __init__(self, evaluator: FobjEvaluator, *, window: int = 2, h: float = 1e-4):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.evaluator = evaluator
        self.window = window
        self.h = h
        self._history: list = []

    def record_step(self, step: np.ndarray) -> None:
        """Feed the optimizer's accepted step ``theta_new - theta``."""
        step = np.asarray(step, dtype=np.float64)
        if np.linalg.norm(step) > 0:
            self._history.append(step)
            self._history = self._history[-self.window :]

    def frame(self, dim: int) -> np.ndarray:
        """Current differencing frame (identity until steps are recorded)."""
        if not self._history:
            return np.eye(dim)
        return orthonormal_frame(list(reversed(self._history)), dim)

    def value_and_gradient(self, theta: np.ndarray) -> tuple:
        """Central differences along the adaptive frame; one S1 batch.

        The ``2 d + 1`` stencil is built as one stacked array — rows
        interleave ``theta ± h g_i`` over the frame's columns — consumed
        by ``eval_batch`` as one theta-batched sweep on the host path,
        and the directional derivatives come out of one vectorized
        differencing pass (:func:`central_difference_directions`).
        """
        theta = np.asarray(theta, dtype=np.float64)
        d = theta.size
        G = self.frame(d)
        steps = self.h * G.T  # row i is h * (frame column i)
        pts = np.empty((2 * d + 1, d))
        pts[0 : 2 * d : 2] = theta + steps
        pts[1 : 2 * d : 2] = theta - steps
        pts[-1] = theta
        results = self.evaluator.eval_batch(pts)
        f0 = results[-1].value
        values = np.array([r.value for r in results[:-1]])
        dirs = central_difference_directions(values, f0, self.h)
        return f0, G @ dirs, results[-1]
