"""Posterior sampling and predictive uncertainty.

Extends the core INLA outputs (means + marginal variances) with the
quantities applied studies derive from them (paper Sec. I: "the range of
likely values over continuous time periods", exceedance risks over
regulatory thresholds):

- exact joint samples of the latent field from the Gaussian
  approximation ``N(mu, Qc^{-1})`` — via the same structured backward
  solve used for prior simulation (``x = mu + L^{-T} z``);
- predictive draws and variances of linear functionals ``A* x`` at
  unobserved space-time points (downscaling with uncertainty);
- exceedance probabilities ``P(x_j > threshold | y)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.inla.marginals import LatentMarginals
from repro.inla.solvers import StructuredSolver
from repro.model.assembler import CoregionalSTModel
from repro.model.design import spacetime_design
from repro.serving.api import (
    ExceedanceRequest,
    PredictRequest,
    SampleRequest,
    execute_batch,
)
from repro.structured.factor import BTAFactor, factorize


@dataclass
class LatentPosterior:
    """The Gaussian approximation at fixed hyperparameters, ready to sample.

    Holds the factorization handle of ``Qc(theta)`` and the permuted
    mean, so repeated sampling costs only backward solves (``O(n b^2)``
    each) against the one cached factor — and the marginal variances,
    exceedance probabilities and predictive sd all reuse it too.
    """

    model: CoregionalSTModel
    theta: np.ndarray
    factor: BTAFactor
    mu_perm: np.ndarray

    @property
    def chol(self):
        """The underlying Cholesky factor (legacy accessor).

        Only the sequential handle has one; the distributed handle's
        factors live per rank.
        """
        chol = getattr(self.factor, "chol", None)
        if chol is None:
            raise AttributeError(
                "the distributed handle has no single-device Cholesky factor; "
                "use .factor (a DistributedBTAFactor) directly"
            )
        return chol

    def marginals(self) -> "LatentMarginals":
        """Latent marginal means and sds from the held factorization.

        Zero further factorizations (and zero re-assembly): the mean was
        solved at construction and the variances come from the handle's
        cached diagonal-only selected inversion.
        """
        var_perm = self.factor.selected_inverse_diagonal()
        if np.any(var_perm <= 0):
            raise FloatingPointError(
                "non-positive marginal variance from selected inversion"
            )
        mean = self.model.permutation.unpermute_vector(self.mu_perm)
        sd = np.sqrt(self.model.permutation.unpermute_vector(var_perm))
        return LatentMarginals(mean=mean, sd=sd, model=self.model)

    @classmethod
    def at(
        cls,
        model: CoregionalSTModel,
        theta: np.ndarray,
        *,
        solver: StructuredSolver | None = None,
        factor=None,
    ) -> "LatentPosterior":
        """Factorize ``Qc(theta)`` once and solve for the conditional mean.

        ``solver`` selects the execution path for the handle (e.g. an S3
        :class:`~repro.inla.solvers.DistributedSolver`); the default is
        the sequential factorization.  An existing ``factor`` — a handle
        for ``Qc(theta)``, e.g. the one the evaluator's theta-keyed LRU
        retained from the final line-search evaluation
        (:meth:`repro.inla.evaluator.FobjEvaluator.cached_factor`) —
        skips the assembly's densification and the factorization
        entirely; only the information vector is rebuilt for the mean.
        """
        sys = model.assemble(theta)
        if factor is None:
            factor = (
                solver.factorize(sys.qc, overwrite=True)
                if solver is not None
                else factorize(sys.qc, overwrite=True)
            )
        mu_perm = factor.solve(sys.rhs)
        return cls(
            model=model, theta=np.asarray(theta, float), factor=factor, mu_perm=mu_perm
        )

    def sample(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Joint posterior draws, variable-major, shape ``(n_samples, N)``.

        ``x = mu + L^{-T} z`` with ``z ~ N(0, I)`` gives exact draws from
        ``N(mu, Qc^{-1})`` — no dense covariance is ever formed.  The
        whole batch is one stacked backward sweep (``(b, n_samples)``
        panels against the cached factor inverses and the handle's
        preallocated workspace) followed by one stack-wide unpermute,
        instead of ``n_samples`` per-draw passes.

        Thin adapter over the serving tier's execution core — a batch of
        one :class:`~repro.serving.api.SampleRequest` — so a direct call
        and a micro-batched one are the same (bit-identical) code path.
        """
        (res,) = execute_batch(self, [SampleRequest(n_samples=n_samples, rng=rng)])
        return res.samples

    def mean(self) -> np.ndarray:
        """Posterior mean, variable-major."""
        return self.model.permutation.unpermute_vector(self.mu_perm)

    # -- prediction ---------------------------------------------------------

    def predictive_design(self, coords: np.ndarray, time_idx: np.ndarray, v: int) -> sp.csr_matrix:
        """Design matrix reading response ``v``'s ST effect at new points,
        embedded in the joint variable-major layout."""
        A_st = spacetime_design(self.model.mesh, self.model.tmesh, coords, time_idx)
        m = A_st.shape[0]
        stride = self.model.dim_process
        cols_before = v * stride
        cols_after = self.model.N - cols_before - self.model.ns * self.model.nt
        return sp.hstack(
            [
                sp.csr_matrix((m, cols_before)),
                A_st,
                sp.csr_matrix((m, cols_after)),
            ],
            format="csr",
        )

    def predict(
        self,
        coords: np.ndarray,
        time_idx: np.ndarray,
        v: int,
        *,
        n_samples: int = 0,
        rng: np.random.Generator | None = None,
    ) -> dict:
        """Posterior-mean prediction with exact predictive standard deviations.

        The predictive variance of ``a^T x`` is ``a^T Qc^{-1} a``; it is
        computed exactly with one structured solve per prediction *batch*
        (``Qc^{-1} A*^T`` has as many right-hand sides as prediction
        points — fine for map-sized batches).  Optional joint samples are
        returned for functionals the marginals cannot answer.

        Thin adapter over the serving tier's execution core — a batch of
        one :class:`~repro.serving.api.PredictRequest`.
        """
        (res,) = execute_batch(
            self,
            [
                PredictRequest(
                    coords=coords, time_idx=time_idx, v=v, n_samples=n_samples, rng=rng
                )
            ],
        )
        return res.as_dict()

    def exceedance_probability(self, threshold: float, sd: np.ndarray | None = None) -> np.ndarray:
        """Marginal ``P(x_j > threshold | y, theta)`` for every latent
        variable (the regulatory-threshold quantity of the paper's intro).

        ``sd`` defaults to the selected-inversion marginal standard
        deviations, computed on demand (and cached on the factor).

        Thin adapter over the serving tier's execution core — a batch of
        one :class:`~repro.serving.api.ExceedanceRequest`.
        """
        (res,) = execute_batch(self, [ExceedanceRequest(threshold=threshold, sd=sd)])
        return res.probability
