"""Finite-difference Hessian of the objective at the mode (paper Sec. III-3).

The negative Hessian of ``fobj`` at ``theta*`` is the precision of the
Gaussian approximation to ``p(theta | y)``.  Second-order central
differences need ``2 d^2 + 1`` extra evaluations, all independent — they
are dispatched as one parallel S1 batch.
"""

from __future__ import annotations

import numpy as np

from repro.inla.evaluator import FobjEvaluator


def fd_hessian(
    evaluator: FobjEvaluator,
    theta: np.ndarray,
    *,
    h: float = 1e-3,
    f_center: float | None = None,
) -> np.ndarray:
    """Symmetric FD Hessian of ``fobj`` at ``theta``.

    Diagonal terms use the standard three-point stencil; off-diagonal
    terms the four-point cross stencil.  All points are evaluated in one
    batch (the paper's parallel function evaluations, Sec. III-A item 2).
    """
    theta = np.asarray(theta, dtype=np.float64)
    d = theta.size

    points = []
    if f_center is None:
        points.append(theta.copy())
    # Diagonal stencils.
    for i in range(d):
        e = np.zeros(d)
        e[i] = h
        points.append(theta + e)
        points.append(theta - e)
    # Cross stencils (i < j).
    for i in range(d):
        for j in range(i + 1, d):
            ei = np.zeros(d)
            ej = np.zeros(d)
            ei[i] = h
            ej[j] = h
            points.append(theta + ei + ej)
            points.append(theta + ei - ej)
            points.append(theta - ei + ej)
            points.append(theta - ei - ej)

    results = evaluator.eval_batch(points)
    values = [r.value for r in results]
    k = 0
    if f_center is None:
        f0 = values[0]
        k = 1
    else:
        f0 = float(f_center)
    if not np.isfinite(f0):
        raise FloatingPointError("objective not finite at the expansion point")
    # Stencil points can fall outside the feasible region near a boundary
    # mode; substituting the center value zeroes the associated curvature
    # contribution (the SPD floor in hyperparameter_precision handles the
    # resulting near-flat directions).
    values = [v if np.isfinite(v) else f0 for v in values]

    H = np.empty((d, d))
    for i in range(d):
        fp, fm = values[k], values[k + 1]
        k += 2
        H[i, i] = (fp - 2.0 * f0 + fm) / h**2
    for i in range(d):
        for j in range(i + 1, d):
            fpp, fpm, fmp, fmm = values[k : k + 4]
            k += 4
            H[i, j] = H[j, i] = (fpp - fpm - fmp + fmm) / (4.0 * h**2)
    if not np.all(np.isfinite(H)):
        raise FloatingPointError("non-finite entries in FD Hessian; reduce h or move the mode")
    return H


def hyperparameter_precision(hessian_fobj: np.ndarray, *, jitter: float = 1e-10) -> np.ndarray:
    """Precision of the Gaussian approximation: ``-H`` regularized to SPD."""
    P = -np.asarray(hessian_fobj, dtype=np.float64)
    P = 0.5 * (P + P.T)
    # Clip tiny/negative eigenvalues: near-flat directions get a weak but
    # valid Gaussian rather than a singular one.
    w, V = np.linalg.eigh(P)
    floor = max(jitter, 1e-8 * float(np.abs(w).max()))
    w = np.maximum(w, floor)
    return (V * w) @ V.T
