"""Finite-difference Hessian of the objective at the mode (paper Sec. III-3).

The negative Hessian of ``fobj`` at ``theta*`` is the precision of the
Gaussian approximation to ``p(theta | y)``.  Second-order central
differences need ``2 d^2 + 1`` extra evaluations, all independent — they
are dispatched as one S1 batch, which on the sequential host path the
evaluator executes as **two theta-batched ``pobtaf`` sweeps** over the
whole point stack (the matrices differ only in values, so the stencil
stacks along a leading theta axis — see
:mod:`repro.structured.multifactor`); on the per-point fallback every
point runs one factorization handle per precision matrix
(:mod:`repro.inla.objective`).
"""

from __future__ import annotations

import numpy as np

from repro.inla.evaluator import FobjEvaluator


def fd_hessian(
    evaluator: FobjEvaluator,
    theta: np.ndarray,
    *,
    h: float = 1e-3,
    f_center: float | None = None,
) -> np.ndarray:
    """Symmetric FD Hessian of ``fobj`` at ``theta``.

    Diagonal terms use the standard three-point stencil; off-diagonal
    terms the four-point cross stencil.  All points are evaluated in one
    batch (the paper's parallel function evaluations, Sec. III-A item 2).
    """
    theta = np.asarray(theta, dtype=np.float64)
    d = theta.size

    # The whole stencil is assembled as one stacked (n_points, d) array —
    # the same row-major stack layout the structured solvers batch RHS
    # over — instead of a per-pair Python loop.  Rows: optional center,
    # then interleaved +/- diagonal points, then the (i < j) cross points
    # in groups of four (++, +-, -+, --).
    E = h * np.eye(d)
    iu, ju = np.triu_indices(d, 1)
    m = iu.size
    Ei, Ej = E[iu], E[ju]  # (m, d) step stacks of the cross pairs
    base = (0 if f_center is not None else 1) + 2 * d
    points = np.empty((base + 4 * m, d))
    idx = 0
    if f_center is None:
        points[0] = theta
        idx = 1
    points[idx : idx + 2 * d : 2] = theta + E
    points[idx + 1 : idx + 2 * d : 2] = theta - E
    points[base + 0 :: 4] = theta + Ei + Ej
    points[base + 1 :: 4] = theta + Ei - Ej
    points[base + 2 :: 4] = theta - Ei + Ej
    points[base + 3 :: 4] = theta - Ei - Ej

    results = evaluator.eval_batch(points)
    values = np.array([r.value for r in results])
    f0 = float(values[0]) if f_center is None else float(f_center)
    if not np.isfinite(f0):
        raise FloatingPointError("objective not finite at the expansion point")
    # Stencil points can fall outside the feasible region near a boundary
    # mode; substituting the center value zeroes the associated curvature
    # contribution (the SPD floor in hyperparameter_precision handles the
    # resulting near-flat directions).
    values = np.where(np.isfinite(values), values, f0)

    H = np.empty((d, d))
    fp = values[idx : idx + 2 * d : 2]
    fm = values[idx + 1 : idx + 2 * d : 2]
    np.fill_diagonal(H, (fp - 2.0 * f0 + fm) / h**2)
    cross = values[base:].reshape(m, 4)
    hij = (cross[:, 0] - cross[:, 1] - cross[:, 2] + cross[:, 3]) / (4.0 * h**2)
    H[iu, ju] = H[ju, iu] = hij
    if not np.all(np.isfinite(H)):
        raise FloatingPointError("non-finite entries in FD Hessian; reduce h or move the mode")
    return H


def hyperparameter_precision(hessian_fobj: np.ndarray, *, jitter: float = 1e-10) -> np.ndarray:
    """Precision of the Gaussian approximation: ``-H`` regularized to SPD."""
    P = -np.asarray(hessian_fobj, dtype=np.float64)
    P = 0.5 * (P + P.T)
    # Clip tiny/negative eigenvalues: near-flat directions get a weak but
    # valid Gaussian rather than a singular one.
    w, V = np.linalg.eigh(P)
    floor = max(jitter, 1e-8 * float(np.abs(w).max()))
    w = np.maximum(w, floor)
    return (V * w) @ V.T
