"""DALIA front-end: end-to-end Bayesian inference for coregional ST models.

Ties the whole pipeline together (paper Fig. 3): BFGS over ``fobj`` with
S1-parallel gradients, optional S2 factorization concurrency, the
S3-distributed structured solver, FD Hessian at the mode, and posterior
marginals for hyperparameters and the latent field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inla.bfgs import BFGSOptions, BFGSResult, bfgs_minimize
from repro.inla.evaluator import FobjEvaluator, NonGaussianFobjEvaluator
from repro.inla.hessian import fd_hessian, hyperparameter_precision
from repro.inla.marginals import HyperMarginals, LatentMarginals
from repro.inla.nongaussian import gaussian_approximation
from repro.inla.sampling import LatentPosterior
from repro.inla.solvers import StructuredSolver, select_solver
from repro.model.assembler import CoregionalSTModel


@dataclass
class INLAResult:
    """Complete inference output."""

    theta_mode: np.ndarray
    fobj_mode: float
    hyper: HyperMarginals
    latent: LatentMarginals
    optimization: BFGSResult
    n_fobj_evaluations: int
    #: cross-response correlations implied by the LMC at the mode (nv > 1)
    response_correlations: np.ndarray | None = None

    def describe_theta(self, model: CoregionalSTModel) -> dict:
        return model.layout.describe(self.theta_mode)


class DALIA:
    """The inference engine.

    Parameters
    ----------
    model:
        The assembled latent Gaussian model.
    solver:
        Structured solver for the bottleneck operations.  By default one
        is selected *per workload* via
        :func:`repro.inla.solvers.select_solver`: the objective's
        factorize-in-place logdet/solve sweeps dispatch with
        ``workload="objective"``, while the posterior marginals — whose
        selected inversion additionally keeps a full BTA workspace —
        dispatch with ``workload="marginals"`` (see
        :data:`repro.inla.solvers.WORKLOAD_FACTORS` for the peak-footprint
        multipliers), so the same model can run the mode search
        sequentially and only partition for the variance pass.  An
        explicit solver is used for every phase.
    s1_workers:
        Parallel width for objective-function batches (strategy S1;
        saturates at ``2 dim(theta) + 1``).  On the sequential host path
        the evaluator replaces the per-point thread pool with
        theta-batched ``pobtaf`` sweeps — one batched factorization per
        precision matrix for the whole stencil
        (:func:`repro.structured.multifactor.factorize_batch`); the pool
        remains the fallback for distributed solvers and infeasible
        batches.
    s2_parallel:
        Factorize ``Qp`` and ``Qc`` concurrently (strategy S2; per-point
        path only).
    batch_stencils:
        Force (True) / disable (False) the theta-batched stencil sweep;
        None follows the solver type and ``REPRO_BATCHED``.
    cache_size:
        Theta-keyed LRU capacity on the evaluator: the line search and
        convergence checks revisit thetas, and hits skip assembly and
        factorization entirely (None auto-sizes to two gradient
        stencils; the mode's retained ``Qc`` handle additionally feeds
        the latent posterior).
    likelihood:
        Optional non-Gaussian observation likelihood (e.g.
        :class:`repro.inla.nongaussian.PoissonLikelihood`).  When set,
        ``fobj`` evaluations run the batched Laplace-approximation inner
        loop (:class:`repro.inla.evaluator.NonGaussianFobjEvaluator`)
        and the latent posterior is the Gaussian approximation at the
        Newton mode ``x*(theta)`` rather than the exact conditional.
        Only the sequential in-process solver path supports this;
        combining ``likelihood`` with an explicit distributed ``solver``
        raises.
    """

    def __init__(
        self,
        model: CoregionalSTModel,
        *,
        solver: StructuredSolver | None = None,
        s1_workers: int = 1,
        s2_parallel: bool = False,
        batch_stencils: bool | None = None,
        cache_size: int | None = None,
        likelihood=None,
    ):
        self.model = model
        shape = model.permutation.bta_shape
        self.likelihood = likelihood
        if likelihood is not None and solver is not None:
            raise ValueError(
                "non-Gaussian likelihoods run on the sequential in-process "
                "path; do not pass an explicit solver"
            )
        self.solver = solver or select_solver(shape, workload="objective")
        self.marginal_solver = solver or select_solver(shape, workload="marginals")
        #: Factorization handle of Qc at the mode (set by fit(); shared by
        #: the latent marginals and posterior sampling).
        self._mode_posterior: LatentPosterior | None = None
        if likelihood is not None:
            self.evaluator = NonGaussianFobjEvaluator(
                model,
                likelihood,
                s1_workers=min(s1_workers, model.layout.n_feval),
                s2_parallel=s2_parallel,
                batch_stencils=batch_stencils,
                cache_size=cache_size,
            )
        else:
            self.evaluator = FobjEvaluator(
                model,
                solver=self.solver,
                s1_workers=min(s1_workers, model.layout.n_feval),
                s2_parallel=s2_parallel,
                batch_stencils=batch_stencils,
                cache_size=cache_size,
            )

    def default_start(self) -> np.ndarray:
        """Starting point: moderate ranges/unit scales (reference theta)."""
        return self.model._reference_theta()

    def fit(
        self,
        theta0: np.ndarray | None = None,
        *,
        options: BFGSOptions | None = None,
        hessian_step: float = 1e-3,
        compute_latent: bool = True,
    ) -> INLAResult:
        """Run the full INLA pipeline and return posterior summaries."""
        theta0 = self.default_start() if theta0 is None else np.asarray(theta0, dtype=np.float64)
        opt = bfgs_minimize(self.evaluator, theta0, options)

        # The final accepted line-search evaluation retained its Qc handle
        # on the evaluator's LRU; grab it before the Hessian batch floods
        # the cache so the mode posterior can reuse the factorization.
        mode_factor = self.evaluator.cached_factor(opt.theta)

        H = fd_hessian(self.evaluator, opt.theta, h=hessian_step, f_center=opt.fobj)
        precision = hyperparameter_precision(H)
        cov = np.linalg.inv(precision)
        hyper = HyperMarginals(mode=opt.theta.copy(), covariance=cov)

        latent = None
        if compute_latent:
            # One factorization of Qc(theta*) serves the conditional-mean
            # solve, the Takahashi variances, and — via `posterior()` —
            # any later joint sampling: the handle is cached on the
            # engine, and when the optimizer's last line-search handle is
            # still on the LRU even that factorization is skipped.
            if self.likelihood is not None:
                self._mode_posterior = self._nongaussian_posterior(
                    opt.theta, factor=mode_factor
                )
            else:
                self._mode_posterior = LatentPosterior.at(
                    self.model, opt.theta, solver=self.marginal_solver, factor=mode_factor
                )
            latent = self._mode_posterior.marginals()

        corr = None
        if self.model.nv > 1:
            corr = self.model.coreg.response_correlations(
                self.model.layout.sigmas(opt.theta), self.model.layout.lambdas(opt.theta)
            )
        return INLAResult(
            theta_mode=opt.theta,
            fobj_mode=opt.fobj,
            hyper=hyper,
            latent=latent,
            optimization=opt,
            n_fobj_evaluations=self.evaluator.n_evaluations,
            response_correlations=corr,
        )

    def posterior(self, result: INLAResult | None = None) -> LatentPosterior:
        """The Gaussian approximation at the mode, ready to sample.

        Reuses the factorization handle built by :meth:`fit` (one
        ``pobtaf`` of ``Qc(theta*)`` shared by the marginals, joint
        draws, predictive sd and exceedance probabilities).  When ``fit``
        ran with ``compute_latent=False`` — or for a different mode — a
        handle is built on demand with the marginal-workload solver.
        """
        theta = None if result is None else result.theta_mode
        cached = self._mode_posterior
        if cached is not None and (theta is None or np.array_equal(cached.theta, theta)):
            return cached
        if theta is None:
            raise ValueError("no cached mode posterior; pass the INLAResult")
        if self.likelihood is not None:
            self._mode_posterior = self._nongaussian_posterior(theta)
        else:
            self._mode_posterior = LatentPosterior.at(
                self.model, theta, solver=self.marginal_solver
            )
        return self._mode_posterior

    def _nongaussian_posterior(self, theta, *, factor=None) -> LatentPosterior:
        """Gaussian approximation at the Newton mode ``x*(theta)``.

        ``LatentPosterior.at`` solves the *Gaussian* information vector
        ``Qc mu = rhs``, which is wrong under a non-Gaussian likelihood —
        the conditional mean is the inner-loop Newton mode.  Pair the
        evaluator's retained ``Qc(x*)`` handle with its warm-started mode
        when both survived the LRU; otherwise rerun the (warm-started)
        inner loop once.
        """
        theta = np.asarray(theta, dtype=np.float64)
        key = self.evaluator._key(theta)
        x0 = self.evaluator._warm_starts.get(key)
        if factor is None:
            factor = self.evaluator.cached_factor(theta)
        if factor is None or x0 is None:
            approx = gaussian_approximation(
                self.model,
                theta,
                self.likelihood,
                max_newton=self.evaluator.max_newton,
                x0_perm=x0,
            )
            factor = approx.qc_perm_bta
            mu_perm = self.model.permutation.permute_vector(approx.x_mode)
        else:
            mu_perm = np.array(x0, dtype=np.float64)
        return LatentPosterior(
            model=self.model, theta=theta, factor=factor, mu_perm=mu_perm
        )

    def predict_st(
        self,
        result: INLAResult,
        coords: np.ndarray,
        time_idx: np.ndarray,
        v: int,
    ) -> np.ndarray:
        """Posterior-mean prediction of response ``v``'s ST surface at new
        space-time points (the downscaling operation of paper Sec. VI)."""
        from repro.model.design import spacetime_design

        if result.latent is None:
            raise ValueError("fit() was run with compute_latent=False")
        A = spacetime_design(self.model.mesh, self.model.tmesh, coords, time_idx)
        mean_st, _ = result.latent.st_field(v)
        return np.asarray(A @ mean_st.ravel()).ravel()
