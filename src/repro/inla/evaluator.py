"""Batched parallel objective evaluations (strategy S1).

One BFGS iteration needs ``nfeval = 2 dim(theta) + 1`` objective values
(the central-difference stencil plus the center, paper Eq. 10); they are
embarrassingly parallel.  :class:`FobjEvaluator` fans a batch out over a
thread pool of ``s1`` workers — NumPy's LAPACK releases the GIL, so the
factorizations genuinely overlap, mirroring the paper's MPI groups
``G_S1``.  The aggregated values correspond to the paper's ``AllReduce``
(the ``(+)`` in Fig. 3a).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.inla.objective import FobjResult, evaluate_fobj
from repro.inla.solvers import StructuredSolver
from repro.model.assembler import CoregionalSTModel


def central_difference_directions(values: np.ndarray, f0: float, h: float) -> np.ndarray:
    """Directional derivatives from an interleaved ``(+, -)`` value stack.

    ``values`` holds the ``2 d`` stencil values ordered
    ``[f(+e_0), f(-e_0), f(+e_1), ...]`` — the evaluation order of the
    stacked stencils built by :meth:`FobjEvaluator.gradient_stencil` and
    the smart-gradient frame.  Non-finite entries are replaced by the
    center value ``f0``, zeroing that direction's estimate (the optimizer
    then relies on its line search to stay feasible).  One vectorized pass
    replaces the historical per-direction Python loop.
    """
    v = np.asarray(values, dtype=np.float64)
    v = np.where(np.isfinite(v), v, f0)
    # A non-finite center (infeasible expansion point) makes the whole
    # estimate nan by design; suppress the elementwise inf-inf warning.
    with np.errstate(invalid="ignore"):
        return (v[0::2] - v[1::2]) / (2.0 * h)


class FobjEvaluator:
    """Callable objective with batched parallel evaluation and counters.

    Each stencil point factorizes its two precision matrices exactly once
    through the solver's handle API (``solver.factorize``): the ``Qc``
    handle serves both the logdet and the conditional-mean solve, so a
    batch of ``2 d + 1`` points costs exactly ``2 (2 d + 1)`` ``pobtaf``
    calls — asserted against
    :data:`repro.structured.pobtaf.FACTORIZATIONS` by the objective
    tests.
    """

    def __init__(
        self,
        model: CoregionalSTModel,
        *,
        solver: StructuredSolver | None = None,
        s1_workers: int = 1,
        s2_parallel: bool = False,
    ):
        if s1_workers < 1:
            raise ValueError(f"s1_workers must be >= 1, got {s1_workers}")
        self.model = model
        self.solver = solver
        self.s1_workers = s1_workers
        self.s2_parallel = s2_parallel
        self.n_evaluations = 0
        self.n_batches = 0

    def _eval_one(self, theta: np.ndarray) -> FobjResult:
        """Single objective evaluation (hook point for baseline engines)."""
        return evaluate_fobj(
            self.model,
            theta,
            solver=self.solver,
            s2_parallel=self.s2_parallel,
        )

    def __call__(self, theta: np.ndarray) -> FobjResult:
        self.n_evaluations += 1
        return self._eval_one(theta)

    def eval_batch(self, thetas: list) -> list:
        """Evaluate many stencil points; order of results matches input."""
        self.n_batches += 1
        self.n_evaluations += len(thetas)
        if self.s1_workers == 1 or len(thetas) == 1:
            return [self._eval_one(t) for t in thetas]
        with ThreadPoolExecutor(max_workers=min(self.s1_workers, len(thetas))) as pool:
            futures = [pool.submit(self._eval_one, t) for t in thetas]
            return [f.result() for f in futures]

    def gradient_stencil(self, theta: np.ndarray, h: float) -> np.ndarray:
        """The ``2 d + 1`` stencil points of paper Eq. 10 (center last).

        Returned as one stacked ``(2 d + 1, d)`` array — rows interleave
        ``theta + h e_i`` / ``theta - h e_i`` — built by broadcasting
        instead of a per-axis Python loop; ``eval_batch`` iterates the
        rows.
        """
        theta = np.asarray(theta, dtype=np.float64)
        d = theta.size
        pts = np.empty((2 * d + 1, d))
        steps = h * np.eye(d)
        pts[0 : 2 * d : 2] = theta + steps
        pts[1 : 2 * d : 2] = theta - steps
        pts[-1] = theta
        return pts

    def value_and_gradient(self, theta: np.ndarray, *, h: float = 1e-4) -> tuple:
        """Central-difference gradient; one parallel batch per call.

        Returns ``(f_center, grad, center_result)``.  Non-finite stencil
        values are replaced by the center value, zeroing that direction's
        derivative estimate (the optimizer then relies on its line search
        to stay in the feasible region).
        """
        pts = self.gradient_stencil(theta, h)
        results = self.eval_batch(pts)
        center = results[-1]
        f0 = center.value
        values = np.array([r.value for r in results[:-1]])
        grad = central_difference_directions(values, f0, h)
        return f0, grad, center
