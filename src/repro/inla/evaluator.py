"""Batched parallel objective evaluations (strategy S1).

One BFGS iteration needs ``nfeval = 2 dim(theta) + 1`` objective values
(the central-difference stencil plus the center, paper Eq. 10); they are
embarrassingly parallel.  :class:`FobjEvaluator` fans a batch out over a
thread pool of ``s1`` workers — NumPy's LAPACK releases the GIL, so the
factorizations genuinely overlap, mirroring the paper's MPI groups
``G_S1``.  The aggregated values correspond to the paper's ``AllReduce``
(the ``(+)`` in Fig. 3a).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.inla.objective import FobjResult, evaluate_fobj
from repro.inla.solvers import StructuredSolver
from repro.model.assembler import CoregionalSTModel


class FobjEvaluator:
    """Callable objective with batched parallel evaluation and counters."""

    def __init__(
        self,
        model: CoregionalSTModel,
        *,
        solver: StructuredSolver | None = None,
        s1_workers: int = 1,
        s2_parallel: bool = False,
    ):
        if s1_workers < 1:
            raise ValueError(f"s1_workers must be >= 1, got {s1_workers}")
        self.model = model
        self.solver = solver
        self.s1_workers = s1_workers
        self.s2_parallel = s2_parallel
        self.n_evaluations = 0
        self.n_batches = 0

    def _eval_one(self, theta: np.ndarray) -> FobjResult:
        """Single objective evaluation (hook point for baseline engines)."""
        return evaluate_fobj(
            self.model,
            theta,
            solver=self.solver,
            s2_parallel=self.s2_parallel,
        )

    def __call__(self, theta: np.ndarray) -> FobjResult:
        self.n_evaluations += 1
        return self._eval_one(theta)

    def eval_batch(self, thetas: list) -> list:
        """Evaluate many stencil points; order of results matches input."""
        self.n_batches += 1
        self.n_evaluations += len(thetas)
        if self.s1_workers == 1 or len(thetas) == 1:
            return [self._eval_one(t) for t in thetas]
        with ThreadPoolExecutor(max_workers=min(self.s1_workers, len(thetas))) as pool:
            futures = [pool.submit(self._eval_one, t) for t in thetas]
            return [f.result() for f in futures]

    def gradient_stencil(self, theta: np.ndarray, h: float) -> list:
        """The ``2 d + 1`` stencil points of paper Eq. 10 (center last)."""
        theta = np.asarray(theta, dtype=np.float64)
        d = theta.size
        pts = []
        for i in range(d):
            e = np.zeros(d)
            e[i] = h
            pts.append(theta + e)
            pts.append(theta - e)
        pts.append(theta.copy())
        return pts

    def value_and_gradient(self, theta: np.ndarray, *, h: float = 1e-4) -> tuple:
        """Central-difference gradient; one parallel batch per call.

        Returns ``(f_center, grad, center_result)``.  Non-finite stencil
        values are replaced by the center value, zeroing that direction's
        derivative estimate (the optimizer then relies on its line search
        to stay in the feasible region).
        """
        pts = self.gradient_stencil(theta, h)
        results = self.eval_batch(pts)
        center = results[-1]
        d = theta.size
        grad = np.zeros(d)
        f0 = center.value
        for i in range(d):
            fp = results[2 * i].value
            fm = results[2 * i + 1].value
            if not np.isfinite(fp):
                fp = f0
            if not np.isfinite(fm):
                fm = f0
            grad[i] = (fp - fm) / (2.0 * h)
        return f0, grad, center
