"""Batched parallel objective evaluations (strategy S1).

One BFGS iteration needs ``nfeval = 2 dim(theta) + 1`` objective values
(the central-difference stencil plus the center, paper Eq. 10); they are
embarrassingly parallel.  :class:`FobjEvaluator` exploits that two ways:

- **theta-batched stencil sweeps** (the default on the sequential host
  path): all stencil points share the exact same BTA block structure and
  differ only in values, so the evaluator assembles the theta-stacked
  ``Qp`` / ``Qc`` matrices and drives
  :func:`repro.structured.multifactor.factorize_batch` — **one** batched
  ``pobtaf`` sweep per precision matrix for the whole batch (2 sweeps
  per stencil instead of ``2 (2 d + 1)``), with all log-determinants and
  conditional-mean solves coming out of theta-batched passes.  This is
  the shape a device backend wants: one fat kernel launch per chain step
  instead of ``2 d + 1`` thin ones.
- **thread-pooled per-point evaluation** (the fallback): a pool of
  ``s1`` workers, mirroring the paper's MPI groups ``G_S1`` — NumPy's
  LAPACK releases the GIL, so the factorizations genuinely overlap.
  Used for distributed (S3) solvers, subclassed engines, pinned
  per-block kernels, and to resolve which theta of a batch went
  non-positive-definite.

A **theta-keyed LRU cache** sits in front of both paths: the BFGS line
search evaluates a candidate, then — on acceptance — the gradient
stencil revisits the same point as its center; convergence checks revisit
the mode.  Cache hits skip assembly *and* factorization entirely
(asserted against :data:`repro.structured.pobtaf.FACTORIZATIONS`), and
the most recent entries additionally retain their ``Qc`` factorization
handle (:meth:`cached_factor`) for downstream consumers.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.backend.array_module import batched_enabled
from repro.backend.protocol import get_backend
from repro.inla.objective import (
    FobjResult,
    evaluate_fobj,
    finish_fobj_results_batch,
)
from repro.inla.nongaussian import (
    evaluate_fobj_nongaussian,
    evaluate_fobj_nongaussian_batch,
)
from repro.inla.solvers import SequentialSolver, StructuredSolver
from repro.model.assembler import AssemblyWorkspace, CoregionalSTModel
from repro.structured.kernels import NotPositiveDefiniteError
from repro.structured.multifactor import factorize_batch


def central_difference_directions(values: np.ndarray, f0: float, h: float) -> np.ndarray:
    """Directional derivatives from an interleaved ``(+, -)`` value stack.

    ``values`` holds the ``2 d`` stencil values ordered
    ``[f(+e_0), f(-e_0), f(+e_1), ...]`` — the evaluation order of the
    stacked stencils built by :meth:`FobjEvaluator.gradient_stencil` and
    the smart-gradient frame.  Non-finite entries are replaced by the
    center value ``f0``, zeroing that direction's estimate (the optimizer
    then relies on its line search to stay feasible).  One vectorized pass
    replaces the historical per-direction Python loop.
    """
    v = np.asarray(values, dtype=np.float64)
    v = np.where(np.isfinite(v), v, f0)
    # A non-finite center (infeasible expansion point) makes the whole
    # estimate nan by design; suppress the elementwise inf-inf warning.
    with np.errstate(invalid="ignore"):
        return (v[0::2] - v[1::2]) / (2.0 * h)


# Upper bound on thetas per batched sweep: the stacks hold all t matrices
# at once (t x BTA bytes per precision matrix), so Hessian-sized batches
# (2 d^2 + 1 points) are swept in chunks — gradient stencils (2 d + 1)
# stay a single sweep for every realistic d.
_BATCH_SWEEP_CHUNK = 64

# Auto-mode block-size ceiling for the theta-batched sweep on the host:
# batching amortizes per-step kernel *dispatch*, which dominates for small
# blocks (measured 1.6-2.4x for b <= 16, parity at b = 32, and a loss at
# b = 64 where per-step LAPACK is compute-bound — see
# benchmarks/results/multitheta.txt).  Explicit ``batch_stencils=True``
# overrides; a device backend with genuinely batched kernels should too.
_BATCH_STENCIL_MAX_B = 32


def _batch_stencil_max_b() -> int:
    """Auto-mode ceiling (``REPRO_BATCH_STENCIL_MAX_B`` overrides)."""
    raw = os.environ.get("REPRO_BATCH_STENCIL_MAX_B", "").strip()
    return int(raw) if raw else _BATCH_STENCIL_MAX_B


class FobjEvaluator:
    """Callable objective with batched stencil sweeps, an LRU, and counters.

    Parameters
    ----------
    model:
        The assembled latent Gaussian model.
    solver:
        Structured solver for the per-point path (None = sequential).
        The theta-batched sweep runs only on the sequential batched-kernel
        path; a distributed solver (or ``batched=False`` pin) keeps the
        per-point evaluation.
    s1_workers:
        Thread-pool width of the per-point fallback path.
    s2_parallel:
        Factorize ``Qp`` / ``Qc`` of one point concurrently (per-point
        path only; the batch sweep factorizes them back-to-back as two
        theta-batched launches).
    batch_stencils:
        Force (True) or disable (False) the theta-batched stencil sweep;
        None (default) enables it whenever the solver is sequential, the
        batched kernel path is active (``REPRO_BATCHED``), and the block
        size sits in the dispatch-bound regime where batching pays on
        the host (``b <= 32``, override via
        ``REPRO_BATCH_STENCIL_MAX_B`` — see
        ``benchmarks/results/multitheta.txt`` for the measured
        crossover).
    cache_size:
        Theta-keyed LRU capacity (0 disables caching).  Cache hits cost
        zero assemblies and zero factorization sweeps.  The default
        (None) auto-sizes to two gradient stencils
        (``2 (2 d + 1) + 3`` entries) so a stencil batch cannot evict
        its own center — the entry the line-search / gradient pattern
        revisits.  Entries without a retained handle are a few scalars
        each.
    cached_factors:
        How many of the most recent cache entries keep their ``Qc``
        factorization handle alive (bounds the extra block-stack
        memory).  Only single-point evaluations (``__call__`` — the
        line-search / convergence pattern) retain handles; stencil
        batches never do, on either path.

    Accounting: a per-point evaluation runs exactly 2 ``pobtaf`` sweeps
    (one per precision matrix, shared by logdet + solve through the
    handle); a batch of ``m`` uncached points runs exactly 2 theta-batched
    sweeps total; a cache hit runs none.  All asserted against
    :data:`repro.structured.pobtaf.FACTORIZATIONS` by the objective and
    evaluator tests.
    """

    def __init__(
        self,
        model: CoregionalSTModel,
        *,
        solver: StructuredSolver | None = None,
        s1_workers: int = 1,
        s2_parallel: bool = False,
        batch_stencils: bool | None = None,
        cache_size: int | None = None,
        cached_factors: int = 2,
    ):
        if s1_workers < 1:
            raise ValueError(f"s1_workers must be >= 1, got {s1_workers}")
        if cache_size is None:
            cache_size = 2 * model.layout.n_feval + 3
        if cache_size < 0 or cached_factors < 0:
            raise ValueError("cache_size and cached_factors must be >= 0")
        self.model = model
        self.solver = solver
        self.s1_workers = s1_workers
        self.s2_parallel = s2_parallel
        self.batch_stencils = batch_stencils
        self.cache_size = cache_size
        self.cached_factors = cached_factors
        self.n_evaluations = 0
        self.n_batches = 0
        self.n_batch_sweeps = 0
        self.n_cache_hits = 0
        self._cache: OrderedDict = OrderedDict()
        self._cache_lock = threading.Lock()
        # Reusable theta-first assembly stacks for the batch sweep (grown
        # to the largest stencil width seen, overwritten every batch).
        self._assembly_ws: AssemblyWorkspace | None = None

    # -- path selection ----------------------------------------------------

    def _batch_capable(self) -> bool:
        """True when the theta-batched sweep may replace per-point evals.

        Subclassed engines (e.g. the sparse R-INLA baseline) override
        ``_eval_one``; batching around them would silently bypass their
        objective, so any override disables the sweep.  Distributed
        solvers keep the per-point path (S1 stencil points have distinct
        matrices per rank slice), as does an explicit ``batched=False``
        kernel pin.
        """
        if type(self)._eval_one is not FobjEvaluator._eval_one:
            return False
        if self.solver is None:
            return True
        return isinstance(self.solver, SequentialSolver) and self.solver.batched is not False

    def _use_batch(self, count: int) -> bool:
        if count < 2 or not self._batch_capable():
            return False
        if self.batch_stencils is not None:
            return self.batch_stencils
        if not batched_enabled(None):
            return False
        # A backend with genuinely batched POTRF (mock device, CuPy) has
        # no dispatch-bound crossover: one fat launch beats t thin ones at
        # any block size, so the host-measured ceiling does not apply.
        if get_backend().has_batched_potrf:
            return True
        # Auto mode stays per-point above the measured host crossover
        # (dispatch amortization pays for b <= _BATCH_STENCIL_MAX_B).
        return self.model.permutation.bta_shape.b <= _batch_stencil_max_b()

    # -- theta-keyed LRU ---------------------------------------------------

    @staticmethod
    def _key(theta: np.ndarray) -> bytes:
        return np.ascontiguousarray(theta, dtype=np.float64).tobytes()

    def _cache_get(self, key: bytes) -> FobjResult | None:
        if self.cache_size == 0:
            return None
        with self._cache_lock:
            res = self._cache.get(key)
            if res is not None:
                self._cache.move_to_end(key)
                self.n_cache_hits += 1
            return res

    def _cache_put(self, key: bytes, result: FobjResult) -> None:
        if self.cache_size == 0:
            return
        with self._cache_lock:
            self._cache[key] = result
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
            # Bound handle retention: only the newest `cached_factors`
            # entries keep their Qc factor (the block stacks dominate an
            # entry's footprint; the scalar result stays cached).
            with_factor = [k for k, r in self._cache.items() if r.qc_factor is not None]
            drop = len(with_factor) - self.cached_factors
            for k in with_factor[:drop] if drop > 0 else ():
                self._cache[k].qc_factor = None

    def cached_factor(self, theta: np.ndarray):
        """The retained ``Qc`` factorization handle for ``theta``, or None.

        Only recent single-point evaluations retain handles (see
        ``cached_factors``); a hit lets a consumer reuse the line-search
        factorization at the same theta — :meth:`repro.inla.dalia.DALIA.fit`
        builds the mode posterior from it, skipping one assembly-and-
        factorization of ``Qc(theta*)``.
        """
        with self._cache_lock:
            res = self._cache.get(self._key(np.asarray(theta, dtype=np.float64)))
            return None if res is None else res.qc_factor

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()

    # -- evaluation paths --------------------------------------------------

    def _eval_one(self, theta: np.ndarray) -> FobjResult:
        """Single objective evaluation (hook point for baseline engines)."""
        return evaluate_fobj(
            self.model,
            theta,
            solver=self.solver,
            s2_parallel=self.s2_parallel,
        )

    def __call__(self, theta: np.ndarray) -> FobjResult:
        self.n_evaluations += 1
        theta = np.asarray(theta, dtype=np.float64)
        key = self._key(theta)
        hit = self._cache_get(key)
        if hit is not None:
            return hit
        # Only the single-point path retains the Qc handle: these are the
        # line-search / convergence evaluations whose thetas get revisited
        # (and whose factor DALIA's mode posterior reuses).  Stencil
        # batches never retain — a pooled Hessian batch would otherwise
        # hold one full factorization per point until the LRU trimmed it.
        retain = (
            self.cache_size > 0
            and self.cached_factors > 0
            and type(self)._eval_one is FobjEvaluator._eval_one
        )
        if retain:
            res = evaluate_fobj(
                self.model,
                theta,
                solver=self.solver,
                s2_parallel=self.s2_parallel,
                keep_factor=True,
            )
        else:
            res = self._eval_one(theta)
        self._cache_put(key, res)
        return res

    def _eval_pooled(self, thetas: list) -> list:
        """The historical per-point path: thread pool of ``s1`` workers."""
        if self.s1_workers == 1 or len(thetas) == 1:
            return [self._eval_one(t) for t in thetas]
        with ThreadPoolExecutor(max_workers=min(self.s1_workers, len(thetas))) as pool:
            futures = [pool.submit(self._eval_one, t) for t in thetas]
            return [f.result() for f in futures]

    def _eval_batch_sweep(self, thetas: list) -> list | None:
        """All stencil points through one batched assembly + two sweeps.

        ``model.assemble_batch`` evaluates every point's scalar
        coefficients (screening infeasible thetas before any value work)
        and fills the theta-first ``Qp`` / ``Qc`` block stacks in one
        numeric pass — zero scipy sparse arithmetic, zero per-theta
        ``BTAMatrix`` copies.  The stacks are factorized in place
        (``overwrite=True``; they live in a reusable workspace rebuilt
        every batch), and all log-determinants and conditional means come
        from theta-batched passes; infeasible thetas yield ``-inf`` rows.
        Returns None when any stacked matrix is not positive definite —
        the batched Cholesky cannot tell *which* theta failed, so the
        caller resolves the batch on the per-point path instead.
        """
        model = self.model
        if self._assembly_ws is None:
            # The active backend (REPRO_BACKEND) pins where the whole
            # stencil pipeline lives: assembly value stacks, block
            # stacks, factors and sweeps all allocate through it.
            self._assembly_ws = AssemblyWorkspace(backend=get_backend())
        batch = model.assemble_batch(np.stack(thetas), workspace=self._assembly_ws)
        results = [FobjResult(theta=t, value=-np.inf) for t in thetas]
        if batch.t == 0:
            return results
        try:
            qp_batch = factorize_batch(batch.qp, overwrite=True)
            qc_batch = factorize_batch(batch.qc, overwrite=True)
        except NotPositiveDefiniteError:
            return None
        self.n_batch_sweeps += 2
        finished = finish_fobj_results_batch(
            model,
            [thetas[j] for j in batch.feasible],
            batch,
            qp_batch.logdets(),
            qc_batch.logdets(),
            qc_batch.solve_each(batch.rhs),
        )
        for i, j in enumerate(batch.feasible):
            results[j] = finished[i]
        return results

    def eval_batch(self, thetas: list) -> list:
        """Evaluate many stencil points; order of results matches input.

        Cached points are served first; the remainder goes through the
        theta-batched sweep when eligible (two ``pobtaf`` sweeps for the
        whole batch) and through the thread pool otherwise.
        """
        self.n_batches += 1
        self.n_evaluations += len(thetas)
        thetas = [np.asarray(t, dtype=np.float64) for t in thetas]
        keys = [self._key(t) for t in thetas]
        results: list = [self._cache_get(k) for k in keys]
        missing = [j for j, r in enumerate(results) if r is None]
        if not missing:
            return results
        todo = [thetas[j] for j in missing]
        if self._use_batch(len(todo)):
            out = []
            # Chunking bounds the transient theta-stack memory (Hessian
            # batches) and localizes an NPD fallback to its chunk.
            for start in range(0, len(todo), _BATCH_SWEEP_CHUNK):
                chunk = todo[start : start + _BATCH_SWEEP_CHUNK]
                res = self._eval_batch_sweep(chunk)
                out.extend(res if res is not None else self._eval_pooled(chunk))
        else:
            out = self._eval_pooled(todo)
        for j, r in zip(missing, out):
            results[j] = r
            self._cache_put(keys[j], r)
        return results

    def gradient_stencil(self, theta: np.ndarray, h: float) -> np.ndarray:
        """The ``2 d + 1`` stencil points of paper Eq. 10 (center last).

        Returned as one stacked ``(2 d + 1, d)`` array — rows interleave
        ``theta + h e_i`` / ``theta - h e_i`` — built by broadcasting
        instead of a per-axis Python loop; ``eval_batch`` consumes the
        rows (as one theta-batched sweep on the host sequential path).
        """
        theta = np.asarray(theta, dtype=np.float64)
        d = theta.size
        pts = np.empty((2 * d + 1, d))
        steps = h * np.eye(d)
        pts[0 : 2 * d : 2] = theta + steps
        pts[1 : 2 * d : 2] = theta - steps
        pts[-1] = theta
        return pts

    def value_and_gradient(self, theta: np.ndarray, *, h: float = 1e-4) -> tuple:
        """Central-difference gradient; one parallel batch per call.

        Returns ``(f_center, grad, center_result)``.  Non-finite stencil
        values are replaced by the center value, zeroing that direction's
        derivative estimate (the optimizer then relies on its line search
        to stay in the feasible region).  When the center was just
        evaluated — the accepted point of a line search — the LRU serves
        it and only the ``2 d`` displaced points are swept.
        """
        pts = self.gradient_stencil(theta, h)
        results = self.eval_batch(pts)
        center = results[-1]
        f0 = center.value
        values = np.array([r.value for r in results[:-1]])
        grad = central_difference_directions(values, f0, h)
        return f0, grad, center


class NonGaussianFobjEvaluator(FobjEvaluator):
    """The evaluator over a general likelihood's Laplace objective.

    Same LRU / batching skeleton as :class:`FobjEvaluator`, with the two
    evaluation hooks swapped for the non-Gaussian engine
    (:mod:`repro.inla.nongaussian`):

    - the per-point path runs the serial Newton inner loop
      (:func:`~repro.inla.nongaussian.evaluate_fobj_nongaussian`),
    - the stencil path runs all points' Newton loops in **lockstep** —
      one ``factorize_batch`` sweep per Newton iteration across every
      active theta
      (:func:`~repro.inla.nongaussian.evaluate_fobj_nongaussian_batch`).

    A theta-keyed **warm-start cache** of permuted modes feeds both
    paths: line-search revisits and neighbouring stencil points start
    their Newton loop at the previous ``x*`` instead of zero, which cuts
    the inner iteration count to a handful after the first evaluation.
    Stencil batches never retain factorization handles (mirroring the
    Gaussian policy); the single-point path does, bounded by
    ``cached_factors``.
    """

    def __init__(
        self,
        model: CoregionalSTModel,
        lik,
        *,
        max_newton: int = 40,
        **kwargs,
    ):
        if kwargs.get("solver") is not None:
            raise ValueError(
                "NonGaussianFobjEvaluator supports the sequential path only"
            )
        super().__init__(model, **kwargs)
        self.lik = lik
        self.max_newton = max_newton
        # Permuted modes keyed by theta bytes, LRU-bounded alongside the
        # result cache (each entry is one N-vector).
        self._warm_starts: OrderedDict = OrderedDict()

    def _trim_warm_starts(self) -> None:
        cap = max(self.cache_size, 8)
        while len(self._warm_starts) > cap:
            self._warm_starts.popitem(last=False)

    def _batch_capable(self) -> bool:
        # The override of `_eval_one` is the engine itself here, not a
        # baseline to protect — the lockstep sweep is built for it.
        return self.solver is None

    def _eval_one(self, theta: np.ndarray) -> FobjResult:
        theta = np.asarray(theta, dtype=np.float64)
        key = self._key(theta)
        res = evaluate_fobj_nongaussian(
            self.model,
            theta,
            self.lik,
            max_newton=self.max_newton,
            x0_perm=self._warm_starts.get(key),
        )
        if res.mu_perm is not None:
            self._warm_starts[key] = np.array(res.mu_perm)
            self._trim_warm_starts()
        return res

    def _eval_batch_sweep(self, thetas: list) -> list:
        if self._assembly_ws is None:
            self._assembly_ws = AssemblyWorkspace(backend=get_backend())
        out = evaluate_fobj_nongaussian_batch(
            self.model,
            np.stack(thetas),
            self.lik,
            max_newton=self.max_newton,
            warm_starts=self._warm_starts,
            workspace=self._assembly_ws,
        )
        self._trim_warm_starts()
        self.n_batch_sweeps += 1
        # Mirror the Gaussian policy: stencil batches never retain
        # factorization handles (the lockstep's final stack would stay
        # pinned by any surviving per-lane view).
        for r in out:
            r.qc_factor = None
        return out
