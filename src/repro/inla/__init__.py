"""The INLA methodology (paper Sec. III) and the DALIA execution engine.

- :mod:`repro.inla.objective` — the log-posterior objective ``fobj``
  (Eq. 8), exact for Gaussian likelihoods;
- :mod:`repro.inla.solvers` — structured-solver dispatch: sequential BTA
  kernels or the distributed (S3) nested-dissection path;
- :mod:`repro.inla.evaluator` — parallel batched ``fobj`` evaluations
  (strategy S1) with optional concurrent ``Qp``/``Qc`` factorization (S2);
- :mod:`repro.inla.bfgs` — quasi-Newton optimization with
  central-difference gradients (Eq. 9/10);
- :mod:`repro.inla.hessian` — finite-difference Hessian at the mode;
- :mod:`repro.inla.marginals` — posterior marginals of hyperparameters
  and of the latent field (selected inversion);
- :mod:`repro.inla.nongaussian` — general likelihoods via the batched
  Laplace (inner Newton) approximation;
- :mod:`repro.inla.scenarios` — scenario grids sharing batched sweeps
  across model x likelihood cells;
- :mod:`repro.inla.dalia` — the :class:`DALIA` front-end tying it all
  together.
"""

from repro.inla.objective import FobjResult, evaluate_fobj
from repro.inla.solvers import DistributedSolver, SequentialSolver, StructuredSolver, select_solver
from repro.inla.evaluator import FobjEvaluator, NonGaussianFobjEvaluator
from repro.inla.bfgs import BFGSOptions, BFGSResult, bfgs_minimize
from repro.inla.hessian import fd_hessian
from repro.inla.marginals import HyperMarginals, LatentMarginals
from repro.inla.dalia import DALIA, INLAResult
from repro.inla.nongaussian import (
    BinomialLikelihood,
    GaussianApproximation,
    GaussianObs,
    PoissonLikelihood,
    evaluate_fobj_nongaussian,
    evaluate_fobj_nongaussian_batch,
    gaussian_approximation,
    gaussian_approximation_batch,
)
from repro.inla.sampling import LatentPosterior
from repro.inla.scenarios import Scenario, ScenarioResult, evaluate_scenario_grid
from repro.inla.smart_gradient import SmartGradient

__all__ = [
    "LatentPosterior",
    "SmartGradient",
    "FobjResult",
    "evaluate_fobj",
    "BinomialLikelihood",
    "GaussianApproximation",
    "GaussianObs",
    "PoissonLikelihood",
    "evaluate_fobj_nongaussian",
    "evaluate_fobj_nongaussian_batch",
    "gaussian_approximation",
    "gaussian_approximation_batch",
    "NonGaussianFobjEvaluator",
    "Scenario",
    "ScenarioResult",
    "evaluate_scenario_grid",
    "StructuredSolver",
    "SequentialSolver",
    "DistributedSolver",
    "select_solver",
    "FobjEvaluator",
    "BFGSOptions",
    "BFGSResult",
    "bfgs_minimize",
    "fd_hessian",
    "HyperMarginals",
    "LatentMarginals",
    "DALIA",
    "INLAResult",
]
